//! Verifies the allocation-free steady-state query path: executing a large batch
//! through the scratch-reusing executor must allocate nothing per query beyond each
//! query's k-element result vector (which is the answer handed to the caller, not
//! scratch).
//!
//! This file is its own test binary with a single `#[test]` so the counting global
//! allocator observes only this test's traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use p2h_balltree::BallTreeBuilder;
use p2h_core::SearchParams;
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_engine::{BatchExecutor, BatchRequest};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_batch_execution_is_allocation_free_per_query() {
    let points = SyntheticDataset::new(
        "alloc-test",
        6_000,
        24,
        DataDistribution::GaussianClusters { clusters: 8, std_dev: 1.5 },
        42,
    )
    .generate()
    .unwrap();
    let tree = BallTreeBuilder::new(64).build(&points).unwrap();
    let base = generate_queries(&points, 64, QueryDistribution::DataDifference, 7).unwrap();
    let queries: Vec<_> = (0..512).map(|i| base[i % base.len()].clone()).collect();
    let n = queries.len() as u64;
    let k = 10;
    let request = BatchRequest::new(queries, SearchParams::exact(k));

    // Warm-up run: first-touch growth of collector heaps and traversal stacks happens
    // here, plus any lazy allocations inside the standard library.
    let executor = BatchExecutor::new(1);
    let warmup = executor.execute(&tree, &request);
    assert_eq!(warmup.results.len(), n as usize);

    // Measured run: the per-query path must allocate only each query's result vector.
    // `take_sorted` allocates exactly one k-element Vec per query; everything else
    // (collector heap, traversal stack, distance strips) lives in the per-worker
    // QueryScratch. The batch itself allocates a constant number of aggregate buffers
    // (slots, results, latencies, histogram) independent of the query count.
    let before = allocations();
    let response = executor.execute(&tree, &request);
    let during = allocations() - before;
    assert_eq!(response.results.len(), n as usize);
    assert!(response.results.iter().all(|r| r.neighbors.len() == k));

    let per_batch_overhead = 64;
    assert!(
        during <= n + per_batch_overhead,
        "expected ≤ 1 allocation per query (the result vector) plus constant batch \
         overhead, observed {during} allocations for {n} queries"
    );
    // Sanity: the counter is actually wired up (the result vectors alone are n allocs).
    assert!(during >= n, "counting allocator should observe the {n} result vectors");
}
