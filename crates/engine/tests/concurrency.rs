//! Concurrency smoke tests: one shared engine serving many client threads at once,
//! with registration and removal interleaved mid-flight.

use std::sync::Arc;

use p2h_core::{LinearScan, P2hIndex as _, SearchParams};
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_engine::{BatchRequest, BcTreeBuilder, Engine};

#[test]
fn many_client_threads_share_one_index() {
    let points = SyntheticDataset::new(
        "engine-concurrency",
        3_000,
        12,
        DataDistribution::GaussianClusters { clusters: 5, std_dev: 1.2 },
        23,
    )
    .generate()
    .unwrap();
    let queries = generate_queries(&points, 16, QueryDistribution::DataDifference, 3).unwrap();
    let scan = LinearScan::new(points.clone());

    let engine = Arc::new(Engine::new(2));
    engine.registry().register("bc", BcTreeBuilder::new(64).build(&points).unwrap());

    let request = Arc::new(BatchRequest::new(queries.clone(), SearchParams::exact(5)));
    let clients = 8;
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let request = Arc::clone(&request);
                scope.spawn(move || engine.serve("bc", &request).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });

    // Every client sees the same (exact) answers.
    assert_eq!(responses.len(), clients);
    for response in &responses {
        assert_eq!(response.results.len(), queries.len());
        for (result, query) in response.results.iter().zip(queries.iter()) {
            let exact = scan.search_exact(query, 5);
            assert_eq!(result.neighbors, exact.neighbors);
        }
    }
}

#[test]
fn removal_mid_flight_does_not_invalidate_served_handles() {
    let points = SyntheticDataset::new(
        "engine-remove",
        1_000,
        8,
        DataDistribution::Uniform { scale: 3.0 },
        5,
    )
    .generate()
    .unwrap();
    let queries = generate_queries(&points, 8, QueryDistribution::RandomNormal, 11).unwrap();

    let engine = Arc::new(Engine::new(2));
    engine.registry().register("victim", LinearScan::new(points));
    // A client grabs the handle, the registry entry disappears, the handle keeps working.
    let handle = engine.registry().get("victim").unwrap();
    assert!(engine.registry().remove("victim").is_some());
    assert!(engine.registry().get("victim").is_none());

    let request = BatchRequest::new(queries, SearchParams::exact(3));
    let response = engine.serve_index(&handle, &request).unwrap();
    assert_eq!(response.results.len(), 8);

    // Serving by the removed name is a clean error.
    assert!(engine.serve("victim", &request).is_err());
}
