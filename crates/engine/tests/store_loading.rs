//! Cold-start serving from a snapshot store: `IndexRegistry::open_dir` /
//! `Engine::from_store` must reproduce the answers of the process that built and
//! saved the indexes, bit for bit.

use std::path::PathBuf;

use p2h_core::{HyperplaneQuery, LinearScan, PointSet, SearchParams};
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_engine::{
    BallTreeBuilder, BatchRequest, BcTreeBuilder, Engine, IndexRegistry, Partitioner,
    ShardIndexKind, ShardedIndexBuilder, Store, StoreError,
};

fn dataset(n: usize, dim: usize) -> PointSet {
    SyntheticDataset::new(
        "engine-store",
        n,
        dim,
        DataDistribution::GaussianClusters { clusters: 6, std_dev: 1.3 },
        71,
    )
    .generate()
    .unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("p2h-engine-store-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn engine_cold_starts_from_a_store_with_identical_answers() {
    let dir = temp_dir("cold-start");
    let ps = dataset(6_000, 12);
    let queries: Vec<HyperplaneQuery> =
        generate_queries(&ps, 48, QueryDistribution::DataDifference, 5).unwrap();
    let request = BatchRequest::new(queries, SearchParams::exact(10))
        .with_override(0, SearchParams::approximate(10, 400));

    // "Offline" process: build (in parallel), serve once for reference, snapshot.
    let ball = BallTreeBuilder::new(64).with_seed(3).build_parallel(&ps, 4).unwrap();
    let bc = BcTreeBuilder::new(64).with_seed(3).build_parallel(&ps, 4).unwrap();
    let offline = Engine::new(2);
    offline.registry().register("ball", ball.clone());
    offline.registry().register("bc", bc.clone());
    offline.registry().register("scan", LinearScan::new(ps.clone()));
    let reference: Vec<_> = offline
        .registry()
        .names()
        .iter()
        .map(|name| offline.serve(name, &request).unwrap())
        .collect();

    let store = Store::create(&dir).unwrap();
    store.save("ball", &ball).unwrap();
    store.save("bc", &bc).unwrap();
    store.save("scan", &LinearScan::new(ps.clone())).unwrap();

    // "Serving" process: cold-start purely from the directory.
    let engine = Engine::from_store(&dir, 2).unwrap();
    assert_eq!(engine.registry().names(), vec!["ball", "bc", "scan"]);
    for (name, expected) in engine.registry().names().iter().zip(&reference) {
        let served = engine.serve(name, &request).unwrap();
        assert_eq!(served.results.len(), expected.results.len());
        for (a, b) in served.results.iter().zip(&expected.results) {
            assert_eq!(a.neighbors, b.neighbors, "index {name}");
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn engine_cold_starts_a_sharded_index_from_a_shard_group() {
    let dir = temp_dir("sharded-cold-start");
    let ps = dataset(5_000, 10);
    let queries: Vec<HyperplaneQuery> =
        generate_queries(&ps, 32, QueryDistribution::DataDifference, 8).unwrap();
    let request = BatchRequest::new(queries, SearchParams::exact(10))
        .with_override(1, SearchParams::approximate(10, 500));

    // "Offline" process: build the sharded index, serve once for reference, snapshot
    // it as a shard group next to a plain index.
    let sharded = ShardedIndexBuilder::new(
        Partitioner::Hash { shards: 4 },
        ShardIndexKind::BcTree { leaf_size: 64 },
    )
    .with_seed(7)
    .build(&ps)
    .unwrap();
    let offline = Engine::new(2);
    offline.registry().register_sharded("sharded", sharded);
    offline.registry().register("scan", LinearScan::new(ps.clone()));
    let reference = offline.serve("sharded", &request).unwrap();

    let store = Store::create(&dir).unwrap();
    offline.registry().get_sharded("sharded").unwrap().save_into(&store, "sharded").unwrap();
    store.save("scan", &LinearScan::new(ps.clone())).unwrap();

    // "Serving" process: cold-start purely from the directory; both serving paths
    // (query-parallel trait path and shard-parallel executor) must answer
    // bit-identically to the offline process.
    let engine = Engine::from_store(&dir, 3).unwrap();
    assert_eq!(engine.registry().names(), vec!["scan", "sharded"]);
    assert_eq!(engine.registry().get_sharded("sharded").unwrap().shard_count(), 4);

    let served = engine.serve("sharded", &request).unwrap();
    let shard_parallel = engine.serve_sharded("sharded", &request).unwrap();
    assert_eq!(served.results.len(), reference.results.len());
    for ((a, b), c) in served.results.iter().zip(&reference.results).zip(&shard_parallel.results) {
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.neighbors, c.neighbors);
    }
    // Per-shard telemetry is present for every shard.
    assert_eq!(shard_parallel.per_shard_latency.len(), 4);
    assert!(shard_parallel.per_shard_stats.iter().all(|s| s.candidates_verified > 0));

    // The plain index is not reachable through the sharded serving path.
    assert!(engine.serve_sharded("scan", &request).is_err());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn open_dir_surfaces_store_errors() {
    let dir = temp_dir("errors");
    assert!(matches!(IndexRegistry::open_dir(&dir), Err(StoreError::Io { .. })));

    // A manifest entry whose snapshot file is corrupt: loading is all-or-nothing.
    let store = Store::create(&dir).unwrap();
    let ps = dataset(500, 6);
    let path = store.save("scan", &LinearScan::new(ps)).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(IndexRegistry::open_dir(&dir), Err(StoreError::ChecksumMismatch { .. })));
    assert!(Engine::from_store(&dir, 1).is_err());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mmap_cold_start_serves_bit_identically_to_copy() {
    use p2h_store::LoadMode;
    let dir = temp_dir("mmap-cold-start");
    let ps = dataset(3_000, 10);
    let queries: Vec<HyperplaneQuery> =
        generate_queries(&ps, 24, QueryDistribution::DataDifference, 11).unwrap();
    let request = BatchRequest::new(queries, SearchParams::exact(10));

    let store = Store::create(&dir).unwrap();
    store.save("ball", &BallTreeBuilder::new(48).with_seed(7).build(&ps).unwrap()).unwrap();
    store.save("bc", &BcTreeBuilder::new(48).with_seed(7).build(&ps).unwrap()).unwrap();
    store.save("scan", &LinearScan::new(ps.clone())).unwrap();
    ShardedIndexBuilder::new(
        Partitioner::Hash { shards: 3 },
        ShardIndexKind::BcTree { leaf_size: 48 },
    )
    .with_seed(7)
    .build(&ps)
    .unwrap()
    .save_into(&store, "sharded")
    .unwrap();

    // The same store cold-started under both loaders: every served batch (including
    // the shard-parallel path) is bit-identical.
    let copy = Engine::from_store_with(&dir, 2, LoadMode::Copy).unwrap();
    let mmap = Engine::from_store_with(&dir, 2, LoadMode::Mmap).unwrap();
    assert_eq!(copy.registry().names(), mmap.registry().names());
    for name in copy.registry().names() {
        let a = copy.serve(&name, &request).unwrap();
        let b = mmap.serve(&name, &request).unwrap();
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.neighbors.len(), y.neighbors.len(), "index {name}");
            for (m, n) in x.neighbors.iter().zip(&y.neighbors) {
                assert_eq!(m.index, n.index, "index {name}");
                assert_eq!(m.distance.to_bits(), n.distance.to_bits(), "index {name}");
            }
        }
    }
    let a = copy.serve_sharded("sharded", &request).unwrap();
    let b = mmap.serve_sharded("sharded", &request).unwrap();
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.neighbors, y.neighbors);
    }

    std::fs::remove_dir_all(&dir).ok();
}
