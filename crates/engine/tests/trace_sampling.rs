//! Integration test for the sampled tracing pipeline: with `P2H_TRACE=path:rate` set,
//! serving through [`Engine::serve`] writes one JSON-lines record per sampled query —
//! every `rate`-th query in submission order — carrying the stage breakdown, while
//! the answers stay bit-identical to an untraced direct executor run (tracing only
//! adds clock reads on sampled queries; it never changes the search).
//!
//! This file is its own test binary with a single `#[test]`: the trace sink is
//! resolved once per process from the environment (`OnceLock`), so the variable must
//! be set before the first serve and no other test may run in this process.

use p2h_core::SearchParams;
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_engine::{BallTreeBuilder, BatchExecutor, BatchRequest, Engine};

#[test]
fn sampled_queries_are_traced_without_perturbing_answers() {
    let trace_path =
        std::env::temp_dir().join(format!("p2h-trace-sampling-{}.jsonl", std::process::id()));
    std::fs::remove_file(&trace_path).ok();
    // Resolved by the first serve in this process; rate 3 = every third query.
    std::env::set_var("P2H_TRACE", format!("{}:3", trace_path.display()));

    let points = SyntheticDataset::new(
        "trace-test",
        3_000,
        16,
        DataDistribution::GaussianClusters { clusters: 4, std_dev: 1.2 },
        11,
    )
    .generate()
    .unwrap();
    let tree = BallTreeBuilder::new(32).build(&points).unwrap();
    let queries = generate_queries(&points, 32, QueryDistribution::DataDifference, 5).unwrap();
    let n = queries.len();
    let request = BatchRequest::new(queries, SearchParams::exact(5));

    let reference = BatchExecutor::new(1).execute(&tree, &request);

    let engine = Engine::new(1);
    engine.registry().register("traced", tree);
    let response = engine.serve("traced", &request).unwrap();

    // Bit identity under tracing: same neighbors, same distance bits.
    assert_eq!(response.results.len(), reference.results.len());
    for (served, reference) in response.results.iter().zip(reference.results.iter()) {
        assert_eq!(served.neighbors.len(), reference.neighbors.len());
        for (a, b) in served.neighbors.iter().zip(reference.neighbors.iter()) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
    }

    // Every third query of the batch was sampled: queries 0, 3, 6, … → ceil(n/3)
    // records, one JSON object per line, in submission order.
    let contents = std::fs::read_to_string(&trace_path).expect("trace file written");
    let lines: Vec<&str> = contents.lines().collect();
    assert_eq!(lines.len(), n.div_ceil(3), "one record per sampled query");
    for (i, line) in lines.iter().enumerate() {
        assert!(line.starts_with('{') && line.ends_with('}'), "JSON object per line");
        assert!(line.contains("\"index\":\"traced\""));
        assert!(line.contains("\"path\":\"batch\""));
        assert!(line.contains(&format!("\"query\":{}", i * 3)), "submission order: {line}");
        assert!(line.contains("\"k\":5"));
        for key in [
            "\"seq\":",
            "\"latency_ns\":",
            "\"stage_bounds_ns\":",
            "\"stage_verify_ns\":",
            "\"stage_lookup_ns\":",
            "\"stage_merge_ns\":",
            "\"stage_other_ns\":",
            "\"nodes_visited\":",
            "\"candidates_verified\":",
            "\"pruned_subtrees\":",
            "\"result_len\":5",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }

    // Sampled queries carry real measurements: a Ball-Tree search visits nodes and
    // verifies candidates, and the engine stamps a non-zero latency.
    let first = lines[0];
    assert!(!first.contains("\"latency_ns\":0,"), "sampled query should have latency");
    assert!(!first.contains("\"nodes_visited\":0,"), "tree search visits nodes");

    std::fs::remove_file(&trace_path).ok();
    std::env::remove_var("P2H_TRACE");
}
