//! Observability overhead guard: serving through [`Engine::serve`] — the fully
//! instrumented path (per-index metrics recorded, tracing compiled in but disabled) —
//! must stay within the same allocation budget as the raw executor (≤ 1 allocation
//! per query: the k-element result vector), return answers bit-identical to a direct
//! [`BatchExecutor::execute`] run, and cost at most a small constant factor in wall
//! time.
//!
//! The engine here is cold-started from a snapshot store with the load mode taken
//! from `P2H_STORE_MMAP`, so CI exercises this guard under both the copying and the
//! zero-copy loaders (and under `P2H_FORCE_SCALAR=1`).
//!
//! This file is its own test binary with a single `#[test]` so the counting global
//! allocator observes only this test's traffic. `P2H_TRACE` must not be set when it
//! runs — the point is the *disabled* tracing hot path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use p2h_core::SearchParams;
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_engine::{BallTreeBuilder, BatchExecutor, BatchRequest, Engine, Store};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("p2h-obs-overhead-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn instrumented_serving_keeps_the_allocation_budget_and_bit_identity() {
    assert!(
        std::env::var_os("P2H_TRACE").is_none(),
        "this guard measures the tracing-disabled hot path; unset P2H_TRACE"
    );

    let points = SyntheticDataset::new(
        "obs-overhead-test",
        6_000,
        24,
        DataDistribution::GaussianClusters { clusters: 8, std_dev: 1.5 },
        42,
    )
    .generate()
    .unwrap();
    let tree = BallTreeBuilder::new(64).build(&points).unwrap();
    let base = generate_queries(&points, 64, QueryDistribution::DataDifference, 7).unwrap();
    let queries: Vec<_> = (0..512).map(|i| base[i % base.len()].clone()).collect();
    let n = queries.len() as u64;
    let k = 10;
    let request = BatchRequest::new(queries, SearchParams::exact(k));

    // Reference answers from the raw executor (same thread count, no metrics layer).
    let reference_executor = BatchExecutor::new(1);
    let reference = reference_executor.execute(&tree, &request);

    // Cold-start the engine from a snapshot store under the env-selected load mode:
    // the serve path below is exactly what a serving process runs.
    let dir = temp_dir("store");
    let store = Store::create(&dir).unwrap();
    store.save("tree", &tree).unwrap();
    let engine = Engine::from_store(&dir, 1).unwrap();

    // Warm-up: first-touch scratch growth, instrument-handle creation for the index
    // label, and any lazy stdlib allocations.
    let warmup = engine.serve("tree", &request).unwrap();
    assert_eq!(warmup.results.len(), n as usize);

    // Measured run: the instrumented path must allocate only each query's result
    // vector plus a constant per-batch overhead — metrics recording works on
    // stack-local streaming histograms merged once into cached atomic handles, and
    // disabled tracing is a single OnceLock read per batch.
    let before = allocations();
    let serve_start = Instant::now();
    let response = engine.serve("tree", &request).unwrap();
    let serve_elapsed = serve_start.elapsed();
    let during = allocations() - before;
    assert_eq!(response.results.len(), n as usize);

    let per_batch_overhead = 64;
    eprintln!(
        "obs_overhead: {during} allocations / {n} queries \
         ({:.3} per query), serve {serve_elapsed:?}",
        during as f64 / n as f64
    );
    assert!(
        during <= n + per_batch_overhead,
        "expected ≤ 1 allocation per query through the instrumented serve path, \
         observed {during} allocations for {n} queries"
    );
    assert!(during >= n, "counting allocator should observe the {n} result vectors");

    // Bit identity: instrumentation must never perturb answers — same neighbor ids,
    // same distance bits as the uninstrumented executor.
    for (served, reference) in response.results.iter().zip(reference.results.iter()) {
        assert_eq!(served.neighbors.len(), reference.neighbors.len());
        for (a, b) in served.neighbors.iter().zip(reference.neighbors.iter()) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
    }

    // Loose timing guard: the metrics layer is constant work per batch, so serving
    // must stay within a small factor of the raw executor on the same batch. The 5×
    // bound is deliberately slack (CI machines are noisy); a per-query regression —
    // atomics or allocation in the loop — blows past it on 512 queries.
    let raw_start = Instant::now();
    let raw = reference_executor.execute(&tree, &request);
    let raw_elapsed = raw_start.elapsed();
    assert_eq!(raw.results.len(), n as usize);
    assert!(
        serve_elapsed < raw_elapsed * 5 + std::time::Duration::from_millis(20),
        "instrumented serve took {serve_elapsed:?} vs {raw_elapsed:?} raw — \
         per-query metrics overhead crept in"
    );

    // The measured batch is visible in the exposition dump.
    let dump = engine.render_metrics();
    assert!(dump.contains("p2h_query_latency_ns_bucket{index=\"tree\""));
    std::fs::remove_dir_all(&dir).ok();
}
