//! Engine determinism: parallel batch execution must return results bit-identical to
//! sequential per-query execution, for every index type and thread count.

use p2h_core::{HyperplaneQuery, LinearScan, P2hIndex, PointSet, SearchParams};
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_engine::{BallTreeBuilder, BatchExecutor, BatchRequest, BcTreeBuilder, Engine};

fn setup() -> (PointSet, Vec<HyperplaneQuery>) {
    let points = SyntheticDataset::new(
        "engine-determinism",
        4_000,
        16,
        DataDistribution::GaussianClusters { clusters: 6, std_dev: 1.5 },
        91,
    )
    .generate()
    .unwrap();
    let queries = generate_queries(&points, 32, QueryDistribution::DataDifference, 7).unwrap();
    (points, queries)
}

#[test]
fn parallel_batches_match_sequential_search_for_every_index() {
    let (points, queries) = setup();
    let scan = LinearScan::new(points.clone());
    let ball = BallTreeBuilder::new(64).build_parallel(&points, 4).unwrap();
    let bc = BcTreeBuilder::new(64).build_parallel(&points, 4).unwrap();
    let indexes: [(&dyn P2hIndex, &str); 3] =
        [(&scan, "Linear-Scan"), (&ball, "Ball-Tree"), (&bc, "BC-Tree")];

    let request = BatchRequest::new(queries.clone(), SearchParams::exact(10))
        .with_override(0, SearchParams::approximate(10, 300))
        .with_override(17, SearchParams::exact(3));

    for (index, label) in indexes {
        // Sequential reference: call the index directly, one query at a time.
        let reference: Vec<_> =
            (0..queries.len()).map(|i| index.search(&queries[i], request.params_for(i))).collect();
        for threads in [1, 2, 4, 8] {
            let response = BatchExecutor::new(threads).execute(index, &request);
            assert_eq!(response.results.len(), reference.len(), "{label}, threads={threads}");
            for (qi, (got, want)) in response.results.iter().zip(reference.iter()).enumerate() {
                assert_eq!(
                    got.neighbors, want.neighbors,
                    "{label}, threads={threads}, query {qi}: neighbors differ"
                );
                assert_eq!(
                    got.stats.candidates_verified, want.stats.candidates_verified,
                    "{label}, threads={threads}, query {qi}: work counters differ"
                );
            }
        }
    }
}

#[test]
fn engine_serve_matches_direct_execution() {
    let (points, queries) = setup();
    let engine = Engine::new(4);
    engine.registry().register("bc", BcTreeBuilder::new(100).build(&points).unwrap());

    let request = BatchRequest::new(queries.clone(), SearchParams::exact(5));
    let via_engine = engine.serve("bc", &request).unwrap();

    let direct = engine.registry().get("bc").unwrap();
    let reference: Vec<_> =
        queries.iter().map(|q| direct.search(q, &SearchParams::exact(5))).collect();
    for (got, want) in via_engine.results.iter().zip(reference.iter()) {
        assert_eq!(got.neighbors, want.neighbors);
    }
    assert_eq!(via_engine.latency.count(), queries.len());
    assert!(via_engine.total_stats.candidates_verified > 0);
}

#[test]
fn parallel_built_trees_answer_exactly() {
    // Indexes built in parallel are plugged into a parallel batch: the full concurrent
    // path must still reproduce the linear-scan oracle exactly.
    let (points, queries) = setup();
    let scan = LinearScan::new(points.clone());
    let bc = BcTreeBuilder::new(64).build_parallel(&points, 0).unwrap();
    let request = BatchRequest::new(queries.clone(), SearchParams::exact(10));
    let response = BatchExecutor::new(0).execute(&bc, &request);
    for (qi, (got, q)) in response.results.iter().zip(queries.iter()).enumerate() {
        let exact = scan.search_exact(q, 10);
        assert_eq!(got.distances(), exact.distances(), "query {qi}");
    }
}
