//! Engine integration for the live tier: registration, mutate-and-serve through
//! `Engine::live_insert`/`live_delete`/`serve_live`, the same up-front validation as
//! `Engine::serve`, and cold start — a store directory holding a live entry loads
//! through `Engine::from_store` and answers bit-identically to the pre-restart
//! engine.

use std::path::PathBuf;

use p2h_core::{Error, HyperplaneQuery, SearchParams};
use p2h_engine::{BatchRequest, BatchResponse, Engine, LiveIndex, Store};

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("p2h-engine-live-{tag}-{}", std::process::id()))
}

fn answer_bits(response: &BatchResponse) -> Vec<Vec<(usize, u32)>> {
    response
        .results
        .iter()
        .map(|r| r.neighbors.iter().map(|n| (n.index, n.distance.to_bits())).collect())
        .collect()
}

#[test]
fn live_mutate_serve_and_cold_start() {
    let dir = temp_dir("roundtrip");
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::create(&dir).unwrap();
    let live = LiveIndex::create(&store, "stream", 3).unwrap();

    let engine = Engine::new(2);
    engine.register_live("stream", live);
    assert_eq!(engine.registry().names(), vec!["stream".to_string()]);
    assert_eq!(engine.registry().len(), 1);

    let ids =
        engine.live_insert("stream", &[vec![0.0, 0.0], vec![1.0, 1.0], vec![4.0, 0.5]]).unwrap();
    assert_eq!(ids, vec![0, 1, 2]);
    engine.live_delete("stream", 1).unwrap();

    let queries = vec![
        HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0], -3.0).unwrap(),
        HyperplaneQuery::from_normal_and_bias(&[0.5, -1.0], 0.2).unwrap(),
    ];
    let request = BatchRequest::new(queries.clone(), SearchParams::exact(2));
    let response = engine.serve_live("stream", &request).unwrap();
    assert_eq!(response.results.len(), 2);
    assert_eq!(response.results[0].neighbors[0].index, 2);
    assert!(response.results.iter().all(|r| r.neighbors.iter().all(|n| n.index != 1)));
    assert_eq!(response.latencies_ns.len(), 2);

    // Live names answer only the live path; unknown names and bad requests are
    // typed errors exactly like `Engine::serve`.
    assert!(matches!(
        engine.serve("stream", &request),
        Err(Error::InvalidParameter { name: "index_name", .. })
    ));
    assert!(matches!(
        engine.serve_live("missing", &request),
        Err(Error::InvalidParameter { name: "index_name", .. })
    ));
    let wrong_dim = BatchRequest::new(
        vec![HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0, 0.0], 0.0).unwrap()],
        SearchParams::exact(1),
    );
    assert!(matches!(
        engine.serve_live("stream", &wrong_dim),
        Err(Error::DimensionMismatch { expected: 3, actual: 4 })
    ));
    assert!(engine.live_insert("missing", &[vec![0.0, 0.0]]).is_err());

    // Compact (new store epoch), then cold-start a second engine from the same
    // directory: the manifest's live entry replays and answers are bit-identical.
    engine.live("stream").unwrap().compact().unwrap();
    let after_compact = engine.serve_live("stream", &request).unwrap();
    assert_eq!(answer_bits(&response), answer_bits(&after_compact));

    let cold = Engine::from_store(&dir, 1).unwrap();
    assert_eq!(cold.registry().names(), vec!["stream".to_string()]);
    let cold_response = cold.serve_live("stream", &request).unwrap();
    assert_eq!(answer_bits(&response), answer_bits(&cold_response));

    // The cold-started handle is mutable too — the tier stays live across restarts.
    assert_eq!(cold.live_insert("stream", &[vec![-2.0, 3.0]]).unwrap(), vec![3]);
    std::fs::remove_dir_all(&dir).ok();
}
