//! Allocation discipline of the sharded fan-out path: executing a large batch against
//! a `ShardedIndex` through the scratch-reusing batch executor must allocate, per
//! query, only the per-shard top-k lists and the merged result vector — `shards + 1`
//! small vectors — with everything else (collector heap, traversal stack, strips)
//! living in the per-worker `QueryScratch`.
//!
//! This file is its own test binary with a single `#[test]` so the counting global
//! allocator observes only this test's traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use p2h_core::SearchParams;
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_engine::{BatchExecutor, BatchRequest, Partitioner, ShardIndexKind, ShardedIndexBuilder};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_sharded_execution_allocates_only_result_lists() {
    const SHARDS: u64 = 4;
    let points = SyntheticDataset::new(
        "sharded-alloc-test",
        6_000,
        24,
        DataDistribution::GaussianClusters { clusters: 8, std_dev: 1.5 },
        42,
    )
    .generate()
    .unwrap();
    let sharded = ShardedIndexBuilder::new(
        Partitioner::Hash { shards: SHARDS as usize },
        ShardIndexKind::BallTree { leaf_size: 64 },
    )
    .build(&points)
    .unwrap();
    let base = generate_queries(&points, 64, QueryDistribution::DataDifference, 7).unwrap();
    let queries: Vec<_> = (0..512).map(|i| base[i % base.len()].clone()).collect();
    let n = queries.len() as u64;
    let k = 10;
    let request = BatchRequest::new(queries, SearchParams::exact(k));

    // Warm-up run: first-touch growth of collector heaps and traversal stacks.
    let executor = BatchExecutor::new(1);
    let warmup = executor.execute(&sharded, &request);
    assert_eq!(warmup.results.len(), n as usize);

    // Measured run. Per query: one k-element list per shard (`take_sorted` inside the
    // shard search), one shard-list spine, and the flattened merge vector — a fixed
    // `SHARDS + 2` budget, zero dependence on data size or query count beyond that.
    let before = allocations();
    let response = executor.execute(&sharded, &request);
    let during = allocations() - before;
    assert_eq!(response.results.len(), n as usize);
    assert!(response.results.iter().all(|r| r.neighbors.len() == k));

    let per_query_budget = SHARDS + 2;
    let per_batch_overhead = 64;
    assert!(
        during <= n * per_query_budget + per_batch_overhead,
        "expected ≤ {per_query_budget} allocations per query (per-shard lists + merge) \
         plus constant batch overhead, observed {during} allocations for {n} queries"
    );
    // Sanity: the counter is wired up (at minimum every query allocated its lists).
    assert!(during >= n, "counting allocator should observe the result vectors");
}
