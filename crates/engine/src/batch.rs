//! Batch request/response types and the latency histogram.

use p2h_core::{HyperplaneQuery, Scalar, SearchParams, SearchResult, SearchStats};

/// A batch of hyperplane queries with a shared default [`SearchParams`] and optional
/// per-query overrides.
///
/// Overrides let one batch mix workloads — e.g. most queries exact, a few with a tight
/// candidate budget — without splitting it into multiple round trips.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// The queries, in the order results will be returned.
    pub queries: Vec<HyperplaneQuery>,
    /// Parameters applied to every query without an override.
    pub default_params: SearchParams,
    /// Sparse per-query parameter overrides, keyed by query position.
    pub overrides: Vec<(usize, SearchParams)>,
}

impl BatchRequest {
    /// Creates a batch applying `default_params` to every query.
    pub fn new(queries: Vec<HyperplaneQuery>, default_params: SearchParams) -> Self {
        Self { queries, default_params, overrides: Vec::new() }
    }

    /// Overrides the parameters of the query at `position` (builder style). The last
    /// override for a position wins.
    #[must_use]
    pub fn with_override(mut self, position: usize, params: SearchParams) -> Self {
        self.overrides.push((position, params));
        self
    }

    /// The parameters in effect for the query at `position`.
    pub fn params_for(&self, position: usize) -> &SearchParams {
        self.overrides
            .iter()
            .rev()
            .find(|(p, _)| *p == position)
            .map_or(&self.default_params, |(_, params)| params)
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch contains no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// The answer to a [`BatchRequest`].
#[derive(Debug, Clone)]
pub struct BatchResponse {
    /// Per-query results, in request order. Identical to what sequential execution
    /// would return, regardless of how many threads served the batch.
    pub results: Vec<SearchResult>,
    /// Per-query wall-clock latency in nanoseconds, in request order (the raw samples
    /// behind `latency`; useful when a caller needs to attribute latency to a query).
    pub latencies_ns: Vec<u64>,
    /// Component-wise sum of every query's [`SearchStats`].
    pub total_stats: SearchStats,
    /// Distribution of per-query wall-clock latencies.
    pub latency: LatencyHistogram,
    /// Wall-clock nanoseconds for the whole batch (including scheduling overhead).
    pub wall_time_ns: u64,
}

impl BatchResponse {
    /// Queries answered per second of batch wall-clock time.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_time_ns == 0 {
            return 0.0;
        }
        self.results.len() as f64 / (self.wall_time_ns as f64 / 1.0e9)
    }
}

/// An exact latency distribution over one batch: stores the sorted per-query latencies
/// and answers arbitrary quantiles.
///
/// Batch sizes in this workspace are at most tens of thousands of queries, so storing
/// every sample exactly is cheaper and more precise than bucketing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    sorted_ns: Vec<u64>,
}

impl LatencyHistogram {
    /// Builds a histogram from raw per-query latencies (any order).
    pub fn from_latencies(mut latencies_ns: Vec<u64>) -> Self {
        latencies_ns.sort_unstable();
        Self { sorted_ns: latencies_ns }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.sorted_ns.len()
    }

    /// The `q`-quantile latency in nanoseconds (`q` in `[0, 1]`, nearest-rank method),
    /// or 0 if no samples were recorded.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.sorted_ns.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.sorted_ns.len() as f64).ceil() as usize).max(1);
        self.sorted_ns[rank - 1]
    }

    /// Median latency (ns).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile latency (ns).
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile latency (ns).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Maximum latency (ns), or 0 with no samples.
    pub fn max_ns(&self) -> u64 {
        self.sorted_ns.last().copied().unwrap_or(0)
    }

    /// Mean latency (ns), or 0 with no samples.
    pub fn mean_ns(&self) -> f64 {
        if self.sorted_ns.is_empty() {
            return 0.0;
        }
        self.sorted_ns.iter().map(|&ns| ns as f64).sum::<f64>() / self.sorted_ns.len() as f64
    }

    /// A compact one-line summary in milliseconds, for logs and benchmark output.
    pub fn summary_ms(&self) -> String {
        let to_ms = |ns: u64| ns as Scalar / 1.0e6;
        format!(
            "p50={:.3}ms p95={:.3}ms p99={:.3}ms max={:.3}ms (n={})",
            to_ms(self.p50_ns()),
            to_ms(self.p95_ns()),
            to_ms(self.p99_ns()),
            to_ms(self.max_ns()),
            self.count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::HyperplaneQuery;

    fn query() -> HyperplaneQuery {
        HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0], -0.5).unwrap()
    }

    #[test]
    fn overrides_apply_per_position() {
        let request = BatchRequest::new(vec![query(), query(), query()], SearchParams::exact(5))
            .with_override(1, SearchParams::approximate(5, 100))
            .with_override(1, SearchParams::approximate(5, 200));
        assert_eq!(request.len(), 3);
        assert!(!request.is_empty());
        assert_eq!(request.params_for(0).candidate_limit, None);
        // Last override wins.
        assert_eq!(request.params_for(1).candidate_limit, Some(200));
        assert_eq!(request.params_for(2).candidate_limit, None);
    }

    #[test]
    fn histogram_quantiles_use_nearest_rank() {
        let histogram = LatencyHistogram::from_latencies((1..=100).rev().collect());
        assert_eq!(histogram.count(), 100);
        assert_eq!(histogram.p50_ns(), 50);
        assert_eq!(histogram.p95_ns(), 95);
        assert_eq!(histogram.p99_ns(), 99);
        assert_eq!(histogram.max_ns(), 100);
        assert_eq!(histogram.quantile_ns(0.0), 1);
        assert_eq!(histogram.quantile_ns(1.0), 100);
        assert!((histogram.mean_ns() - 50.5).abs() < 1e-9);
        assert!(histogram.summary_ms().contains("n=100"));
    }

    #[test]
    fn empty_histogram_is_safe() {
        let histogram = LatencyHistogram::default();
        assert_eq!(histogram.count(), 0);
        assert_eq!(histogram.p99_ns(), 0);
        assert_eq!(histogram.max_ns(), 0);
        assert_eq!(histogram.mean_ns(), 0.0);
    }
}
