//! Batch request/response types and the latency histogram.

use p2h_core::{HyperplaneQuery, Scalar, SearchParams, SearchResult, SearchStats};
use p2h_obs::StreamingHistogram;

/// A batch of hyperplane queries with a shared default [`SearchParams`] and optional
/// per-query overrides.
///
/// Overrides let one batch mix workloads — e.g. most queries exact, a few with a tight
/// candidate budget — without splitting it into multiple round trips.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// The queries, in the order results will be returned.
    pub queries: Vec<HyperplaneQuery>,
    /// Parameters applied to every query without an override.
    pub default_params: SearchParams,
    /// Sparse per-query parameter overrides, keyed by query position.
    pub overrides: Vec<(usize, SearchParams)>,
}

impl BatchRequest {
    /// Creates a batch applying `default_params` to every query.
    pub fn new(queries: Vec<HyperplaneQuery>, default_params: SearchParams) -> Self {
        Self { queries, default_params, overrides: Vec::new() }
    }

    /// Overrides the parameters of the query at `position` (builder style). The last
    /// override for a position wins.
    #[must_use]
    pub fn with_override(mut self, position: usize, params: SearchParams) -> Self {
        self.overrides.push((position, params));
        self
    }

    /// The parameters in effect for the query at `position`.
    pub fn params_for(&self, position: usize) -> &SearchParams {
        self.overrides
            .iter()
            .rev()
            .find(|(p, _)| *p == position)
            .map_or(&self.default_params, |(_, params)| params)
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch contains no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// The answer to a [`BatchRequest`].
#[derive(Debug, Clone)]
pub struct BatchResponse {
    /// Per-query results, in request order. Identical to what sequential execution
    /// would return, regardless of how many threads served the batch.
    pub results: Vec<SearchResult>,
    /// Per-query wall-clock latency in nanoseconds, in request order (the raw samples
    /// behind `latency`; useful when a caller needs to attribute latency to a query).
    pub latencies_ns: Vec<u64>,
    /// Component-wise sum of every query's [`SearchStats`].
    pub total_stats: SearchStats,
    /// Distribution of per-query wall-clock latencies.
    pub latency: LatencyHistogram,
    /// Wall-clock nanoseconds for the whole batch (including scheduling overhead).
    pub wall_time_ns: u64,
}

impl BatchResponse {
    /// Queries answered per second of batch wall-clock time.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_time_ns == 0 {
            return 0.0;
        }
        self.results.len() as f64 / (self.wall_time_ns as f64 / 1.0e9)
    }
}

/// A latency distribution over the workspace's shared log-bucket layout (see
/// [`p2h_obs::hist`]): constant-size, streaming (record as samples arrive, no sort, no
/// clone of the latency vector), and mergeable — per-batch histograms accumulate into
/// the process-wide [`p2h_obs`] registry without changing any reported quantile.
///
/// Quantiles use the nearest-rank method over the buckets and report the bucket's
/// upper bound (exact max for the overflow bucket), so p50/p95/p99 overestimate the
/// true sample by at most 2x — the standard log-bucket contract. The exact per-query
/// samples remain available as `BatchResponse::latencies_ns` for callers that need
/// per-query attribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    hist: StreamingHistogram,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one per-query latency sample.
    #[inline]
    pub fn record(&mut self, latency_ns: u64) {
        self.hist.record(latency_ns);
    }

    /// Adds every sample of `other` (bucket-wise; identical to having recorded them
    /// here).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.hist.merge(&other.hist);
    }

    /// Builds a histogram from raw per-query latencies (any order).
    pub fn from_latencies(latencies_ns: impl IntoIterator<Item = u64>) -> Self {
        Self { hist: StreamingHistogram::from_samples(latencies_ns) }
    }

    /// The underlying bucketed histogram (e.g. to publish into a metrics registry via
    /// [`p2h_obs::Histogram::merge_from`]).
    pub fn histogram(&self) -> &StreamingHistogram {
        &self.hist
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.hist.count() as usize
    }

    /// The `q`-quantile latency in nanoseconds (`q` in `[0, 1]`, nearest-rank method
    /// over the log buckets), or 0 if no samples were recorded.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        self.hist.quantile(q)
    }

    /// Median latency (ns).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile latency (ns).
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile latency (ns).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Maximum latency (ns, exact), or 0 with no samples.
    pub fn max_ns(&self) -> u64 {
        self.hist.max_value()
    }

    /// Mean latency (ns, exact — count and sum are tracked exactly), or 0 with no
    /// samples.
    pub fn mean_ns(&self) -> f64 {
        self.hist.mean()
    }

    /// A compact one-line summary in milliseconds, for logs and benchmark output.
    pub fn summary_ms(&self) -> String {
        let to_ms = |ns: u64| ns as Scalar / 1.0e6;
        format!(
            "p50={:.3}ms p95={:.3}ms p99={:.3}ms max={:.3}ms (n={})",
            to_ms(self.p50_ns()),
            to_ms(self.p95_ns()),
            to_ms(self.p99_ns()),
            to_ms(self.max_ns()),
            self.count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::HyperplaneQuery;

    fn query() -> HyperplaneQuery {
        HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0], -0.5).unwrap()
    }

    #[test]
    fn overrides_apply_per_position() {
        let request = BatchRequest::new(vec![query(), query(), query()], SearchParams::exact(5))
            .with_override(1, SearchParams::approximate(5, 100))
            .with_override(1, SearchParams::approximate(5, 200));
        assert_eq!(request.len(), 3);
        assert!(!request.is_empty());
        assert_eq!(request.params_for(0).candidate_limit, None);
        // Last override wins.
        assert_eq!(request.params_for(1).candidate_limit, Some(200));
        assert_eq!(request.params_for(2).candidate_limit, None);
    }

    #[test]
    fn histogram_quantiles_use_nearest_rank_bucket_bounds() {
        let histogram = LatencyHistogram::from_latencies((1..=100).rev());
        assert_eq!(histogram.count(), 100);
        // Nearest-rank over the log buckets: the rank-50 sample (value 50) lives in
        // the [32, 63] bucket, ranks 95/99 in [64, 127].
        assert_eq!(histogram.p50_ns(), 63);
        assert_eq!(histogram.p95_ns(), 127);
        assert_eq!(histogram.p99_ns(), 127);
        // Max and mean stay exact.
        assert_eq!(histogram.max_ns(), 100);
        assert_eq!(histogram.quantile_ns(0.0), 1);
        assert!((histogram.mean_ns() - 50.5).abs() < 1e-9);
        assert!(histogram.summary_ms().contains("n=100"));
    }

    #[test]
    fn histogram_streams_and_merges_like_batch_construction() {
        let mut streamed = LatencyHistogram::new();
        for ns in 1..=100u64 {
            streamed.record(ns);
        }
        assert_eq!(streamed, LatencyHistogram::from_latencies(1..=100));

        let mut merged = LatencyHistogram::from_latencies(1..=50);
        merged.merge(&LatencyHistogram::from_latencies(51..=100));
        assert_eq!(merged, streamed);
        assert_eq!(merged.histogram().count(), 100);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let histogram = LatencyHistogram::default();
        assert_eq!(histogram.count(), 0);
        assert_eq!(histogram.p99_ns(), 0);
        assert_eq!(histogram.max_ns(), 0);
        assert_eq!(histogram.mean_ns(), 0.0);
    }
}
