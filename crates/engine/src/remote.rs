//! Router-backed serving: the distributed counterpart of [`Engine::serve_sharded`].
//!
//! [`Engine::serve_remote`] pushes a [`BatchRequest`] through a [`p2h_net::Router`]
//! instead of a local index: per-position overrides are resolved into effective
//! parameters client-side (the wire carries no override table), queries travel
//! bit-exactly, and the router's merge is the same deterministic `merge_topk` the
//! local fan-out uses — so the merged answers are **bit-identical** to
//! [`Engine::serve`] against the same index served locally. The engine-side
//! trimmings are identical too: request validation up front, per-index metrics into
//! the process-wide registry, and `P2H_TRACE` sampling (spans are tagged with path
//! `"remote"`).

use std::time::Instant;

use p2h_core::SearchParams;
use p2h_net::{NetError, NetResult, Router};

use crate::batch::{BatchRequest, BatchResponse, LatencyHistogram};
use crate::serve::{plan_trace, write_traces, Engine};

/// A batch served through a [`Router`], plus the explicit degraded-mode record.
#[derive(Debug, Clone)]
pub struct RemoteBatchResponse {
    /// The merged per-query results and batch telemetry, shaped exactly like a
    /// locally served batch. Per-query latency is the batch's network wall time
    /// (the fan-out answers a batch as a unit, so per-query attribution does not
    /// exist on this path).
    pub batch: BatchResponse,
    /// Shards that did not contribute. Non-empty only when the router was built
    /// with `allow_partial` — degradation is opt-in and always explicit.
    pub missing_shards: Vec<usize>,
}

impl RemoteBatchResponse {
    /// Whether every shard contributed to every answer.
    pub fn is_complete(&self) -> bool {
        self.missing_shards.is_empty()
    }
}

impl Engine {
    /// Serves a batch through `router` against a remotely sharded deployment.
    /// `label` names the served entry in metrics and traces (the role
    /// `index_name` plays on the local paths).
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidRequest`] for client-side validation failures (mixed
    /// query dimensions, out-of-range overrides), any other [`NetError`] for
    /// routing failures. An unreachable shard is an error unless the router opted
    /// into partial responses, in which case it lands in
    /// [`RemoteBatchResponse::missing_shards`] instead.
    pub fn serve_remote(
        &self,
        label: &str,
        router: &Router,
        request: &BatchRequest,
    ) -> NetResult<RemoteBatchResponse> {
        validate_remote_request(request)?;
        let start = Instant::now();
        let trace = plan_trace(request);
        let effective: &BatchRequest = match &trace {
            Some(plan) => &plan.request,
            None => request,
        };
        // Resolve overrides into flat per-query params — the server never sees the
        // override table, so "last override wins" is decided here, identically to
        // the local paths.
        let params: Vec<SearchParams> =
            (0..effective.queries.len()).map(|i| effective.params_for(i).clone()).collect();
        let routed = router.route(&effective.queries, &params)?;

        let wall_time_ns = start.elapsed().as_nanos() as u64;
        let mut latency = LatencyHistogram::new();
        let mut total_stats = p2h_core::SearchStats::default();
        let latencies_ns: Vec<u64> = routed
            .results
            .iter()
            .map(|result| {
                total_stats.merge(&result.stats);
                latency.record(wall_time_ns);
                wall_time_ns
            })
            .collect();
        let batch = BatchResponse {
            results: routed.results,
            latencies_ns,
            total_stats,
            latency,
            wall_time_ns,
        };
        self.metrics.record_batch(label, &batch);
        if let Some(plan) = &trace {
            write_traces(plan, label, "remote", &batch.results, &batch.latencies_ns);
        }
        Ok(RemoteBatchResponse { batch, missing_shards: routed.missing_shards })
    }
}

/// Client-side validation: the index's dimension lives on the servers, but mixed
/// query dimensions and out-of-range overrides are detectable (and typed) before
/// any bytes hit the wire.
fn validate_remote_request(request: &BatchRequest) -> NetResult<()> {
    if let Some(first) = request.queries.first() {
        let dim = first.dim();
        for (position, query) in request.queries.iter().enumerate() {
            if query.dim() != dim {
                return Err(NetError::InvalidRequest {
                    message: format!(
                        "query {position} has dimension {}, query 0 has {dim}",
                        query.dim()
                    ),
                });
            }
        }
    }
    for &(position, _) in &request.overrides {
        if position >= request.queries.len() {
            return Err(NetError::InvalidRequest {
                message: format!(
                    "override targets position {position} but the batch has {} queries",
                    request.queries.len()
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use p2h_core::{HyperplaneQuery, PointSet, Scalar, SearchParams};
    use p2h_net::{ReplicaSet, RouterConfig, ShardServer};
    use p2h_shard::{Partitioner, ShardIndexKind, ShardedIndexBuilder};

    fn setup() -> (Arc<p2h_shard::ShardedIndex>, Vec<HyperplaneQuery>) {
        let rows: Vec<Vec<Scalar>> = (0..300)
            .map(|i| vec![(i % 23) as Scalar * 0.7 - 8.0, (i % 11) as Scalar * 0.5])
            .collect();
        let points = PointSet::augment(&rows).unwrap();
        let index =
            ShardedIndexBuilder::new(Partitioner::Hash { shards: 3 }, ShardIndexKind::LinearScan)
                .build(&points)
                .unwrap();
        let queries = (0..12)
            .map(|i| {
                HyperplaneQuery::from_normal_and_bias(
                    &[1.0, (i as Scalar * 0.37).sin()],
                    -(i as Scalar * 0.3) + 1.0,
                )
                .unwrap()
            })
            .collect();
        (Arc::new(index), queries)
    }

    /// `serve_remote` over real sockets is bit-identical to `serve` against the
    /// same index registered locally — including per-position overrides.
    #[test]
    fn remote_serving_matches_local_serving_bit_for_bit() {
        let (index, queries) = setup();
        let engine = Engine::new(2);
        engine.registry().register_shared("local", Arc::clone(&index) as _);

        let server = ShardServer::new(Arc::clone(&index)).serve("127.0.0.1:0").unwrap();
        let replicas: Vec<ReplicaSet> =
            (0..3).map(|_| ReplicaSet::new([server.addr().to_string()])).collect();
        // Generous budgets: the defaults (2s deadline) can flake on a loaded
        // single-CPU CI box.
        let mut config = RouterConfig::new("remote-test", replicas);
        config.deadline = std::time::Duration::from_secs(30);
        config.connect_timeout = std::time::Duration::from_secs(5);
        config.max_retries = 6;
        let router = Router::new(config).unwrap();

        let request = BatchRequest::new(queries, SearchParams::exact(7))
            .with_override(1, SearchParams::approximate(4, 80))
            .with_override(5, SearchParams::exact(2));
        let local = engine.serve("local", &request).unwrap();
        let remote = engine.serve_remote("remote-test", &router, &request).unwrap();

        assert!(remote.is_complete());
        assert_eq!(remote.batch.results.len(), local.results.len());
        for (position, (r, l)) in remote.batch.results.iter().zip(&local.results).enumerate() {
            assert_eq!(r.neighbors.len(), l.neighbors.len(), "query {position}");
            for (rank, (rn, ln)) in r.neighbors.iter().zip(&l.neighbors).enumerate() {
                assert_eq!(
                    (rn.index, rn.distance.to_bits()),
                    (ln.index, ln.distance.to_bits()),
                    "query {position} rank {rank}"
                );
            }
        }
        server.shutdown();
    }

    #[test]
    fn remote_validation_is_client_side_and_typed() {
        let (_, queries) = setup();
        let engine = Engine::new(1);
        let replicas = vec![ReplicaSet::new(["127.0.0.1:1"])];
        let router = Router::new(RouterConfig::new("unused", replicas)).unwrap();

        let request = BatchRequest::new(queries, SearchParams::exact(3))
            .with_override(99, SearchParams::exact(1));
        match engine.serve_remote("unused", &router, &request) {
            Err(NetError::InvalidRequest { message }) => {
                assert!(message.contains("position 99"), "{message}");
            }
            other => panic!("expected InvalidRequest, got {other:?}"),
        }
    }
}
