//! # p2h-engine
//!
//! A thread-safe batch-query serving layer over the P2HNNS indexes.
//!
//! The index crates answer one query on one core. This crate adds the serving-side
//! machinery needed to drive them at hardware speed:
//!
//! * [`IndexRegistry`] — a concurrent, name-keyed registry of [`SharedIndex`]es
//!   (`Arc<dyn P2hIndex>`), so many threads can serve queries against the same
//!   immutable index without copying it;
//! * [`BatchRequest`] / [`BatchResponse`] — a batch API with a default
//!   [`SearchParams`] plus optional per-query overrides, returning per-query results
//!   in request order together with aggregated [`SearchStats`] and a
//!   [`LatencyHistogram`] (p50/p95/p99);
//! * [`BatchExecutor`] — a scoped-thread work-stealing executor whose results are
//!   **bit-identical** to sequential execution regardless of thread count (queries are
//!   independent and results are reassembled in request order);
//! * [`Engine`] — the registry and an executor behind one façade: look an index up by
//!   name, validate the request, execute the batch.
//!
//! Index *construction* is parallelized in the index crates themselves: see
//! `BallTreeBuilder::build_parallel` and `BcTreeBuilder::build_parallel` (behind the
//! `parallel` feature, which this crate enables).
//!
//! ## Example
//!
//! ```
//! use p2h_engine::{BatchRequest, Engine};
//! use p2h_core::{HyperplaneQuery, LinearScan, PointSet, SearchParams};
//!
//! let points = PointSet::augment(&[
//!     vec![0.0, 0.0],
//!     vec![1.0, 1.0],
//!     vec![4.0, 0.5],
//! ]).unwrap();
//!
//! let engine = Engine::new(2);
//! engine.registry().register("scan", LinearScan::new(points));
//!
//! let queries = vec![
//!     HyperplaneQuery::from_normal_and_bias(&[1.0, 1.0], -1.8).unwrap(),
//!     HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0], -3.0).unwrap(),
//! ];
//! let request = BatchRequest::new(queries, SearchParams::exact(1));
//! let response = engine.serve("scan", &request).unwrap();
//! assert_eq!(response.results.len(), 2);
//! assert_eq!(response.results[0].neighbors[0].index, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod batch;
mod executor;
mod metrics;
mod registry;
mod remote;
mod serve;
mod sharded;

pub use batch::{BatchRequest, BatchResponse, LatencyHistogram};
pub use executor::BatchExecutor;
pub use registry::{IndexRegistry, SharedIndex};
pub use remote::RemoteBatchResponse;
pub use serve::{Engine, FrontPath};
pub use sharded::{ShardedBatchResponse, ShardedExecutor};

// Re-exported so engine users can build indexes in parallel without naming the tree
// crates and their `parallel` feature explicitly.
pub use p2h_balltree::{BallTree, BallTreeBuilder};
pub use p2h_bctree::{BcTree, BcTreeBuilder};
// Re-exported so sharded serving (`Engine::serve_sharded`, shard-group cold starts)
// needs no direct `p2h-shard` dependency at call sites.
pub use p2h_shard::{Partitioner, ShardIndexKind, ShardedIndex, ShardedIndexBuilder};
// Re-exported so cold-start users (`Engine::from_store`) can create and populate the
// snapshot store without adding `p2h-store` as a direct dependency.
pub use p2h_store::{LoadMode, Snapshot, Store, StoreError};
// Re-exported so online-update users (`Engine::serve_live`, `register_live`,
// background compaction policies) need no direct `p2h-live` dependency at call sites.
pub use p2h_live::{
    CompactionPolicy, CompactionReport, CompactionTrigger, Compactor, LiveError, LiveIndex,
    LiveResult,
};
// Re-exported so distributed serving (`Engine::serve_remote`) needs no direct
// `p2h-net` dependency at call sites.
pub use p2h_net::{
    HedgeConfig, NetError, ReplicaSet, RoutedResponse, Router, RouterConfig, ShardServer,
};
// Re-exported so serving operators can reach the process-wide metrics registry
// (`Engine::render_metrics` / `metrics_snapshot` cover the common cases) and the
// streaming histogram type behind `LatencyHistogram`.
pub use p2h_obs::{MetricsRegistry, MetricsSnapshot, StreamingHistogram};
