//! Shard-parallel batch execution: fan every query of a batch out across the shards of
//! a [`ShardedIndex`], with per-shard latency and work statistics.
//!
//! The ordinary [`crate::BatchExecutor`] parallelizes over *queries* (a
//! `ShardedIndex` is searched shard-by-shard inside one worker), which maximizes batch
//! throughput. The [`ShardedExecutor`] parallelizes over *(shard, query)* sub-searches
//! instead: several workers cooperate on each query's fan-out, which cuts single-query
//! latency when the batch is small relative to the core count — the serving regime the
//! ROADMAP's async front-end targets. Merged results are **bit-identical** to
//! [`p2h_core::P2hIndex::search`] on the same `ShardedIndex` (and therefore, for exact
//! search, to an unsharded index): the merge uses the total `Neighbor` order, so the
//! interleaving of sub-searches cannot influence any answer.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use p2h_core::{QueryScratch, SearchResult, SearchStats};
use p2h_shard::{merge_topk, ShardedIndex};

use crate::batch::{BatchRequest, LatencyHistogram};

/// Largest number of sub-searches a worker claims per cursor bump (mirrors the batch
/// executor's chunking rationale).
const MAX_CHUNK: usize = 32;

fn chunk_size(tasks: usize, workers: usize) -> usize {
    (tasks / (workers * 8)).clamp(1, MAX_CHUNK)
}

/// Executes query batches against a [`ShardedIndex`] with shard-level parallelism and
/// per-shard observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedExecutor {
    threads: usize,
}

impl Default for ShardedExecutor {
    fn default() -> Self {
        Self::new(0)
    }
}

impl ShardedExecutor {
    /// Creates an executor with the given worker-thread count; `0` means one worker
    /// per available CPU.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(4, |p| p.get())
        } else {
            threads
        };
        Self { threads }
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Fans every query of `request` across every shard of `index`, merging the
    /// per-shard top-k lists deterministically.
    ///
    /// The caller is responsible for dimension validation (see
    /// `Engine::serve_sharded`); a query whose dimension does not match the index
    /// panics, exactly as `P2hIndex::search` does.
    pub fn execute(&self, index: &ShardedIndex, request: &BatchRequest) -> ShardedBatchResponse {
        let start = Instant::now();
        let n_queries = request.queries.len();
        let n_shards = index.shard_count();
        let tasks = n_queries * n_shards;
        let workers = self.threads.min(tasks).max(1);

        // One slot per (shard, query) sub-search: the shard's globally-mapped top-k
        // list (None when the shard was skipped by the budget split) and its latency.
        type SubSearch = (Option<SearchResult>, u64);
        let mut slots: Vec<Option<SubSearch>> = (0..tasks).map(|_| None).collect();

        let run_task = |task: usize, scratch: &mut QueryScratch| {
            let shard = task / n_queries.max(1);
            let query = task % n_queries.max(1);
            let sub_start = Instant::now();
            let result = index.search_shard(
                shard,
                &request.queries[query],
                request.params_for(query),
                scratch,
            );
            (result, sub_start.elapsed().as_nanos() as u64)
        };

        if workers <= 1 {
            let mut scratch = QueryScratch::new();
            for (task, slot) in slots.iter_mut().enumerate() {
                *slot = Some(run_task(task, &mut scratch));
            }
        } else {
            let chunk = chunk_size(tasks, workers);
            let cursor = AtomicUsize::new(0);
            let per_worker: Vec<Vec<(usize, SubSearch)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut scratch = QueryScratch::new();
                            let mut local = Vec::with_capacity(tasks / workers + chunk);
                            loop {
                                let begin = cursor.fetch_add(chunk, Ordering::Relaxed);
                                if begin >= tasks {
                                    return local;
                                }
                                for task in begin..(begin + chunk).min(tasks) {
                                    local.push((task, run_task(task, &mut scratch)));
                                }
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sharded worker thread panicked"))
                    .collect()
            });
            for worker in per_worker {
                for (task, outcome) in worker {
                    slots[task] = Some(outcome);
                }
            }
        }

        // Reassemble: merge each query's shard lists, aggregate per-shard telemetry.
        // Latencies stream straight into the (constant-size) histograms — no latency
        // vector is cloned or sorted.
        let mut results = Vec::with_capacity(n_queries);
        let mut latencies_ns = Vec::with_capacity(n_queries);
        let mut latency = LatencyHistogram::new();
        let mut total_stats = SearchStats::default();
        let mut per_shard_stats = vec![SearchStats::default(); n_shards];
        let mut per_shard_latency = vec![LatencyHistogram::new(); n_shards];
        for query in 0..n_queries {
            let mut lists = Vec::with_capacity(n_shards);
            let mut stats = SearchStats::default();
            let mut latency_ns = 0u64;
            for shard in 0..n_shards {
                let slot = slots[shard * n_queries + query]
                    .take()
                    .expect("every sub-search was dispatched");
                let (outcome, sub_latency) = slot;
                latency_ns += sub_latency;
                if let Some(sub) = outcome {
                    stats.merge(&sub.stats);
                    per_shard_stats[shard].merge(&sub.stats);
                    per_shard_latency[shard].record(sub_latency);
                    lists.push(sub.neighbors);
                }
            }
            let merge_start = Instant::now();
            let neighbors = merge_topk(request.params_for(query).k, lists);
            stats.time_merge_ns = merge_start.elapsed().as_nanos() as u64;
            // Report the measured fan-out latency rather than the sum of the shards'
            // self-reported totals (same quantity, one clock); the merge happens after
            // the fan-out, so it adds on top.
            stats.time_total_ns = latency_ns + stats.time_merge_ns;
            total_stats.merge(&stats);
            latency.record(latency_ns);
            latencies_ns.push(latency_ns);
            results.push(SearchResult { neighbors, stats });
        }

        ShardedBatchResponse {
            results,
            latency,
            latencies_ns,
            total_stats,
            per_shard_stats,
            per_shard_latency,
            wall_time_ns: start.elapsed().as_nanos() as u64,
        }
    }
}

/// The answer to a batch served against a [`ShardedIndex`] with per-shard telemetry.
#[derive(Debug, Clone)]
pub struct ShardedBatchResponse {
    /// Per-query merged results, in request order — bit-identical to searching the
    /// `ShardedIndex` through `P2hIndex::search`, regardless of thread count.
    pub results: Vec<SearchResult>,
    /// Per-query fan-out latency in nanoseconds (sum of the query's per-shard
    /// sub-search latencies), in request order.
    pub latencies_ns: Vec<u64>,
    /// Distribution of the per-query fan-out latencies.
    pub latency: LatencyHistogram,
    /// Component-wise sum of every sub-search's stats.
    pub total_stats: SearchStats,
    /// Per-shard latency distributions over the sub-searches the shard actually ran
    /// (budget-skipped shards record nothing) — the shard-imbalance signal a serving
    /// operator watches.
    pub per_shard_latency: Vec<LatencyHistogram>,
    /// Per-shard work counters, same indexing as `per_shard_latency`.
    pub per_shard_stats: Vec<SearchStats>,
    /// Wall-clock nanoseconds for the whole batch (including merge overhead).
    pub wall_time_ns: u64,
}

impl ShardedBatchResponse {
    /// Queries answered per second of batch wall-clock time.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_time_ns == 0 {
            return 0.0;
        }
        self.results.len() as f64 / (self.wall_time_ns as f64 / 1.0e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::{HyperplaneQuery, P2hIndex, PointSet, Scalar, SearchParams};
    use p2h_shard::{Partitioner, ShardIndexKind, ShardedIndexBuilder};

    fn setup(n: usize, shards: usize) -> (ShardedIndex, Vec<HyperplaneQuery>) {
        let rows: Vec<Vec<Scalar>> = (0..n)
            .map(|i| vec![(i % 29) as Scalar * 0.9 - 12.0, (i % 13) as Scalar * 0.4])
            .collect();
        let points = PointSet::augment(&rows).unwrap();
        let sharded = ShardedIndexBuilder::new(
            Partitioner::Hash { shards },
            ShardIndexKind::BallTree { leaf_size: 16 },
        )
        .build(&points)
        .unwrap();
        let queries = (0..20)
            .map(|i| {
                HyperplaneQuery::from_normal_and_bias(
                    &[1.0, (i as Scalar * 0.43).cos()],
                    -(i as Scalar * 0.7) + 2.0,
                )
                .unwrap()
            })
            .collect();
        (sharded, queries)
    }

    #[test]
    fn shard_parallel_results_match_the_trait_path_bit_for_bit() {
        let (index, queries) = setup(700, 4);
        let request = BatchRequest::new(queries, SearchParams::exact(6))
            .with_override(2, SearchParams::approximate(6, 100))
            .with_override(9, SearchParams::exact(1));
        let mut scratch = QueryScratch::new();
        let reference: Vec<SearchResult> = request
            .queries
            .iter()
            .enumerate()
            .map(|(i, q)| index.search_with_scratch(q, request.params_for(i), &mut scratch))
            .collect();
        for threads in [1, 2, 4, 8] {
            let response = ShardedExecutor::new(threads).execute(&index, &request);
            assert_eq!(response.results.len(), reference.len());
            for (got, expected) in response.results.iter().zip(&reference) {
                assert_eq!(got.neighbors, expected.neighbors, "threads={threads}");
            }
        }
    }

    #[test]
    fn per_shard_telemetry_covers_every_sub_search() {
        let (index, queries) = setup(600, 3);
        let n_queries = queries.len();
        let request = BatchRequest::new(queries, SearchParams::exact(4));
        let response = ShardedExecutor::new(2).execute(&index, &request);
        assert_eq!(response.per_shard_latency.len(), 3);
        assert_eq!(response.per_shard_stats.len(), 3);
        for shard in 0..3 {
            // Exact search skips no shard: every query touched every shard.
            assert_eq!(response.per_shard_latency[shard].count(), n_queries);
            assert!(response.per_shard_stats[shard].candidates_verified > 0);
        }
        assert_eq!(response.latency.count(), n_queries);
        assert!(response.throughput_qps() > 0.0);
        // The shard stats partition the total work.
        let shard_sum: u64 = response.per_shard_stats.iter().map(|s| s.candidates_verified).sum();
        assert_eq!(shard_sum, response.total_stats.candidates_verified);
        // Merge time is measured per query (not by the shards) and aggregates.
        let merge_sum: u64 = response.results.iter().map(|r| r.stats.time_merge_ns).sum();
        assert_eq!(response.total_stats.time_merge_ns, merge_sum);
        for (result, &latency_ns) in response.results.iter().zip(&response.latencies_ns) {
            assert_eq!(result.stats.time_total_ns, latency_ns + result.stats.time_merge_ns);
        }
    }

    #[test]
    fn budget_skipped_shards_record_no_latency_samples() {
        let (index, queries) = setup(500, 4);
        let n_queries = queries.len();
        // A budget of 1 reaches only the shard holding global id 0.
        let request = BatchRequest::new(queries, SearchParams::approximate(1, 1));
        let response = ShardedExecutor::new(2).execute(&index, &request);
        let sampled: usize = response.per_shard_latency.iter().map(|h| h.count()).sum();
        assert_eq!(sampled, n_queries, "only one shard may run per query");
        assert_eq!(response.total_stats.candidates_verified, n_queries as u64);
    }

    #[test]
    fn empty_batch_is_safe() {
        let (index, _) = setup(100, 2);
        let request = BatchRequest::new(Vec::new(), SearchParams::exact(1));
        let response = ShardedExecutor::new(4).execute(&index, &request);
        assert!(response.results.is_empty());
        assert_eq!(response.latency.count(), 0);
        assert_eq!(response.throughput_qps(), 0.0);
    }
}
