//! The scoped-thread batch executor.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use p2h_core::{P2hIndex, QueryScratch, SearchResult, SearchStats};

use crate::batch::{BatchRequest, BatchResponse, LatencyHistogram};

/// Largest number of queries a worker claims per cursor bump.
const MAX_CHUNK: usize = 32;

/// Chunk size for dynamic work handout: large enough to amortize the shared-cursor
/// traffic when per-query cost is tiny, small enough (at most [`MAX_CHUNK`], at most
/// ~an eighth of each worker's fair share) that skewed per-query costs still balance.
fn chunk_size(n: usize, workers: usize) -> usize {
    (n / (workers * 8)).clamp(1, MAX_CHUNK)
}

/// Executes query batches over worker threads with deterministic result ordering.
///
/// Work distribution is dynamic: an atomic cursor hands out *chunks* of consecutive
/// query indexes (see [`chunk_size`]) so that workers synchronize once per chunk rather
/// than once per query, which matters when a single query costs only microseconds.
/// Results are reassembled in request order and each query is answered independently, so
/// the response's `results` are bit-identical to sequential execution no matter how many
/// threads ran the batch or how the chunks interleaved — only the latency histogram and
/// wall-clock time vary.
///
/// Each worker owns one [`QueryScratch`] for its whole run and answers every query
/// through [`P2hIndex::search_with_scratch`], so the steady-state per-query path
/// performs no heap allocation beyond each query's k-element result vector (verified by
/// the `allocations` integration test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchExecutor {
    threads: usize,
}

impl Default for BatchExecutor {
    fn default() -> Self {
        Self::new(0)
    }
}

impl BatchExecutor {
    /// Creates an executor with the given worker-thread count; `0` means one worker per
    /// available CPU.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(4, |p| p.get())
        } else {
            threads
        };
        Self { threads }
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every query of `request` against `index`, in parallel.
    ///
    /// The caller is responsible for dimension validation (see `Engine::serve`); passing
    /// a query whose dimension does not match the index panics, exactly as
    /// [`P2hIndex::search`] does.
    pub fn execute(&self, index: &dyn P2hIndex, request: &BatchRequest) -> BatchResponse {
        let n = request.queries.len();
        let start = Instant::now();
        let workers = self.threads.min(n).max(1);

        let mut slots: Vec<Option<(SearchResult, u64)>> = if workers <= 1 {
            run_range(index, request, 0, n)
        } else {
            let chunk = chunk_size(n, workers);
            let cursor = AtomicUsize::new(0);
            let mut per_worker: Vec<Vec<(usize, SearchResult, u64)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            scope.spawn(|| {
                                let mut scratch = QueryScratch::new();
                                let mut local = Vec::with_capacity(n / workers + chunk);
                                loop {
                                    let begin = cursor.fetch_add(chunk, Ordering::Relaxed);
                                    if begin >= n {
                                        return local;
                                    }
                                    for i in begin..(begin + chunk).min(n) {
                                        let query_start = Instant::now();
                                        let result = index.search_with_scratch(
                                            &request.queries[i],
                                            request.params_for(i),
                                            &mut scratch,
                                        );
                                        let latency_ns = query_start.elapsed().as_nanos() as u64;
                                        local.push((i, result, latency_ns));
                                    }
                                }
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("batch worker thread panicked"))
                        .collect()
                });

            let mut slots: Vec<Option<(SearchResult, u64)>> = (0..n).map(|_| None).collect();
            for chunk in per_worker.drain(..) {
                for (i, result, latency_ns) in chunk {
                    slots[i] = Some((result, latency_ns));
                }
            }
            slots
        };

        let mut results = Vec::with_capacity(n);
        let mut latencies_ns = Vec::with_capacity(n);
        let mut latency = LatencyHistogram::new();
        let mut total_stats = SearchStats::default();
        for slot in slots.iter_mut() {
            let (result, latency_ns) = slot.take().expect("every query index was dispatched");
            total_stats.merge(&result.stats);
            latency.record(latency_ns);
            latencies_ns.push(latency_ns);
            results.push(result);
        }

        BatchResponse {
            results,
            latency,
            latencies_ns,
            total_stats,
            wall_time_ns: start.elapsed().as_nanos() as u64,
        }
    }
}

/// Sequential fallback used for one worker (avoids the scope/atomic overhead). One
/// scratch serves the whole range, same as a parallel worker.
fn run_range(
    index: &dyn P2hIndex,
    request: &BatchRequest,
    from: usize,
    to: usize,
) -> Vec<Option<(SearchResult, u64)>> {
    let mut scratch = QueryScratch::new();
    (from..to)
        .map(|i| {
            let query_start = Instant::now();
            let result =
                index.search_with_scratch(&request.queries[i], request.params_for(i), &mut scratch);
            let latency_ns = query_start.elapsed().as_nanos() as u64;
            Some((result, latency_ns))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::{HyperplaneQuery, LinearScan, PointSet, Scalar, SearchParams};

    fn setup(n: usize) -> (LinearScan, Vec<HyperplaneQuery>) {
        let rows: Vec<Vec<Scalar>> = (0..n)
            .map(|i| vec![(i % 31) as Scalar * 0.7 - 10.0, (i % 17) as Scalar * 0.3])
            .collect();
        let points = PointSet::augment(&rows).unwrap();
        let queries = (0..24)
            .map(|i| {
                HyperplaneQuery::from_normal_and_bias(
                    &[1.0, (i as Scalar * 0.37).sin()],
                    -(i as Scalar * 0.5) + 3.0,
                )
                .unwrap()
            })
            .collect();
        (LinearScan::new(points), queries)
    }

    #[test]
    fn parallel_results_match_sequential_bit_for_bit() {
        let (index, queries) = setup(800);
        let request = BatchRequest::new(queries, SearchParams::exact(7))
            .with_override(3, SearchParams::approximate(7, 50))
            .with_override(11, SearchParams::exact(2));
        let sequential = BatchExecutor::new(1).execute(&index, &request);
        for threads in [2, 4, 8] {
            let parallel = BatchExecutor::new(threads).execute(&index, &request);
            assert_eq!(parallel.results.len(), sequential.results.len());
            for (p, s) in parallel.results.iter().zip(sequential.results.iter()) {
                assert_eq!(p.neighbors, s.neighbors, "threads={threads}");
            }
        }
    }

    #[test]
    fn chunked_handout_covers_every_query_exactly_once() {
        // More queries than workers * chunk so several cursor rounds happen; the
        // reassembly would hit a `None` slot (and panic) if any index were skipped, and
        // duplicated indexes would leave another slot `None`.
        let (index, mut queries) = setup(120);
        while queries.len() < 150 {
            let q = queries[queries.len() % 24].clone();
            queries.push(q);
        }
        let n = queries.len();
        assert!(n > 4 * chunk_size(n, 4) * 2);
        let request = BatchRequest::new(queries, SearchParams::exact(3));
        let sequential = BatchExecutor::new(1).execute(&index, &request);
        let chunked = BatchExecutor::new(4).execute(&index, &request);
        assert_eq!(chunked.results.len(), n);
        assert_eq!(chunked.latency.count(), n);
        for (p, s) in chunked.results.iter().zip(sequential.results.iter()) {
            assert_eq!(p.neighbors, s.neighbors);
        }
    }

    #[test]
    fn chunk_size_is_bounded_and_positive() {
        assert_eq!(chunk_size(1, 8), 1);
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(64, 8), 1);
        assert_eq!(chunk_size(1_000, 4), 31);
        // Huge batches are capped so tail latency stays balanced.
        assert_eq!(chunk_size(1_000_000, 4), MAX_CHUNK);
        for (n, w) in [(10, 3), (100, 7), (5_000, 16), (123_456, 5)] {
            let c = chunk_size(n, w);
            assert!((1..=MAX_CHUNK).contains(&c), "chunk_size({n}, {w}) = {c}");
        }
    }

    #[test]
    fn aggregates_cover_every_query() {
        let (index, queries) = setup(300);
        let n_queries = queries.len();
        let request = BatchRequest::new(queries, SearchParams::exact(3));
        let response = BatchExecutor::new(4).execute(&index, &request);
        assert_eq!(response.results.len(), n_queries);
        assert_eq!(response.latency.count(), n_queries);
        // Linear scan verifies every point for every query.
        assert_eq!(response.total_stats.candidates_verified, (300 * n_queries) as u64);
        assert!(response.wall_time_ns > 0);
        assert!(response.throughput_qps() > 0.0);
    }

    #[test]
    fn empty_batch_is_safe() {
        let (index, _) = setup(10);
        let request = BatchRequest::new(Vec::new(), SearchParams::exact(1));
        let response = BatchExecutor::new(4).execute(&index, &request);
        assert!(response.results.is_empty());
        assert_eq!(response.latency.count(), 0);
        assert_eq!(response.throughput_qps(), 0.0);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let executor = BatchExecutor::new(0);
        assert!(executor.threads() >= 1);
    }
}
