//! A concurrent, name-keyed registry of shared indexes.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, RwLock};

use p2h_core::P2hIndex;
use p2h_live::LiveIndex;
use p2h_shard::ShardedIndex;
use p2h_store::{LoadMode, Store, StoreEntry, StoreError};

/// A reference-counted, immutable index that can be searched from any thread.
///
/// `P2hIndex` requires `Send + Sync`, so a `SharedIndex` can be handed to scoped worker
/// threads or cloned into long-lived serving tasks for free.
pub type SharedIndex = Arc<dyn P2hIndex>;

/// A thread-safe registry mapping names to [`SharedIndex`]es.
///
/// Registration replaces any previous index under the same name (last write wins) and
/// returns the shared handle, so callers can keep searching an index they registered
/// without going through the registry again. Lookups clone the `Arc`, never the index.
///
/// Sharded indexes registered through [`IndexRegistry::register_sharded`] are
/// additionally retrievable as their concrete type via
/// [`IndexRegistry::get_sharded`], which is what `Engine::serve_sharded` uses to
/// expose per-shard latency statistics; through [`IndexRegistry::get`] they serve
/// like any other index.
/// Live (mutable) indexes registered through [`IndexRegistry::register_live`] live in
/// their own map — [`LiveIndex`] is not a [`P2hIndex`] (its searches return `Result`
/// so serving paths can surface dimension errors instead of panicking) — but share
/// the name space: a name holds a plain, sharded, *or* live index, never several.
#[derive(Default)]
pub struct IndexRegistry {
    inner: RwLock<HashMap<String, SharedIndex>>,
    /// Concrete handles for sharded indexes, kept alongside the trait-object map so
    /// shard-aware serving paths can reach shard-level APIs without downcasting.
    sharded: RwLock<HashMap<String, Arc<ShardedIndex>>>,
    /// Mutable live-tier indexes (`Engine::serve_live`, inserts/deletes/compaction).
    live: RwLock<HashMap<String, Arc<LiveIndex>>>,
}

impl IndexRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an index under `name`, replacing any previous entry, and returns the
    /// shared handle.
    pub fn register(&self, name: impl Into<String>, index: impl P2hIndex + 'static) -> SharedIndex {
        self.register_shared(name, Arc::new(index))
    }

    /// Registers an already-shared index under `name`, replacing any previous entry.
    pub fn register_shared(&self, name: impl Into<String>, index: SharedIndex) -> SharedIndex {
        let name = name.into();
        // A plain registration under a name that held a sharded or live index drops
        // those handles too — the maps must never disagree about a name.
        let mut sharded = self.sharded.write().expect("index registry lock poisoned");
        sharded.remove(&name);
        let mut live = self.live.write().expect("index registry lock poisoned");
        live.remove(&name);
        let mut map = self.inner.write().expect("index registry lock poisoned");
        map.insert(name, Arc::clone(&index));
        index
    }

    /// Registers a sharded index under `name`, replacing any previous entry. The
    /// index serves through [`IndexRegistry::get`] like any other, and stays
    /// retrievable as its concrete type via [`IndexRegistry::get_sharded`] for
    /// shard-aware serving (`Engine::serve_sharded`).
    pub fn register_sharded(
        &self,
        name: impl Into<String>,
        index: ShardedIndex,
    ) -> Arc<ShardedIndex> {
        let name = name.into();
        let handle = Arc::new(index);
        let mut sharded = self.sharded.write().expect("index registry lock poisoned");
        let mut live = self.live.write().expect("index registry lock poisoned");
        let mut map = self.inner.write().expect("index registry lock poisoned");
        live.remove(&name);
        sharded.insert(name.clone(), Arc::clone(&handle));
        map.insert(name, Arc::clone(&handle) as SharedIndex);
        handle
    }

    /// Registers a live (mutable) index under `name`, replacing any previous entry of
    /// any kind, and returns the shared handle. Live indexes serve through
    /// `Engine::serve_live` and are retrievable via [`IndexRegistry::get_live`]; they
    /// do not answer the trait-object [`IndexRegistry::get`] lookup because
    /// [`LiveIndex`] searches return `Result` rather than implementing [`P2hIndex`].
    pub fn register_live(&self, name: impl Into<String>, index: LiveIndex) -> Arc<LiveIndex> {
        self.register_live_shared(name, Arc::new(index))
    }

    /// [`IndexRegistry::register_live`] for an already-shared handle.
    pub fn register_live_shared(
        &self,
        name: impl Into<String>,
        index: Arc<LiveIndex>,
    ) -> Arc<LiveIndex> {
        let name = name.into();
        let mut sharded = self.sharded.write().expect("index registry lock poisoned");
        let mut live = self.live.write().expect("index registry lock poisoned");
        let mut map = self.inner.write().expect("index registry lock poisoned");
        sharded.remove(&name);
        map.remove(&name);
        live.insert(name, Arc::clone(&index));
        index
    }

    /// Opens a `p2h-store` snapshot directory and registers every manifest entry under
    /// its stored name — the cold-start path of a serving process: the expensive index
    /// builds happened offline, and each loaded index answers queries bit-identically
    /// to the one that was snapshotted (same kernel backend). Shard-group entries are
    /// restored as [`ShardedIndex`]es (also reachable via
    /// [`IndexRegistry::get_sharded`]).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`StoreError`] if the directory or its manifest is
    /// missing, or any snapshot is corrupt (truncated, checksum mismatch, invalid
    /// structure, mutually inconsistent shard group, …). Loading is all-or-nothing: a
    /// registry is only returned when every manifest entry decoded and validated.
    pub fn open_dir(dir: impl AsRef<Path>) -> std::result::Result<Self, StoreError> {
        Self::open_dir_from(Store::open(dir)?)
    }

    /// [`IndexRegistry::open_dir`] with an explicit [`LoadMode`]: `LoadMode::Mmap`
    /// maps every snapshot file and restores the indexes **zero-copy** — the arrays
    /// become views into the mappings, making cold start nearly free and sharing the
    /// bytes (via the page cache) with every other process serving the same store.
    /// Loaded indexes answer bit-identically under either mode.
    pub fn open_dir_with(
        dir: impl AsRef<Path>,
        mode: LoadMode,
    ) -> std::result::Result<Self, StoreError> {
        Self::open_dir_from(Store::open_with(dir, mode)?)
    }

    fn open_dir_from(store: Store) -> std::result::Result<Self, StoreError> {
        let start = std::time::Instant::now();
        let registry = Self::new();
        let mut entries = 0u64;
        for (name, entry) in store.load_entries()? {
            entries += 1;
            match entry {
                StoreEntry::Single(index) => {
                    registry.register_shared(name, index.into_shared());
                }
                StoreEntry::ShardGroup(group) => {
                    registry.register_sharded(name, ShardedIndex::from_group(group)?);
                }
                StoreEntry::Live(_) => {
                    // Replays the entry's WAL segments over its base snapshot —
                    // exactly the acknowledged mutations come back.
                    registry.register_live(name.clone(), LiveIndex::open(&store, &name)?);
                }
            }
        }
        // Cold-start telemetry: total wall clock and entry count (the store layer
        // itself attributes the time to read/CRC/decode stages).
        let obs = p2h_obs::global();
        obs.counter(
            "p2h_engine_cold_start_ns_total",
            "Nanoseconds spent cold-starting registries from snapshot stores.",
            &[],
        )
        .add(start.elapsed().as_nanos() as u64);
        obs.counter(
            "p2h_engine_cold_start_entries_total",
            "Manifest entries loaded during registry cold starts.",
            &[],
        )
        .add(entries);
        Ok(registry)
    }

    /// Looks an index up by name.
    pub fn get(&self, name: &str) -> Option<SharedIndex> {
        let map = self.inner.read().expect("index registry lock poisoned");
        map.get(name).cloned()
    }

    /// Looks a sharded index up by name as its concrete type. `None` when the name is
    /// unregistered or holds a non-sharded index.
    pub fn get_sharded(&self, name: &str) -> Option<Arc<ShardedIndex>> {
        let map = self.sharded.read().expect("index registry lock poisoned");
        map.get(name).cloned()
    }

    /// Looks a live index up by name. `None` when the name is unregistered or holds
    /// an immutable index.
    pub fn get_live(&self, name: &str) -> Option<Arc<LiveIndex>> {
        let map = self.live.read().expect("index registry lock poisoned");
        map.get(name).cloned()
    }

    /// Removes an index of any kind, returning its trait-object handle if the name
    /// held an immutable index (live indexes are removed but have no such handle).
    /// In-flight searches holding an `Arc` are unaffected; the index is freed when
    /// the last handle drops.
    pub fn remove(&self, name: &str) -> Option<SharedIndex> {
        let mut sharded = self.sharded.write().expect("index registry lock poisoned");
        sharded.remove(name);
        let mut live = self.live.write().expect("index registry lock poisoned");
        live.remove(name);
        let mut map = self.inner.write().expect("index registry lock poisoned");
        map.remove(name)
    }

    /// The registered names (immutable and live), sorted for deterministic output.
    pub fn names(&self) -> Vec<String> {
        let map = self.inner.read().expect("index registry lock poisoned");
        let live = self.live.read().expect("index registry lock poisoned");
        let mut names: Vec<String> = map.keys().chain(live.keys()).cloned().collect();
        names.sort_unstable();
        names
    }

    /// Number of registered indexes (immutable and live).
    pub fn len(&self) -> usize {
        let inner = self.inner.read().expect("index registry lock poisoned").len();
        let live = self.live.read().expect("index registry lock poisoned").len();
        inner + live
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for IndexRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexRegistry").field("names", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::{LinearScan, PointSet, Scalar};

    fn tiny_scan(value: Scalar) -> LinearScan {
        let rows = vec![vec![value, 0.0], vec![0.0, value]];
        LinearScan::new(PointSet::augment(&rows).unwrap())
    }

    #[test]
    fn register_get_remove() {
        let registry = IndexRegistry::new();
        assert!(registry.is_empty());
        registry.register("a", tiny_scan(1.0));
        registry.register("b", tiny_scan(2.0));
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.names(), vec!["a".to_string(), "b".to_string()]);
        assert!(registry.get("a").is_some());
        assert!(registry.get("missing").is_none());
        assert!(registry.remove("a").is_some());
        assert!(registry.get("a").is_none());
        assert!(registry.remove("a").is_none());
    }

    #[test]
    fn registration_replaces_and_returns_handle() {
        let registry = IndexRegistry::new();
        let first = registry.register("x", tiny_scan(1.0));
        let second = registry.register("x", tiny_scan(2.0));
        assert_eq!(registry.len(), 1);
        // The returned handles stay usable independently of the registry state.
        assert_eq!(first.len(), 2);
        assert_eq!(second.len(), 2);
        assert!(
            !Arc::ptr_eq(&first, &registry.get("x").unwrap())
                || Arc::ptr_eq(&second, &registry.get("x").unwrap())
        );
    }

    #[test]
    fn lookups_share_not_copy() {
        let registry = IndexRegistry::new();
        let handle = registry.register("shared", tiny_scan(1.0));
        let looked_up = registry.get("shared").unwrap();
        assert!(Arc::ptr_eq(&handle, &looked_up));
    }

    fn tiny_sharded() -> ShardedIndex {
        use p2h_shard::{Partitioner, ShardIndexKind, ShardedIndexBuilder};
        let rows: Vec<Vec<Scalar>> = (0..20).map(|i| vec![i as Scalar, 0.5]).collect();
        let points = PointSet::augment(&rows).unwrap();
        ShardedIndexBuilder::new(Partitioner::Contiguous { shards: 2 }, ShardIndexKind::LinearScan)
            .build(&points)
            .unwrap()
    }

    #[test]
    fn sharded_registration_is_visible_through_both_maps() {
        let registry = IndexRegistry::new();
        let handle = registry.register_sharded("sh", tiny_sharded());
        assert_eq!(handle.shard_count(), 2);
        // Reachable generically and concretely, backed by the same index.
        let generic = registry.get("sh").unwrap();
        assert_eq!(generic.len(), 20);
        let concrete = registry.get_sharded("sh").unwrap();
        assert!(Arc::ptr_eq(&handle, &concrete));
        // Non-sharded names do not answer the concrete lookup.
        registry.register("plain", tiny_scan(1.0));
        assert!(registry.get_sharded("plain").is_none());
        // Replacing a sharded entry with a plain index clears the concrete handle.
        registry.register("sh", tiny_scan(2.0));
        assert!(registry.get_sharded("sh").is_none());
        assert!(registry.get("sh").is_some());
        // Removal clears both maps.
        registry.register_sharded("sh2", tiny_sharded());
        assert!(registry.remove("sh2").is_some());
        assert!(registry.get_sharded("sh2").is_none());
    }
}
