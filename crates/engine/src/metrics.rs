//! Engine-side metric recording: cached per-index (and per-shard) instrument handles
//! over the process-wide [`p2h_obs`] registry.
//!
//! The cost model keeps the serving hot path clean: instrument handles are resolved
//! once per index name (one registry write-lock, amortized to a read-locked `HashMap`
//! hit afterwards), per-query samples accumulate in **local** [`StreamingHistogram`]s
//! while the response is walked, and everything publishes with a constant number of
//! relaxed atomic adds per batch. No per-query atomics, no per-query allocation — the
//! `obs_overhead` integration test holds the whole serve path to ≤ 1 allocation per
//! query.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use p2h_core::SearchStats;
use p2h_obs::{global, Counter, Histogram, StreamingHistogram};

use crate::batch::BatchResponse;
use crate::sharded::ShardedBatchResponse;

/// `SearchStats::to_metrics()` names, paired with the Prometheus family each one
/// feeds. Order matches `to_metrics()` (asserted in debug builds on every record).
const SEARCH_COUNTER_FAMILIES: [(&str, &str, &str); 13] = [
    ("inner_products", "p2h_search_inner_products_total", "O(d) inner products computed."),
    ("nodes_visited", "p2h_search_nodes_visited_total", "Tree nodes visited."),
    ("leaves_visited", "p2h_search_leaves_visited_total", "Leaf nodes visited."),
    (
        "candidates_verified",
        "p2h_search_candidates_verified_total",
        "Points whose exact distance was computed.",
    ),
    (
        "pruned_subtrees",
        "p2h_search_pruned_subtrees_total",
        "Subtrees pruned by the node-level ball bound.",
    ),
    (
        "pruned_by_ball_bound",
        "p2h_search_pruned_by_ball_bound_total",
        "Points skipped by the point-level ball bound.",
    ),
    (
        "pruned_by_cone_bound",
        "p2h_search_pruned_by_cone_bound_total",
        "Points skipped by the point-level cone bound.",
    ),
    ("buckets_probed", "p2h_search_buckets_probed_total", "Hash buckets / projections probed."),
    ("time_bounds_ns", "p2h_search_time_bounds_ns_total", "Nanoseconds computing lower bounds."),
    ("time_verify_ns", "p2h_search_time_verify_ns_total", "Nanoseconds verifying candidates."),
    ("time_lookup_ns", "p2h_search_time_lookup_ns_total", "Nanoseconds probing hash tables."),
    (
        "time_merge_ns",
        "p2h_search_time_merge_ns_total",
        "Nanoseconds merging per-shard top-k lists.",
    ),
    ("time_total_ns", "p2h_search_time_total_ns_total", "Total query nanoseconds."),
];

/// Cached instrument handles for one registered index name.
struct IndexInstruments {
    queries: Arc<Counter>,
    batches: Arc<Counter>,
    batch_wall_ns: Arc<Counter>,
    latency: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    candidates_verified: Arc<Histogram>,
    nodes_visited: Arc<Histogram>,
    pruned_subtrees: Arc<Histogram>,
    /// One counter per `SearchStats::to_metrics()` entry, in the same order.
    stat_counters: Vec<Arc<Counter>>,
    /// Per-shard instruments, created lazily the first time the sharded path serves
    /// this name (index = shard id).
    shards: RwLock<Vec<ShardInstruments>>,
}

struct ShardInstruments {
    latency: Arc<Histogram>,
    sub_searches: Arc<Counter>,
    candidates_verified: Arc<Counter>,
}

impl IndexInstruments {
    fn new(index: &str) -> Self {
        let registry = global();
        let labels: &[(&str, &str)] = &[("index", index)];
        Self {
            queries: registry.counter("p2h_queries_total", "Queries served, by index.", labels),
            batches: registry.counter("p2h_batches_total", "Batches served, by index.", labels),
            batch_wall_ns: registry.counter(
                "p2h_batch_wall_ns_total",
                "Batch wall-clock nanoseconds (including scheduling overhead).",
                labels,
            ),
            latency: registry.histogram(
                "p2h_query_latency_ns",
                "Per-query wall-clock latency in nanoseconds.",
                labels,
            ),
            batch_size: registry.histogram("p2h_batch_size", "Queries per served batch.", labels),
            candidates_verified: registry.histogram(
                "p2h_query_candidates_verified",
                "Per-query points whose exact distance was computed.",
                labels,
            ),
            nodes_visited: registry.histogram(
                "p2h_query_nodes_visited",
                "Per-query tree nodes visited.",
                labels,
            ),
            pruned_subtrees: registry.histogram(
                "p2h_query_pruned_subtrees",
                "Per-query subtrees pruned by the ball bound.",
                labels,
            ),
            stat_counters: SEARCH_COUNTER_FAMILIES
                .iter()
                .map(|&(_, family, help)| registry.counter(family, help, labels))
                .collect(),
            shards: RwLock::new(Vec::new()),
        }
    }

    /// Publishes one batch response: aggregate counters plus per-query distributions
    /// accumulated locally and merged in a single pass each.
    fn record_batch(&self, response: &BatchResponse, wall_time_ns: u64) {
        let n = response.results.len();
        self.queries.add(n as u64);
        self.batches.inc();
        self.batch_wall_ns.add(wall_time_ns);
        self.batch_size.record(n as u64);
        self.latency.merge_from(response.latency.histogram());

        let mut candidates = StreamingHistogram::new();
        let mut nodes = StreamingHistogram::new();
        let mut pruned = StreamingHistogram::new();
        for result in &response.results {
            candidates.record(result.stats.candidates_verified);
            nodes.record(result.stats.nodes_visited);
            pruned.record(result.stats.pruned_subtrees);
        }
        self.candidates_verified.merge_from(&candidates);
        self.nodes_visited.merge_from(&nodes);
        self.pruned_subtrees.merge_from(&pruned);

        self.record_stat_counters(&response.total_stats);
    }

    fn record_stat_counters(&self, total: &SearchStats) {
        for ((name, value), counter) in total.to_metrics().iter().zip(&self.stat_counters) {
            debug_assert!(
                SEARCH_COUNTER_FAMILIES.iter().any(|&(n, ..)| n == *name),
                "SearchStats::to_metrics() field `{name}` has no metric family"
            );
            counter.add(*value);
        }
    }

    /// Publishes one sharded response: everything `record_batch` publishes, plus the
    /// per-shard latency distributions and work counters.
    fn record_sharded(&self, index: &str, response: &ShardedBatchResponse) {
        let n = response.results.len();
        self.queries.add(n as u64);
        self.batches.inc();
        self.batch_wall_ns.add(response.wall_time_ns);
        self.batch_size.record(n as u64);
        self.latency.merge_from(response.latency.histogram());

        let mut candidates = StreamingHistogram::new();
        let mut nodes = StreamingHistogram::new();
        let mut pruned = StreamingHistogram::new();
        for result in &response.results {
            candidates.record(result.stats.candidates_verified);
            nodes.record(result.stats.nodes_visited);
            pruned.record(result.stats.pruned_subtrees);
        }
        self.candidates_verified.merge_from(&candidates);
        self.nodes_visited.merge_from(&nodes);
        self.pruned_subtrees.merge_from(&pruned);
        self.record_stat_counters(&response.total_stats);

        self.ensure_shards(index, response.per_shard_latency.len());
        let shards = self.shards.read().expect("shard instruments poisoned");
        for (shard, (latency, stats)) in
            response.per_shard_latency.iter().zip(&response.per_shard_stats).enumerate()
        {
            let instruments = &shards[shard];
            instruments.latency.merge_from(latency.histogram());
            instruments.sub_searches.add(latency.count() as u64);
            instruments.candidates_verified.add(stats.candidates_verified);
        }
    }

    /// The observed per-shard sub-search latency quantile `q`, one entry per shard,
    /// or `None` until every shard has at least `min_samples` recorded sub-searches
    /// (a half-warm distribution would bias routing toward whichever shards happened
    /// to serve first).
    fn shard_latency_quantiles(&self, q: f64, min_samples: u64) -> Option<Vec<u64>> {
        let shards = self.shards.read().expect("shard instruments poisoned");
        if shards.is_empty() {
            return None;
        }
        let mut quantiles = Vec::with_capacity(shards.len());
        for shard in shards.iter() {
            let snapshot = shard.latency.snapshot();
            if snapshot.count() < min_samples {
                return None;
            }
            quantiles.push(snapshot.quantile(q));
        }
        Some(quantiles)
    }

    fn ensure_shards(&self, index: &str, count: usize) {
        if self.shards.read().expect("shard instruments poisoned").len() >= count {
            return;
        }
        let registry = global();
        let mut shards = self.shards.write().expect("shard instruments poisoned");
        while shards.len() < count {
            let shard_label = shards.len().to_string();
            let labels: &[(&str, &str)] = &[("index", index), ("shard", &shard_label)];
            shards.push(ShardInstruments {
                latency: registry.histogram(
                    "p2h_shard_latency_ns",
                    "Per-shard sub-search latency in nanoseconds.",
                    labels,
                ),
                sub_searches: registry.counter(
                    "p2h_shard_sub_searches_total",
                    "Sub-searches the shard actually ran (budget-skipped shards excluded).",
                    labels,
                ),
                candidates_verified: registry.counter(
                    "p2h_shard_candidates_verified_total",
                    "Points the shard verified exactly.",
                    labels,
                ),
            });
        }
    }
}

/// The engine's handle cache: one [`IndexInstruments`] per served index name.
#[derive(Default)]
pub(crate) struct EngineMetrics {
    per_index: RwLock<HashMap<String, Arc<IndexInstruments>>>,
}

impl std::fmt::Debug for EngineMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cached = self.per_index.read().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("EngineMetrics").field("cached_indexes", &cached).finish()
    }
}

impl EngineMetrics {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    fn instruments(&self, index: &str) -> Arc<IndexInstruments> {
        if let Some(found) = self.per_index.read().expect("engine metrics poisoned").get(index) {
            return Arc::clone(found);
        }
        let mut cache = self.per_index.write().expect("engine metrics poisoned");
        Arc::clone(
            cache
                .entry(index.to_string())
                .or_insert_with(|| Arc::new(IndexInstruments::new(index))),
        )
    }

    /// Records a batch served through the query-parallel path.
    pub(crate) fn record_batch(&self, index: &str, response: &BatchResponse) {
        self.instruments(index).record_batch(response, response.wall_time_ns);
    }

    /// Records a batch served through the sharded fan-out path.
    pub(crate) fn record_sharded(&self, index: &str, response: &ShardedBatchResponse) {
        self.instruments(index).record_sharded(index, response);
    }

    /// Observed `p2h_shard_latency_ns` p99 per shard of `index`, or `None` before the
    /// sharded path has served this name with at least `min_samples` sub-searches on
    /// every shard. Feeds the front-end dispatch heuristic; reading is a snapshot of
    /// the cached histogram handles, no registry lock.
    pub(crate) fn shard_latency_p99s(&self, index: &str, min_samples: u64) -> Option<Vec<u64>> {
        let cache = self.per_index.read().expect("engine metrics poisoned");
        let instruments = Arc::clone(cache.get(index)?);
        drop(cache);
        instruments.shard_latency_quantiles(0.99, min_samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchRequest, LatencyHistogram};
    use crate::executor::BatchExecutor;
    use p2h_core::{HyperplaneQuery, LinearScan, PointSet, Scalar, SearchParams};

    #[test]
    fn recording_populates_the_global_registry() {
        let rows: Vec<Vec<Scalar>> =
            (0..64).map(|i| vec![i as Scalar * 0.2, (i % 7) as Scalar]).collect();
        let index = LinearScan::new(PointSet::augment(&rows).unwrap());
        let queries: Vec<HyperplaneQuery> = (0..10)
            .map(|i| {
                HyperplaneQuery::from_normal_and_bias(&[1.0, i as Scalar * 0.1], -1.0).unwrap()
            })
            .collect();
        let request = BatchRequest::new(queries, SearchParams::exact(3));
        let response = BatchExecutor::new(2).execute(&index, &request);

        let metrics = EngineMetrics::new();
        metrics.record_batch("metrics-unit", &response);
        metrics.record_batch("metrics-unit", &response);

        let snapshot = global().snapshot();
        let labels: &[(&str, &str)] = &[("index", "metrics-unit")];
        assert_eq!(snapshot.series("p2h_queries_total", labels).unwrap().value.scalar(), 20);
        assert_eq!(snapshot.series("p2h_batches_total", labels).unwrap().value.scalar(), 2);
        let latency =
            snapshot.series("p2h_query_latency_ns", labels).unwrap().value.histogram().unwrap();
        assert_eq!(latency.count(), 20);
        // Linear scan verifies all 64 points per query: 2 batches * 10 queries * 64.
        assert_eq!(
            snapshot.series("p2h_search_candidates_verified_total", labels).unwrap().value.scalar(),
            2 * 10 * 64
        );
        // The per-query distribution agrees with the response's own histogram.
        let expected = {
            let mut h = LatencyHistogram::new();
            for &ns in &response.latencies_ns {
                h.record(ns);
                h.record(ns);
            }
            h
        };
        assert_eq!(latency, expected.histogram());
    }
}
