//! The `Engine` façade: registry + executor + request validation.

use p2h_core::{Error, P2hIndex, Result};

use crate::batch::{BatchRequest, BatchResponse};
use crate::executor::BatchExecutor;
use crate::registry::{IndexRegistry, SharedIndex};
use crate::sharded::{ShardedBatchResponse, ShardedExecutor};

/// A batch-query serving engine: a shared [`IndexRegistry`] plus a [`BatchExecutor`].
///
/// `Engine` is `Send + Sync`; wrap it in an `Arc` and serve batches from any number of
/// threads concurrently. Registration and serving can interleave freely — an index
/// removed mid-flight stays alive until its last in-flight batch completes.
#[derive(Debug, Default)]
pub struct Engine {
    registry: IndexRegistry,
    executor: BatchExecutor,
}

impl Engine {
    /// Creates an engine whose executor uses `threads` workers per batch (`0` = one per
    /// available CPU).
    pub fn new(threads: usize) -> Self {
        Self { registry: IndexRegistry::new(), executor: BatchExecutor::new(threads) }
    }

    /// Cold-starts an engine from a `p2h-store` snapshot directory: every index named
    /// in the store's manifest is loaded (no rebuilding) and registered, and the
    /// executor uses `threads` workers per batch (`0` = one per available CPU).
    ///
    /// # Errors
    ///
    /// Propagates any [`p2h_store::StoreError`] from
    /// [`IndexRegistry::open_dir`] — missing directory/manifest or corrupt snapshots.
    pub fn from_store(
        dir: impl AsRef<std::path::Path>,
        threads: usize,
    ) -> std::result::Result<Self, p2h_store::StoreError> {
        Ok(Self { registry: IndexRegistry::open_dir(dir)?, executor: BatchExecutor::new(threads) })
    }

    /// [`Engine::from_store`] with an explicit [`p2h_store::LoadMode`]:
    /// `LoadMode::Mmap` cold-starts by memory-mapping the snapshot files and serving
    /// the index arrays zero-copy out of the mappings (bit-identical answers, near-free
    /// startup, bytes shared between processes via the page cache). The default
    /// [`Engine::from_store`] resolves the mode from the `P2H_STORE_MMAP` environment
    /// variable.
    pub fn from_store_with(
        dir: impl AsRef<std::path::Path>,
        threads: usize,
        mode: p2h_store::LoadMode,
    ) -> std::result::Result<Self, p2h_store::StoreError> {
        Ok(Self {
            registry: IndexRegistry::open_dir_with(dir, mode)?,
            executor: BatchExecutor::new(threads),
        })
    }

    /// The index registry (register/lookup/remove indexes here).
    pub fn registry(&self) -> &IndexRegistry {
        &self.registry
    }

    /// The batch executor.
    pub fn executor(&self) -> &BatchExecutor {
        &self.executor
    }

    /// Serves a batch against the index registered under `index_name`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if no index is registered under `index_name`
    /// and [`Error::DimensionMismatch`] if any query's dimension differs from the
    /// index's augmented dimension (checked up front, so a bad query cannot panic a
    /// worker thread mid-batch).
    pub fn serve(&self, index_name: &str, request: &BatchRequest) -> Result<BatchResponse> {
        let index = self.registry.get(index_name).ok_or_else(|| Error::InvalidParameter {
            name: "index_name",
            message: format!("no index registered under `{index_name}`"),
        })?;
        self.serve_index(&index, request)
    }

    /// Serves a batch against an explicit index handle (skips the registry lookup).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on any query/index dimension mismatch and
    /// [`Error::InvalidParameter`] if an override targets a position outside the batch
    /// (a silent no-op otherwise — almost certainly an off-by-one at the call site).
    pub fn serve_index(
        &self,
        index: &SharedIndex,
        request: &BatchRequest,
    ) -> Result<BatchResponse> {
        validate_request(index.as_ref(), request)?;
        Ok(self.executor.execute(index.as_ref(), request))
    }

    /// Serves a batch against the *sharded* index registered under `index_name`,
    /// fanning each query across its shards with a [`ShardedExecutor`] (same worker
    /// count as the engine's batch executor) and returning per-shard latency and work
    /// statistics alongside the merged per-query results.
    ///
    /// The merged results are bit-identical to [`Engine::serve`] on the same name —
    /// only the parallelism shape (across shards vs across queries) and the telemetry
    /// differ, so callers can switch between the two paths freely.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if no *sharded* index is registered under
    /// `index_name` (plain indexes serve through [`Engine::serve`]) and the same
    /// validation errors as [`Engine::serve`].
    pub fn serve_sharded(
        &self,
        index_name: &str,
        request: &BatchRequest,
    ) -> Result<ShardedBatchResponse> {
        let index =
            self.registry.get_sharded(index_name).ok_or_else(|| Error::InvalidParameter {
                name: "index_name",
                message: format!("no sharded index registered under `{index_name}`"),
            })?;
        validate_request(index.as_ref(), request)?;
        Ok(ShardedExecutor::new(self.executor.threads()).execute(&index, request))
    }
}

/// Up-front request validation shared by every serving path: dimension mismatches and
/// out-of-range overrides are errors, not worker-thread panics or silent no-ops.
fn validate_request(index: &dyn P2hIndex, request: &BatchRequest) -> Result<()> {
    let dim = index.dim();
    for query in &request.queries {
        if query.dim() != dim {
            return Err(Error::DimensionMismatch { expected: dim, actual: query.dim() });
        }
    }
    for &(position, _) in &request.overrides {
        if position >= request.queries.len() {
            return Err(Error::InvalidParameter {
                name: "overrides",
                message: format!(
                    "override targets position {position} but the batch has {} queries",
                    request.queries.len()
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::{HyperplaneQuery, LinearScan, PointSet, Scalar, SearchParams};

    fn engine_with_scan() -> Engine {
        let rows: Vec<Vec<Scalar>> =
            (0..100).map(|i| vec![i as Scalar * 0.1, (i % 5) as Scalar]).collect();
        let engine = Engine::new(2);
        engine.registry().register("scan", LinearScan::new(PointSet::augment(&rows).unwrap()));
        engine
    }

    #[test]
    fn serves_registered_indexes() {
        let engine = engine_with_scan();
        let queries = vec![HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0], -2.0).unwrap()];
        let request = BatchRequest::new(queries, SearchParams::exact(3));
        let response = engine.serve("scan", &request).unwrap();
        assert_eq!(response.results.len(), 1);
        assert_eq!(response.results[0].neighbors.len(), 3);
    }

    #[test]
    fn unknown_index_is_an_error() {
        let engine = engine_with_scan();
        let request = BatchRequest::new(Vec::new(), SearchParams::exact(1));
        assert!(matches!(
            engine.serve("nope", &request),
            Err(Error::InvalidParameter { name: "index_name", .. })
        ));
    }

    #[test]
    fn out_of_range_override_is_an_error_not_a_silent_noop() {
        let engine = engine_with_scan();
        let queries = vec![HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0], -2.0).unwrap()];
        let request = BatchRequest::new(queries, SearchParams::exact(3))
            .with_override(1, SearchParams::approximate(3, 10));
        assert!(matches!(
            engine.serve("scan", &request),
            Err(Error::InvalidParameter { name: "overrides", .. })
        ));
    }

    #[test]
    fn dimension_mismatch_is_an_error_not_a_panic() {
        let engine = engine_with_scan();
        let wrong_dim = vec![HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0, 0.0], 0.0).unwrap()];
        let request = BatchRequest::new(wrong_dim, SearchParams::exact(1));
        assert!(matches!(
            engine.serve("scan", &request),
            Err(Error::DimensionMismatch { expected: 3, actual: 4 })
        ));
    }
}
