//! The `Engine` façade: registry + executor + request validation + observability.

use std::sync::Arc;
use std::time::Instant;

use p2h_core::{Error, P2hIndex, QueryScratch, Result, Scalar, SearchResult, SearchStats};
use p2h_live::{LiveError, LiveIndex};
use p2h_obs::trace::{from_env, QueryTrace, TraceSink};

use crate::batch::LatencyHistogram;

use crate::batch::{BatchRequest, BatchResponse};
use crate::executor::BatchExecutor;
use crate::metrics::EngineMetrics;
use crate::registry::{IndexRegistry, SharedIndex};
use crate::sharded::{ShardedBatchResponse, ShardedExecutor};

/// Which execution path [`Engine::serve_front`] dispatched a batch to.
///
/// Every path returns answers **bit-identical** to [`Engine::serve`] /
/// [`Engine::serve_live`] on the same name — the choice is purely a performance
/// decision, so a front-end can log it (`p2h_front_dispatch_total{path=…}`) without
/// callers ever observing a difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontPath {
    /// The live (mutable) tier answered.
    Live,
    /// A sharded index answered through the shard-parallel [`ShardedExecutor`].
    ShardParallel,
    /// The query-parallel [`BatchExecutor`] answered — a plain index, or a sharded
    /// one the routing heuristic judged better served across queries.
    QueryParallel,
}

impl FrontPath {
    /// A stable label value for dispatch counters.
    pub fn as_str(self) -> &'static str {
        match self {
            FrontPath::Live => "live",
            FrontPath::ShardParallel => "shard_parallel",
            FrontPath::QueryParallel => "query_parallel",
        }
    }
}

/// Minimum recorded sub-searches per shard before the dispatch heuristic trusts the
/// observed `p2h_shard_latency_ns` distributions over its static default.
const DISPATCH_MIN_SHARD_SAMPLES: u64 = 64;

/// A batch-query serving engine: a shared [`IndexRegistry`] plus a [`BatchExecutor`].
///
/// `Engine` is `Send + Sync`; wrap it in an `Arc` and serve batches from any number of
/// threads concurrently. Registration and serving can interleave freely — an index
/// removed mid-flight stays alive until its last in-flight batch completes.
///
/// Every served batch is also published to the process-wide [`p2h_obs`] metrics
/// registry (per-index latency histograms, work counters, per-shard telemetry — see
/// `docs/OBSERVABILITY.md` for the catalog) and, when `P2H_TRACE=path[:rate]` is set,
/// sampled queries are written as JSON-line spans. Neither changes any answer: the
/// instrumentation only adds counter updates (and clock reads for sampled queries),
/// and the disabled/unsampled hot path stays allocation-free per query (pinned by the
/// `obs_overhead` integration test).
#[derive(Debug, Default)]
pub struct Engine {
    registry: IndexRegistry,
    executor: BatchExecutor,
    pub(crate) metrics: EngineMetrics,
}

impl Engine {
    /// Creates an engine whose executor uses `threads` workers per batch (`0` = one per
    /// available CPU).
    pub fn new(threads: usize) -> Self {
        Self {
            registry: IndexRegistry::new(),
            executor: BatchExecutor::new(threads),
            metrics: EngineMetrics::new(),
        }
    }

    /// Cold-starts an engine from a `p2h-store` snapshot directory: every index named
    /// in the store's manifest is loaded (no rebuilding) and registered, and the
    /// executor uses `threads` workers per batch (`0` = one per available CPU).
    ///
    /// # Errors
    ///
    /// Propagates any [`p2h_store::StoreError`] from
    /// [`IndexRegistry::open_dir`] — missing directory/manifest or corrupt snapshots.
    pub fn from_store(
        dir: impl AsRef<std::path::Path>,
        threads: usize,
    ) -> std::result::Result<Self, p2h_store::StoreError> {
        Ok(Self {
            registry: IndexRegistry::open_dir(dir)?,
            executor: BatchExecutor::new(threads),
            metrics: EngineMetrics::new(),
        })
    }

    /// [`Engine::from_store`] with an explicit [`p2h_store::LoadMode`]:
    /// `LoadMode::Mmap` cold-starts by memory-mapping the snapshot files and serving
    /// the index arrays zero-copy out of the mappings (bit-identical answers, near-free
    /// startup, bytes shared between processes via the page cache). The default
    /// [`Engine::from_store`] resolves the mode from the `P2H_STORE_MMAP` environment
    /// variable.
    pub fn from_store_with(
        dir: impl AsRef<std::path::Path>,
        threads: usize,
        mode: p2h_store::LoadMode,
    ) -> std::result::Result<Self, p2h_store::StoreError> {
        Ok(Self {
            registry: IndexRegistry::open_dir_with(dir, mode)?,
            executor: BatchExecutor::new(threads),
            metrics: EngineMetrics::new(),
        })
    }

    /// The index registry (register/lookup/remove indexes here).
    pub fn registry(&self) -> &IndexRegistry {
        &self.registry
    }

    /// The batch executor.
    pub fn executor(&self) -> &BatchExecutor {
        &self.executor
    }

    /// A point-in-time snapshot of the process-wide metrics registry — every series
    /// this engine (and the store layer) has recorded, ready for programmatic
    /// inspection.
    pub fn metrics_snapshot(&self) -> p2h_obs::MetricsSnapshot {
        p2h_obs::global().snapshot()
    }

    /// The process-wide metrics in Prometheus text exposition format: per-index
    /// query-latency histograms (p50/p95/p99 derivable from the log buckets),
    /// per-shard latency, `SearchStats`-derived counters, and store load-stage
    /// timings. See `docs/OBSERVABILITY.md` for the metric catalog.
    pub fn render_metrics(&self) -> String {
        p2h_obs::global().render_text()
    }

    /// Serves a batch against the index registered under `index_name`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if no index is registered under `index_name`
    /// and [`Error::DimensionMismatch`] if any query's dimension differs from the
    /// index's augmented dimension (checked up front, so a bad query cannot panic a
    /// worker thread mid-batch).
    pub fn serve(&self, index_name: &str, request: &BatchRequest) -> Result<BatchResponse> {
        let index = self.registry.get(index_name).ok_or_else(|| Error::InvalidParameter {
            name: "index_name",
            message: format!("no index registered under `{index_name}`"),
        })?;
        self.serve_named(index.as_ref(), index_name, request, "batch")
    }

    /// Serves a batch against whatever kind of index is registered under
    /// `index_name` — the front-end dispatch path: live indexes serve through the
    /// live tier, sharded indexes through whichever executor shape the routing
    /// heuristic predicts is faster, and plain indexes through the batch executor.
    /// Returns the response together with the [`FrontPath`] actually taken.
    ///
    /// The answers are **bit-identical** to [`Engine::serve`] (or
    /// [`Engine::serve_live`] for live names) on the same request regardless of the
    /// path chosen; sampled traces are tagged `path="front"`.
    ///
    /// Routing for sharded names: small batches (fewer than `2 × shards` queries)
    /// fan each query across shards, which cuts tail latency when workers would
    /// otherwise idle — *unless* the observed per-shard p99s
    /// (`p2h_shard_latency_ns`) say one shard is a ≥4× straggler, in which case
    /// fan-out would gate every query on it and query-parallel wins. Large batches
    /// always go query-parallel (every worker stays busy without fan-out/merge
    /// overhead).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if no index of any kind is registered
    /// under `index_name`, plus the same validation errors as [`Engine::serve`].
    pub fn serve_front(
        &self,
        index_name: &str,
        request: &BatchRequest,
    ) -> Result<(BatchResponse, FrontPath)> {
        if let Some(live) = self.registry.get_live(index_name) {
            let response = self.serve_live_on(&live, index_name, request, "front")?;
            return Ok((response, FrontPath::Live));
        }
        if let Some(sharded) = self.registry.get_sharded(index_name) {
            if self.prefer_shard_parallel(index_name, sharded.shard_count(), request.queries.len())
            {
                let response = self.serve_sharded_on(&sharded, index_name, request, "front")?;
                return Ok((flatten_sharded(response), FrontPath::ShardParallel));
            }
            // Fall through: the trait-object map holds the same index, so the
            // query-parallel executor serves it bit-identically.
        }
        let index = self.registry.get(index_name).ok_or_else(|| Error::InvalidParameter {
            name: "index_name",
            message: format!("no index registered under `{index_name}`"),
        })?;
        let response = self.serve_named(index.as_ref(), index_name, request, "front")?;
        Ok((response, FrontPath::QueryParallel))
    }

    /// The shard-vs-query parallelism call for [`Engine::serve_front`].
    fn prefer_shard_parallel(&self, index_name: &str, shards: usize, batch: usize) -> bool {
        if batch >= shards.saturating_mul(2).max(2) {
            return false; // enough queries to saturate workers without fan-out
        }
        match self.metrics.shard_latency_p99s(index_name, DISPATCH_MIN_SHARD_SAMPLES) {
            Some(p99s) if !p99s.is_empty() => {
                let mut sorted = p99s;
                sorted.sort_unstable();
                let median = sorted[sorted.len() / 2].max(1);
                let slowest = *sorted.last().expect("non-empty");
                // A heavy straggler shard gates every fanned-out query on itself.
                slowest < median.saturating_mul(4)
            }
            // No (or not enough) observations yet: default to fan-out for small
            // batches — the static half of the heuristic.
            _ => true,
        }
    }

    /// Serves a batch against an explicit index handle (skips the registry lookup).
    /// Metrics for this path are labeled with the index's method name
    /// ([`P2hIndex::name`]) since no registered name exists.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on any query/index dimension mismatch and
    /// [`Error::InvalidParameter`] if an override targets a position outside the batch
    /// (a silent no-op otherwise — almost certainly an off-by-one at the call site).
    pub fn serve_index(
        &self,
        index: &SharedIndex,
        request: &BatchRequest,
    ) -> Result<BatchResponse> {
        self.serve_named(index.as_ref(), index.name(), request, "batch")
    }

    fn serve_named(
        &self,
        index: &dyn P2hIndex,
        label: &str,
        request: &BatchRequest,
        path: &str,
    ) -> Result<BatchResponse> {
        validate_request(index, request)?;
        let trace = plan_trace(request);
        let response = match &trace {
            Some(plan) => self.executor.execute(index, &plan.request),
            None => self.executor.execute(index, request),
        };
        self.metrics.record_batch(label, &response);
        if let Some(plan) = &trace {
            write_traces(plan, label, path, &response.results, &response.latencies_ns);
        }
        Ok(response)
    }

    /// Serves a batch against the *sharded* index registered under `index_name`,
    /// fanning each query across its shards with a [`ShardedExecutor`] (same worker
    /// count as the engine's batch executor) and returning per-shard latency and work
    /// statistics alongside the merged per-query results.
    ///
    /// The merged results are bit-identical to [`Engine::serve`] on the same name —
    /// only the parallelism shape (across shards vs across queries) and the telemetry
    /// differ, so callers can switch between the two paths freely.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if no *sharded* index is registered under
    /// `index_name` (plain indexes serve through [`Engine::serve`]) and the same
    /// validation errors as [`Engine::serve`].
    pub fn serve_sharded(
        &self,
        index_name: &str,
        request: &BatchRequest,
    ) -> Result<ShardedBatchResponse> {
        let index =
            self.registry.get_sharded(index_name).ok_or_else(|| Error::InvalidParameter {
                name: "index_name",
                message: format!("no sharded index registered under `{index_name}`"),
            })?;
        self.serve_sharded_on(&index, index_name, request, "sharded")
    }

    fn serve_sharded_on(
        &self,
        index: &Arc<p2h_shard::ShardedIndex>,
        label: &str,
        request: &BatchRequest,
        path: &str,
    ) -> Result<ShardedBatchResponse> {
        validate_request(index.as_ref(), request)?;
        let executor = ShardedExecutor::new(self.executor.threads());
        let trace = plan_trace(request);
        let response = match &trace {
            Some(plan) => executor.execute(index, &plan.request),
            None => executor.execute(index, request),
        };
        self.metrics.record_sharded(label, &response);
        if let Some(plan) = &trace {
            write_traces(plan, label, path, &response.results, &response.latencies_ns);
        }
        Ok(response)
    }

    /// Registers a live (mutable) index under `name` and returns the shared handle —
    /// shorthand for [`IndexRegistry::register_live`].
    pub fn register_live(&self, name: impl Into<String>, index: LiveIndex) -> Arc<LiveIndex> {
        self.registry.register_live(name, index)
    }

    /// The live index registered under `name`, for direct mutation
    /// (insert/delete/compact) alongside serving.
    pub fn live(&self, name: &str) -> Option<Arc<LiveIndex>> {
        self.registry.get_live(name)
    }

    /// Inserts `rows` (raw, unaugmented points) into the live index registered under
    /// `index_name`, returning the assigned ids. Durable (WAL-fsynced) on return.
    ///
    /// # Errors
    ///
    /// `InvalidParameter` when no live index holds that name; otherwise whatever
    /// [`LiveIndex::insert_batch`] returns (dimension mismatch, WAL I/O failure).
    pub fn live_insert(
        &self,
        index_name: &str,
        rows: &[Vec<Scalar>],
    ) -> std::result::Result<Vec<u32>, LiveError> {
        self.live_handle(index_name)?.insert_batch(rows)
    }

    /// Deletes the point with global id `id` from the live index registered under
    /// `index_name`. Durable (WAL-fsynced) on return.
    ///
    /// # Errors
    ///
    /// `InvalidParameter` when no live index holds that name;
    /// [`LiveError::NotFound`] when `id` is not live; WAL I/O failures.
    pub fn live_delete(&self, index_name: &str, id: u32) -> std::result::Result<(), LiveError> {
        self.live_handle(index_name)?.delete(id)
    }

    fn live_handle(&self, index_name: &str) -> std::result::Result<Arc<LiveIndex>, LiveError> {
        self.registry.get_live(index_name).ok_or_else(|| {
            LiveError::Core(Error::InvalidParameter {
                name: "index_name",
                message: format!("no live index registered under `{index_name}`"),
            })
        })
    }

    /// Serves a batch against the *live* index registered under `index_name`. Same
    /// validation, metrics, and tracing as [`Engine::serve`]; answers are
    /// bit-identical to a full rebuild containing the same live points. Queries run
    /// sequentially on the calling thread (the live tier's read lock is held per
    /// query, so mutations interleave between queries, never inside one).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if no live index is registered under
    /// `index_name` and the same validation errors as [`Engine::serve`].
    pub fn serve_live(&self, index_name: &str, request: &BatchRequest) -> Result<BatchResponse> {
        let index = self.registry.get_live(index_name).ok_or_else(|| Error::InvalidParameter {
            name: "index_name",
            message: format!("no live index registered under `{index_name}`"),
        })?;
        self.serve_live_on(&index, index_name, request, "live")
    }

    fn serve_live_on(
        &self,
        index: &Arc<LiveIndex>,
        label: &str,
        request: &BatchRequest,
        path: &str,
    ) -> Result<BatchResponse> {
        validate_queries(index.dim(), request)?;
        let trace = plan_trace(request);
        let effective = trace.as_ref().map_or(request, |plan| &plan.request);
        let wall_start = Instant::now();
        let mut scratch = QueryScratch::new();
        let mut results = Vec::with_capacity(effective.queries.len());
        let mut latencies_ns = Vec::with_capacity(effective.queries.len());
        let mut total_stats = SearchStats::default();
        for (position, query) in effective.queries.iter().enumerate() {
            let params = effective.params_for(position);
            let query_start = Instant::now();
            let result = index.search_with_scratch(query, params, &mut scratch)?;
            latencies_ns.push(query_start.elapsed().as_nanos() as u64);
            total_stats.merge(&result.stats);
            results.push(result);
        }
        let response = BatchResponse {
            latency: LatencyHistogram::from_latencies(latencies_ns.iter().copied()),
            results,
            latencies_ns,
            total_stats,
            wall_time_ns: wall_start.elapsed().as_nanos() as u64,
        };
        self.metrics.record_batch(label, &response);
        if let Some(plan) = &trace {
            write_traces(plan, label, path, &response.results, &response.latencies_ns);
        }
        Ok(response)
    }
}

/// Drops the per-shard telemetry off a [`ShardedBatchResponse`], leaving the merged
/// per-query payload a front-end actually returns to clients. The results, latencies,
/// and stats are moved, not recomputed — bit-for-bit what the sharded path produced.
fn flatten_sharded(response: ShardedBatchResponse) -> BatchResponse {
    BatchResponse {
        results: response.results,
        latencies_ns: response.latencies_ns,
        latency: response.latency,
        total_stats: response.total_stats,
        wall_time_ns: response.wall_time_ns,
    }
}

/// The sink plus everything execution needs when at least one query of a batch is
/// sampled: the rewritten request (sampled queries get `collect_timing`) and the
/// sampled `(position, trace sequence number)` pairs.
pub(crate) struct TracePlan {
    sink: &'static TraceSink,
    pub(crate) request: BatchRequest,
    sampled: Vec<(usize, u64)>,
}

/// Decides up front which queries of this batch are sampled for tracing. Returns
/// `None` (and touches nothing) when tracing is disabled or no query won the sampling
/// draw; otherwise returns a copy of the request whose sampled queries have
/// `collect_timing` enabled — clock reads only, answers unchanged.
pub(crate) fn plan_trace(request: &BatchRequest) -> Option<TracePlan> {
    let sink = from_env()?;
    let sampled: Vec<(usize, u64)> =
        (0..request.queries.len()).filter_map(|i| sink.sample().map(|seq| (i, seq))).collect();
    if sampled.is_empty() {
        return None;
    }
    let mut traced = request.clone();
    for &(position, _) in &sampled {
        let mut params = request.params_for(position).clone();
        params.collect_timing = true;
        traced.overrides.push((position, params));
    }
    Some(TracePlan { sink, request: traced, sampled })
}

/// Writes one JSON-line span per sampled query of a completed batch.
pub(crate) fn write_traces(
    plan: &TracePlan,
    index: &str,
    path: &str,
    results: &[SearchResult],
    latencies_ns: &[u64],
) {
    for &(position, seq) in &plan.sampled {
        let params = plan.request.params_for(position);
        let stats = &results[position].stats;
        let latency_ns = latencies_ns[position];
        let attributed = stats
            .time_bounds_ns
            .saturating_add(stats.time_verify_ns)
            .saturating_add(stats.time_lookup_ns)
            .saturating_add(stats.time_merge_ns);
        plan.sink.write(&QueryTrace {
            seq,
            index,
            path,
            query: position,
            k: params.k as u64,
            candidate_limit: params.candidate_limit.map(|c| c as u64),
            latency_ns,
            stage_bounds_ns: stats.time_bounds_ns,
            stage_verify_ns: stats.time_verify_ns,
            stage_lookup_ns: stats.time_lookup_ns,
            stage_merge_ns: stats.time_merge_ns,
            stage_other_ns: latency_ns.saturating_sub(attributed),
            nodes_visited: stats.nodes_visited,
            candidates_verified: stats.candidates_verified,
            pruned_subtrees: stats.pruned_subtrees,
            result_len: results[position].neighbors.len() as u64,
        });
    }
}

/// Up-front request validation shared by every serving path: dimension mismatches and
/// out-of-range overrides are errors, not worker-thread panics or silent no-ops.
fn validate_request(index: &dyn P2hIndex, request: &BatchRequest) -> Result<()> {
    validate_queries(index.dim(), request)
}

/// [`validate_request`] against a bare augmented dimension, for serving paths whose
/// index is not a [`P2hIndex`] trait object (the live tier).
fn validate_queries(dim: usize, request: &BatchRequest) -> Result<()> {
    for query in &request.queries {
        if query.dim() != dim {
            return Err(Error::DimensionMismatch { expected: dim, actual: query.dim() });
        }
    }
    for &(position, _) in &request.overrides {
        if position >= request.queries.len() {
            return Err(Error::InvalidParameter {
                name: "overrides",
                message: format!(
                    "override targets position {position} but the batch has {} queries",
                    request.queries.len()
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::{HyperplaneQuery, LinearScan, PointSet, Scalar, SearchParams};

    fn engine_with_scan() -> Engine {
        let rows: Vec<Vec<Scalar>> =
            (0..100).map(|i| vec![i as Scalar * 0.1, (i % 5) as Scalar]).collect();
        let engine = Engine::new(2);
        engine.registry().register("scan", LinearScan::new(PointSet::augment(&rows).unwrap()));
        engine
    }

    #[test]
    fn serves_registered_indexes() {
        let engine = engine_with_scan();
        let queries = vec![HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0], -2.0).unwrap()];
        let request = BatchRequest::new(queries, SearchParams::exact(3));
        let response = engine.serve("scan", &request).unwrap();
        assert_eq!(response.results.len(), 1);
        assert_eq!(response.results[0].neighbors.len(), 3);
    }

    #[test]
    fn unknown_index_is_an_error() {
        let engine = engine_with_scan();
        let request = BatchRequest::new(Vec::new(), SearchParams::exact(1));
        assert!(matches!(
            engine.serve("nope", &request),
            Err(Error::InvalidParameter { name: "index_name", .. })
        ));
    }

    #[test]
    fn out_of_range_override_is_an_error_not_a_silent_noop() {
        let engine = engine_with_scan();
        let queries = vec![HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0], -2.0).unwrap()];
        let request = BatchRequest::new(queries, SearchParams::exact(3))
            .with_override(1, SearchParams::approximate(3, 10));
        assert!(matches!(
            engine.serve("scan", &request),
            Err(Error::InvalidParameter { name: "overrides", .. })
        ));
    }

    #[test]
    fn dimension_mismatch_is_an_error_not_a_panic() {
        let engine = engine_with_scan();
        let wrong_dim = vec![HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0, 0.0], 0.0).unwrap()];
        let request = BatchRequest::new(wrong_dim, SearchParams::exact(1));
        assert!(matches!(
            engine.serve("scan", &request),
            Err(Error::DimensionMismatch { expected: 3, actual: 4 })
        ));
    }

    #[test]
    fn serve_front_dispatches_and_stays_bit_identical() {
        use p2h_shard::{Partitioner, ShardIndexKind, ShardedIndexBuilder};
        let engine = engine_with_scan();
        let rows: Vec<Vec<Scalar>> =
            (0..100).map(|i| vec![i as Scalar * 0.1, (i % 5) as Scalar]).collect();
        let sharded = ShardedIndexBuilder::new(
            Partitioner::Contiguous { shards: 2 },
            ShardIndexKind::LinearScan,
        )
        .build(&PointSet::augment(&rows).unwrap())
        .unwrap();
        engine.registry().register_sharded("sh", sharded);

        let make_request = |n: usize| {
            let queries: Vec<HyperplaneQuery> = (0..n)
                .map(|i| {
                    HyperplaneQuery::from_normal_and_bias(&[1.0, i as Scalar * 0.3], -2.0).unwrap()
                })
                .collect();
            BatchRequest::new(queries, SearchParams::exact(4))
        };
        let assert_same = |a: &BatchResponse, b: &BatchResponse| {
            assert_eq!(a.results.len(), b.results.len());
            for (x, y) in a.results.iter().zip(&b.results) {
                let xb: Vec<(usize, u32)> =
                    x.neighbors.iter().map(|n| (n.index, n.distance.to_bits())).collect();
                let yb: Vec<(usize, u32)> =
                    y.neighbors.iter().map(|n| (n.index, n.distance.to_bits())).collect();
                assert_eq!(xb, yb);
            }
        };

        // Plain index: the only path is query-parallel.
        let request = make_request(3);
        let (front, path) = engine.serve_front("scan", &request).unwrap();
        assert_eq!(path, FrontPath::QueryParallel);
        assert_same(&front, &engine.serve("scan", &request).unwrap());

        // Sharded, small batch (< 2×shards): fan-out across shards.
        let small = make_request(2);
        let (front, path) = engine.serve_front("sh", &small).unwrap();
        assert_eq!(path, FrontPath::ShardParallel);
        assert_same(&front, &engine.serve("sh", &small).unwrap());

        // Sharded, large batch: query-parallel wins.
        let large = make_request(16);
        let (front, path) = engine.serve_front("sh", &large).unwrap();
        assert_eq!(path, FrontPath::QueryParallel);
        assert_same(&front, &engine.serve("sh", &large).unwrap());

        // Unknown names are typed errors on the front path too.
        assert!(matches!(
            engine.serve_front("nope", &small),
            Err(Error::InvalidParameter { name: "index_name", .. })
        ));
    }

    #[test]
    fn serving_populates_the_exposition_dump() {
        let engine = engine_with_scan();
        let queries: Vec<HyperplaneQuery> = (0..6)
            .map(|i| {
                HyperplaneQuery::from_normal_and_bias(&[1.0, i as Scalar * 0.2], -2.0).unwrap()
            })
            .collect();
        let request = BatchRequest::new(queries, SearchParams::exact(2));
        engine.serve("scan", &request).unwrap();

        let snapshot = engine.metrics_snapshot();
        let labels: &[(&str, &str)] = &[("index", "scan")];
        assert!(snapshot.series("p2h_queries_total", labels).unwrap().value.scalar() >= 6);
        let text = engine.render_metrics();
        assert!(text.contains("p2h_query_latency_ns_bucket{index=\"scan\""));
        assert!(text.contains("p2h_search_candidates_verified_total{index=\"scan\"}"));
    }
}
