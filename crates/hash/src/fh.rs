//! FH: the furthest-neighbor-transformation hashing baseline (Huang et al., SIGMOD'21).

use std::time::Instant;

use p2h_core::{
    distance, HyperplaneQuery, P2hIndex, PointSet, Result, Scalar, SearchParams, SearchResult,
    SearchStats, TopKCollector, VecBuf,
};

use crate::projections::ProjectionTables;
use crate::transform::QuadraticTransform;

/// Configuration of an [`FhIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FhParams {
    /// Sampling dimension multiplier (`λ = lambda_factor · d`).
    pub lambda_factor: usize,
    /// Number of projection tables `m` per partition.
    pub tables: usize,
    /// Number of norm-based partitions `l` (the paper's separation threshold sweeps
    /// `l ∈ {2, 4, 6}`).
    pub partitions: usize,
    /// Number of projection collisions a point needs before it is verified. Clamped to
    /// `tables` at query time.
    pub collision_threshold: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FhParams {
    fn default() -> Self {
        Self { lambda_factor: 4, tables: 16, partitions: 4, collision_threshold: 2, seed: 0 }
    }
}

impl FhParams {
    /// Creates parameters with the given sampling factor, table count and partitions.
    pub fn new(lambda_factor: usize, tables: usize, partitions: usize) -> Self {
        Self { lambda_factor, tables, partitions, ..Self::default() }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One norm-based partition of the transformed data.
#[derive(Debug, Clone)]
struct Partition {
    /// Global point ids belonging to this partition (owned or mapped; snapshot loaders
    /// restore these zero-copy from the mapped region).
    ids: VecBuf<u32>,
    /// Sorted projection tables over the partition's transformed vectors
    /// (local id = index into `ids`).
    tables: ProjectionTables,
}

/// The FH index: asymmetric quadratic transform without norm alignment, solved as a
/// furthest-neighbor problem with norm-based data partitioning.
///
/// `‖f(x) − g(q)‖² = ‖f(x)‖² + ‖g(q)‖² + 2⟨x, q⟩²` grows with `⟨x, q⟩²`, so *within a
/// partition of (approximately) equal transformed norms* the furthest transformed point
/// is the P2H nearest neighbor. FH therefore buckets points into `l` partitions by
/// `‖f(x)‖` and probes the projection extremes of each partition.
#[derive(Debug, Clone)]
pub struct FhIndex {
    points: PointSet,
    transform: QuadraticTransform,
    partitions: Vec<Partition>,
    params: FhParams,
}

impl FhIndex {
    /// Builds an FH index over the given (augmented) point set.
    ///
    /// Indexing cost is `O(n · λ · m)` plus an `O(n log n)` sort for the norm
    /// partitioning — the "extra cost for data partitioning" the paper mentions.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are degenerate.
    pub fn build(points: &PointSet, params: FhParams) -> Result<Self> {
        if params.lambda_factor == 0 || params.tables == 0 || params.partitions == 0 {
            return Err(p2h_core::Error::InvalidParameter {
                name: "FhParams",
                message: "lambda_factor, tables and partitions must be positive".into(),
            });
        }
        let dim = points.dim();
        let n = points.len();
        let lambda = params.lambda_factor * dim;
        let transform = QuadraticTransform::sampled(dim, lambda, params.seed);

        // Rank points by transformed norm and cut into `l` equal-size partitions.
        let mut norms: Vec<(Scalar, u32)> = (0..n)
            .map(|i| (distance::norm_sq(&transform.transform_data(points.point(i))), i as u32))
            .collect();
        norms.sort_by(|a, b| a.0.total_cmp(&b.0));
        let l = params.partitions.min(n);
        let per_partition = n.div_ceil(l);

        let mut partitions = Vec::with_capacity(l);
        for chunk in norms.chunks(per_partition) {
            let ids: Vec<u32> = chunk.iter().map(|&(_, id)| id).collect();
            let tables = ProjectionTables::build(
                ids.len(),
                lambda,
                params.tables,
                params.seed.wrapping_add(partitions.len() as u64 + 1),
                |local| transform.transform_data(points.point(ids[local] as usize)),
            );
            partitions.push(Partition { ids: ids.into(), tables });
        }

        Ok(Self { points: points.clone(), transform, partitions, params })
    }

    /// Reassembles an FH index from its constituent parts — the inverse of reading
    /// [`FhIndex::transform`], [`FhIndex::partition_ids`], and
    /// [`FhIndex::partition_tables`] off a built index (the snapshot load path; the
    /// arrays are restored verbatim, so the reassembled index answers identically).
    ///
    /// The `partitions` argument pairs each partition's global point ids with the
    /// projection tables built over its transformed vectors (local id = position in the
    /// id list).
    ///
    /// # Errors
    ///
    /// Returns a typed error (never panics) if the parts are inconsistent: degenerate
    /// parameters, a transform/point dimension mismatch, partition tables whose
    /// dimensionality is not `λ` or whose length differs from the id list, or partition
    /// id lists that are not a disjoint cover of `0..n`.
    pub fn from_parts(
        points: PointSet,
        transform: QuadraticTransform,
        partitions: Vec<(VecBuf<u32>, ProjectionTables)>,
        params: FhParams,
    ) -> Result<Self> {
        use p2h_core::Error;
        if params.lambda_factor == 0 || params.tables == 0 || params.partitions == 0 {
            return Err(Error::Corrupt("FH params must be positive".into()));
        }
        if transform.input_dim() != points.dim() {
            return Err(Error::Corrupt(format!(
                "FH transform input dim {} differs from point dim {}",
                transform.input_dim(),
                points.dim()
            )));
        }
        if partitions.is_empty() {
            return Err(Error::Corrupt("FH needs at least one partition".into()));
        }
        let n = points.len();
        let mut seen = vec![false; n];
        for (ids, tables) in &partitions {
            if tables.dim() != transform.output_dim() {
                return Err(Error::Corrupt(format!(
                    "FH partition table dim {} is not λ = {}",
                    tables.dim(),
                    transform.output_dim()
                )));
            }
            if tables.len() != ids.len() || ids.is_empty() {
                return Err(Error::Corrupt(format!(
                    "FH partition holds {} ids but indexes {} vectors",
                    ids.len(),
                    tables.len()
                )));
            }
            if params.tables != tables.table_count() {
                return Err(Error::Corrupt(format!(
                    "FH params declare {} tables, {} present",
                    params.tables,
                    tables.table_count()
                )));
            }
            for &id in ids.iter() {
                let id = id as usize;
                if id >= n || seen[id] {
                    return Err(Error::Corrupt(
                        "FH partition ids are not a disjoint cover of the points".into(),
                    ));
                }
                seen[id] = true;
            }
        }
        if seen.iter().any(|&s| !s) {
            return Err(Error::Corrupt("FH partitions do not cover every point".into()));
        }
        let partitions =
            partitions.into_iter().map(|(ids, tables)| Partition { ids, tables }).collect();
        Ok(Self { points, transform, partitions, params })
    }

    /// The parameters the index was built with.
    pub fn params(&self) -> &FhParams {
        &self.params
    }

    /// The indexed (augmented) point set.
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// The sampled quadratic transform. Exposed (with the partition accessors) so
    /// persistence layers can serialize the index without rebuilding it.
    pub fn transform(&self) -> &QuadraticTransform {
        &self.transform
    }

    /// Number of norm-based partitions actually created.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The global point ids of partition `p` (local table id = position in this list).
    ///
    /// # Panics
    ///
    /// Panics if `p >= self.partition_count()`.
    pub fn partition_ids(&self, p: usize) -> &[u32] {
        &self.partitions[p].ids
    }

    /// The projection tables of partition `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= self.partition_count()`.
    pub fn partition_tables(&self, p: usize) -> &ProjectionTables {
        &self.partitions[p].tables
    }
}

impl P2hIndex for FhIndex {
    fn name(&self) -> &'static str {
        "FH"
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn dim(&self) -> usize {
        self.points.dim()
    }

    fn index_size_bytes(&self) -> usize {
        self.partitions.iter().map(|p| p.tables.size_bytes() + p.ids.heap_bytes()).sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    fn search(&self, query: &HyperplaneQuery, params: &SearchParams) -> SearchResult {
        assert_eq!(query.dim(), self.points.dim(), "query dimension mismatch");
        let start = Instant::now();
        let timing = params.collect_timing;
        let mut stats = SearchStats::default();
        let mut collector = TopKCollector::new(params.k);
        let limit = params.candidate_limit.unwrap_or(self.points.len()) as u64;

        // Transform the query once and open a furthest-first stream per partition.
        let lookup_timer = timing.then(Instant::now);
        let gq = self.transform.transform_query(query.coeffs(), 1.0);
        let mut streams: Vec<_> = self
            .partitions
            .iter()
            .map(|p| {
                let projections = p.tables.project(&gq);
                p.tables.furthest_candidates(&projections)
            })
            .collect();
        if let Some(t) = lookup_timer {
            stats.time_lookup_ns += t.elapsed().as_nanos() as u64;
        }

        // Query-aware collision counting: a point becomes a verification candidate once
        // it has appeared near the projection extremes in `collision_threshold` tables.
        let threshold = self.params.collision_threshold.clamp(1, self.params.tables) as u16;
        let mut collisions = vec![0u16; self.points.len()];
        // Resolve the buffer-backed point payload once (see NH: mapped `VecBuf`
        // derefs must stay out of the per-candidate loop).
        let flat = self.points.as_flat();
        let dim = self.points.dim();
        let mut active = true;
        // Round-robin over partitions so each contributes candidates evenly.
        while active && stats.candidates_verified < limit {
            active = false;
            for (p, stream) in self.partitions.iter().zip(streams.iter_mut()) {
                if stats.candidates_verified >= limit {
                    break;
                }
                let lookup_timer = timing.then(Instant::now);
                let next = stream.next();
                if let Some(t) = lookup_timer {
                    stats.time_lookup_ns += t.elapsed().as_nanos() as u64;
                }
                let Some(local) = next else { continue };
                active = true;
                let id = p.ids[local as usize] as usize;
                collisions[id] = collisions[id].saturating_add(1);
                if collisions[id] != threshold {
                    continue;
                }

                let verify_timer = timing.then(Instant::now);
                let dist = query.p2h_distance(&flat[id * dim..(id + 1) * dim]);
                stats.inner_products += 1;
                stats.candidates_verified += 1;
                collector.offer(id, dist);
                if let Some(t) = verify_timer {
                    stats.time_verify_ns += t.elapsed().as_nanos() as u64;
                }
            }
        }

        stats.buckets_probed = streams.iter().map(|s| s.probes()).sum();
        stats.time_total_ns = start.elapsed().as_nanos() as u64;
        SearchResult { neighbors: collector.into_sorted_vec(), stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::LinearScan;
    use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};

    fn dataset(n: usize, dim: usize) -> PointSet {
        SyntheticDataset::new(
            "fh-test",
            n,
            dim,
            DataDistribution::HeavyTailedNorms { mu: 0.8, sigma: 0.6 },
            44,
        )
        .generate()
        .unwrap()
    }

    #[test]
    fn build_and_metadata() {
        let ps = dataset(600, 10);
        let index = FhIndex::build(&ps, FhParams::new(2, 8, 3)).unwrap();
        assert_eq!(index.name(), "FH");
        assert_eq!(index.len(), 600);
        assert_eq!(index.dim(), 11);
        assert_eq!(index.partition_count(), 3);
        assert_eq!(index.params().tables, 8);
        assert!(index.index_size_bytes() > 0);
    }

    #[test]
    fn rejects_degenerate_params() {
        let ps = dataset(100, 6);
        assert!(FhIndex::build(&ps, FhParams::new(0, 8, 2)).is_err());
        assert!(FhIndex::build(&ps, FhParams::new(2, 0, 2)).is_err());
        assert!(FhIndex::build(&ps, FhParams::new(2, 8, 0)).is_err());
    }

    #[test]
    fn more_partitions_than_points_is_clamped() {
        let ps = dataset(10, 4);
        let index = FhIndex::build(&ps, FhParams::new(1, 2, 50)).unwrap();
        assert!(index.partition_count() <= 10);
    }

    #[test]
    fn unlimited_budget_is_exact() {
        let ps = dataset(700, 8);
        let index = FhIndex::build(&ps, FhParams::new(2, 8, 4)).unwrap();
        let scan = LinearScan::new(ps.clone());
        let queries = generate_queries(&ps, 5, QueryDistribution::DataDifference, 5).unwrap();
        for q in &queries {
            let exact = scan.search_exact(q, 5);
            let got = index.search_exact(q, 5);
            assert_eq!(got.distances(), exact.distances());
        }
    }

    #[test]
    fn candidate_budget_is_respected_and_recall_reasonable() {
        let ps = dataset(4_000, 12);
        let index = FhIndex::build(&ps, FhParams::new(4, 16, 4)).unwrap();
        let scan = LinearScan::new(ps.clone());
        let queries = generate_queries(&ps, 10, QueryDistribution::DataDifference, 6).unwrap();
        let mut hits = 0usize;
        for q in &queries {
            let exact: Vec<usize> = scan.search_exact(q, 10).indices();
            let result = index.search(q, &SearchParams::approximate(10, 1_000));
            assert!(result.stats.candidates_verified <= 1_000);
            assert!(result.stats.buckets_probed > 0);
            hits += result.indices().iter().filter(|i| exact.contains(i)).count();
        }
        // As with NH, the transformed distances carry a large additive constant, so at a
        // quarter of the data as budget we only require ballpark-of-the-budget recall.
        assert!(
            hits as f64 >= 0.15 * (10 * queries.len()) as f64,
            "FH recall unexpectedly low: {hits}/{}",
            10 * queries.len()
        );
    }

    #[test]
    fn timing_collection_populates_lookup_and_verify() {
        let ps = dataset(1_000, 8);
        let index = FhIndex::build(&ps, FhParams::new(2, 8, 3)).unwrap();
        let q = &generate_queries(&ps, 1, QueryDistribution::DataDifference, 7).unwrap()[0];
        let result = index.search(q, &SearchParams::approximate(5, 300).with_timing());
        assert!(result.stats.time_lookup_ns > 0);
        assert!(result.stats.time_verify_ns > 0);
    }

    #[test]
    fn fh_index_is_heavier_than_tree_indexes() {
        use p2h_bctree::BcTreeBuilder;
        let ps = dataset(3_000, 16);
        let fh = FhIndex::build(&ps, FhParams::new(4, 32, 4)).unwrap();
        let bc = BcTreeBuilder::new(100).build(&ps).unwrap();
        assert!(
            fh.index_size_bytes() > 5 * bc.structure_size_bytes(),
            "FH tables should dwarf the BC-Tree structure: fh={} bc={}",
            fh.index_size_bytes(),
            bc.structure_size_bytes()
        );
    }
}
