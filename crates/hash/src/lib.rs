//! # p2h-hash
//!
//! From-scratch implementations of the two state-of-the-art hashing baselines the paper
//! compares against: **NH** (Nearest-neighbor transformation Hashing) and **FH**
//! (Furthest-neighbor transformation Hashing), both introduced by Huang, Lei & Tung
//! (SIGMOD 2021, "Point-to-Hyperplane Nearest Neighbor Search Beyond the Unit
//! Hypersphere").
//!
//! Both schemes rely on an **asymmetric quadratic transform** ([`QuadraticTransform`])
//! that maps data points and hyperplane queries into a space where the squared inner
//! product `⟨x, q⟩²` appears inside a Euclidean distance, turning P2HNNS into a classic
//! nearest-neighbor (NH) or furthest-neighbor (FH) problem:
//!
//! * the full transform has `Ω(d²)` dimensions — the indexing overhead the paper
//!   criticizes — and
//! * the **randomized sampling** variant keeps only `λ` sampled product coordinates,
//!   which is the configuration the paper actually benchmarks (`λ ∈ {d, 2d, 4d, 8d}`).
//!
//! On top of the transform, both indexes use query-aware sorted random projections
//! (QALSH/RQALSH style): [`NhIndex`] expands candidates nearest to the query projection,
//! [`FhIndex`] partitions points by transformed norm and expands candidates furthest
//! from the query projection within each partition.
//!
//! The goal of this crate is *fidelity of behaviour*, not bit-compatibility with the
//! authors' C++ release: it reproduces the two properties the paper's comparison rests
//! on — indexing cost inflated by the `λ`-dimensional transform and the `m` projection
//! tables, and the distortion error that degrades the recall/time trade-off relative to
//! the tree indexes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod fh;
mod nh;
mod projections;
mod transform;

pub use fh::{FhIndex, FhParams};
pub use nh::{NhIndex, NhParams};
pub use projections::ProjectionTables;
pub use transform::QuadraticTransform;
