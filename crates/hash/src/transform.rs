//! The asymmetric quadratic transform of NH and FH (Huang et al., SIGMOD'21).
//!
//! For an augmented data point `x ∈ R^d` and query `q ∈ R^d`, the full transform maps
//!
//! ```text
//! f(x) = ( x_i·x_j )              for every ordered coordinate pair (i, j)
//! g(q) = ( ∓ q_i·q_j )            same pairs, negated for NH / positive for FH
//! ```
//!
//! so that `⟨f(x), g(q)⟩ = ∓ ⟨x, q⟩²`. NH appends a norm-alignment coordinate
//! `sqrt(M − ‖f(x)‖²)` to the data (0 to the query) so that all transformed data points
//! have the same norm `sqrt(M)` and Euclidean NNS over the transformed vectors orders
//! points by `⟨x, q⟩²` — exactly the P2HNNS order. FH keeps the raw transform and solves
//! a furthest-neighbor problem instead (handling the varying `‖f(x)‖` by norm-based
//! partitioning, see [`crate::FhIndex`]).
//!
//! The full transform has `d²` coordinates (`Ω(d²)` as the paper writes); the
//! **randomized sampling** variant draws `λ` coordinate pairs uniformly at random and
//! rescales, which is an unbiased estimator of the full inner product and is the variant
//! the paper benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use p2h_core::Scalar;

/// The (optionally sampled) quadratic coordinate-pair transform shared by NH and FH.
#[derive(Debug, Clone)]
pub struct QuadraticTransform {
    /// Input (augmented) dimensionality `d`.
    input_dim: usize,
    /// The sampled coordinate pairs; `pairs.len()` is the transformed dimensionality λ.
    pairs: Vec<(u32, u32)>,
    /// Scale applied to every sampled product so the sampled inner product estimates the
    /// full `⟨x,q⟩²` (irrelevant for ranking, kept for interpretability of norms).
    scale: Scalar,
}

impl QuadraticTransform {
    /// Creates the *full* `d²`-dimensional transform (every ordered pair `(i, j)`).
    pub fn full(input_dim: usize) -> Self {
        let mut pairs = Vec::with_capacity(input_dim * input_dim);
        for i in 0..input_dim as u32 {
            for j in 0..input_dim as u32 {
                pairs.push((i, j));
            }
        }
        Self { input_dim, pairs, scale: 1.0 }
    }

    /// Creates the randomized-sampling transform with `lambda` sampled coordinate pairs
    /// (the `λ ∈ {d, 2d, 4d, 8d}` configurations of the paper).
    pub fn sampled(input_dim: usize, lambda: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let lambda = lambda.max(1);
        let pairs = (0..lambda)
            .map(|_| (rng.gen_range(0..input_dim) as u32, rng.gen_range(0..input_dim) as u32))
            .collect();
        // Each product is sampled with probability λ/d², so rescale by d/sqrt(λ) to make
        // the sampled inner product an unbiased estimator of ⟨x,q⟩².
        let scale = input_dim as Scalar / (lambda as Scalar).sqrt();
        Self { input_dim, pairs, scale }
    }

    /// Reassembles a transform from its constituent parts — the inverse of reading
    /// [`QuadraticTransform::pairs`] and [`QuadraticTransform::scale`] off a built
    /// instance (the snapshot load path).
    ///
    /// # Errors
    ///
    /// Returns [`p2h_core::Error::Corrupt`] if the parts are inconsistent: no pairs, a
    /// pair index outside `0..input_dim`, or a non-finite or non-positive scale.
    pub fn from_parts(
        input_dim: usize,
        pairs: Vec<(u32, u32)>,
        scale: Scalar,
    ) -> p2h_core::Result<Self> {
        use p2h_core::Error;
        if input_dim == 0 || pairs.is_empty() {
            return Err(Error::Corrupt("transform needs input_dim ≥ 1 and λ ≥ 1".into()));
        }
        if pairs.iter().any(|&(i, j)| i as usize >= input_dim || j as usize >= input_dim) {
            return Err(Error::Corrupt(format!(
                "transform pair index outside input dimension {input_dim}"
            )));
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(Error::Corrupt(format!("transform scale {scale} is not positive")));
        }
        Ok(Self { input_dim, pairs, scale })
    }

    /// The sampled coordinate pairs. Exposed (with [`QuadraticTransform::scale`]) so
    /// persistence layers can serialize the transform without re-sampling it.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// The rescaling factor applied to every sampled product.
    pub fn scale(&self) -> Scalar {
        self.scale
    }

    /// Dimensionality of the transformed vectors (λ, or `d²` for the full transform).
    pub fn output_dim(&self) -> usize {
        self.pairs.len()
    }

    /// Input (augmented) dimensionality `d`.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Transforms a data point: `f(x)[k] = scale · x_i · x_j` for the k-th sampled pair.
    pub fn transform_data(&self, x: &[Scalar]) -> Vec<Scalar> {
        debug_assert_eq!(x.len(), self.input_dim);
        self.pairs.iter().map(|&(i, j)| self.scale * x[i as usize] * x[j as usize]).collect()
    }

    /// Transforms a query with the given sign (`-1` for NH so that larger inner product
    /// means smaller `⟨x,q⟩²`; `+1` for FH).
    pub fn transform_query(&self, q: &[Scalar], sign: Scalar) -> Vec<Scalar> {
        debug_assert_eq!(q.len(), self.input_dim);
        self.pairs.iter().map(|&(i, j)| sign * self.scale * q[i as usize] * q[j as usize]).collect()
    }

    /// The exact inner product the transform represents:
    /// `⟨f(x), g_sign(q)⟩ = sign · scale² · (Σ_sampled x_i x_j q_i q_j)`. With the full
    /// transform this equals `sign · ⟨x, q⟩²` exactly.
    pub fn transformed_inner_product(&self, x: &[Scalar], q: &[Scalar], sign: Scalar) -> Scalar {
        let fx = self.transform_data(x);
        let gq = self.transform_query(q, sign);
        p2h_core::distance::dot(&fx, &gq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::distance;
    use proptest::prelude::*;

    #[test]
    fn full_transform_recovers_squared_inner_product() {
        let t = QuadraticTransform::full(4);
        assert_eq!(t.output_dim(), 16);
        assert_eq!(t.input_dim(), 4);
        let x = [1.0, -2.0, 0.5, 1.0];
        let q = [0.3, 0.7, -1.1, 0.2];
        let ip = distance::dot(&x, &q);
        let got = t.transformed_inner_product(&x, &q, -1.0);
        assert!((got + ip * ip).abs() < 1e-4, "expected -<x,q>^2 = {}, got {got}", -ip * ip);
        let pos = t.transformed_inner_product(&x, &q, 1.0);
        assert!((pos - ip * ip).abs() < 1e-4);
    }

    #[test]
    fn sampled_transform_has_lambda_dims_and_is_deterministic() {
        let t1 = QuadraticTransform::sampled(10, 40, 7);
        let t2 = QuadraticTransform::sampled(10, 40, 7);
        assert_eq!(t1.output_dim(), 40);
        let x: Vec<Scalar> = (0..10).map(|i| i as Scalar * 0.1).collect();
        assert_eq!(t1.transform_data(&x), t2.transform_data(&x));
        let t3 = QuadraticTransform::sampled(10, 40, 8);
        assert_ne!(t1.transform_data(&x), t3.transform_data(&x));
    }

    #[test]
    fn sampled_transform_estimates_squared_inner_product() {
        // Averaged over many sampled transforms, the estimate converges to <x,q>^2.
        let x = [0.5, -1.0, 2.0, 0.0, 1.0, -0.5];
        let q = [1.0, 0.5, -0.5, 2.0, -1.0, 0.3];
        let exact = distance::dot(&x, &q).powi(2);
        let mut sum = 0.0;
        let trials = 400;
        for seed in 0..trials {
            let t = QuadraticTransform::sampled(6, 24, seed);
            sum += t.transformed_inner_product(&x, &q, 1.0);
        }
        let mean = sum / trials as Scalar;
        assert!(
            (mean - exact).abs() < 0.25 * exact.abs().max(1.0),
            "sampled estimator should be close to <x,q>^2 = {exact}, got mean {mean}"
        );
    }

    #[test]
    fn lambda_is_clamped_to_at_least_one() {
        let t = QuadraticTransform::sampled(5, 0, 1);
        assert_eq!(t.output_dim(), 1);
    }

    proptest! {
        #[test]
        fn full_transform_identity_holds(
            x in proptest::collection::vec(-3.0f32..3.0, 5),
            q in proptest::collection::vec(-3.0f32..3.0, 5),
        ) {
            let t = QuadraticTransform::full(5);
            let ip = distance::dot(&x, &q);
            let got = t.transformed_inner_product(&x, &q, -1.0);
            prop_assert!((got + ip * ip).abs() < 1e-2 * (1.0 + ip * ip));
        }
    }
}
