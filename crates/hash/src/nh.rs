//! NH: the nearest-neighbor-transformation hashing baseline (Huang et al., SIGMOD'21).

use std::time::Instant;

use p2h_core::{
    distance, HyperplaneQuery, P2hIndex, PointSet, Result, Scalar, SearchParams, SearchResult,
    SearchStats, TopKCollector,
};

use crate::projections::ProjectionTables;
use crate::transform::QuadraticTransform;

/// Configuration of an [`NhIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NhParams {
    /// Sampling dimension multiplier: the transform keeps `λ = lambda_factor · d`
    /// coordinates (the paper sweeps `λ ∈ {d, 2d, 4d, 8d}`).
    pub lambda_factor: usize,
    /// Number of projection tables `m`.
    pub tables: usize,
    /// Number of projection collisions a point needs before it is verified (the
    /// query-aware LSH frequency threshold). Clamped to `tables` at query time.
    pub collision_threshold: usize,
    /// RNG seed for the sampled transform and the projection directions.
    pub seed: u64,
}

impl Default for NhParams {
    fn default() -> Self {
        Self { lambda_factor: 4, tables: 32, collision_threshold: 2, seed: 0 }
    }
}

impl NhParams {
    /// Creates parameters with the given sampling factor and table count.
    pub fn new(lambda_factor: usize, tables: usize) -> Self {
        Self { lambda_factor, tables, ..Self::default() }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The NH index: asymmetric quadratic transform with a norm-alignment coordinate,
/// solved as a nearest-neighbor problem over sorted random projections.
///
/// After the transform, every data point has the same transformed norm `sqrt(M)`, so the
/// Euclidean nearest neighbor of the transformed query is the point minimizing
/// `⟨x, q⟩²` — i.e. the P2H nearest neighbor. The price is the `Ω(d²)` (here `λ`-sampled)
/// transform at indexing time and a heavy distortion of the distance landscape at query
/// time, which is exactly the behaviour the paper's comparison highlights.
#[derive(Debug, Clone)]
pub struct NhIndex {
    points: PointSet,
    transform: QuadraticTransform,
    tables: ProjectionTables,
    params: NhParams,
    /// Norm-alignment constant `M = max_x ‖f(x)‖²`.
    alignment_m: Scalar,
}

impl NhIndex {
    /// Builds an NH index over the given (augmented) point set.
    ///
    /// Indexing cost is `O(n · λ · m)` — the transform is evaluated for every point and
    /// every table projection touches all `λ + 1` transformed coordinates. Compare with
    /// the `O(n · d · log n)` of the trees; this gap is what Table III measures.
    ///
    /// # Errors
    ///
    /// Returns an error if the point set is empty (propagated from the point set) or the
    /// parameters are degenerate.
    pub fn build(points: &PointSet, params: NhParams) -> Result<Self> {
        if params.lambda_factor == 0 || params.tables == 0 {
            return Err(p2h_core::Error::InvalidParameter {
                name: "NhParams",
                message: "lambda_factor and tables must be positive".into(),
            });
        }
        let dim = points.dim();
        let lambda = params.lambda_factor * dim;
        let transform = QuadraticTransform::sampled(dim, lambda, params.seed);

        // First pass: the norm-alignment constant M.
        let mut alignment_m = 0.0 as Scalar;
        for x in points.iter() {
            let fx = transform.transform_data(x);
            alignment_m = alignment_m.max(distance::norm_sq(&fx));
        }

        // Second pass: build the sorted projection tables over [f(x); sqrt(M - ‖f(x)‖²)].
        // The transform is recomputed per point instead of materialized, keeping peak
        // memory at O(λ) instead of O(n·λ).
        let tables = ProjectionTables::build(
            points.len(),
            lambda + 1,
            params.tables,
            params.seed.wrapping_add(1),
            |i| {
                let mut fx = transform.transform_data(points.point(i));
                let tail = (alignment_m - distance::norm_sq(&fx)).max(0.0).sqrt();
                fx.push(tail);
                fx
            },
        );

        Ok(Self { points: points.clone(), transform, tables, params, alignment_m })
    }

    /// Reassembles an NH index from its constituent parts — the inverse of reading
    /// [`NhIndex::transform`], [`NhIndex::tables`], [`NhIndex::params`], and
    /// [`NhIndex::alignment_constant`] off a built index. This is the load path for
    /// persistent snapshots: because the projection tables and the sampled transform
    /// are restored verbatim, the reassembled index streams candidates and answers
    /// queries identically to the one that was saved.
    ///
    /// # Errors
    ///
    /// Returns a typed error (never panics) if the parts are inconsistent: degenerate
    /// parameters, a transform whose input dimension differs from the point set, a
    /// table dimensionality that is not `λ + 1` (the norm-alignment coordinate), or
    /// tables indexing a different number of points.
    pub fn from_parts(
        points: PointSet,
        transform: QuadraticTransform,
        tables: ProjectionTables,
        params: NhParams,
        alignment_m: Scalar,
    ) -> Result<Self> {
        use p2h_core::Error;
        if params.lambda_factor == 0 || params.tables == 0 {
            return Err(Error::Corrupt("NH params must have positive λ factor and tables".into()));
        }
        if transform.input_dim() != points.dim() {
            return Err(Error::Corrupt(format!(
                "NH transform input dim {} differs from point dim {}",
                transform.input_dim(),
                points.dim()
            )));
        }
        if tables.dim() != transform.output_dim() + 1 {
            return Err(Error::Corrupt(format!(
                "NH table dim {} is not λ + 1 = {}",
                tables.dim(),
                transform.output_dim() + 1
            )));
        }
        if tables.len() != points.len() {
            return Err(Error::Corrupt(format!(
                "NH tables index {} points, point set holds {}",
                tables.len(),
                points.len()
            )));
        }
        if params.tables != tables.table_count() {
            return Err(Error::Corrupt(format!(
                "NH params declare {} tables, {} present",
                params.tables,
                tables.table_count()
            )));
        }
        if !alignment_m.is_finite() || alignment_m < 0.0 {
            return Err(Error::Corrupt(format!(
                "NH alignment constant {alignment_m} is not a finite non-negative value"
            )));
        }
        Ok(Self { points, transform, tables, params, alignment_m })
    }

    /// The parameters the index was built with.
    pub fn params(&self) -> &NhParams {
        &self.params
    }

    /// The indexed (augmented) point set.
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// The sampled quadratic transform. Exposed (with [`NhIndex::tables`]) so
    /// persistence layers can serialize the index without rebuilding it.
    pub fn transform(&self) -> &QuadraticTransform {
        &self.transform
    }

    /// The sorted random-projection tables over the transformed points.
    pub fn tables(&self) -> &ProjectionTables {
        &self.tables
    }

    /// The norm-alignment constant `M`.
    pub fn alignment_constant(&self) -> Scalar {
        self.alignment_m
    }

    /// The sampled transformed dimensionality `λ`.
    pub fn lambda(&self) -> usize {
        self.transform.output_dim()
    }
}

impl P2hIndex for NhIndex {
    fn name(&self) -> &'static str {
        "NH"
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn dim(&self) -> usize {
        self.points.dim()
    }

    fn index_size_bytes(&self) -> usize {
        self.tables.size_bytes() + std::mem::size_of::<Self>()
    }

    fn search(&self, query: &HyperplaneQuery, params: &SearchParams) -> SearchResult {
        assert_eq!(query.dim(), self.points.dim(), "query dimension mismatch");
        let start = Instant::now();
        let timing = params.collect_timing;
        let mut stats = SearchStats::default();
        let mut collector = TopKCollector::new(params.k);
        let limit = params.candidate_limit.unwrap_or(self.points.len()) as u64;

        // Transform and project the query (the "hash the query" step).
        let lookup_timer = timing.then(Instant::now);
        let mut gq = self.transform.transform_query(query.coeffs(), -1.0);
        gq.push(0.0);
        let query_projections = self.tables.project(&gq);
        let mut stream = self.tables.nearest_candidates(&query_projections);
        if let Some(t) = lookup_timer {
            stats.time_lookup_ns += t.elapsed().as_nanos() as u64;
        }

        // Query-aware collision counting: a point becomes a verification candidate once
        // it has appeared close to the query projection in `collision_threshold` tables.
        let threshold = self.params.collision_threshold.clamp(1, self.params.tables) as u16;
        let mut collisions = vec![0u16; self.points.len()];
        // Resolve the buffer-backed point payload once: a mapped `VecBuf` pays a
        // dynamic-dispatch slice resolution per deref, which must stay out of the
        // per-candidate loop.
        let flat = self.points.as_flat();
        let dim = self.points.dim();
        loop {
            if stats.candidates_verified >= limit {
                break;
            }
            let lookup_timer = timing.then(Instant::now);
            let next = stream.next();
            if let Some(t) = lookup_timer {
                stats.time_lookup_ns += t.elapsed().as_nanos() as u64;
            }
            let Some(id) = next else { break };
            let id = id as usize;
            collisions[id] = collisions[id].saturating_add(1);
            if collisions[id] != threshold {
                continue;
            }

            let verify_timer = timing.then(Instant::now);
            let dist = query.p2h_distance(&flat[id * dim..(id + 1) * dim]);
            stats.inner_products += 1;
            stats.candidates_verified += 1;
            collector.offer(id, dist);
            if let Some(t) = verify_timer {
                stats.time_verify_ns += t.elapsed().as_nanos() as u64;
            }
        }

        stats.buckets_probed = stream.probes();
        stats.time_total_ns = start.elapsed().as_nanos() as u64;
        SearchResult { neighbors: collector.into_sorted_vec(), stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::LinearScan;
    use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};

    fn dataset(n: usize, dim: usize) -> PointSet {
        SyntheticDataset::new(
            "nh-test",
            n,
            dim,
            DataDistribution::GaussianClusters { clusters: 5, std_dev: 1.0 },
            33,
        )
        .generate()
        .unwrap()
    }

    #[test]
    fn build_and_metadata() {
        let ps = dataset(500, 10);
        let index = NhIndex::build(&ps, NhParams::new(2, 8)).unwrap();
        assert_eq!(index.name(), "NH");
        assert_eq!(index.len(), 500);
        assert_eq!(index.dim(), 11);
        assert_eq!(index.lambda(), 22);
        assert_eq!(index.params().tables, 8);
        assert!(index.alignment_constant() > 0.0);
        assert!(index.index_size_bytes() > 0);
    }

    #[test]
    fn rejects_degenerate_params() {
        let ps = dataset(100, 6);
        assert!(NhIndex::build(&ps, NhParams::new(0, 8)).is_err());
        assert!(NhIndex::build(&ps, NhParams::new(2, 0)).is_err());
    }

    #[test]
    fn unlimited_budget_is_exact() {
        let ps = dataset(800, 8);
        let index = NhIndex::build(&ps, NhParams::new(2, 8)).unwrap();
        let scan = LinearScan::new(ps.clone());
        let queries = generate_queries(&ps, 5, QueryDistribution::DataDifference, 1).unwrap();
        for q in &queries {
            let exact = scan.search_exact(q, 5);
            let got = index.search_exact(q, 5);
            assert_eq!(got.distances(), exact.distances());
        }
    }

    #[test]
    fn candidate_budget_is_respected_and_recall_reasonable() {
        let ps = dataset(4_000, 12);
        let index = NhIndex::build(&ps, NhParams::new(4, 16)).unwrap();
        let scan = LinearScan::new(ps.clone());
        let queries = generate_queries(&ps, 10, QueryDistribution::DataDifference, 2).unwrap();
        let mut hits = 0usize;
        for q in &queries {
            let exact: Vec<usize> = scan.search_exact(q, 10).indices();
            let result = index.search(q, &SearchParams::approximate(10, 1_000));
            assert!(result.stats.candidates_verified <= 1_000);
            assert!(result.stats.buckets_probed > 0);
            hits += result.indices().iter().filter(|i| exact.contains(i)).count();
        }
        // The asymmetric transform adds a large constant to every transformed distance
        // (the distortion error of Section I of the BC-Tree paper), so NH's candidate
        // ordering is only weakly informative at small budgets. With a quarter of the
        // data as candidates we only require recall to be in the ballpark of the budget
        // fraction — i.e. the index is functioning, not broken.
        assert!(
            hits as f64 >= 0.15 * (10 * queries.len()) as f64,
            "NH recall unexpectedly low: {hits}/{}",
            10 * queries.len()
        );
    }

    #[test]
    fn larger_budget_does_not_reduce_hits() {
        let ps = dataset(2_000, 8);
        let index = NhIndex::build(&ps, NhParams::new(2, 16)).unwrap();
        let scan = LinearScan::new(ps.clone());
        let q = &generate_queries(&ps, 1, QueryDistribution::DataDifference, 3).unwrap()[0];
        let exact: Vec<usize> = scan.search_exact(q, 10).indices();
        let hits = |limit| {
            index
                .search(q, &SearchParams::approximate(10, limit))
                .indices()
                .iter()
                .filter(|i| exact.contains(i))
                .count()
        };
        assert!(hits(2_000) >= hits(200));
        assert_eq!(hits(2_000), 10);
    }

    #[test]
    fn timing_collection_populates_lookup_and_verify() {
        let ps = dataset(1_000, 8);
        let index = NhIndex::build(&ps, NhParams::new(2, 8)).unwrap();
        let q = &generate_queries(&ps, 1, QueryDistribution::DataDifference, 4).unwrap()[0];
        let result = index.search(q, &SearchParams::approximate(5, 300).with_timing());
        assert!(result.stats.time_lookup_ns > 0);
        assert!(result.stats.time_verify_ns > 0);
        assert!(result.stats.time_total_ns > 0);
    }
}
