//! Query-aware sorted random projections (the QALSH / RQALSH machinery of NH and FH).
//!
//! Every table draws one random direction in the transformed space and stores the data
//! projections as a sorted array. At query time the query is projected onto the same
//! directions and candidates are streamed either **nearest-first** (expanding outwards
//! from the query's position in each sorted array — the NNS side used by NH) or
//! **furthest-first** (expanding inwards from the extremes of each array — the FNS side
//! used by FH). Tables are merged by a priority queue on the projection gap, so the
//! stream is globally ordered by how promising each candidate's collision is.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use p2h_core::{distance, Scalar};

/// A set of `m` sorted random-projection tables over vectors of a fixed dimensionality.
#[derive(Debug, Clone)]
pub struct ProjectionTables {
    dim: usize,
    /// `m · dim` direction components (each direction has unit expected norm).
    directions: Vec<Scalar>,
    /// One sorted `(projection value, point id)` array per direction.
    tables: Vec<Vec<(Scalar, u32)>>,
}

impl ProjectionTables {
    /// Builds `m` sorted projection tables over `n` transformed vectors produced by
    /// `vector_of(i)` for `i in 0..n`.
    pub fn build<F>(n: usize, dim: usize, m: usize, seed: u64, mut vector_of: F) -> Self
    where
        F: FnMut(usize) -> Vec<Scalar>,
    {
        let m = m.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = 1.0 / (dim as Scalar).sqrt();
        let directions: Vec<Scalar> = (0..m * dim)
            .map(|_| (rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0)) * scale)
            .collect();

        let mut tables: Vec<Vec<(Scalar, u32)>> = vec![Vec::with_capacity(n); m];
        for i in 0..n {
            let v = vector_of(i);
            debug_assert_eq!(v.len(), dim);
            for (t, table) in tables.iter_mut().enumerate() {
                let dir = &directions[t * dim..(t + 1) * dim];
                table.push((distance::dot(dir, &v), i as u32));
            }
        }
        for table in &mut tables {
            table.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        Self { dim, directions, tables }
    }

    /// Reassembles projection tables from their constituent arrays — the inverse of
    /// reading [`ProjectionTables::directions`] and [`ProjectionTables::tables`] off a
    /// built instance. This is the load path for persistent snapshots: the arrays are
    /// restored verbatim, so the reassembled tables stream candidates identically.
    ///
    /// # Errors
    ///
    /// Returns [`p2h_core::Error::Corrupt`] (never panics) if the arrays are
    /// inconsistent: a direction buffer that is not `m × dim`, tables of unequal
    /// length, entries out of sort order, or ids that are not a permutation of the
    /// indexed vectors (the candidate streams assume each id appears exactly once per
    /// table).
    pub fn from_parts(
        dim: usize,
        directions: Vec<Scalar>,
        tables: Vec<Vec<(Scalar, u32)>>,
    ) -> p2h_core::Result<Self> {
        use p2h_core::Error;
        if dim == 0 || tables.is_empty() {
            return Err(Error::Corrupt("projection tables need dim ≥ 1 and m ≥ 1".into()));
        }
        if directions.len() != tables.len() * dim {
            return Err(Error::Corrupt(format!(
                "direction buffer has {} scalars for {} tables of dim {dim}",
                directions.len(),
                tables.len()
            )));
        }
        let n = tables[0].len();
        let mut seen = vec![false; n];
        for table in &tables {
            if table.len() != n {
                return Err(Error::Corrupt(format!(
                    "projection tables have unequal lengths ({} vs {n})",
                    table.len()
                )));
            }
            if table.windows(2).any(|w| w[0].0.total_cmp(&w[1].0) == std::cmp::Ordering::Greater) {
                return Err(Error::Corrupt("projection table is not sorted".into()));
            }
            seen.iter_mut().for_each(|s| *s = false);
            for &(_, id) in table {
                let id = id as usize;
                if id >= n || seen[id] {
                    return Err(Error::Corrupt(
                        "projection table ids are not a permutation".into(),
                    ));
                }
                seen[id] = true;
            }
        }
        Ok(Self { dim, directions, tables })
    }

    /// Number of projection tables `m`.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Dimensionality of the projected vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The flat `m × dim` direction buffer (table `t` owns rows `t·dim .. (t+1)·dim`).
    /// Exposed (with [`ProjectionTables::tables`]) so persistence layers can serialize
    /// the tables without re-projecting the data.
    pub fn directions(&self) -> &[Scalar] {
        &self.directions
    }

    /// The sorted `(projection value, point id)` arrays, one per table.
    pub fn tables(&self) -> &[Vec<(Scalar, u32)>] {
        &self.tables
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.tables.first().map_or(0, Vec::len)
    }

    /// Whether the tables are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Projects a query vector onto every table direction.
    pub fn project(&self, v: &[Scalar]) -> Vec<Scalar> {
        debug_assert_eq!(v.len(), self.dim);
        (0..self.tables.len())
            .map(|t| distance::dot(&self.directions[t * self.dim..(t + 1) * self.dim], v))
            .collect()
    }

    /// Memory used by the tables and directions in bytes.
    pub fn size_bytes(&self) -> usize {
        self.directions.len() * std::mem::size_of::<Scalar>()
            + self
                .tables
                .iter()
                .map(|t| t.len() * std::mem::size_of::<(Scalar, u32)>())
                .sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    /// Streams point ids nearest-first (smallest projection gap first), merged across
    /// all tables. Ids may repeat across tables; callers deduplicate.
    pub fn nearest_candidates(&self, query_projections: &[Scalar]) -> CandidateStream<'_> {
        CandidateStream::new(self, query_projections, ProbeOrder::Nearest)
    }

    /// Streams point ids furthest-first (largest projection gap first).
    pub fn furthest_candidates(&self, query_projections: &[Scalar]) -> CandidateStream<'_> {
        CandidateStream::new(self, query_projections, ProbeOrder::Furthest)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeOrder {
    Nearest,
    Furthest,
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    /// Priority: negative gap for nearest-first (so the max-heap pops the smallest gap),
    /// positive gap for furthest-first.
    priority: Scalar,
    table: u32,
    /// 0 = cursor moving left / from the left end, 1 = moving right / from the right end.
    side: u8,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.table == other.table && self.side == other.side
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| self.table.cmp(&other.table))
            .then_with(|| self.side.cmp(&other.side))
    }
}

/// An iterator over point ids in probe order (see [`ProjectionTables::nearest_candidates`]
/// and [`ProjectionTables::furthest_candidates`]).
#[derive(Debug)]
pub struct CandidateStream<'a> {
    tables: &'a [Vec<(Scalar, u32)>],
    query_projections: Vec<Scalar>,
    order: ProbeOrder,
    /// Per (table, side) cursor: the index of the *next* entry to emit.
    cursors: Vec<[isize; 2]>,
    heap: BinaryHeap<HeapEntry>,
    /// Number of heap pops so far (reported as `buckets_probed`).
    probes: u64,
}

impl<'a> CandidateStream<'a> {
    fn new(tables: &'a ProjectionTables, query_projections: &[Scalar], order: ProbeOrder) -> Self {
        assert_eq!(query_projections.len(), tables.table_count());
        let mut stream = Self {
            tables: &tables.tables,
            query_projections: query_projections.to_vec(),
            order,
            cursors: Vec::with_capacity(tables.table_count()),
            heap: BinaryHeap::with_capacity(tables.table_count() * 2),
            probes: 0,
        };
        for (t, table) in stream.tables.iter().enumerate() {
            let n = table.len() as isize;
            let cursors = match order {
                ProbeOrder::Nearest => {
                    let qp = stream.query_projections[t];
                    let pos = table.partition_point(|&(v, _)| v < qp) as isize;
                    [pos - 1, pos]
                }
                ProbeOrder::Furthest => [0, n - 1],
            };
            stream.cursors.push(cursors);
            for side in 0..2u8 {
                stream.push_cursor(t as u32, side);
            }
        }
        stream
    }

    /// Number of probe steps performed so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    fn push_cursor(&mut self, table: u32, side: u8) {
        let t = table as usize;
        let idx = self.cursors[t][side as usize];
        let tbl = &self.tables[t];
        if idx < 0 || idx >= tbl.len() as isize {
            return;
        }
        let gap = (tbl[idx as usize].0 - self.query_projections[t]).abs();
        let priority = match self.order {
            ProbeOrder::Nearest => -gap,
            ProbeOrder::Furthest => gap,
        };
        self.heap.push(HeapEntry { priority, table, side });
    }
}

impl Iterator for CandidateStream<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            let entry = self.heap.pop()?;
            let t = entry.table as usize;
            let side = entry.side as usize;
            let idx = self.cursors[t][side];
            // In the furthest order the two cursors sweep toward each other; once they
            // cross, everything between them has already been emitted by the other side,
            // so stale heap entries are skipped.
            if self.order == ProbeOrder::Furthest && self.cursors[t][0] > self.cursors[t][1] {
                continue;
            }
            self.probes += 1;
            let id = self.tables[t][idx as usize].1;
            // Advance the cursor: outward for nearest (left decreases, right increases),
            // inward for furthest (left increases, right decreases).
            let delta: isize = match (self.order, side) {
                (ProbeOrder::Nearest, 0) => -1,
                (ProbeOrder::Nearest, _) => 1,
                (ProbeOrder::Furthest, 0) => 1,
                (ProbeOrder::Furthest, _) => -1,
            };
            self.cursors[t][side] = idx + delta;
            self.push_cursor(entry.table, entry.side);
            return Some(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ten 1-D vectors with values 0..10; a single table keeps the maths obvious.
    fn line_tables(m: usize) -> ProjectionTables {
        ProjectionTables::build(10, 1, m, 3, |i| vec![i as Scalar])
    }

    #[test]
    fn build_shapes() {
        let tables = line_tables(4);
        assert_eq!(tables.table_count(), 4);
        assert_eq!(tables.len(), 10);
        assert!(!tables.is_empty());
        assert!(tables.size_bytes() > 0);
        assert_eq!(tables.project(&[1.0]).len(), 4);
    }

    #[test]
    fn nearest_stream_visits_close_projections_first() {
        let tables = line_tables(1);
        // Query projecting near the value of point 6.
        let qproj = tables.project(&[6.2]);
        let order: Vec<u32> = tables.nearest_candidates(&qproj).take(4).collect();
        assert!(order.contains(&6), "closest point should be among the first probes: {order:?}");
        // The stream eventually yields every point exactly once per table.
        let all: Vec<u32> = tables.nearest_candidates(&qproj).collect();
        assert_eq!(all.len(), 10);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn furthest_stream_visits_extremes_first() {
        let tables = line_tables(1);
        // A query projecting at the location of point 0 makes the furthest-first order
        // unambiguous: 9, then 8, then 7, ...
        let qproj = tables.project(&[0.0]);
        let first: Vec<u32> = tables.furthest_candidates(&qproj).take(3).collect();
        assert_eq!(first, vec![9, 8, 7], "furthest-first probing must start at the far extreme");
        let all: Vec<u32> = tables.furthest_candidates(&qproj).collect();
        assert_eq!(all.len(), 10, "every point is eventually emitted exactly once");
        let mut sorted = all;
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn multi_table_stream_emits_each_id_once_per_table() {
        let tables = line_tables(3);
        let qproj = tables.project(&[2.0]);
        let all: Vec<u32> = tables.nearest_candidates(&qproj).collect();
        assert_eq!(all.len(), 30);
        let far: Vec<u32> = tables.furthest_candidates(&qproj).collect();
        assert_eq!(far.len(), 30);
    }

    #[test]
    fn probe_counter_tracks_pops() {
        let tables = line_tables(2);
        let qproj = tables.project(&[0.0]);
        let mut stream = tables.nearest_candidates(&qproj);
        assert_eq!(stream.probes(), 0);
        let _ = stream.next();
        let _ = stream.next();
        assert_eq!(stream.probes(), 2);
    }

    #[test]
    fn nearest_order_is_monotone_in_gap_single_table() {
        let tables = line_tables(1);
        let qproj = tables.project(&[4.5]);
        let stream = tables.nearest_candidates(&qproj);
        let dir = tables.directions[0];
        let gaps: Vec<Scalar> = stream.map(|id| (dir * id as Scalar - qproj[0]).abs()).collect();
        assert!(
            gaps.windows(2).all(|w| w[0] <= w[1] + 1e-6),
            "nearest-first gaps must be non-decreasing: {gaps:?}"
        );
    }
}
