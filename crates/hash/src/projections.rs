//! Query-aware sorted random projections (the QALSH / RQALSH machinery of NH and FH).
//!
//! Every table draws one random direction in the transformed space and stores the data
//! projections as a sorted array. At query time the query is projected onto the same
//! directions and candidates are streamed either **nearest-first** (expanding outwards
//! from the query's position in each sorted array — the NNS side used by NH) or
//! **furthest-first** (expanding inwards from the extremes of each array — the FNS side
//! used by FH). Tables are merged by a priority queue on the projection gap, so the
//! stream is globally ordered by how promising each candidate's collision is.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use p2h_core::{distance, Scalar, VecBuf};

/// A set of `m` sorted random-projection tables over vectors of a fixed dimensionality.
///
/// The tables are stored struct-of-arrays: one flat buffer of sorted projection values
/// and one flat buffer of the matching point ids, each `m × n` in table-major order
/// (table `t` owns `t·n .. (t+1)·n`). All three arrays are [`VecBuf`]s, so a snapshot
/// loader can restore them zero-copy from a memory-mapped region; the split layout is
/// what makes that possible (an interleaved `(f32, u32)` pair array has no stable
/// castable layout).
#[derive(Debug, Clone)]
pub struct ProjectionTables {
    dim: usize,
    /// Number of indexed vectors per table.
    len: usize,
    /// `m · dim` direction components (each direction has unit expected norm).
    directions: VecBuf<Scalar>,
    /// `m · len` sorted projection values, table-major.
    values: VecBuf<Scalar>,
    /// `m · len` point ids aligned with `values`.
    ids: VecBuf<u32>,
}

impl ProjectionTables {
    /// Builds `m` sorted projection tables over `n` transformed vectors produced by
    /// `vector_of(i)` for `i in 0..n`.
    pub fn build<F>(n: usize, dim: usize, m: usize, seed: u64, mut vector_of: F) -> Self
    where
        F: FnMut(usize) -> Vec<Scalar>,
    {
        let m = m.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = 1.0 / (dim as Scalar).sqrt();
        let directions: Vec<Scalar> = (0..m * dim)
            .map(|_| (rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0)) * scale)
            .collect();

        let mut tables: Vec<Vec<(Scalar, u32)>> = vec![Vec::with_capacity(n); m];
        for i in 0..n {
            let v = vector_of(i);
            debug_assert_eq!(v.len(), dim);
            for (t, table) in tables.iter_mut().enumerate() {
                let dir = &directions[t * dim..(t + 1) * dim];
                table.push((distance::dot(dir, &v), i as u32));
            }
        }
        let mut values = Vec::with_capacity(m * n);
        let mut ids = Vec::with_capacity(m * n);
        for table in &mut tables {
            table.sort_by(|a, b| a.0.total_cmp(&b.0));
            values.extend(table.iter().map(|&(v, _)| v));
            ids.extend(table.iter().map(|&(_, id)| id));
        }
        Self { dim, len: n, directions: directions.into(), values: values.into(), ids: ids.into() }
    }

    /// Reassembles projection tables from their constituent flat arrays — the inverse
    /// of reading [`ProjectionTables::directions`], [`ProjectionTables::values`], and
    /// [`ProjectionTables::ids`] off a built instance. This is the load path for
    /// persistent snapshots: the arrays are restored verbatim (owned or mapped), so
    /// the reassembled tables stream candidates identically.
    ///
    /// # Errors
    ///
    /// Returns [`p2h_core::Error::Corrupt`] (never panics) if the arrays are
    /// inconsistent: a direction buffer that is not a multiple of `dim`, value/id
    /// buffers that are not `m × n`, entries out of sort order, or ids that are not a
    /// permutation of the indexed vectors per table (the candidate streams assume each
    /// id appears exactly once per table).
    pub fn from_parts(
        dim: usize,
        directions: impl Into<VecBuf<Scalar>>,
        len: usize,
        values: impl Into<VecBuf<Scalar>>,
        ids: impl Into<VecBuf<u32>>,
    ) -> p2h_core::Result<Self> {
        use p2h_core::Error;
        let directions = directions.into();
        let values = values.into();
        let ids = ids.into();
        if dim == 0 || directions.is_empty() || !directions.len().is_multiple_of(dim) {
            return Err(Error::Corrupt(format!(
                "direction buffer has {} scalars, not a positive multiple of dim {dim}",
                directions.len()
            )));
        }
        let m = directions.len() / dim;
        let n = len;
        if n == 0 || values.len() != m * n || ids.len() != m * n {
            return Err(Error::Corrupt(format!(
                "projection buffers hold {} values / {} ids for {m} tables of {n} vectors",
                values.len(),
                ids.len()
            )));
        }
        let mut seen = vec![false; n];
        for t in 0..m {
            let table_values = &values[t * n..(t + 1) * n];
            if table_values.windows(2).any(|w| w[0].total_cmp(&w[1]) == std::cmp::Ordering::Greater)
            {
                return Err(Error::Corrupt("projection table is not sorted".into()));
            }
            seen.iter_mut().for_each(|s| *s = false);
            for &id in &ids[t * n..(t + 1) * n] {
                let id = id as usize;
                if id >= n || seen[id] {
                    return Err(Error::Corrupt(
                        "projection table ids are not a permutation".into(),
                    ));
                }
                seen[id] = true;
            }
        }
        Ok(Self { dim, len: n, directions, values, ids })
    }

    /// Number of projection tables `m`.
    pub fn table_count(&self) -> usize {
        self.directions.len() / self.dim
    }

    /// Dimensionality of the projected vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The flat `m × dim` direction buffer (table `t` owns rows `t·dim .. (t+1)·dim`).
    /// Exposed (with the value/id buffers) so persistence layers can serialize the
    /// tables without re-projecting the data.
    pub fn directions(&self) -> &[Scalar] {
        &self.directions
    }

    /// The flat `m × n` sorted projection values, table-major.
    pub fn values(&self) -> &[Scalar] {
        &self.values
    }

    /// The flat `m × n` point ids aligned with [`ProjectionTables::values`].
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The sorted projection values of table `t`.
    #[inline]
    pub fn table_values(&self, t: usize) -> &[Scalar] {
        &self.values[t * self.len..(t + 1) * self.len]
    }

    /// The point ids of table `t`, aligned with [`ProjectionTables::table_values`].
    #[inline]
    pub fn table_ids(&self, t: usize) -> &[u32] {
        &self.ids[t * self.len..(t + 1) * self.len]
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tables are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Projects a query vector onto every table direction.
    pub fn project(&self, v: &[Scalar]) -> Vec<Scalar> {
        debug_assert_eq!(v.len(), self.dim);
        (0..self.table_count())
            .map(|t| distance::dot(&self.directions[t * self.dim..(t + 1) * self.dim], v))
            .collect()
    }

    /// Heap memory owned by the tables and directions in bytes (mapped buffers count
    /// 0 — their bytes belong to the shared snapshot region).
    pub fn size_bytes(&self) -> usize {
        self.directions.heap_bytes()
            + self.values.heap_bytes()
            + self.ids.heap_bytes()
            + std::mem::size_of::<Self>()
    }

    /// Streams point ids nearest-first (smallest projection gap first), merged across
    /// all tables. Ids may repeat across tables; callers deduplicate.
    pub fn nearest_candidates(&self, query_projections: &[Scalar]) -> CandidateStream<'_> {
        CandidateStream::new(self, query_projections, ProbeOrder::Nearest)
    }

    /// Streams point ids furthest-first (largest projection gap first).
    pub fn furthest_candidates(&self, query_projections: &[Scalar]) -> CandidateStream<'_> {
        CandidateStream::new(self, query_projections, ProbeOrder::Furthest)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeOrder {
    Nearest,
    Furthest,
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    /// Priority: negative gap for nearest-first (so the max-heap pops the smallest gap),
    /// positive gap for furthest-first.
    priority: Scalar,
    table: u32,
    /// 0 = cursor moving left / from the left end, 1 = moving right / from the right end.
    side: u8,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.table == other.table && self.side == other.side
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| self.table.cmp(&other.table))
            .then_with(|| self.side.cmp(&other.side))
    }
}

/// An iterator over point ids in probe order (see [`ProjectionTables::nearest_candidates`]
/// and [`ProjectionTables::furthest_candidates`]).
#[derive(Debug)]
pub struct CandidateStream<'a> {
    /// Flat sorted projection values, resolved once from the (possibly mapped)
    /// buffer — per-probe derefs of a mapped `VecBuf` would pay a dynamic dispatch
    /// in the hottest hashing loop.
    values: &'a [Scalar],
    /// Flat point ids aligned with `values`.
    ids: &'a [u32],
    /// Vectors per table.
    n: usize,
    query_projections: Vec<Scalar>,
    order: ProbeOrder,
    /// Per (table, side) cursor: the index of the *next* entry to emit.
    cursors: Vec<[isize; 2]>,
    heap: BinaryHeap<HeapEntry>,
    /// Number of heap pops so far (reported as `buckets_probed`).
    probes: u64,
}

impl<'a> CandidateStream<'a> {
    fn new(tables: &'a ProjectionTables, query_projections: &[Scalar], order: ProbeOrder) -> Self {
        assert_eq!(query_projections.len(), tables.table_count());
        let mut stream = Self {
            values: tables.values(),
            ids: tables.ids(),
            n: tables.len(),
            query_projections: query_projections.to_vec(),
            order,
            cursors: Vec::with_capacity(tables.table_count()),
            heap: BinaryHeap::with_capacity(tables.table_count() * 2),
            probes: 0,
        };
        let n = tables.len() as isize;
        for t in 0..tables.table_count() {
            let cursors = match order {
                ProbeOrder::Nearest => {
                    let qp = stream.query_projections[t];
                    let pos = stream.table_values(t).partition_point(|&v| v < qp) as isize;
                    [pos - 1, pos]
                }
                ProbeOrder::Furthest => [0, n - 1],
            };
            stream.cursors.push(cursors);
            for side in 0..2u8 {
                stream.push_cursor(t as u32, side);
            }
        }
        stream
    }

    #[inline]
    fn table_values(&self, t: usize) -> &'a [Scalar] {
        &self.values[t * self.n..(t + 1) * self.n]
    }

    /// Number of probe steps performed so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    fn push_cursor(&mut self, table: u32, side: u8) {
        let t = table as usize;
        let idx = self.cursors[t][side as usize];
        let values = self.table_values(t);
        if idx < 0 || idx >= values.len() as isize {
            return;
        }
        let gap = (values[idx as usize] - self.query_projections[t]).abs();
        let priority = match self.order {
            ProbeOrder::Nearest => -gap,
            ProbeOrder::Furthest => gap,
        };
        self.heap.push(HeapEntry { priority, table, side });
    }
}

impl Iterator for CandidateStream<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            let entry = self.heap.pop()?;
            let t = entry.table as usize;
            let side = entry.side as usize;
            let idx = self.cursors[t][side];
            // In the furthest order the two cursors sweep toward each other; once they
            // cross, everything between them has already been emitted by the other side,
            // so stale heap entries are skipped.
            if self.order == ProbeOrder::Furthest && self.cursors[t][0] > self.cursors[t][1] {
                continue;
            }
            self.probes += 1;
            let id = self.ids[t * self.n + idx as usize];
            // Advance the cursor: outward for nearest (left decreases, right increases),
            // inward for furthest (left increases, right decreases).
            let delta: isize = match (self.order, side) {
                (ProbeOrder::Nearest, 0) => -1,
                (ProbeOrder::Nearest, _) => 1,
                (ProbeOrder::Furthest, 0) => 1,
                (ProbeOrder::Furthest, _) => -1,
            };
            self.cursors[t][side] = idx + delta;
            self.push_cursor(entry.table, entry.side);
            return Some(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ten 1-D vectors with values 0..10; a single table keeps the maths obvious.
    fn line_tables(m: usize) -> ProjectionTables {
        ProjectionTables::build(10, 1, m, 3, |i| vec![i as Scalar])
    }

    #[test]
    fn build_shapes() {
        let tables = line_tables(4);
        assert_eq!(tables.table_count(), 4);
        assert_eq!(tables.len(), 10);
        assert!(!tables.is_empty());
        assert!(tables.size_bytes() > 0);
        assert_eq!(tables.project(&[1.0]).len(), 4);
    }

    #[test]
    fn nearest_stream_visits_close_projections_first() {
        let tables = line_tables(1);
        // Query projecting near the value of point 6.
        let qproj = tables.project(&[6.2]);
        let order: Vec<u32> = tables.nearest_candidates(&qproj).take(4).collect();
        assert!(order.contains(&6), "closest point should be among the first probes: {order:?}");
        // The stream eventually yields every point exactly once per table.
        let all: Vec<u32> = tables.nearest_candidates(&qproj).collect();
        assert_eq!(all.len(), 10);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn furthest_stream_visits_extremes_first() {
        let tables = line_tables(1);
        // A query projecting at the location of point 0 makes the furthest-first order
        // unambiguous: 9, then 8, then 7, ...
        let qproj = tables.project(&[0.0]);
        let first: Vec<u32> = tables.furthest_candidates(&qproj).take(3).collect();
        assert_eq!(first, vec![9, 8, 7], "furthest-first probing must start at the far extreme");
        let all: Vec<u32> = tables.furthest_candidates(&qproj).collect();
        assert_eq!(all.len(), 10, "every point is eventually emitted exactly once");
        let mut sorted = all;
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn multi_table_stream_emits_each_id_once_per_table() {
        let tables = line_tables(3);
        let qproj = tables.project(&[2.0]);
        let all: Vec<u32> = tables.nearest_candidates(&qproj).collect();
        assert_eq!(all.len(), 30);
        let far: Vec<u32> = tables.furthest_candidates(&qproj).collect();
        assert_eq!(far.len(), 30);
    }

    #[test]
    fn probe_counter_tracks_pops() {
        let tables = line_tables(2);
        let qproj = tables.project(&[0.0]);
        let mut stream = tables.nearest_candidates(&qproj);
        assert_eq!(stream.probes(), 0);
        let _ = stream.next();
        let _ = stream.next();
        assert_eq!(stream.probes(), 2);
    }

    #[test]
    fn nearest_order_is_monotone_in_gap_single_table() {
        let tables = line_tables(1);
        let qproj = tables.project(&[4.5]);
        let stream = tables.nearest_candidates(&qproj);
        let dir = tables.directions[0];
        let gaps: Vec<Scalar> = stream.map(|id| (dir * id as Scalar - qproj[0]).abs()).collect();
        assert!(
            gaps.windows(2).all(|w| w[0] <= w[1] + 1e-6),
            "nearest-first gaps must be non-decreasing: {gaps:?}"
        );
    }
}
