//! Integration tests of the NH/FH building blocks: the algebraic identities of the
//! asymmetric transform, the norm-alignment property of NH, the norm partitioning of FH,
//! and the candidate-budget semantics both schemes share.

use p2h_core::{distance, P2hIndex, SearchParams};
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_hash::{FhIndex, FhParams, NhIndex, NhParams, QuadraticTransform};

fn dataset(n: usize, dim: usize, seed: u64) -> p2h_core::PointSet {
    SyntheticDataset::new(
        "hash-props",
        n,
        dim,
        DataDistribution::HeavyTailedNorms { mu: 0.5, sigma: 0.5 },
        seed,
    )
    .generate()
    .unwrap()
}

#[test]
fn transform_signs_are_symmetric() {
    // g_{+1}(q) = -g_{-1}(q) componentwise, so the two signs produce opposite inner
    // products with any transformed data point.
    let t = QuadraticTransform::sampled(8, 32, 3);
    let x: Vec<f32> = (0..8).map(|i| (i as f32) * 0.3 - 1.0).collect();
    let q: Vec<f32> = (0..8).map(|i| 1.0 - (i as f32) * 0.2).collect();
    let pos = t.transformed_inner_product(&x, &q, 1.0);
    let neg = t.transformed_inner_product(&x, &q, -1.0);
    assert!((pos + neg).abs() < 1e-3 * (1.0 + pos.abs()));
    assert!(pos >= -1e-4, "the +1 sign encodes +<x,q>^2, which is non-negative");
}

#[test]
fn full_transform_dimension_is_quadratic_in_d() {
    for d in [3usize, 7, 12] {
        assert_eq!(QuadraticTransform::full(d).output_dim(), d * d);
    }
}

#[test]
fn nh_alignment_makes_transformed_norms_equal() {
    // Rebuild the NH data transform by hand and check that appending
    // sqrt(M - ‖f(x)‖²) equalizes every transformed norm at sqrt(M) — the property that
    // turns P2HNNS into plain NNS.
    let points = dataset(300, 8, 1);
    let nh = NhIndex::build(&points, NhParams::new(2, 4)).unwrap();
    let m = nh.alignment_constant();
    let transform = QuadraticTransform::sampled(points.dim(), nh.lambda(), nh.params().seed);
    for x in points.iter() {
        let fx = transform.transform_data(x);
        let norm_sq = distance::norm_sq(&fx);
        assert!(norm_sq <= m * (1.0 + 1e-4), "M must upper-bound every transformed norm");
        let aligned = norm_sq + (m - norm_sq).max(0.0);
        assert!((aligned - m).abs() < 1e-2 * (1.0 + m));
    }
}

#[test]
fn fh_partitions_cover_all_points_and_respect_count() {
    let points = dataset(1_000, 8, 2);
    for l in [2usize, 4, 6] {
        let fh = FhIndex::build(&points, FhParams::new(1, 4, l)).unwrap();
        assert_eq!(fh.partition_count(), l);
        // Every point is returned by an exhaustive (unbudgeted) query, so the partitions
        // jointly cover the whole data set.
        let q = &generate_queries(&points, 1, QueryDistribution::RandomNormal, 3).unwrap()[0];
        let all = fh.search(q, &SearchParams::approximate(points.len(), points.len()));
        assert_eq!(all.neighbors.len(), points.len());
    }
}

#[test]
fn collision_threshold_of_one_still_terminates_and_is_exact_unbudgeted() {
    let points = dataset(400, 6, 4);
    let mut params = NhParams::new(1, 4);
    params.collision_threshold = 1;
    let nh = NhIndex::build(&points, params).unwrap();
    let scan = p2h_core::LinearScan::new(points.clone());
    let q = &generate_queries(&points, 1, QueryDistribution::DataDifference, 5).unwrap()[0];
    assert_eq!(nh.search_exact(q, 5).distances(), scan.search_exact(q, 5).distances());

    let mut params = FhParams::new(1, 4, 2);
    params.collision_threshold = 7; // clamped to the table count
    let fh = FhIndex::build(&points, params).unwrap();
    assert_eq!(fh.search_exact(q, 5).distances(), scan.search_exact(q, 5).distances());
}

#[test]
fn hash_indexes_report_probe_counts_and_lookup_time() {
    let points = dataset(2_000, 10, 6);
    let nh = NhIndex::build(&points, NhParams::new(2, 8)).unwrap();
    let fh = FhIndex::build(&points, FhParams::new(2, 8, 4)).unwrap();
    let q = &generate_queries(&points, 1, QueryDistribution::DataDifference, 7).unwrap()[0];
    for index in [&nh as &dyn P2hIndex, &fh as &dyn P2hIndex] {
        let result = index.search(q, &SearchParams::approximate(10, 500).with_timing());
        assert!(result.stats.buckets_probed > 0, "{}", index.name());
        assert!(result.stats.buckets_probed >= result.stats.candidates_verified);
        assert!(result.stats.time_lookup_ns > 0);
        assert!(result.stats.pruned_subtrees == 0, "hash methods have no tree to prune");
    }
}

#[test]
fn index_size_grows_with_table_count_not_with_lambda() {
    // The sorted projection tables dominate the footprint: doubling m roughly doubles
    // the size, while the sampling dimension only affects build time.
    let points = dataset(2_000, 12, 8);
    let small = NhIndex::build(&points, NhParams::new(1, 8)).unwrap();
    let more_tables = NhIndex::build(&points, NhParams::new(1, 16)).unwrap();
    let more_lambda = NhIndex::build(&points, NhParams::new(8, 8)).unwrap();
    assert!(more_tables.index_size_bytes() as f64 > 1.7 * small.index_size_bytes() as f64);
    let ratio = more_lambda.index_size_bytes() as f64 / small.index_size_bytes() as f64;
    assert!(ratio < 1.2, "λ should not blow up the stored index, got ratio {ratio}");
}
