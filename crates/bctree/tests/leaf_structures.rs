//! Integration tests of the BC-Tree leaf structures and the ablation view against real
//! (synthetic) data: the stored cone decompositions, the batch-pruning order, and the
//! variant wrapper exposed for Figure 8.

use p2h_bctree::{BcTreeBuilder, BcTreeVariant};
use p2h_core::{distance, P2hIndex, SearchParams};
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};

fn dataset(seed: u64) -> p2h_core::PointSet {
    SyntheticDataset::new(
        "leaf-structures",
        2_000,
        10,
        DataDistribution::GaussianClusters { clusters: 5, std_dev: 1.3 },
        seed,
    )
    .generate()
    .unwrap()
}

#[test]
fn stored_cone_decomposition_matches_direct_computation() {
    let points = dataset(1);
    let tree = BcTreeBuilder::new(50).build(&points).unwrap();
    let reordered = tree.points();
    for node in tree.nodes().iter().filter(|n| n.is_leaf()) {
        let indices: Vec<usize> = (node.start..node.end).map(|p| p as usize).collect();
        let center = reordered.centroid_of(&indices);
        for &pos in &indices {
            let x = reordered.point(pos);
            let aux = tree.leaf_aux()[pos];
            let x_norm = distance::norm(x);
            let cos_phi = distance::cosine(x, &center);
            assert!((aux.x_cos - x_norm * cos_phi).abs() < 1e-2 * (1.0 + x_norm));
            let sin_phi = (1.0 - cos_phi * cos_phi).max(0.0).sqrt();
            assert!((aux.x_sin - x_norm * sin_phi).abs() < 1e-2 * (1.0 + x_norm));
            assert!(aux.x_sin >= 0.0, "‖x‖ sin φ is non-negative by construction");
            assert!(
                (aux.radius - distance::euclidean(x, &center)).abs() < 1e-2 * (1.0 + aux.radius)
            );
        }
    }
}

#[test]
fn variant_view_reports_correct_metadata_and_results() {
    let points = dataset(2);
    let tree = BcTreeBuilder::new(64).build(&points).unwrap();
    let queries = generate_queries(&points, 4, QueryDistribution::DataDifference, 5).unwrap();
    for variant in [
        BcTreeVariant::Full,
        BcTreeVariant::WithoutCone,
        BcTreeVariant::WithoutBall,
        BcTreeVariant::WithoutBoth,
    ] {
        let view = tree.with_variant(variant);
        assert_eq!(view.name(), variant.label());
        assert_eq!(view.len(), tree.len());
        assert_eq!(view.dim(), tree.dim());
        assert_eq!(view.index_size_bytes(), tree.index_size_bytes());
        for q in &queries {
            assert_eq!(
                view.search_exact(q, 5).distances(),
                tree.search_exact(q, 5).distances(),
                "all variants are exact, so they agree with the full tree"
            );
        }
    }
}

#[test]
fn full_variant_prunes_at_least_as_much_as_each_single_bound_variant() {
    let points = dataset(3);
    let tree = BcTreeBuilder::new(100).build(&points).unwrap();
    let queries = generate_queries(&points, 8, QueryDistribution::DataDifference, 7).unwrap();
    let verified = |variant: BcTreeVariant| -> u64 {
        queries
            .iter()
            .map(|q| {
                tree.search_variant(q, &SearchParams::exact(10), variant).stats.candidates_verified
            })
            .sum()
    };
    let full = verified(BcTreeVariant::Full);
    let wo_cone = verified(BcTreeVariant::WithoutCone);
    let wo_ball = verified(BcTreeVariant::WithoutBall);
    let wo_both = verified(BcTreeVariant::WithoutBoth);
    assert!(full <= wo_cone, "adding the cone bound never verifies more ({full} vs {wo_cone})");
    assert!(full <= wo_ball, "adding the ball bound never verifies more ({full} vs {wo_ball})");
    assert!(wo_cone <= wo_both);
    assert!(wo_ball <= wo_both);
}

#[test]
fn batch_break_prunes_leaf_suffixes() {
    // On clustered data with a selective query (k = 1), the ball-bound batch break
    // should discard whole suffixes of at least some leaves.
    let points = dataset(4);
    let tree = BcTreeBuilder::new(100).build(&points).unwrap();
    let queries = generate_queries(&points, 10, QueryDistribution::DataDifference, 9).unwrap();
    let mut total_ball_pruned = 0;
    for q in &queries {
        let result = tree.search_variant(q, &SearchParams::exact(1), BcTreeVariant::WithoutCone);
        total_ball_pruned += result.stats.pruned_by_ball_bound;
    }
    assert!(total_ball_pruned > 0, "the descending-r_x batch break should fire on clustered data");
}

#[test]
fn aux_arrays_cover_every_point_exactly_once() {
    let points = dataset(5);
    let tree = BcTreeBuilder::new(32).build(&points).unwrap();
    assert_eq!(tree.leaf_aux().len(), points.len());
    let mut covered = vec![false; points.len()];
    for node in tree.nodes().iter().filter(|n| n.is_leaf()) {
        for pos in node.start..node.end {
            assert!(!covered[pos as usize], "leaf ranges must not overlap");
            covered[pos as usize] = true;
        }
    }
    assert!(covered.into_iter().all(|c| c), "every point belongs to exactly one leaf");
}
