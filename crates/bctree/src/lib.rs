//! # p2h-bctree
//!
//! The BC-Tree index for point-to-hyperplane nearest neighbor search, implementing
//! Section IV of "Lightweight-Yet-Efficient: Revitalizing Ball-Tree for
//! Point-to-Hyperplane Nearest Neighbor Search" (Huang & Tung, ICDE 2023).
//!
//! BC-Tree is a Ball-Tree whose leaf nodes additionally maintain a **B**all and a
//! **C**one structure for every data point:
//!
//! * the ball structure is the point's distance `r_x = ‖x − c‖` to the leaf center,
//!   enabling the point-level ball bound (Corollary 1) and, because leaf points are
//!   sorted by descending `r_x`, *batch* pruning of whole suffixes of a leaf;
//! * the cone structure is the pair `(‖x‖·cos φ_x, ‖x‖·sin φ_x)` where `φ_x` is the angle
//!   between the point and the leaf center, enabling the tighter point-level cone bound
//!   (Theorem 3).
//!
//! Internal nodes reuse the node-level ball bound of the Ball-Tree; traversal uses the
//! collaborative inner-product computing strategy (Lemmas 1–2) so only one O(d) inner
//! product is spent per expanded internal node instead of two.
//!
//! The [`BcTreeVariant`] enum exposes the ablation variants of Figure 8
//! (BC-Tree-wo-B / -wo-C / -wo-BC).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
mod build;
#[cfg(feature = "parallel")]
mod parallel;
mod search;

pub use build::{BcTree, BcTreeBuilder, BcTreeParts, LeafPointAux};
pub use search::BcTreeVariantView;

/// Which point-level lower bounds the search uses (the ablation of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BcTreeVariant {
    /// Both point-level bounds (the full BC-Tree).
    #[default]
    Full,
    /// Only the point-level ball bound ("BC-Tree-wo-C" in the paper).
    WithoutCone,
    /// Only the point-level cone bound ("BC-Tree-wo-B" in the paper).
    WithoutBall,
    /// Neither point-level bound ("BC-Tree-wo-BC"): leaves are scanned exhaustively, but
    /// the collaborative inner-product strategy is still used.
    WithoutBoth,
}

impl BcTreeVariant {
    /// Whether the point-level ball bound is active.
    pub fn uses_ball_bound(self) -> bool {
        matches!(self, BcTreeVariant::Full | BcTreeVariant::WithoutCone)
    }

    /// Whether the point-level cone bound is active.
    pub fn uses_cone_bound(self) -> bool {
        matches!(self, BcTreeVariant::Full | BcTreeVariant::WithoutBall)
    }

    /// The label the paper uses for this variant.
    pub fn label(self) -> &'static str {
        match self {
            BcTreeVariant::Full => "BC-Tree",
            BcTreeVariant::WithoutCone => "BC-Tree-wo-C",
            BcTreeVariant::WithoutBall => "BC-Tree-wo-B",
            BcTreeVariant::WithoutBoth => "BC-Tree-wo-BC",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_flags_match_labels() {
        assert!(BcTreeVariant::Full.uses_ball_bound());
        assert!(BcTreeVariant::Full.uses_cone_bound());
        assert!(BcTreeVariant::WithoutCone.uses_ball_bound());
        assert!(!BcTreeVariant::WithoutCone.uses_cone_bound());
        assert!(!BcTreeVariant::WithoutBall.uses_ball_bound());
        assert!(BcTreeVariant::WithoutBall.uses_cone_bound());
        assert!(!BcTreeVariant::WithoutBoth.uses_ball_bound());
        assert!(!BcTreeVariant::WithoutBoth.uses_cone_bound());
        assert_eq!(BcTreeVariant::Full.label(), "BC-Tree");
        assert_eq!(BcTreeVariant::WithoutCone.label(), "BC-Tree-wo-C");
        assert_eq!(BcTreeVariant::WithoutBall.label(), "BC-Tree-wo-B");
        assert_eq!(BcTreeVariant::WithoutBoth.label(), "BC-Tree-wo-BC");
        assert_eq!(BcTreeVariant::default(), BcTreeVariant::Full);
    }
}
