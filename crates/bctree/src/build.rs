//! BC-Tree construction (Algorithm 4 of the paper).

use rand::rngs::StdRng;
use rand::SeedableRng;

use p2h_balltree::split::seed_grow_split;
use p2h_balltree::{Node, NO_CHILD};
use p2h_core::{distance, Error, PointSet, Result, Scalar, VecBuf};

/// Default maximum leaf size `N0`.
pub const DEFAULT_LEAF_SIZE: usize = 100;

/// The per-point leaf structures of BC-Tree: the **B**all radius and the **C**one
/// decomposition of the point against its leaf center.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LeafPointAux {
    /// `r_x = ‖x − c‖`, the point's distance to its leaf center (ball structure).
    pub radius: Scalar,
    /// `‖x‖·cos φ_x`, where `φ_x` is the angle between the point and the leaf center.
    pub x_cos: Scalar,
    /// `‖x‖·sin φ_x` (always non-negative).
    pub x_sin: Scalar,
}

/// Configuration for building a [`BcTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcTreeBuilder {
    /// Maximum number of points in a leaf node (`N0` in the paper).
    pub leaf_size: usize,
    /// Seed for the random seed-grow pivot selection.
    pub seed: u64,
}

impl Default for BcTreeBuilder {
    fn default() -> Self {
        Self { leaf_size: DEFAULT_LEAF_SIZE, seed: 0 }
    }
}

impl BcTreeBuilder {
    /// Creates a builder with the given maximum leaf size and the default seed.
    pub fn new(leaf_size: usize) -> Self {
        Self { leaf_size, ..Self::default() }
    }

    /// Sets the RNG seed used by the split rule.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds a BC-Tree over the given (augmented) point set.
    ///
    /// Construction follows Algorithm 4: the same seed-grow splits as the Ball-Tree,
    /// leaf centers computed directly, internal centers combined from the children in
    /// O(d) via Lemma 1, and per-point ball/cone structures computed and sorted by
    /// descending `r_x` in every leaf. Total cost is `O(d·n·log n)` time and `O(n·d)`
    /// space (Theorem 6).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `leaf_size` is zero and
    /// [`Error::EmptyDataSet`] if the point set is empty.
    pub fn build(&self, points: &PointSet) -> Result<BcTree> {
        if self.leaf_size == 0 {
            return Err(Error::InvalidParameter {
                name: "leaf_size",
                message: "the maximum leaf size N0 must be at least 1".into(),
            });
        }
        if points.is_empty() {
            return Err(Error::EmptyDataSet);
        }
        let n = points.len();
        let dim = points.dim();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let expected_nodes = (2 * n / self.leaf_size.max(1)).max(1) + 8;
        let mut arena = Arena {
            nodes: Vec::with_capacity(expected_nodes),
            centers: Vec::with_capacity(expected_nodes * dim),
            dim,
        };

        build_recursive(points, &mut order, 0, self.leaf_size, &mut arena, &mut rng);

        finalize(points, &order, arena.nodes, arena.centers, self.leaf_size, self.seed, 1)
    }
}

/// Below this many points the second pass runs sequentially: the per-point work is a
/// handful of O(d) kernels, so thread spawns only pay off on reasonably large leaves.
const SECOND_PASS_PARALLEL_CUTOFF: usize = 4_096;

/// Shared tail of both the sequential and the parallel builder: materializes the
/// reordered point set (leaf points already sorted by descending `r_x`), then runs the
/// second pass computing per-node center norms and the per-point ball/cone leaf
/// structures of Algorithm 4.
///
/// The second pass is independent per node (norms) and per leaf (aux structures), so
/// with `threads > 1` it is fanned out over scoped worker threads; the computed values
/// are identical to the sequential pass for every thread count (same per-element float
/// operations, disjoint writes).
pub(crate) fn finalize(
    points: &PointSet,
    order: &[usize],
    nodes: Vec<Node>,
    centers: Vec<Scalar>,
    leaf_size: usize,
    build_seed: u64,
    threads: usize,
) -> Result<BcTree> {
    let n = points.len();
    let dim = points.dim();
    let mut reordered = Vec::with_capacity(n * dim);
    let mut original_ids = Vec::with_capacity(n);
    for &idx in order {
        reordered.extend_from_slice(points.point(idx));
        original_ids.push(idx as u32);
    }
    let reordered = PointSet::from_flat(dim, reordered)?;

    let threads = if n < SECOND_PASS_PARALLEL_CUTOFF { 1 } else { threads.max(1) };
    let center_norms = compute_center_norms(&nodes, &centers, dim, threads);
    let aux = compute_leaf_aux(&reordered, &nodes, &centers, &center_norms, threads);

    Ok(BcTree {
        points: reordered,
        original_ids: original_ids.into(),
        nodes,
        centers: centers.into(),
        center_norms: center_norms.into(),
        aux,
        leaf_size,
        build_seed,
    })
}

/// Computes `‖c‖` for every node center, splitting the node array over `threads`
/// scoped workers (per-node independent).
fn compute_center_norms(
    nodes: &[Node],
    centers: &[Scalar],
    dim: usize,
    threads: usize,
) -> Vec<Scalar> {
    let norm_of = |node: &Node| {
        let start = node.center_offset as usize * dim;
        distance::norm(&centers[start..start + dim])
    };
    let workers = threads.min(nodes.len()).max(1);
    if workers == 1 {
        return nodes.iter().map(norm_of).collect();
    }
    let chunk = nodes.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = nodes
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(norm_of).collect::<Vec<Scalar>>()))
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("center-norm worker panicked")).collect()
    })
}

/// Computes the per-point ball/cone leaf structures (Algorithm 4's second pass).
///
/// The leaves tile `0..n` with disjoint contiguous ranges, so the output array is
/// handed out to scoped workers as disjoint `split_at_mut` sub-slices — one batch of
/// consecutive leaves (≈ `n / threads` points) per worker, no synchronization needed.
fn compute_leaf_aux(
    reordered: &PointSet,
    nodes: &[Node],
    centers: &[Scalar],
    center_norms: &[Scalar],
    threads: usize,
) -> Vec<LeafPointAux> {
    let n = reordered.len();
    let dim = reordered.dim();
    let center_of = |idx: usize| {
        let start = nodes[idx].center_offset as usize * dim;
        &centers[start..start + dim]
    };
    let mut leaves: Vec<usize> = (0..nodes.len()).filter(|&i| nodes[i].is_leaf()).collect();
    leaves.sort_unstable_by_key(|&i| nodes[i].start);

    let mut aux = vec![LeafPointAux::default(); n];
    if threads <= 1 {
        for &i in &leaves {
            fill_leaf_aux(reordered, center_of(i), center_norms[i], &nodes[i], &mut aux, 0);
        }
        return aux;
    }

    let target = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest: &mut [LeafPointAux] = &mut aux;
        let mut base = 0usize;
        let mut from = 0usize;
        while from < leaves.len() {
            let mut to = from;
            let mut count = 0usize;
            while to < leaves.len() && count < target {
                count += nodes[leaves[to]].size();
                to += 1;
            }
            let batch = &leaves[from..to];
            let (slice, tail) = rest.split_at_mut(count);
            rest = tail;
            let batch_base = base;
            scope.spawn(move || {
                for &i in batch {
                    fill_leaf_aux(
                        reordered,
                        center_of(i),
                        center_norms[i],
                        &nodes[i],
                        slice,
                        batch_base,
                    );
                }
            });
            base += count;
            from = to;
        }
    });
    aux
}

/// Fills the aux entries of one leaf into `out` (whose first element corresponds to
/// reordered position `base`).
fn fill_leaf_aux(
    reordered: &PointSet,
    center: &[Scalar],
    center_norm: Scalar,
    node: &Node,
    out: &mut [LeafPointAux],
    base: usize,
) {
    for pos in node.start as usize..node.end as usize {
        let x = reordered.point(pos);
        let r_x = distance::euclidean(x, center);
        let x_norm = distance::norm(x);
        let cos_phi = if center_norm <= Scalar::EPSILON || x_norm <= Scalar::EPSILON {
            0.0
        } else {
            (distance::dot(x, center) / (x_norm * center_norm)).clamp(-1.0, 1.0)
        };
        out[pos - base] = LeafPointAux {
            radius: r_x,
            x_cos: x_norm * cos_phi,
            x_sin: x_norm * (1.0 - cos_phi * cos_phi).max(0.0).sqrt(),
        };
    }
}

struct Arena {
    nodes: Vec<Node>,
    centers: Vec<Scalar>,
    dim: usize,
}

impl Arena {
    /// Reserves a node slot (center zeroed) so the parent can be node 0 even though its
    /// center is only known after its children are built (Lemma 1).
    fn reserve(&mut self, start: usize, end: usize) -> u32 {
        let id = self.nodes.len() as u32;
        let center_offset = (self.centers.len() / self.dim) as u32;
        self.centers.extend(std::iter::repeat_n(0.0, self.dim));
        self.nodes.push(Node {
            center_offset,
            radius: 0.0,
            start: start as u32,
            end: end as u32,
            left: NO_CHILD,
            right: NO_CHILD,
        });
        id
    }

    fn center_mut(&mut self, id: u32) -> &mut [Scalar] {
        let offset = self.nodes[id as usize].center_offset as usize * self.dim;
        &mut self.centers[offset..offset + self.dim]
    }

    fn center(&self, id: u32) -> &[Scalar] {
        let offset = self.nodes[id as usize].center_offset as usize * self.dim;
        &self.centers[offset..offset + self.dim]
    }
}

/// Computes a leaf's center and radius, sorting the leaf's index slice by descending
/// `r_x` in place (Algorithm 4, lines 3-9). Shared by the sequential and parallel
/// builders so their leaf layout is produced by one piece of code.
pub(crate) fn build_leaf(points: &PointSet, slice: &mut [usize]) -> (Vec<Scalar>, Scalar) {
    let center = points.centroid_of(slice);
    slice.sort_by(|&a, &b| {
        let da = distance::euclidean_sq(points.point(a), &center);
        let db = distance::euclidean_sq(points.point(b), &center);
        db.total_cmp(&da).then_with(|| a.cmp(&b))
    });
    let radius =
        slice.first().map(|&i| distance::euclidean(points.point(i), &center)).unwrap_or(0.0);
    (center, radius)
}

/// Lemma 1: the parent center is the size-weighted combination of the child centers,
/// computed in O(d) instead of O(d·|N|). Shared by both builders.
pub(crate) fn combine_child_centers(
    left_center: &[Scalar],
    right_center: &[Scalar],
    left_len: usize,
    right_len: usize,
) -> Vec<Scalar> {
    let total = (left_len + right_len) as Scalar;
    left_center
        .iter()
        .zip(right_center.iter())
        .map(|(&l, &r)| (l * left_len as Scalar + r * right_len as Scalar) / total)
        .collect()
}

fn build_recursive(
    points: &PointSet,
    slice: &mut [usize],
    offset: usize,
    leaf_size: usize,
    arena: &mut Arena,
    rng: &mut StdRng,
) -> u32 {
    let len = slice.len();
    let node_id = arena.reserve(offset, offset + len);

    if len <= leaf_size {
        let (center, radius) = build_leaf(points, slice);
        arena.center_mut(node_id).copy_from_slice(&center);
        arena.nodes[node_id as usize].radius = radius;
        return node_id;
    }

    let split = seed_grow_split(points, slice, rng);
    let (left_slice, right_slice) = slice.split_at_mut(split);
    let left_len = left_slice.len();
    let right_len = right_slice.len();
    let left = build_recursive(points, left_slice, offset, leaf_size, arena, rng);
    let right = build_recursive(points, right_slice, offset + split, leaf_size, arena, rng);

    let center =
        combine_child_centers(arena.center(left), arena.center(right), left_len, right_len);
    let radius = slice
        .iter()
        .map(|&i| distance::euclidean(points.point(i), &center))
        .fold(0.0 as Scalar, Scalar::max);
    arena.center_mut(node_id).copy_from_slice(&center);
    let node = &mut arena.nodes[node_id as usize];
    node.radius = radius;
    node.left = left;
    node.right = right;
    node_id
}

/// The BC-Tree index (Section IV of the paper).
///
/// Build one with [`BcTreeBuilder`]; query it through [`p2h_core::P2hIndex`] (the default
/// full variant) or [`BcTree::search_variant`] for the ablation variants of Figure 8.
#[derive(Debug, Clone)]
pub struct BcTree {
    pub(crate) points: PointSet,
    /// Buffer-backed (owned or mapped) so snapshot loaders can restore zero-copy.
    pub(crate) original_ids: VecBuf<u32>,
    pub(crate) nodes: Vec<Node>,
    /// Buffer-backed like `original_ids`; one `dim`-sized row per node.
    pub(crate) centers: VecBuf<Scalar>,
    /// Buffer-backed; cached `‖c‖` per node.
    pub(crate) center_norms: VecBuf<Scalar>,
    pub(crate) aux: Vec<LeafPointAux>,
    pub(crate) leaf_size: usize,
    pub(crate) build_seed: u64,
}

/// The constituent arrays of a [`BcTree`], as consumed by [`BcTree::from_parts`] and
/// produced by the accessor methods. This is the persistence contract: a snapshot layer
/// stores exactly these arrays and restores them verbatim, so a loaded tree answers
/// every query bit-identically to the original (same kernel backend).
#[derive(Debug, Clone)]
pub struct BcTreeParts {
    /// Reordered point set (contiguous and `r_x`-sorted per leaf).
    pub points: PointSet,
    /// Reordered position → original point index (a permutation). Owned-or-mapped
    /// (`Vec<u32>` converts via `.into()`); mapped buffers make snapshot restores
    /// zero-copy.
    pub original_ids: VecBuf<u32>,
    /// Node arena; node 0 is the root.
    pub nodes: Vec<Node>,
    /// Flat center buffer, one `dim`-sized row per node. Owned-or-mapped.
    pub centers: VecBuf<Scalar>,
    /// Cached `‖c‖` per node. Owned-or-mapped.
    pub center_norms: VecBuf<Scalar>,
    /// Per-point ball/cone leaf structures.
    pub aux: Vec<LeafPointAux>,
    /// Maximum leaf size `N0`.
    pub leaf_size: usize,
    /// RNG seed the tree was built with.
    pub build_seed: u64,
}

impl BcTree {
    /// Builds a BC-Tree with the default configuration (leaf size 100, seed 0).
    pub fn build(points: &PointSet) -> Result<Self> {
        BcTreeBuilder::default().build(points)
    }

    /// The maximum leaf size `N0` used for this tree.
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// Total number of nodes (internal + leaf).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// The node arena (root is node 0).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The per-point leaf structures, indexed by reordered position.
    pub fn leaf_aux(&self) -> &[LeafPointAux] {
        &self.aux
    }

    /// The flat center buffer: one `dim`-sized row per node, addressed through
    /// [`Node::center_offset`]. Exposed for persistence layers.
    pub fn centers(&self) -> &[Scalar] {
        &self.centers
    }

    /// The cached `‖c‖` per node, aligned with [`BcTree::nodes`].
    pub fn center_norms(&self) -> &[Scalar] {
        &self.center_norms
    }

    /// The mapping from reordered position to original point index.
    pub fn original_ids(&self) -> &[u32] {
        &self.original_ids
    }

    /// The RNG seed this tree was built with.
    pub fn build_seed(&self) -> u64 {
        self.build_seed
    }

    /// Reassembles a tree from its constituent arrays — the load path for persistent
    /// snapshots (the inverse of reading the accessors off a built tree).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] (never panics) if the arrays are inconsistent: wrong
    /// lengths, an id mapping that is not a permutation, or a node arena failing
    /// [`p2h_balltree::validate_structure`]. Floating-point payloads (centers, norms,
    /// aux) are restored verbatim and guarded end-to-end by the snapshot checksums.
    pub fn from_parts(parts: BcTreeParts) -> Result<Self> {
        let BcTreeParts {
            points,
            original_ids,
            nodes,
            centers,
            center_norms,
            aux,
            leaf_size,
            build_seed,
        } = parts;
        let n = points.len();
        let dim = points.dim();
        p2h_balltree::validate_permutation(&original_ids, n)?;
        if centers.len() != nodes.len() * dim {
            return Err(Error::Corrupt(format!(
                "center buffer has {} scalars for {} nodes of dim {dim}",
                centers.len(),
                nodes.len()
            )));
        }
        if center_norms.len() != nodes.len() {
            return Err(Error::Corrupt(format!(
                "center-norm buffer has {} entries for {} nodes",
                center_norms.len(),
                nodes.len()
            )));
        }
        if aux.len() != n {
            return Err(Error::Corrupt(format!(
                "leaf-structure buffer has {} entries for {n} points",
                aux.len()
            )));
        }
        p2h_balltree::validate_structure(&nodes, n, nodes.len(), leaf_size, false)?;
        Ok(Self { points, original_ids, nodes, centers, center_norms, aux, leaf_size, build_seed })
    }

    /// The reordered point set (contiguous and `r_x`-sorted per leaf).
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    #[inline]
    pub(crate) fn center(&self, node: &Node) -> &[Scalar] {
        let dim = self.points.dim();
        let start = node.center_offset as usize * dim;
        &self.centers[start..start + dim]
    }

    #[inline]
    pub(crate) fn point(&self, pos: usize) -> &[Scalar] {
        self.points.point(pos)
    }

    /// Memory used by the tree structure (nodes, centers, center norms, id mapping, and
    /// the three per-point leaf arrays), excluding the raw data points. This is the
    /// "Index Size" quantity of Table III; it exceeds the Ball-Tree's by the `Θ(n)` leaf
    /// structures, exactly as Theorem 6 predicts.
    pub fn structure_size_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self.centers.heap_bytes()
            + self.center_norms.heap_bytes()
            + self.original_ids.heap_bytes()
            + self.aux.len() * std::mem::size_of::<LeafPointAux>()
            + std::mem::size_of::<Self>()
    }

    /// Validates the structural invariants of the tree (used by tests).
    ///
    /// Beyond the Ball-Tree invariants (range partition, leaf size, ball containment,
    /// permutation), this checks the BC-Tree-specific ones: leaf points sorted by
    /// descending `r_x`, the cone decomposition satisfying
    /// `x_cos² + x_sin² = ‖x‖²`, and the Pythagorean relation of Figure 4,
    /// `x_sin² + (‖c‖ − x_cos)² = r_x²`.
    pub fn check_invariants(&self) -> Result<()> {
        let invalid = |message: String| Error::InvalidParameter { name: "bctree", message };
        let n = self.points.len();
        let mut seen = vec![false; n];
        for &id in self.original_ids.iter() {
            let id = id as usize;
            if id >= n || seen[id] {
                return Err(invalid("id mapping is not a permutation".into()));
            }
            seen[id] = true;
        }
        for (node_idx, node) in self.nodes.iter().enumerate() {
            let center = self.center(node);
            let center_norm = self.center_norms[node_idx];
            if (distance::norm(center) - center_norm).abs() > 1e-3 * (1.0 + center_norm) {
                return Err(invalid("cached center norm is stale".into()));
            }
            if !node.is_leaf() {
                let left = &self.nodes[node.left as usize];
                let right = &self.nodes[node.right as usize];
                if left.start != node.start || right.end != node.end || left.end != right.start {
                    return Err(invalid("children do not partition the parent range".into()));
                }
                continue;
            }
            if node.size() > self.leaf_size {
                return Err(invalid(format!(
                    "leaf with {} points exceeds N0 = {}",
                    node.size(),
                    self.leaf_size
                )));
            }
            let mut prev_r = Scalar::INFINITY;
            for pos in node.start..node.end {
                let x = self.point(pos as usize);
                let aux = self.aux[pos as usize];
                let r = distance::euclidean(x, center);
                let tol = 1e-2 * (1.0 + r);
                if (r - aux.radius).abs() > tol {
                    return Err(invalid(format!("stored r_x {} != recomputed {r}", aux.radius)));
                }
                if r > node.radius * (1.0 + 1e-4) + 1e-3 {
                    return Err(invalid(format!(
                        "point at distance {r} outside leaf ball of radius {}",
                        node.radius
                    )));
                }
                if aux.radius > prev_r + tol {
                    return Err(invalid("leaf points are not sorted by descending r_x".into()));
                }
                prev_r = aux.radius;
                let x_norm = distance::norm(x);
                if (aux.x_cos * aux.x_cos + aux.x_sin * aux.x_sin - x_norm * x_norm).abs()
                    > 1e-2 * (1.0 + x_norm * x_norm)
                {
                    return Err(invalid("cone decomposition does not reconstruct ‖x‖²".into()));
                }
                let pythagoras =
                    aux.x_sin * aux.x_sin + (center_norm - aux.x_cos) * (center_norm - aux.x_cos);
                if (pythagoras - aux.radius * aux.radius).abs()
                    > 5e-2 * (1.0 + aux.radius * aux.radius)
                {
                    return Err(invalid(format!(
                        "Figure-4 Pythagorean relation violated: {pythagoras} vs r_x² {}",
                        aux.radius * aux.radius
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_data::{DataDistribution, SyntheticDataset};

    fn dataset(n: usize, dim: usize) -> PointSet {
        SyntheticDataset::new(
            "bc-build",
            n,
            dim,
            DataDistribution::GaussianClusters { clusters: 6, std_dev: 1.2 },
            19,
        )
        .generate()
        .unwrap()
    }

    #[test]
    fn builds_and_satisfies_invariants() {
        let ps = dataset(2_500, 12);
        let tree = BcTreeBuilder::new(64).with_seed(2).build(&ps).unwrap();
        tree.check_invariants().unwrap();
        assert!(tree.node_count() > 2_500 / 64);
        assert!(tree.leaf_count() >= 2_500 / 64);
        assert_eq!(tree.points().len(), 2_500);
        assert_eq!(tree.leaf_size(), 64);
        assert_eq!(tree.leaf_aux().len(), 2_500);
    }

    #[test]
    fn default_build_works() {
        let ps = dataset(300, 8);
        let tree = BcTree::build(&ps).unwrap();
        tree.check_invariants().unwrap();
        assert_eq!(tree.leaf_size(), DEFAULT_LEAF_SIZE);
    }

    #[test]
    fn lemma_1_internal_centers_match_centroids() {
        let ps = dataset(1_500, 10);
        let tree = BcTreeBuilder::new(50).build(&ps).unwrap();
        for node in tree.nodes() {
            if node.is_leaf() {
                continue;
            }
            // Recompute the centroid of the node's points from the reordered set.
            let indices: Vec<usize> = (node.start..node.end).map(|p| p as usize).collect();
            let direct = tree.points().centroid_of(&indices);
            let stored = tree.center(node);
            for (a, b) in direct.iter().zip(stored.iter()) {
                assert!(
                    (a - b).abs() < 1e-2 * (1.0 + a.abs()),
                    "Lemma 1 center differs from direct centroid: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn leaves_sorted_by_descending_radius() {
        let ps = dataset(1_000, 8);
        let tree = BcTreeBuilder::new(40).build(&ps).unwrap();
        for node in tree.nodes().iter().filter(|n| n.is_leaf()) {
            let radii: Vec<Scalar> =
                (node.start..node.end).map(|p| tree.leaf_aux()[p as usize].radius).collect();
            assert!(
                radii.windows(2).all(|w| w[0] + 1e-5 >= w[1]),
                "leaf radii not descending: {radii:?}"
            );
            // The first point attains the leaf radius.
            if let Some(&first) = radii.first() {
                assert!((first - node.radius).abs() < 1e-3 * (1.0 + node.radius));
            }
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        let ps = dataset(100, 4);
        assert!(matches!(BcTreeBuilder::new(0).build(&ps), Err(Error::InvalidParameter { .. })));
    }

    #[test]
    fn identical_points_still_build() {
        let rows = vec![vec![2.0 as Scalar, -1.0, 0.5]; 300];
        let ps = PointSet::augment(&rows).unwrap();
        let tree = BcTreeBuilder::new(25).build(&ps).unwrap();
        tree.check_invariants().unwrap();
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let ps = dataset(1_400, 10);
        let tree = BcTreeBuilder::new(40).with_seed(6).build(&ps).unwrap();
        let parts = BcTreeParts {
            points: tree.points().clone(),
            original_ids: tree.original_ids().to_vec().into(),
            nodes: tree.nodes().to_vec(),
            centers: tree.centers().to_vec().into(),
            center_norms: tree.center_norms().to_vec().into(),
            aux: tree.leaf_aux().to_vec(),
            leaf_size: tree.leaf_size(),
            build_seed: tree.build_seed(),
        };
        let rebuilt = BcTree::from_parts(parts.clone()).unwrap();
        assert_eq!(rebuilt.nodes, tree.nodes);
        assert_eq!(rebuilt.aux, tree.aux);
        assert_eq!(rebuilt.build_seed(), 6);
        rebuilt.check_invariants().unwrap();

        let mut bad = parts.clone();
        let mut norms = bad.center_norms.to_vec();
        norms.pop();
        bad.center_norms = norms.into();
        assert!(matches!(BcTree::from_parts(bad), Err(Error::Corrupt(_))));
        let mut bad = parts.clone();
        bad.aux.truncate(10);
        assert!(matches!(BcTree::from_parts(bad), Err(Error::Corrupt(_))));
        let mut bad = parts.clone();
        let mut ids = bad.original_ids.to_vec();
        ids[0] = ids[1];
        bad.original_ids = ids.into();
        assert!(matches!(BcTree::from_parts(bad), Err(Error::Corrupt(_))));
        let mut bad = parts;
        bad.nodes[0].end = 7;
        assert!(matches!(BcTree::from_parts(bad), Err(Error::Corrupt(_))));
    }

    #[test]
    #[cfg(feature = "parallel")]
    fn second_pass_is_identical_across_thread_counts() {
        // Directly exercise the scoped-thread fan-out of the aux/center-norm second
        // pass (the dataset is above SECOND_PASS_PARALLEL_CUTOFF so `finalize` really
        // parallelizes): every thread count must produce the sequential pass's values.
        let ps = dataset(6_000, 12);
        let reference = BcTreeBuilder::new(64).with_seed(11).build(&ps).unwrap();
        for threads in [2, 3, 8] {
            let tree = BcTreeBuilder::new(64).with_seed(11).build_parallel(&ps, threads).unwrap();
            // Parallel builds differ in tree shape from sequential ones (per-node
            // seeds), so compare against a 1-thread parallel build instead.
            let one = BcTreeBuilder::new(64).with_seed(11).build_parallel(&ps, 1).unwrap();
            assert_eq!(tree.aux, one.aux, "threads={threads}");
            assert_eq!(tree.center_norms, one.center_norms, "threads={threads}");
        }
        reference.check_invariants().unwrap();
    }

    #[test]
    fn bc_tree_is_larger_than_ball_tree_but_same_order() {
        use p2h_balltree::BallTreeBuilder;
        let ps = dataset(5_000, 16);
        let bc = BcTreeBuilder::new(100).build(&ps).unwrap();
        let ball = BallTreeBuilder::new(100).build(&ps).unwrap();
        let bc_size = bc.structure_size_bytes();
        let ball_size = ball.structure_size_bytes();
        assert!(bc_size > ball_size, "BC-Tree stores extra Θ(n) leaf structures");
        assert!(
            (bc_size as f64) < ball_size as f64 * 3.0,
            "the overhead is Θ(n), not Θ(n·d): bc={bc_size}, ball={ball_size}"
        );
    }

    #[test]
    fn construction_is_deterministic_for_a_seed() {
        let ps = dataset(800, 8);
        let a = BcTreeBuilder::new(64).with_seed(9).build(&ps).unwrap();
        let b = BcTreeBuilder::new(64).with_seed(9).build(&ps).unwrap();
        assert_eq!(a.original_ids, b.original_ids);
        assert_eq!(a.node_count(), b.node_count());
    }
}
