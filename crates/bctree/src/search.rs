//! BC-Tree search (Algorithm 5 of the paper): collaborative inner-product computing at
//! internal nodes and point-level (ball + cone) pruning inside the leaves.
//!
//! Like the Ball-Tree, the traversal is iterative (explicit stack in the caller's
//! [`QueryScratch`]) and leaf verification is blocked. Point-level pruning is applied at
//! **strip granularity**: for each strip of up to [`LEAF_STRIP`] leaf rows, the bounds
//! are evaluated against the threshold `q.λ` as of the strip start, the surviving rows
//! are verified (through one [`kernels::abs_dot_block`] matvec when the whole strip
//! survives, per-row kernels otherwise — bit-identical either way), and `q.λ` is
//! refreshed between strips. Because the bounds are true lower bounds, pruning with a
//! slightly stale (i.e. larger or equal) threshold only ever verifies *extra* points —
//! never skips a point that could enter the top-k — so exactness is preserved while the
//! verification loop becomes a matvec.

use std::time::Instant;

use p2h_balltree::bound::node_ball_bound;
use p2h_balltree::Node;
use p2h_core::{
    kernels, BranchPreference, HyperplaneQuery, P2hIndex, QueryScratch, SearchParams, SearchResult,
    SearchStats, LEAF_STRIP,
};

use crate::bounds::{point_ball_bound, point_cone_bound, query_decomposition};
use crate::build::BcTree;
use crate::BcTreeVariant;

impl BcTree {
    /// Runs one query with an explicit ablation [`BcTreeVariant`] (Figure 8).
    pub fn search_variant(
        &self,
        query: &HyperplaneQuery,
        params: &SearchParams,
        variant: BcTreeVariant,
    ) -> SearchResult {
        self.run_search(query, params, variant, &mut QueryScratch::new())
    }

    /// Scratch-reusing twin of [`BcTree::search_variant`].
    pub fn search_variant_with_scratch(
        &self,
        query: &HyperplaneQuery,
        params: &SearchParams,
        variant: BcTreeVariant,
        scratch: &mut QueryScratch,
    ) -> SearchResult {
        self.run_search(query, params, variant, scratch)
    }

    fn run_search(
        &self,
        query: &HyperplaneQuery,
        params: &SearchParams,
        variant: BcTreeVariant,
        scratch: &mut QueryScratch,
    ) -> SearchResult {
        assert_eq!(
            query.dim(),
            self.points.dim(),
            "query dimension must match the augmented data dimension"
        );
        let start = Instant::now();
        scratch.reset(params.k);
        let QueryScratch { collector, stack, strip, keep } = scratch;

        let q = query.coeffs();
        let query_norm = query.norm();
        let dim = self.points.dim();
        let preference = params.branch_preference;
        let candidate_limit = params.candidate_limit.map_or(u64::MAX, |c| c as u64);
        let timing = params.collect_timing;
        let mut stats = SearchStats::default();

        // Resolve the buffer-backed center array once per query: a mapped `VecBuf`
        // pays a dynamic-dispatch slice resolution per deref, which must stay out of
        // the per-node loop below.
        let centers: &[p2h_core::Scalar] = &self.centers;
        let center_of = |node: &Node| {
            let start = node.center_offset as usize * dim;
            &centers[start..start + dim]
        };

        let timer = timing.then(Instant::now);
        let ip_root = kernels::dot(q, center_of(&self.nodes[0]));
        stats.inner_products += 1;
        if let Some(t) = timer {
            stats.time_bounds_ns += t.elapsed().as_nanos() as u64;
        }
        stack.push((0, ip_root));

        'traversal: while let Some((node_id, ip)) = stack.pop() {
            let node = &self.nodes[node_id as usize];
            stats.nodes_visited += 1;

            let lb = node_ball_bound(ip.abs(), query_norm, node.radius);
            if lb >= collector.threshold() {
                stats.pruned_subtrees += 1;
                continue;
            }

            if node.is_leaf() {
                stats.leaves_visited += 1;
                let exhausted = self.scan_leaf(ScanLeaf {
                    node_idx: node_id as usize,
                    node,
                    ip_node: ip,
                    q,
                    query_norm,
                    dim,
                    variant,
                    candidate_limit,
                    timing,
                    collector,
                    strip,
                    keep,
                    stats: &mut stats,
                });
                if exhausted {
                    break 'traversal;
                }
                continue;
            }

            // Collaborative inner-product computing (Lemma 2): one O(d) inner product
            // for the left child, O(1) arithmetic for the right child.
            let timer = timing.then(Instant::now);
            let left = &self.nodes[node.left as usize];
            let right = &self.nodes[node.right as usize];
            let ip_left = kernels::dot(q, center_of(left));
            stats.inner_products += 1;
            let size = node.size() as p2h_core::Scalar;
            let size_l = left.size() as p2h_core::Scalar;
            let size_r = right.size() as p2h_core::Scalar;
            let ip_right = (size / size_r) * ip - (size_l / size_r) * ip_left;
            if let Some(t) = timer {
                stats.time_bounds_ns += t.elapsed().as_nanos() as u64;
            }

            let left_first = match preference {
                BranchPreference::Center => ip_left.abs() < ip_right.abs(),
                BranchPreference::LowerBound => {
                    node_ball_bound(ip_left.abs(), query_norm, left.radius)
                        < node_ball_bound(ip_right.abs(), query_norm, right.radius)
                }
            };
            if left_first {
                stack.push((node.right, ip_right));
                stack.push((node.left, ip_left));
            } else {
                stack.push((node.left, ip_left));
                stack.push((node.right, ip_right));
            }
        }

        stats.time_total_ns = start.elapsed().as_nanos() as u64;
        SearchResult { neighbors: collector.take_sorted(), stats }
    }

    /// The `ScanWithPruning` routine of Algorithm 5 at strip granularity.
    ///
    /// Returns `true` when the candidate budget was exhausted (the traversal stops).
    fn scan_leaf(&self, args: ScanLeaf<'_, '_>) -> bool {
        let ScanLeaf {
            node_idx,
            node,
            ip_node,
            q,
            query_norm,
            dim,
            variant,
            candidate_limit,
            timing,
            collector,
            strip,
            keep,
            stats,
        } = args;

        // Per-leaf buffer resolution (see the traversal: derefs of mapped buffers
        // must not happen per candidate).
        let points_flat = self.points.as_flat();
        let original_ids: &[u32] = &self.original_ids;

        let bounds_timer = timing.then(Instant::now);
        let center_norm = self.center_norms[node_idx];
        let (q_cos, q_sin) = query_decomposition(ip_node, center_norm, query_norm);
        let abs_ip = ip_node.abs();
        if let Some(t) = bounds_timer {
            stats.time_bounds_ns += t.elapsed().as_nanos() as u64;
        }

        let mut pos = node.start as usize;
        let end = node.end as usize;
        while pos < end {
            if stats.candidates_verified >= candidate_limit {
                return true;
            }
            let strip_end = end.min(pos + LEAF_STRIP);
            let lambda = collector.threshold();

            // Phase 1: point-level bounds for the whole strip against the strip-start
            // threshold. Survivors are recorded; a ball-bound hit prunes the entire
            // remaining leaf (points are sorted by descending r_x, so every later point
            // has an equal-or-larger bound).
            let timer = timing.then(Instant::now);
            let mut kept = 0usize;
            let mut suffix_pruned = false;
            for p in pos..strip_end {
                let aux = self.aux[p];
                if variant.uses_ball_bound() {
                    let lb_ball = point_ball_bound(abs_ip, query_norm, aux.radius);
                    if lb_ball >= lambda {
                        stats.pruned_by_ball_bound += (end - p) as u64;
                        suffix_pruned = true;
                        break;
                    }
                }
                if variant.uses_cone_bound() {
                    let lb_cone = point_cone_bound(q_cos, q_sin, aux.x_cos, aux.x_sin);
                    if lb_cone >= lambda {
                        stats.pruned_by_cone_bound += 1;
                        continue;
                    }
                }
                keep[kept] = p as u32;
                kept += 1;
            }
            if let Some(t) = timer {
                stats.time_bounds_ns += t.elapsed().as_nanos() as u64;
            }

            // Phase 2: verify the survivors, capped by the remaining candidate budget.
            let budget = candidate_limit - stats.candidates_verified;
            let take = kept.min(budget.min(usize::MAX as u64) as usize);
            let timer = timing.then(Instant::now);
            if take > 0 {
                let full_strip = kept == strip_end - pos && !suffix_pruned;
                if full_strip && take == kept {
                    // Nothing pruned: verify the contiguous strip as one matvec.
                    kernels::abs_dot_block(
                        q,
                        &points_flat[pos * dim..strip_end * dim],
                        dim,
                        &mut strip[..take],
                    );
                    for (i, &dist) in strip[..take].iter().enumerate() {
                        collector.offer(original_ids[pos + i] as usize, dist);
                    }
                } else {
                    // Holes from pruning (or a trimmed budget): verify survivors with
                    // the single-row kernel, which is bit-identical per row.
                    for &p in &keep[..take] {
                        let p = p as usize;
                        let dist = kernels::abs_dot(&points_flat[p * dim..(p + 1) * dim], q);
                        collector.offer(original_ids[p] as usize, dist);
                    }
                }
                stats.inner_products += take as u64;
                stats.candidates_verified += take as u64;
            }
            if let Some(t) = timer {
                stats.time_verify_ns += t.elapsed().as_nanos() as u64;
            }

            if take < kept {
                return true; // Budget ran out mid-strip.
            }
            if suffix_pruned {
                return false; // Rest of the leaf is ball-bound-pruned; leaf done.
            }
            pos = strip_end;
        }
        false
    }
}

/// Argument bundle for [`BcTree::scan_leaf`] (avoids a dozen positional parameters).
struct ScanLeaf<'a, 'b> {
    node_idx: usize,
    node: &'a Node,
    ip_node: p2h_core::Scalar,
    q: &'a [p2h_core::Scalar],
    query_norm: p2h_core::Scalar,
    dim: usize,
    variant: BcTreeVariant,
    candidate_limit: u64,
    timing: bool,
    collector: &'b mut p2h_core::TopKCollector,
    strip: &'b mut [p2h_core::Scalar; LEAF_STRIP],
    keep: &'b mut [u32; LEAF_STRIP],
    stats: &'b mut SearchStats,
}

/// A borrowed view of a [`BcTree`] that answers queries with a fixed ablation
/// [`BcTreeVariant`], so the variants can be used anywhere a [`P2hIndex`] is expected
/// (e.g. the evaluation harness for Figure 8).
#[derive(Debug, Clone, Copy)]
pub struct BcTreeVariantView<'a> {
    tree: &'a BcTree,
    variant: BcTreeVariant,
}

impl BcTree {
    /// Returns a view of this tree that searches with the given ablation variant.
    pub fn with_variant(&self, variant: BcTreeVariant) -> BcTreeVariantView<'_> {
        BcTreeVariantView { tree: self, variant }
    }
}

impl P2hIndex for BcTreeVariantView<'_> {
    fn name(&self) -> &'static str {
        self.variant.label()
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn dim(&self) -> usize {
        self.tree.dim()
    }

    fn index_size_bytes(&self) -> usize {
        self.tree.index_size_bytes()
    }

    fn search(&self, query: &HyperplaneQuery, params: &SearchParams) -> SearchResult {
        self.tree.search_variant(query, params, self.variant)
    }

    fn search_with_scratch(
        &self,
        query: &HyperplaneQuery,
        params: &SearchParams,
        scratch: &mut QueryScratch,
    ) -> SearchResult {
        self.tree.search_variant_with_scratch(query, params, self.variant, scratch)
    }
}

impl P2hIndex for BcTree {
    fn name(&self) -> &'static str {
        "BC-Tree"
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn dim(&self) -> usize {
        self.points.dim()
    }

    fn index_size_bytes(&self) -> usize {
        self.structure_size_bytes()
    }

    fn search(&self, query: &HyperplaneQuery, params: &SearchParams) -> SearchResult {
        self.search_variant(query, params, BcTreeVariant::Full)
    }

    fn search_with_scratch(
        &self,
        query: &HyperplaneQuery,
        params: &SearchParams,
        scratch: &mut QueryScratch,
    ) -> SearchResult {
        self.search_variant_with_scratch(query, params, BcTreeVariant::Full, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::BcTreeBuilder;
    use p2h_balltree::BallTreeBuilder;
    use p2h_core::{LinearScan, PointSet};
    use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};

    fn dataset(n: usize, dim: usize, seed: u64) -> PointSet {
        SyntheticDataset::new(
            "bc-search",
            n,
            dim,
            DataDistribution::GaussianClusters { clusters: 6, std_dev: 1.5 },
            seed,
        )
        .generate()
        .unwrap()
    }

    fn queries(ps: &PointSet, count: usize) -> Vec<HyperplaneQuery> {
        generate_queries(ps, count, QueryDistribution::DataDifference, 123).unwrap()
    }

    #[test]
    fn exact_search_matches_linear_scan_for_all_variants() {
        let ps = dataset(3_000, 12, 1);
        let tree = BcTreeBuilder::new(64).build(&ps).unwrap();
        let scan = LinearScan::new(ps.clone());
        for (qi, q) in queries(&ps, 8).iter().enumerate() {
            for k in [1, 10] {
                let exact = scan.search_exact(q, k);
                for variant in [
                    BcTreeVariant::Full,
                    BcTreeVariant::WithoutCone,
                    BcTreeVariant::WithoutBall,
                    BcTreeVariant::WithoutBoth,
                ] {
                    let got = tree.search_variant(q, &SearchParams::exact(k), variant);
                    assert_eq!(
                        got.distances(),
                        exact.distances(),
                        "query {qi}, k={k}, variant {variant:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_is_identical_to_fresh_searches() {
        let ps = dataset(4_000, 12, 12);
        let tree = BcTreeBuilder::new(64).build(&ps).unwrap();
        let mut scratch = QueryScratch::new();
        for q in &queries(&ps, 10) {
            for params in [SearchParams::exact(7), SearchParams::approximate(5, 300)] {
                let fresh = tree.search(q, &params);
                let reused = tree.search_with_scratch(q, &params, &mut scratch);
                assert_eq!(fresh.neighbors, reused.neighbors);
                assert_eq!(fresh.stats.candidates_verified, reused.stats.candidates_verified);
            }
        }
    }

    #[test]
    fn point_level_pruning_reduces_verification() {
        let ps = dataset(20_000, 16, 2);
        let tree = BcTreeBuilder::new(200).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        let full = tree.search_variant(q, &SearchParams::exact(10), BcTreeVariant::Full);
        let none = tree.search_variant(q, &SearchParams::exact(10), BcTreeVariant::WithoutBoth);
        assert_eq!(full.distances(), none.distances(), "pruning must not change the answer");
        assert!(
            full.stats.candidates_verified <= none.stats.candidates_verified,
            "point-level pruning should not increase verification: {} vs {}",
            full.stats.candidates_verified,
            none.stats.candidates_verified
        );
        assert!(
            full.stats.pruned_by_ball_bound + full.stats.pruned_by_cone_bound > 0,
            "the point-level bounds should prune something on clustered data"
        );
    }

    #[test]
    fn collaborative_ip_roughly_halves_center_inner_products() {
        // Theorem 5: BC-Tree spends about half the O(d) center inner products a Ball-Tree
        // spends on the same traversal. The traversal order is identical (same splits,
        // same preference), so compare the `inner_products` spent on internal nodes,
        // i.e. total minus candidate verifications.
        let ps = dataset(10_000, 16, 3);
        let bc = BcTreeBuilder::new(100).with_seed(5).build(&ps).unwrap();
        let ball = BallTreeBuilder::new(100).with_seed(5).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        // Disable point-level pruning so both trees verify identical candidate sets.
        let bc_result = bc.search_variant(q, &SearchParams::exact(10), BcTreeVariant::WithoutBoth);
        let ball_result = ball.search_exact(q, 10);
        assert_eq!(bc_result.distances(), ball_result.distances());
        let bc_center_ips = bc_result.stats.inner_products - bc_result.stats.candidates_verified;
        let ball_center_ips =
            ball_result.stats.inner_products - ball_result.stats.candidates_verified;
        assert!(
            bc_center_ips <= ball_center_ips / 2 + 1,
            "collaborative computing should halve center inner products: bc={bc_center_ips}, ball={ball_center_ips}"
        );
    }

    #[test]
    fn candidate_limit_is_respected() {
        let ps = dataset(5_000, 8, 4);
        let tree = BcTreeBuilder::new(100).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        for limit in [100, 500, 2_000] {
            let result = tree.search(q, &SearchParams::approximate(10, limit));
            assert!(result.stats.candidates_verified <= limit as u64);
        }
    }

    #[test]
    fn recall_improves_with_budget() {
        let ps = dataset(8_000, 12, 5);
        let tree = BcTreeBuilder::new(100).build(&ps).unwrap();
        let scan = LinearScan::new(ps.clone());
        let qs = queries(&ps, 10);
        let mut small_hits = 0;
        let mut large_hits = 0;
        for q in &qs {
            let exact: Vec<usize> = scan.search_exact(q, 10).indices();
            let hits = |limit| {
                tree.search(q, &SearchParams::approximate(10, limit))
                    .indices()
                    .iter()
                    .filter(|i| exact.contains(i))
                    .count()
            };
            small_hits += hits(200);
            large_hits += hits(4_000);
        }
        assert!(large_hits >= small_hits);
        // Half the data set as candidate budget should recover the large majority of the
        // exact top-10 (the branch-and-bound order visits promising leaves first).
        assert!(
            large_hits as f64 >= 0.7 * (10 * qs.len()) as f64,
            "large-budget recall too low: {large_hits}/{}",
            10 * qs.len()
        );
    }

    #[test]
    fn both_branch_preferences_are_exact() {
        let ps = dataset(2_000, 8, 6);
        let tree = BcTreeBuilder::new(50).build(&ps).unwrap();
        let scan = LinearScan::new(ps.clone());
        for q in &queries(&ps, 5) {
            let exact = scan.search_exact(q, 5);
            for pref in [BranchPreference::Center, BranchPreference::LowerBound] {
                let got = tree.search(q, &SearchParams::exact(5).with_branch_preference(pref));
                assert_eq!(got.distances(), exact.distances());
            }
        }
    }

    #[test]
    fn timing_collection_populates_phase_timers() {
        let ps = dataset(3_000, 8, 7);
        let tree = BcTreeBuilder::new(100).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        let result = tree.search(q, &SearchParams::exact(5).with_timing());
        assert!(result.stats.time_total_ns > 0);
        assert!(result.stats.time_bounds_ns > 0);
        let untimed = tree.search_exact(q, 5);
        assert_eq!(untimed.stats.time_bounds_ns, 0);
    }

    #[test]
    fn trait_metadata() {
        let ps = dataset(1_000, 8, 8);
        let tree = BcTreeBuilder::new(100).build(&ps).unwrap();
        assert_eq!(tree.name(), "BC-Tree");
        assert_eq!(tree.len(), 1_000);
        assert_eq!(tree.dim(), 9);
        assert!(tree.index_size_bytes() > 0);
    }

    #[test]
    fn heavy_tailed_data_is_handled() {
        // Data far from the unit hypersphere: exactly the regime in which the paper's
        // trees must keep working while normalized hashing schemes fail.
        let ps = SyntheticDataset::new(
            "heavy",
            4_000,
            16,
            DataDistribution::HeavyTailedNorms { mu: 1.5, sigma: 1.0 },
            9,
        )
        .generate()
        .unwrap();
        let tree = BcTreeBuilder::new(100).build(&ps).unwrap();
        tree.check_invariants().unwrap();
        let scan = LinearScan::new(ps.clone());
        for q in &queries(&ps, 5) {
            assert_eq!(tree.search_exact(q, 10).distances(), scan.search_exact(q, 10).distances());
        }
    }

    #[test]
    fn k_larger_than_n_returns_all_points() {
        let ps = dataset(60, 4, 10);
        let tree = BcTreeBuilder::new(16).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        let result = tree.search_exact(q, 500);
        assert_eq!(result.neighbors.len(), 60);
    }
}
