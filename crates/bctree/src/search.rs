//! BC-Tree search (Algorithm 5 of the paper): collaborative inner-product computing at
//! internal nodes and point-level (ball + cone) pruning inside the leaves.

use std::time::Instant;

use p2h_balltree::bound::node_ball_bound;
use p2h_balltree::Node;
use p2h_core::{
    distance, BranchPreference, HyperplaneQuery, P2hIndex, Scalar, SearchParams, SearchResult,
    SearchStats, TopKCollector,
};

use crate::bounds::{point_ball_bound, point_cone_bound, query_decomposition};
use crate::build::BcTree;
use crate::BcTreeVariant;

struct Ctx<'a> {
    query: &'a [Scalar],
    query_norm: Scalar,
    preference: BranchPreference,
    variant: BcTreeVariant,
    collector: TopKCollector,
    stats: SearchStats,
    candidate_limit: u64,
    exhausted: bool,
    timing: bool,
}

impl Ctx<'_> {
    #[inline]
    fn threshold(&self) -> Scalar {
        self.collector.threshold()
    }
}

impl BcTree {
    /// The `ScanWithPruning` routine of Algorithm 5.
    ///
    /// `ip_node` is the (signed) inner product `⟨q, N.c⟩`, already available from the
    /// traversal thanks to the collaborative inner-product strategy.
    fn scan_leaf(&self, node_idx: usize, node: &Node, ip_node: Scalar, ctx: &mut Ctx<'_>) {
        let bounds_timer = ctx.timing.then(Instant::now);
        let center_norm = self.center_norms[node_idx];
        let (q_cos, q_sin) = query_decomposition(ip_node, center_norm, ctx.query_norm);
        let abs_ip = ip_node.abs();
        if let Some(t) = bounds_timer {
            ctx.stats.time_bounds_ns += t.elapsed().as_nanos() as u64;
        }

        for pos in node.start..node.end {
            if ctx.stats.candidates_verified >= ctx.candidate_limit {
                ctx.exhausted = true;
                return;
            }
            let aux = self.aux[pos as usize];
            let lambda = ctx.threshold();

            if ctx.variant.uses_ball_bound() {
                let timer = ctx.timing.then(Instant::now);
                let lb_ball = point_ball_bound(abs_ip, ctx.query_norm, aux.radius);
                if let Some(t) = timer {
                    ctx.stats.time_bounds_ns += t.elapsed().as_nanos() as u64;
                }
                if lb_ball >= lambda {
                    // Points are sorted by descending r_x, so every remaining point has a
                    // bound at least as large: prune the whole suffix in one batch.
                    ctx.stats.pruned_by_ball_bound += u64::from(node.end - pos);
                    return;
                }
            }

            if ctx.variant.uses_cone_bound() {
                let timer = ctx.timing.then(Instant::now);
                let lb_cone = point_cone_bound(q_cos, q_sin, aux.x_cos, aux.x_sin);
                if let Some(t) = timer {
                    ctx.stats.time_bounds_ns += t.elapsed().as_nanos() as u64;
                }
                if lb_cone >= lambda {
                    ctx.stats.pruned_by_cone_bound += 1;
                    continue;
                }
            }

            let timer = ctx.timing.then(Instant::now);
            let dist = distance::abs_dot(self.point(pos as usize), ctx.query);
            ctx.stats.inner_products += 1;
            ctx.stats.candidates_verified += 1;
            ctx.collector.offer(self.original_id(pos as usize), dist);
            if let Some(t) = timer {
                ctx.stats.time_verify_ns += t.elapsed().as_nanos() as u64;
            }
        }
    }

    /// Visits a node whose center inner product `ip = ⟨q, N.c⟩` is already known.
    fn visit(&self, node_id: u32, ip: Scalar, ctx: &mut Ctx<'_>) {
        if ctx.exhausted {
            return;
        }
        let node = &self.nodes[node_id as usize];
        ctx.stats.nodes_visited += 1;

        let lb = node_ball_bound(ip.abs(), ctx.query_norm, node.radius);
        if lb >= ctx.threshold() {
            ctx.stats.pruned_subtrees += 1;
            return;
        }

        if node.is_leaf() {
            ctx.stats.leaves_visited += 1;
            self.scan_leaf(node_id as usize, node, ip, ctx);
            return;
        }

        // Collaborative inner-product computing (Lemma 2): one O(d) inner product for the
        // left child, O(1) arithmetic for the right child.
        let timer = ctx.timing.then(Instant::now);
        let left = &self.nodes[node.left as usize];
        let right = &self.nodes[node.right as usize];
        let ip_left = distance::dot(ctx.query, self.center(left));
        ctx.stats.inner_products += 1;
        let size = node.size() as Scalar;
        let size_l = left.size() as Scalar;
        let size_r = right.size() as Scalar;
        let ip_right = (size / size_r) * ip - (size_l / size_r) * ip_left;
        if let Some(t) = timer {
            ctx.stats.time_bounds_ns += t.elapsed().as_nanos() as u64;
        }

        let left_first = match ctx.preference {
            BranchPreference::Center => ip_left.abs() < ip_right.abs(),
            BranchPreference::LowerBound => {
                node_ball_bound(ip_left.abs(), ctx.query_norm, left.radius)
                    < node_ball_bound(ip_right.abs(), ctx.query_norm, right.radius)
            }
        };
        if left_first {
            self.visit(node.left, ip_left, ctx);
            self.visit(node.right, ip_right, ctx);
        } else {
            self.visit(node.right, ip_right, ctx);
            self.visit(node.left, ip_left, ctx);
        }
    }

    /// Runs one query with an explicit ablation [`BcTreeVariant`] (Figure 8).
    pub fn search_variant(
        &self,
        query: &HyperplaneQuery,
        params: &SearchParams,
        variant: BcTreeVariant,
    ) -> SearchResult {
        assert_eq!(
            query.dim(),
            self.points.dim(),
            "query dimension must match the augmented data dimension"
        );
        let start = Instant::now();
        let mut ctx = Ctx {
            query: query.coeffs(),
            query_norm: query.norm(),
            preference: params.branch_preference,
            variant,
            collector: TopKCollector::new(params.k),
            stats: SearchStats::default(),
            candidate_limit: params.candidate_limit.map_or(u64::MAX, |c| c as u64),
            exhausted: false,
            timing: params.collect_timing,
        };

        let root = &self.nodes[0];
        let timer = ctx.timing.then(Instant::now);
        let ip_root = distance::dot(ctx.query, self.center(root));
        ctx.stats.inner_products += 1;
        if let Some(t) = timer {
            ctx.stats.time_bounds_ns += t.elapsed().as_nanos() as u64;
        }
        self.visit(0, ip_root, &mut ctx);

        let mut stats = ctx.stats;
        stats.time_total_ns = start.elapsed().as_nanos() as u64;
        SearchResult { neighbors: ctx.collector.into_sorted_vec(), stats }
    }
}

/// A borrowed view of a [`BcTree`] that answers queries with a fixed ablation
/// [`BcTreeVariant`], so the variants can be used anywhere a [`P2hIndex`] is expected
/// (e.g. the evaluation harness for Figure 8).
#[derive(Debug, Clone, Copy)]
pub struct BcTreeVariantView<'a> {
    tree: &'a BcTree,
    variant: BcTreeVariant,
}

impl BcTree {
    /// Returns a view of this tree that searches with the given ablation variant.
    pub fn with_variant(&self, variant: BcTreeVariant) -> BcTreeVariantView<'_> {
        BcTreeVariantView { tree: self, variant }
    }
}

impl P2hIndex for BcTreeVariantView<'_> {
    fn name(&self) -> &'static str {
        self.variant.label()
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn dim(&self) -> usize {
        self.tree.dim()
    }

    fn index_size_bytes(&self) -> usize {
        self.tree.index_size_bytes()
    }

    fn search(&self, query: &HyperplaneQuery, params: &SearchParams) -> SearchResult {
        self.tree.search_variant(query, params, self.variant)
    }
}

impl P2hIndex for BcTree {
    fn name(&self) -> &'static str {
        "BC-Tree"
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn dim(&self) -> usize {
        self.points.dim()
    }

    fn index_size_bytes(&self) -> usize {
        self.structure_size_bytes()
    }

    fn search(&self, query: &HyperplaneQuery, params: &SearchParams) -> SearchResult {
        self.search_variant(query, params, BcTreeVariant::Full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::BcTreeBuilder;
    use p2h_balltree::BallTreeBuilder;
    use p2h_core::{LinearScan, PointSet};
    use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};

    fn dataset(n: usize, dim: usize, seed: u64) -> PointSet {
        SyntheticDataset::new(
            "bc-search",
            n,
            dim,
            DataDistribution::GaussianClusters { clusters: 6, std_dev: 1.5 },
            seed,
        )
        .generate()
        .unwrap()
    }

    fn queries(ps: &PointSet, count: usize) -> Vec<HyperplaneQuery> {
        generate_queries(ps, count, QueryDistribution::DataDifference, 123).unwrap()
    }

    #[test]
    fn exact_search_matches_linear_scan_for_all_variants() {
        let ps = dataset(3_000, 12, 1);
        let tree = BcTreeBuilder::new(64).build(&ps).unwrap();
        let scan = LinearScan::new(ps.clone());
        for (qi, q) in queries(&ps, 8).iter().enumerate() {
            for k in [1, 10] {
                let exact = scan.search_exact(q, k);
                for variant in [
                    BcTreeVariant::Full,
                    BcTreeVariant::WithoutCone,
                    BcTreeVariant::WithoutBall,
                    BcTreeVariant::WithoutBoth,
                ] {
                    let got = tree.search_variant(q, &SearchParams::exact(k), variant);
                    assert_eq!(
                        got.distances(),
                        exact.distances(),
                        "query {qi}, k={k}, variant {variant:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn point_level_pruning_reduces_verification() {
        let ps = dataset(20_000, 16, 2);
        let tree = BcTreeBuilder::new(200).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        let full = tree.search_variant(q, &SearchParams::exact(10), BcTreeVariant::Full);
        let none = tree.search_variant(q, &SearchParams::exact(10), BcTreeVariant::WithoutBoth);
        assert_eq!(full.distances(), none.distances(), "pruning must not change the answer");
        assert!(
            full.stats.candidates_verified <= none.stats.candidates_verified,
            "point-level pruning should not increase verification: {} vs {}",
            full.stats.candidates_verified,
            none.stats.candidates_verified
        );
        assert!(
            full.stats.pruned_by_ball_bound + full.stats.pruned_by_cone_bound > 0,
            "the point-level bounds should prune something on clustered data"
        );
    }

    #[test]
    fn collaborative_ip_roughly_halves_center_inner_products() {
        // Theorem 5: BC-Tree spends about half the O(d) center inner products a Ball-Tree
        // spends on the same traversal. The traversal order is identical (same splits,
        // same preference), so compare the `inner_products` spent on internal nodes,
        // i.e. total minus candidate verifications.
        let ps = dataset(10_000, 16, 3);
        let bc = BcTreeBuilder::new(100).with_seed(5).build(&ps).unwrap();
        let ball = BallTreeBuilder::new(100).with_seed(5).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        // Disable point-level pruning so both trees verify identical candidate sets.
        let bc_result = bc.search_variant(q, &SearchParams::exact(10), BcTreeVariant::WithoutBoth);
        let ball_result = ball.search_exact(q, 10);
        assert_eq!(bc_result.distances(), ball_result.distances());
        let bc_center_ips = bc_result.stats.inner_products - bc_result.stats.candidates_verified;
        let ball_center_ips =
            ball_result.stats.inner_products - ball_result.stats.candidates_verified;
        assert!(
            bc_center_ips <= ball_center_ips / 2 + 1,
            "collaborative computing should halve center inner products: bc={bc_center_ips}, ball={ball_center_ips}"
        );
    }

    #[test]
    fn candidate_limit_is_respected() {
        let ps = dataset(5_000, 8, 4);
        let tree = BcTreeBuilder::new(100).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        for limit in [100, 500, 2_000] {
            let result = tree.search(q, &SearchParams::approximate(10, limit));
            assert!(result.stats.candidates_verified <= limit as u64);
        }
    }

    #[test]
    fn recall_improves_with_budget() {
        let ps = dataset(8_000, 12, 5);
        let tree = BcTreeBuilder::new(100).build(&ps).unwrap();
        let scan = LinearScan::new(ps.clone());
        let qs = queries(&ps, 10);
        let mut small_hits = 0;
        let mut large_hits = 0;
        for q in &qs {
            let exact: Vec<usize> = scan.search_exact(q, 10).indices();
            let hits = |limit| {
                tree.search(q, &SearchParams::approximate(10, limit))
                    .indices()
                    .iter()
                    .filter(|i| exact.contains(i))
                    .count()
            };
            small_hits += hits(200);
            large_hits += hits(4_000);
        }
        assert!(large_hits >= small_hits);
        // Half the data set as candidate budget should recover the large majority of the
        // exact top-10 (the branch-and-bound order visits promising leaves first).
        assert!(
            large_hits as f64 >= 0.7 * (10 * qs.len()) as f64,
            "large-budget recall too low: {large_hits}/{}",
            10 * qs.len()
        );
    }

    #[test]
    fn both_branch_preferences_are_exact() {
        let ps = dataset(2_000, 8, 6);
        let tree = BcTreeBuilder::new(50).build(&ps).unwrap();
        let scan = LinearScan::new(ps.clone());
        for q in &queries(&ps, 5) {
            let exact = scan.search_exact(q, 5);
            for pref in [BranchPreference::Center, BranchPreference::LowerBound] {
                let got = tree.search(q, &SearchParams::exact(5).with_branch_preference(pref));
                assert_eq!(got.distances(), exact.distances());
            }
        }
    }

    #[test]
    fn timing_collection_populates_phase_timers() {
        let ps = dataset(3_000, 8, 7);
        let tree = BcTreeBuilder::new(100).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        let result = tree.search(q, &SearchParams::exact(5).with_timing());
        assert!(result.stats.time_total_ns > 0);
        assert!(result.stats.time_bounds_ns > 0);
        let untimed = tree.search_exact(q, 5);
        assert_eq!(untimed.stats.time_bounds_ns, 0);
    }

    #[test]
    fn trait_metadata() {
        let ps = dataset(1_000, 8, 8);
        let tree = BcTreeBuilder::new(100).build(&ps).unwrap();
        assert_eq!(tree.name(), "BC-Tree");
        assert_eq!(tree.len(), 1_000);
        assert_eq!(tree.dim(), 9);
        assert!(tree.index_size_bytes() > 0);
    }

    #[test]
    fn heavy_tailed_data_is_handled() {
        // Data far from the unit hypersphere: exactly the regime in which the paper's
        // trees must keep working while normalized hashing schemes fail.
        let ps = SyntheticDataset::new(
            "heavy",
            4_000,
            16,
            DataDistribution::HeavyTailedNorms { mu: 1.5, sigma: 1.0 },
            9,
        )
        .generate()
        .unwrap();
        let tree = BcTreeBuilder::new(100).build(&ps).unwrap();
        tree.check_invariants().unwrap();
        let scan = LinearScan::new(ps.clone());
        for q in &queries(&ps, 5) {
            assert_eq!(tree.search_exact(q, 10).distances(), scan.search_exact(q, 10).distances());
        }
    }

    #[test]
    fn k_larger_than_n_returns_all_points() {
        let ps = dataset(60, 4, 10);
        let tree = BcTreeBuilder::new(16).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        let result = tree.search_exact(q, 500);
        assert_eq!(result.neighbors.len(), 60);
    }
}
