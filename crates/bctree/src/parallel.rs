//! Parallel BC-Tree construction (feature `parallel`).
//!
//! Same scheme as `p2h_balltree::parallel` (which this module reuses for seed mixing
//! and arena splicing): the two child subtrees of every split touch disjoint index
//! slices, so above a size cutoff they are built on scoped threads and spliced into the
//! parent arena with id fixups. BC-Tree specifics — leaf points sorted by descending
//! `r_x`, internal centers combined from the children in O(d) via Lemma 1, and the
//! second pass computing center norms and the per-point ball/cone structures — are
//! identical to the sequential builder (the second pass is shared code).
//!
//! Determinism matches the Ball-Tree parallel builder: per-node seeds derived from
//! `(builder seed, offset, length)` make the result bit-identical across thread counts,
//! though generally different from the sequential builder's tree.

use rand::rngs::StdRng;
use rand::SeedableRng;

use p2h_balltree::parallel::{node_seed, resolve_threads, splice, Subtree, PARALLEL_CUTOFF};
use p2h_balltree::split::seed_grow_split;
use p2h_balltree::{Node, NO_CHILD};
use p2h_core::{distance, Error, PointSet, Result, Scalar};

use crate::build::{build_leaf, combine_child_centers, finalize, BcTree, BcTreeBuilder};

impl BcTreeBuilder {
    /// Builds a BC-Tree with parallel recursive construction over `threads` worker
    /// threads (`0` = one per available CPU).
    ///
    /// The result is deterministic for a given `(seed, leaf_size)` regardless of
    /// `threads`, but generally differs from [`BcTreeBuilder::build`] (see the module
    /// docs). All structural invariants and exact-search guarantees are identical.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BcTreeBuilder::build`].
    pub fn build_parallel(&self, points: &PointSet, threads: usize) -> Result<BcTree> {
        if self.leaf_size == 0 {
            return Err(Error::InvalidParameter {
                name: "leaf_size",
                message: "the maximum leaf size N0 must be at least 1".into(),
            });
        }
        if points.is_empty() {
            return Err(Error::EmptyDataSet);
        }
        let threads = resolve_threads(threads);
        let mut order: Vec<usize> = (0..points.len()).collect();

        let subtree = build_recursive(points, &mut order, 0, self.leaf_size, self.seed, threads);

        // `finalize` also fans the second pass (center norms + per-leaf ball/cone
        // structures) out over the same worker budget; see the build module.
        finalize(points, &order, subtree.nodes, subtree.centers, self.leaf_size, self.seed, threads)
    }
}

/// Builds the subtree covering `slice`, splitting the recursion across up to `threads`
/// workers. Mirrors `build_recursive` of the sequential builder, with children built
/// before the parent so the Lemma-1 center combination can read their root centers.
fn build_recursive(
    points: &PointSet,
    slice: &mut [usize],
    offset: usize,
    leaf_size: usize,
    builder_seed: u64,
    threads: usize,
) -> Subtree {
    let len = slice.len();
    let dim = points.dim();

    if len <= leaf_size {
        let (center, radius) = build_leaf(points, slice);
        let node = Node {
            center_offset: 0,
            radius,
            start: offset as u32,
            end: (offset + len) as u32,
            left: NO_CHILD,
            right: NO_CHILD,
        };
        return Subtree { nodes: vec![node], centers: center };
    }

    let mut rng = StdRng::seed_from_u64(node_seed(builder_seed, offset, len));
    let split = seed_grow_split(points, slice, &mut rng);
    let (left_slice, right_slice) = slice.split_at_mut(split);
    let left_len = left_slice.len();
    let right_len = right_slice.len();

    let (left_sub, right_sub) = if threads > 1 && len >= PARALLEL_CUTOFF {
        let right_threads = threads / 2;
        let left_threads = threads - right_threads;
        std::thread::scope(|scope| {
            let right_handle = scope.spawn(move || {
                build_recursive(
                    points,
                    right_slice,
                    offset + split,
                    leaf_size,
                    builder_seed,
                    right_threads,
                )
            });
            let left_sub =
                build_recursive(points, left_slice, offset, leaf_size, builder_seed, left_threads);
            (left_sub, right_handle.join().expect("parallel build worker panicked"))
        })
    } else {
        (
            build_recursive(points, left_slice, offset, leaf_size, builder_seed, 1),
            build_recursive(points, right_slice, offset + split, leaf_size, builder_seed, 1),
        )
    };

    let center = combine_child_centers(
        &left_sub.centers[..dim],
        &right_sub.centers[..dim],
        left_len,
        right_len,
    );
    let radius = slice
        .iter()
        .map(|&i| distance::euclidean(points.point(i), &center))
        .fold(0.0 as Scalar, Scalar::max);

    let mut nodes = vec![Node {
        center_offset: 0,
        radius,
        start: offset as u32,
        end: (offset + len) as u32,
        left: NO_CHILD,
        right: NO_CHILD,
    }];
    let mut centers = center;
    let left_id = splice(&mut nodes, &mut centers, left_sub, dim);
    let right_id = splice(&mut nodes, &mut centers, right_sub, dim);
    nodes[0].left = left_id;
    nodes[0].right = right_id;

    Subtree { nodes, centers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::{HyperplaneQuery, LinearScan, P2hIndex};
    use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};

    fn dataset(n: usize, dim: usize) -> PointSet {
        SyntheticDataset::new(
            "bc-parallel",
            n,
            dim,
            DataDistribution::GaussianClusters { clusters: 6, std_dev: 1.4 },
            43,
        )
        .generate()
        .unwrap()
    }

    #[test]
    fn parallel_build_is_deterministic_across_thread_counts() {
        let ps = dataset(6_000, 10);
        let reference = BcTreeBuilder::new(64).with_seed(5).build_parallel(&ps, 1).unwrap();
        for threads in [2, 4, 8] {
            let tree = BcTreeBuilder::new(64).with_seed(5).build_parallel(&ps, threads).unwrap();
            assert_eq!(tree.original_ids, reference.original_ids, "threads={threads}");
            assert_eq!(tree.nodes, reference.nodes, "threads={threads}");
            assert_eq!(tree.aux, reference.aux, "threads={threads}");
        }
    }

    #[test]
    fn parallel_build_satisfies_invariants_and_is_exact() {
        let ps = dataset(5_000, 12);
        let tree = BcTreeBuilder::new(50).build_parallel(&ps, 4).unwrap();
        tree.check_invariants().unwrap();
        let scan = LinearScan::new(ps.clone());
        let queries: Vec<HyperplaneQuery> =
            generate_queries(&ps, 6, QueryDistribution::DataDifference, 29).unwrap();
        for q in &queries {
            assert_eq!(tree.search_exact(q, 10).distances(), scan.search_exact(q, 10).distances());
        }
    }

    #[test]
    fn parallel_build_handles_edge_shapes() {
        let ps = dataset(80, 6);
        let tree = BcTreeBuilder::new(200).build_parallel(&ps, 4).unwrap();
        assert_eq!(tree.node_count(), 1);
        tree.check_invariants().unwrap();

        let rows = vec![vec![-2.0 as Scalar, 1.0]; 4_000];
        let ps = PointSet::augment(&rows).unwrap();
        let tree = BcTreeBuilder::new(32).build_parallel(&ps, 4).unwrap();
        tree.check_invariants().unwrap();

        assert!(matches!(
            BcTreeBuilder::new(0).build_parallel(&dataset(50, 4), 2),
            Err(Error::InvalidParameter { .. })
        ));
    }
}
