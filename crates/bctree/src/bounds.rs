//! Point-level lower bounds used inside BC-Tree leaves.
//!
//! * [`point_ball_bound`] — Corollary 1: the ball structure shares the leaf center, so
//!   each point only needs its own radius `r_x`.
//! * [`point_cone_bound`] — Theorem 3: the cone structure uses the point's norm and its
//!   angle to the leaf center; the bound is provably at least as tight as the ball bound
//!   (Theorem 4), which the property tests below verify numerically.

use p2h_core::Scalar;

/// Point-level ball bound (Corollary 1): `|⟨x, q⟩| ≥ max(|⟨q, c⟩| − ‖q‖·r_x, 0)`.
///
/// `abs_ip` is `|⟨q, c⟩|` for the leaf center `c`, and `r_x = ‖x − c‖`.
#[inline]
pub fn point_ball_bound(abs_ip: Scalar, query_norm: Scalar, r_x: Scalar) -> Scalar {
    (abs_ip - query_norm * r_x).max(0.0)
}

/// Point-level cone bound (Theorem 3).
///
/// Inputs are the precomputed products
///
/// * `q_cos = ‖q‖·cos θ = ⟨q, c⟩ / ‖c‖` (signed),
/// * `q_sin = ‖q‖·sin θ ≥ 0`,
/// * `x_cos = ‖x‖·cos φ_x` (signed),
/// * `x_sin = ‖x‖·sin φ_x ≥ 0`,
///
/// where `θ` is the angle between the query and the leaf center and `φ_x` the angle
/// between the point and the leaf center. Using the product-to-sum identities,
/// `‖x‖‖q‖·cos(θ + φ_x) = q_cos·x_cos − q_sin·x_sin` and
/// `‖x‖‖q‖·cos(|θ − φ_x|) = q_cos·x_cos + q_sin·x_sin`, so the three cases of Theorem 3
/// become sign tests on the two products — an O(1) computation.
#[inline]
pub fn point_cone_bound(q_cos: Scalar, q_sin: Scalar, x_cos: Scalar, x_sin: Scalar) -> Scalar {
    let cos_sum = q_cos * x_cos - q_sin * x_sin; // ‖x‖‖q‖·cos(θ + φ)
    let cos_diff = q_cos * x_cos + q_sin * x_sin; // ‖x‖‖q‖·cos(|θ − φ|)
    if cos_sum > 0.0 && q_cos > 0.0 && x_cos > 0.0 {
        cos_sum
    } else if cos_diff < 0.0 {
        -cos_diff
    } else {
        0.0
    }
}

/// Decomposes the query against a leaf center: returns `(q_cos, q_sin)` given the signed
/// inner product `⟨q, c⟩`, the center norm `‖c‖`, and the query norm `‖q‖`.
///
/// When the center is (numerically) the origin the angle is undefined; the conservative
/// decomposition `(0, ‖q‖)` is returned, which makes the cone bound evaluate to 0 and
/// never prunes incorrectly.
#[inline]
pub fn query_decomposition(
    ip_center: Scalar,
    center_norm: Scalar,
    query_norm: Scalar,
) -> (Scalar, Scalar) {
    if center_norm <= Scalar::EPSILON {
        return (0.0, query_norm);
    }
    let q_cos = ip_center / center_norm;
    let q_sin = (query_norm * query_norm - q_cos * q_cos).max(0.0).sqrt();
    (q_cos, q_sin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::distance;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds the exact cone-structure inputs for a point/center/query triple.
    fn setup(
        point: &[Scalar],
        center: &[Scalar],
        query: &[Scalar],
    ) -> ((Scalar, Scalar), (Scalar, Scalar), Scalar, Scalar) {
        let ip_center = distance::dot(query, center);
        let center_norm = distance::norm(center);
        let query_norm = distance::norm(query);
        let (q_cos, q_sin) = query_decomposition(ip_center, center_norm, query_norm);
        let x_norm = distance::norm(point);
        let cos_phi = distance::cosine(point, center);
        let x_cos = x_norm * cos_phi;
        let x_sin = x_norm * (1.0 - cos_phi * cos_phi).max(0.0).sqrt();
        let r_x = distance::euclidean(point, center);
        let actual = distance::abs_dot(point, query);
        ((q_cos, q_sin), (x_cos, x_sin), r_x, actual)
    }

    #[test]
    fn ball_bound_matches_corollary_cases() {
        assert_eq!(point_ball_bound(10.0, 2.0, 1.0), 8.0);
        assert_eq!(point_ball_bound(1.0, 2.0, 4.0), 0.0);
        assert_eq!(point_ball_bound(0.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn cone_bound_simple_geometry() {
        // Query along +x, center along +x, point along +x at norm 2: everything aligned,
        // the inner product is exactly 2·‖q‖ and the bound must not exceed it.
        let point = [2.0, 0.0];
        let center = [1.0, 0.0];
        let query = [3.0, 0.0];
        let ((qc, qs), (xc, xs), _r, actual) = setup(&point, &center, &query);
        let bound = point_cone_bound(qc, qs, xc, xs);
        assert!(bound <= actual + 1e-5);
        assert!(bound > 0.0, "aligned vectors must give a positive bound");

        // Orthogonal point: the bound must be 0 (the point can lie on the hyperplane).
        let point = [0.0, 1.0];
        let ((qc, qs), (xc, xs), _r, actual) = setup(&point, &center, &query);
        assert!(actual < 1e-6);
        assert_eq!(point_cone_bound(qc, qs, xc, xs), 0.0);
    }

    #[test]
    fn query_decomposition_degenerate_center() {
        let (qc, qs) = query_decomposition(0.0, 0.0, 2.5);
        assert_eq!(qc, 0.0);
        assert_eq!(qs, 2.5);
    }

    #[test]
    fn decomposition_satisfies_pythagoras() {
        let (qc, qs) = query_decomposition(3.0, 2.0, 2.0);
        assert!((qc * qc + qs * qs - 4.0).abs() < 1e-5);
        assert!(qs >= 0.0);
    }

    #[test]
    fn cone_bound_is_valid_and_tighter_randomized() {
        // Theorem 3 (validity) and Theorem 4 (cone ≥ ball) on random leaf geometry.
        let mut rng = StdRng::seed_from_u64(31);
        let dim = 6;
        let mut tighter_cases = 0usize;
        for _ in 0..500 {
            let center: Vec<Scalar> = (0..dim).map(|_| rng.gen_range(-4.0..4.0)).collect();
            let query: Vec<Scalar> = (0..dim).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let point: Vec<Scalar> = center.iter().map(|c| c + rng.gen_range(-1.5..1.5)).collect();
            let qn = distance::norm(&query);
            if qn < 1e-3 {
                continue;
            }
            let ((qc, qs), (xc, xs), r_x, actual) = setup(&point, &center, &query);
            let cone = point_cone_bound(qc, qs, xc, xs);
            let ball = point_ball_bound(distance::dot(&query, &center).abs(), qn, r_x);
            let tol = 1e-3 * (1.0 + actual.abs());
            assert!(cone <= actual + tol, "cone bound {cone} exceeds |<x,q>| = {actual}");
            assert!(ball <= actual + tol, "ball bound {ball} exceeds |<x,q>| = {actual}");
            assert!(
                cone + tol >= ball,
                "Theorem 4 violated: cone {cone} < ball {ball} (actual {actual})"
            );
            if cone > ball + tol {
                tighter_cases += 1;
            }
        }
        assert!(
            tighter_cases > 20,
            "the cone bound should be strictly tighter reasonably often, got {tighter_cases}"
        );
    }

    proptest! {
        /// Theorem 3 validity under proptest-generated geometry.
        #[test]
        fn cone_bound_never_exceeds_true_distance(
            center in proptest::collection::vec(-5.0f32..5.0, 4),
            offset in proptest::collection::vec(-2.0f32..2.0, 4),
            query in proptest::collection::vec(-3.0f32..3.0, 4),
        ) {
            let point: Vec<Scalar> = center.iter().zip(offset.iter()).map(|(c, o)| c + o).collect();
            prop_assume!(distance::norm(&query) > 1e-3);
            let ((qc, qs), (xc, xs), _r, actual) = setup(&point, &center, &query);
            let cone = point_cone_bound(qc, qs, xc, xs);
            prop_assert!(cone <= actual + 1e-2 * (1.0 + actual.abs()),
                "cone {} vs actual {}", cone, actual);
        }

        /// Theorem 4: the cone bound dominates the ball bound.
        #[test]
        fn cone_bound_dominates_ball_bound(
            center in proptest::collection::vec(-5.0f32..5.0, 4),
            offset in proptest::collection::vec(-2.0f32..2.0, 4),
            query in proptest::collection::vec(-3.0f32..3.0, 4),
        ) {
            let point: Vec<Scalar> = center.iter().zip(offset.iter()).map(|(c, o)| c + o).collect();
            let qn = distance::norm(&query);
            prop_assume!(qn > 1e-3);
            let ((qc, qs), (xc, xs), r_x, actual) = setup(&point, &center, &query);
            let cone = point_cone_bound(qc, qs, xc, xs);
            let ball = point_ball_bound(distance::dot(&query, &center).abs(), qn, r_x);
            prop_assert!(cone + 1e-2 * (1.0 + actual.abs()) >= ball,
                "cone {} < ball {}", cone, ball);
        }
    }
}
