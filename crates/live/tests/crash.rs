//! Crash-safety: `kill -9` the `live-writer` helper mid-WAL-append and
//! mid-compaction, reopen the store, and verify that **no acknowledged write is
//! lost** and the recovered index answers **bit-identically** to a fresh rebuild
//! over the recovered live points. The helper prints `ACK I/D <id>` only after the
//! operation's WAL fsync returned, so every acknowledged line this harness observed
//! must survive the kill.

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};

use p2h_core::{HyperplaneQuery, LinearScan, P2hIndex, PointSet, Scalar, SearchParams};
use p2h_live::LiveIndex;
use p2h_store::Store;

const RAW_DIM: usize = 3;

/// Mirror of `live-writer::raw_point` — keep the two identical.
fn raw_point(id: u32, raw_dim: usize) -> Vec<Scalar> {
    (0..raw_dim)
        .map(|j| {
            let mut x = (u64::from(id) << 32) | j as u64;
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            (x >> 40) as Scalar / (1u64 << 23) as Scalar - 1.0
        })
        .collect()
}

static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "p2h-live-crash-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

struct Writer {
    child: Child,
    lines: BufReader<ChildStdout>,
}

impl Writer {
    fn spawn(dir: &Path, mode: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_live-writer"))
            .arg(dir)
            .arg("s")
            .arg(RAW_DIM.to_string())
            .args(mode)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn live-writer");
        let lines = BufReader::new(child.stdout.take().expect("stdout piped"));
        Writer { child, lines }
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.lines.read_line(&mut line).expect("read line");
        line.trim().to_string()
    }

    fn expect_ready(&mut self) -> u32 {
        let line = self.read_line();
        let next_id = line.strip_prefix("READY ").unwrap_or_else(|| panic!("not READY: {line}"));
        next_id.parse().expect("READY id")
    }

    /// SIGKILL — no destructors, no flush, exactly the crash under test.
    fn kill(mut self) {
        self.child.kill().expect("kill");
        self.child.wait().expect("wait");
    }
}

impl Drop for Writer {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[derive(Default)]
struct Acks {
    inserts: Vec<u32>,
    deletes: Vec<u32>,
}

impl Acks {
    fn record(&mut self, line: &str) {
        if let Some(id) = line.strip_prefix("ACK I ") {
            self.inserts.push(id.parse().expect("insert id"));
        } else if let Some(id) = line.strip_prefix("ACK D ") {
            self.deletes.push(id.parse().expect("delete id"));
        }
    }

    fn merge(&mut self, other: Acks) {
        self.inserts.extend(other.inserts);
        self.deletes.extend(other.deletes);
    }
}

/// Reads acknowledgements until `count` more have been observed (other lines pass
/// through untouched).
fn collect_acks(writer: &mut Writer, count: usize) -> Acks {
    let mut acks = Acks::default();
    while acks.inserts.len() + acks.deletes.len() < count {
        let line = writer.read_line();
        acks.record(&line);
    }
    acks
}

/// Reopens the killed store and checks the full contract: every acknowledged write
/// survived, every recovered point is bit-identical to its generator, and layered
/// serving matches a fresh `LinearScan` rebuild bit-for-bit.
fn verify_recovery(dir: &Path, acks: &Acks) -> u32 {
    let store = Store::open(dir).expect("reopen store after kill");
    let live = LiveIndex::open(&store, "s").expect("recover live index");

    let max_acked = acks.inserts.iter().copied().max().expect("some acked inserts");
    assert!(live.next_id() > max_acked, "acked insert {max_acked} not durable");

    let points: HashMap<u32, Vec<Scalar>> = live.live_points().into_iter().collect();
    for &id in &acks.inserts {
        // Ids ≡ 5 (mod 7) are delete victims: an acknowledged insert may since have
        // been deleted (acknowledged or in flight at the kill). Every other id must
        // still be live.
        if id % 7 == 5 {
            continue;
        }
        assert!(points.contains_key(&id), "acked insert {id} lost");
    }
    for &id in &acks.deletes {
        assert!(!points.contains_key(&id), "acked delete {id} resurrected");
    }
    for (id, point) in &points {
        let mut expected = raw_point(*id, RAW_DIM);
        expected.push(1.0);
        assert_eq!(point, &expected, "recovered point {id} is not bit-identical");
    }

    // Layered serving over the recovered state vs a fresh rebuild, bit for bit.
    let ordered = live.live_points();
    let rows: Vec<Vec<Scalar>> = ordered.iter().map(|(_, p)| p[..RAW_DIM].to_vec()).collect();
    let scan = LinearScan::new(PointSet::augment(&rows).expect("rebuild"));
    for (normal, bias) in
        [([1.0, 0.0, 0.0], 0.0), ([0.3, -0.7, 0.2], 0.4), ([-0.5, 0.5, 1.0], -0.8)]
    {
        let query = HyperplaneQuery::from_normal_and_bias(&normal, bias).expect("query");
        let layered: Vec<(u32, u32)> = live
            .search_exact(&query, 10)
            .expect("layered search")
            .neighbors
            .iter()
            .map(|n| (n.index as u32, n.distance.to_bits()))
            .collect();
        let rebuilt: Vec<(u32, u32)> = scan
            .search(&query, &SearchParams::exact(10))
            .neighbors
            .iter()
            .map(|n| (ordered[n.index].0, n.distance.to_bits()))
            .collect();
        assert_eq!(layered, rebuilt, "layered ≠ rebuild after crash recovery");
    }
    live.next_id()
}

#[test]
fn kill_mid_wal_append_loses_no_acknowledged_write() {
    let dir = temp_dir("append");
    let mut writer = Writer::spawn(&dir, &["insert-loop"]);
    assert_eq!(writer.expect_ready(), 0);
    // Kill while the writer is mid-stream: SIGKILL lands at an arbitrary point in
    // an append/fsync cycle.
    let acks = collect_acks(&mut writer, 300);
    writer.kill();
    verify_recovery(&dir, &acks);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_mid_compaction_loses_no_acknowledged_write() {
    let dir = temp_dir("compact");
    let mut writer = Writer::spawn(&dir, &["compact-after", "200"]);
    assert_eq!(writer.expect_ready(), 0);
    let mut acks = Acks::default();
    // Drain acks until the compaction starts, then kill immediately: the SIGKILL
    // lands during the freeze/build/commit window (or just after — both must hold).
    loop {
        let line = writer.read_line();
        if line == "COMPACT-START" {
            break;
        }
        acks.record(&line);
    }
    writer.kill();
    let next_id = verify_recovery(&dir, &acks);

    // The recovered store keeps serving writes: restart the writer on the same
    // directory, stream more acknowledged mutations, crash again, recover again.
    let mut writer = Writer::spawn(&dir, &["insert-loop"]);
    assert_eq!(writer.expect_ready(), next_id);
    acks.merge(collect_acks(&mut writer, 100));
    writer.kill();
    verify_recovery(&dir, &acks);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_after_compaction_replays_the_new_epoch_segment() {
    let dir = temp_dir("epoch");
    let mut writer = Writer::spawn(&dir, &["compact-after", "60"]);
    assert_eq!(writer.expect_ready(), 0);
    let mut acks = Acks::default();
    let epoch = loop {
        let line = writer.read_line();
        if let Some(committed) = line.strip_prefix("COMPACT-DONE ") {
            break committed.parse::<u64>().expect("epoch");
        }
        acks.record(&line);
    };
    assert_eq!(epoch, 1);
    // Appends now target the new epoch's segment over the compacted tree base.
    acks.merge(collect_acks(&mut writer, 150));
    writer.kill();
    verify_recovery(&dir, &acks);
    std::fs::remove_dir_all(&dir).ok();
}
