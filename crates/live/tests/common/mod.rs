//! Shared oracle checker for the layered-serving property tests.
//!
//! A random interleaving of insert/delete/query/compact runs twice: against a
//! [`LiveIndex`] in a throwaway store, and against a plain model (`Vec` of raw rows
//! keyed by global id) whose oracle is a **fresh [`LinearScan`] rebuild** over the
//! model at query time. Every query must agree with the rebuild on global ids *and*
//! raw `f32` distance bits — the crate's central invariant. After the interleaving,
//! the store is reopened under both [`LoadMode`]s (replaying the WAL over the
//! snapshot base) and every recorded query must still agree with the final rebuild.
//!
//! Two test binaries include this module so the dispatched-SIMD and forced-scalar
//! backends each get their own process (the kernel override is process-global).

#![allow(dead_code)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use p2h_core::{HyperplaneQuery, LinearScan, P2hIndex, PointSet, Scalar, SearchParams};
use p2h_live::LiveIndex;
use p2h_store::{LoadMode, Store};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Raw (unaugmented) dimensionality of every generated point.
pub const RAW_DIM: usize = 3;

/// One generated op: `(tag, selector, coords, bias)`, interpreted by
/// [`check_interleaving`] — tags 0–4 insert `coords`, 5–6 query the hyperplane
/// `(coords, bias)` with `k = 1 + selector % 6`, 7–8 delete the `selector`-th live
/// point, 9 compacts.
pub type OpTuple = (u32, u32, Vec<Scalar>, Scalar);

/// Strategy for one interleaving: up to 40 ops over `RAW_DIM`-dimensional points.
pub fn ops_strategy() -> impl Strategy<Value = Vec<OpTuple>> {
    proptest::collection::vec(
        (0u32..10, 0u32..1_000_000, proptest::collection::vec(-1.0f32..1.0, RAW_DIM), -2.0f32..2.0),
        0..40,
    )
}

static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("p2h-live-{tag}-{}-{case}", std::process::id()))
}

/// `(global id, distance bits)` pairs — the exact comparison currency.
type Answer = Vec<(u32, u32)>;

/// The fresh-rebuild oracle: a [`LinearScan`] over the model rows in id order.
fn oracle_answer(model: &[(u32, Vec<Scalar>)], query: &HyperplaneQuery, k: usize) -> Answer {
    if model.is_empty() {
        return Vec::new();
    }
    let rows: Vec<Vec<Scalar>> = model.iter().map(|(_, row)| row.clone()).collect();
    let scan = LinearScan::new(PointSet::augment(&rows).expect("oracle point set"));
    let result = scan.search(query, &SearchParams::exact(k));
    result.neighbors.iter().map(|n| (model[n.index].0, n.distance.to_bits())).collect()
}

fn live_answer(
    live: &LiveIndex,
    query: &HyperplaneQuery,
    k: usize,
) -> Result<Answer, TestCaseError> {
    match live.search_exact(query, k) {
        Ok(result) => {
            Ok(result.neighbors.iter().map(|n| (n.index as u32, n.distance.to_bits())).collect())
        }
        Err(e) => Err(TestCaseError::Fail(format!("layered search failed: {e}"))),
    }
}

/// Augments a raw model row the way [`LiveIndex::insert`] does.
fn augmented(row: &[Scalar]) -> Vec<Scalar> {
    let mut point = row.to_vec();
    point.push(1.0);
    point
}

/// Runs one interleaving against the live index and the rebuild oracle. Returns
/// `Err(TestCaseError::Fail)` on the first divergence.
pub fn check_interleaving(tag: &str, ops: &[OpTuple]) -> Result<(), TestCaseError> {
    let dir = temp_dir(tag);
    let store = Store::create(&dir).expect("create store");
    let live = LiveIndex::create(&store, "stream", RAW_DIM + 1).expect("create live index");

    let mut model: Vec<(u32, Vec<Scalar>)> = Vec::new();
    let mut recorded: Vec<(HyperplaneQuery, usize)> = Vec::new();

    for (tag_value, selector, coords, bias) in ops {
        match tag_value % 10 {
            0..=4 => {
                let id = match live.insert(coords) {
                    Ok(id) => id,
                    Err(e) => return Err(TestCaseError::Fail(format!("insert failed: {e}"))),
                };
                model.push((id, coords.clone()));
            }
            5 | 6 => {
                let Ok(query) = HyperplaneQuery::from_normal_and_bias(coords, *bias) else {
                    continue; // degenerate normal — skip, not a property violation
                };
                let k = 1 + (*selector as usize) % 6;
                prop_assert_eq!(live_answer(&live, &query, k)?, oracle_answer(&model, &query, k));
                recorded.push((query, k));
            }
            7 | 8 => {
                if model.is_empty() {
                    // Nothing live: any id must answer NotFound, and the refusal
                    // must never reach the WAL (checked implicitly on reopen).
                    prop_assert!(live.delete(*selector).is_err());
                } else {
                    let victim = *selector as usize % model.len();
                    let (id, _) = model.remove(victim);
                    if let Err(e) = live.delete(id) {
                        return Err(TestCaseError::Fail(format!("delete({id}) failed: {e}")));
                    }
                    // A second delete of the same id must be NotFound.
                    prop_assert!(live.delete(id).is_err());
                }
            }
            _ => {
                if let Err(e) = live.compact() {
                    return Err(TestCaseError::Fail(format!("compact failed: {e}")));
                }
            }
        }
    }

    // The live set itself must match the model bit-for-bit, in ascending id order.
    let expected: Vec<(u32, Vec<Scalar>)> =
        model.iter().map(|(id, row)| (*id, augmented(row))).collect();
    prop_assert_eq!(live.live_points(), expected.clone());

    // Reopen under both load modes: WAL replay over the (possibly compacted) base
    // must reconstruct the same state, and every recorded query must still agree
    // with a rebuild over the final model.
    drop(live);
    for mode in [LoadMode::Copy, LoadMode::Mmap] {
        let reopened_store = Store::open_with(&dir, mode).expect("reopen store");
        let reopened = match LiveIndex::open(&reopened_store, "stream") {
            Ok(live) => live,
            Err(e) => return Err(TestCaseError::Fail(format!("reopen ({mode:?}) failed: {e}"))),
        };
        prop_assert_eq!(reopened.live_points(), expected.clone());
        for (query, k) in &recorded {
            prop_assert_eq!(live_answer(&reopened, query, *k)?, oracle_answer(&model, query, *k));
        }
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
