//! Fault injection on the WAL syscall paths (`live.wal.append`, `live.wal.fsync`,
//! `live.wal.read` via `P2H_FAULTS`-style rules): transient EINTR is absorbed,
//! permanent failures surface as typed errors with the mutation **not acknowledged
//! and not applied**, and a failed append rolls the segment back so a retry cannot
//! produce duplicate-id corruption.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use p2h_live::{LiveError, LiveIndex};
use p2h_obs::fault::{set_rules, FaultRule};
use p2h_obs::FaultKind;
use p2h_store::Store;

/// The fault rule set is process-global; serialize the tests that mutate it.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_store(tag: &str) -> (PathBuf, Store) {
    let dir = std::env::temp_dir().join(format!(
        "p2h-live-faults-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let store = Store::create(&dir).expect("create store");
    (dir, store)
}

fn point(id: u32) -> Vec<f32> {
    vec![id as f32, 0.5, -0.25]
}

#[test]
fn transient_eintr_is_absorbed_on_append_and_fsync() {
    let _guard = lock();
    let (dir, store) = temp_store("eintr");
    let live = LiveIndex::create(&store, "s", 4).expect("create");
    set_rules(vec![
        FaultRule::new("live.wal.append", FaultKind::Eintr, 0.5, 7),
        FaultRule::new("live.wal.fsync", FaultKind::Eintr, 0.5, 11),
    ]);
    for id in 0..20 {
        assert_eq!(live.insert(&point(id)).expect("insert absorbs EINTR"), id);
    }
    live.delete(3).expect("delete absorbs EINTR");
    set_rules(Vec::new());
    assert_eq!(live.len(), 19);

    // Everything acknowledged under injection replays cleanly.
    drop(live);
    let reopened = LiveIndex::open(&store, "s").expect("reopen");
    assert_eq!(reopened.len(), 19);
    assert!(!reopened.is_live(3));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn permanent_append_failure_is_typed_and_not_applied() {
    let _guard = lock();
    let (dir, store) = temp_store("refuse");
    let live = LiveIndex::create(&store, "s", 4).expect("create");
    for id in 0..3 {
        live.insert(&point(id)).expect("insert");
    }
    set_rules(vec![FaultRule::new("live.wal.append", FaultKind::Refuse, 1.0, 1)]);
    // The failed insert is not acknowledged: no id is consumed, nothing is live.
    assert!(matches!(live.insert(&point(3)), Err(LiveError::Store(_))));
    assert_eq!(live.next_id(), 3);
    assert_eq!(live.len(), 3);
    // The failed delete leaves its target live.
    assert!(matches!(live.delete(1), Err(LiveError::Store(_))));
    assert!(live.is_live(1));
    set_rules(Vec::new());

    // Retrying after the fault clears succeeds with the same id.
    assert_eq!(live.insert(&point(3)).expect("retry"), 3);
    drop(live);
    let reopened = LiveIndex::open(&store, "s").expect("reopen");
    assert_eq!(reopened.len(), 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_fsync_rolls_the_segment_back_so_a_retry_cannot_corrupt() {
    let _guard = lock();
    let (dir, store) = temp_store("rollback");
    let live = LiveIndex::create(&store, "s", 4).expect("create");
    live.insert(&point(0)).expect("insert");
    // write(2) lands the frame bytes; the injected fsync failure must roll them
    // back, otherwise the retried (unacknowledged) insert re-appends the same id
    // after the orphaned frame and replay refuses the segment as corrupt.
    set_rules(vec![FaultRule::new("live.wal.fsync", FaultKind::Refuse, 1.0, 1)]);
    assert!(matches!(live.insert(&point(1)), Err(LiveError::Store(_))));
    set_rules(Vec::new());
    assert_eq!(live.insert(&point(1)).expect("retry after rollback"), 1);

    drop(live);
    let reopened = LiveIndex::open(&store, "s").expect("replay accepts the segment");
    assert_eq!(reopened.len(), 2);
    assert_eq!(reopened.next_id(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_read_failure_is_a_typed_error_not_a_panic() {
    let _guard = lock();
    let (dir, store) = temp_store("read");
    {
        let live = LiveIndex::create(&store, "s", 4).expect("create");
        live.insert(&point(0)).expect("insert");
    }
    set_rules(vec![FaultRule::new("live.wal.read", FaultKind::Refuse, 1.0, 1)]);
    assert!(LiveIndex::open(&store, "s").is_err());
    set_rules(Vec::new());
    let reopened = LiveIndex::open(&store, "s").expect("reopen after fault clears");
    assert_eq!(reopened.len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}
