//! Property test: random insert/delete/query/compact interleavings against a
//! fresh-rebuild [`p2h_core::LinearScan`] oracle, under the dispatched (SIMD where
//! available) kernel backend. `oracle_scalar.rs` runs the same checker with the
//! scalar backend forced — separate binary because the override is process-global.

mod common;

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn layered_serving_matches_fresh_rebuild(ops in common::ops_strategy()) {
        common::check_interleaving("simd", &ops)?;
    }
}
