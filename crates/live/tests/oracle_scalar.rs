//! Property test: the `oracle.rs` interleaving checker with the scalar kernel
//! backend forced (`p2h_core::kernels::force_scalar`), proving the layered tier's
//! bit-identity is backend-independent. Own binary: the override is process-global.

mod common;

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn layered_serving_matches_fresh_rebuild_scalar(ops in common::ops_strategy()) {
        p2h_core::kernels::force_scalar(true);
        common::check_interleaving("scalar", &ops)?;
    }
}
