//! Live-tier observability: per-index memtable gauges, WAL counters, and compaction
//! timings, published to the process-wide [`p2h_obs`] registry (`p2h_live_*`
//! families; see `docs/OBSERVABILITY.md`).

use std::sync::Arc;

use p2h_obs::{Counter, Gauge, Histogram};

/// Cached instrument handles for one live index, labeled `index=<name>`.
#[derive(Debug)]
pub(crate) struct LiveMetrics {
    /// Rows currently held by the memtable layers (live, not yet compacted).
    pub memtable_points: Arc<Gauge>,
    /// Tombstones currently masking base or memtable rows.
    pub memtable_tombstones: Arc<Gauge>,
    /// Bytes appended to WAL segments (frames only, not headers).
    pub wal_bytes: Arc<Counter>,
    /// Append batches written (one `write` each).
    pub wal_appends: Arc<Counter>,
    /// `fdatasync` calls issued by append batches (the acknowledgement point).
    pub wal_fsyncs: Arc<Counter>,
    /// Operations replayed from WAL segments on open.
    pub wal_replayed_ops: Arc<Counter>,
    /// Accepted (durable) inserts.
    pub inserts: Arc<Counter>,
    /// Accepted (durable) deletes.
    pub deletes: Arc<Counter>,
    /// Completed compactions requested explicitly ([`crate::LiveIndex::compact`]).
    pub compactions_manual: Arc<Counter>,
    /// Completed compactions the background policy fired on memtable size.
    pub compactions_size: Arc<Counter>,
    /// Completed compactions the background policy fired on elapsed time.
    pub compactions_time: Arc<Counter>,
    /// Epoch swaps committed through the manifest (one per completed compaction).
    pub epoch_swaps: Arc<Counter>,
    /// End-to-end compaction wall time.
    pub compaction_wall_ns: Arc<Histogram>,
    /// Freeze phase (under the write lock: segment rollover + survivor snapshot).
    pub phase_freeze_ns: Arc<Histogram>,
    /// Build phase (lock-free: tree construction + durable staging).
    pub phase_build_ns: Arc<Histogram>,
    /// Commit phase (under the write lock: manifest swap + state install).
    pub phase_commit_ns: Arc<Histogram>,
}

/// The `p2h_live_compactions_total{index,trigger}` counter for one trigger value.
fn compactions(name: &str, trigger: &str) -> Arc<Counter> {
    p2h_obs::global().counter(
        "p2h_live_compactions_total",
        "Completed memtable compactions, by what triggered them.",
        &[("index", name), ("trigger", trigger)],
    )
}

impl LiveMetrics {
    pub fn for_index(name: &str) -> Self {
        let reg = p2h_obs::global();
        let labels: &[(&str, &str)] = &[("index", name)];
        let phase = |p: &str| {
            reg.histogram(
                "p2h_live_compaction_phase_ns",
                "Per-phase compaction time (freeze under lock, build lock-free, commit under lock).",
                &[("index", name), ("phase", p)],
            )
        };
        Self {
            memtable_points: reg.gauge(
                "p2h_live_memtable_points",
                "Live rows currently held by the memtable layers of a live index.",
                labels,
            ),
            memtable_tombstones: reg.gauge(
                "p2h_live_memtable_tombstones",
                "Tombstones currently masking base or memtable rows of a live index.",
                labels,
            ),
            wal_bytes: reg.counter(
                "p2h_live_wal_bytes_total",
                "Frame bytes appended to the write-ahead log.",
                labels,
            ),
            wal_appends: reg.counter(
                "p2h_live_wal_appends_total",
                "WAL append batches written (one write syscall each).",
                labels,
            ),
            wal_fsyncs: reg.counter(
                "p2h_live_wal_fsyncs_total",
                "WAL fdatasync calls — each one acknowledges a batch of operations.",
                labels,
            ),
            wal_replayed_ops: reg.counter(
                "p2h_live_wal_replayed_ops_total",
                "Operations replayed from WAL segments while opening a live index.",
                labels,
            ),
            inserts: reg.counter(
                "p2h_live_inserts_total",
                "Durably acknowledged point inserts.",
                labels,
            ),
            deletes: reg.counter(
                "p2h_live_deletes_total",
                "Durably acknowledged point deletes.",
                labels,
            ),
            compactions_manual: compactions(name, "manual"),
            compactions_size: compactions(name, "size"),
            compactions_time: compactions(name, "time"),
            epoch_swaps: reg.counter(
                "p2h_live_epoch_swaps_total",
                "Store epochs committed through the atomic manifest rename.",
                labels,
            ),
            compaction_wall_ns: reg.histogram(
                "p2h_live_compaction_wall_ns",
                "End-to-end compaction wall time.",
                labels,
            ),
            phase_freeze_ns: phase("freeze"),
            phase_build_ns: phase("build"),
            phase_commit_ns: phase("commit"),
        }
    }

    /// The completed-compactions counter for `trigger`.
    pub fn compactions_for(&self, trigger: crate::CompactionTrigger) -> &Arc<Counter> {
        match trigger {
            crate::CompactionTrigger::Manual => &self.compactions_manual,
            crate::CompactionTrigger::Size => &self.compactions_size,
            crate::CompactionTrigger::Time => &self.compactions_time,
        }
    }
}
