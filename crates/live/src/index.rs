//! The mutable live index: state layout, durable open/create, and the insert/delete
//! paths. Layered search lives in [`crate::search`], compaction in
//! [`crate::compact`].

use std::collections::BTreeSet;
use std::fs;
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use p2h_core::{Error, Scalar, VecBuf};
use p2h_store::{
    live_ids_file, live_wal_file, replay_wal, LiveEntryFiles, LiveIdsSnapshot, LoadedIndex, Store,
    StoreError, StoreResult, WalHeader, WalOp, WalWriter,
};

use crate::error::{LiveError, LiveResult};
use crate::metrics::LiveMetrics;

/// One contiguous run of recently inserted rows: ids `start_id .. start_id + rows`,
/// stored flat in insertion (= id) order. Normally there is exactly one layer; a
/// second, frozen one exists only while a compaction is folding it into a new base.
#[derive(Debug)]
pub(crate) struct Layer {
    pub start_id: u32,
    pub rows: usize,
    /// Row-major augmented points, `rows * dim` scalars.
    pub flat: Vec<Scalar>,
    /// Per-row tombstones (deleted rows keep their slot so ids stay positional).
    pub deleted: Vec<bool>,
    pub live_rows: usize,
}

impl Layer {
    pub fn empty(start_id: u32) -> Self {
        Self { start_id, rows: 0, flat: Vec::new(), deleted: Vec::new(), live_rows: 0 }
    }

    pub fn contains(&self, id: u32) -> bool {
        id >= self.start_id && ((id - self.start_id) as usize) < self.rows
    }

    pub fn is_live(&self, id: u32) -> bool {
        self.contains(id) && !self.deleted[(id - self.start_id) as usize]
    }

    pub fn push(&mut self, point: &[Scalar]) {
        self.flat.extend_from_slice(point);
        self.deleted.push(false);
        self.rows += 1;
        self.live_rows += 1;
    }

    /// Tombstones a contained row; returns whether it was live.
    pub fn delete(&mut self, id: u32) -> bool {
        let row = (id - self.start_id) as usize;
        if self.deleted[row] {
            return false;
        }
        self.deleted[row] = true;
        self.live_rows -= 1;
        true
    }

    pub fn tombstones(&self) -> usize {
        self.rows - self.live_rows
    }
}

/// Bookkeeping alive only while a compaction runs: the id boundary the survivor
/// snapshot was frozen at, and every id below it deleted since the freeze (those
/// points are in the new base being built, so the tombstones must be re-applied to
/// it at the epoch swap).
#[derive(Debug)]
pub(crate) struct CompactionPending {
    pub freeze_next_id: u32,
    pub tombs: Vec<u32>,
}

/// Everything behind the index's `RwLock`.
#[derive(Debug)]
pub(crate) struct LiveState {
    pub dim: usize,
    /// Epoch of the active WAL segment (≥ the committed base epoch; they differ only
    /// mid-compaction).
    pub wal_epoch: u64,
    pub next_id: u32,
    pub base: Option<LoadedIndex>,
    /// Strictly increasing global ids, one per base point in base (original) order.
    pub base_ids: VecBuf<u32>,
    /// Base-local positions masked by a delete.
    pub base_tombs: BTreeSet<u32>,
    /// Memtable layers, oldest first; the last one is the active (appendable) layer.
    pub layers: Vec<Layer>,
    pub wal: WalWriter,
    pub files: LiveEntryFiles,
    pub compaction: Option<CompactionPending>,
}

impl LiveState {
    pub fn live_len(&self) -> usize {
        self.base_ids.len() - self.base_tombs.len()
            + self.layers.iter().map(|l| l.live_rows).sum::<usize>()
    }

    pub fn memtable_rows(&self) -> usize {
        self.layers.iter().map(|l| l.live_rows).sum()
    }

    pub fn tombstones(&self) -> usize {
        self.base_tombs.len() + self.layers.iter().map(|l| l.tombstones()).sum::<usize>()
    }
}

/// Where a live id resolves to.
enum Target {
    Layer(usize),
    Base(u32),
}

/// A mutable point-to-hyperplane index: a memtable of recent inserts (plus a
/// tombstone set for deletes) layered over an immutable compacted base snapshot.
///
/// * **Exact by construction** — the memtable is scanned linearly through the same
///   dispatched kernels as every other index, and layered answers are merged under
///   the workspace's total `Neighbor` order, so results are **bit-identical** to a
///   full rebuild containing the same live points (same kernel backend).
/// * **Durable** — every insert/delete is framed, appended, and fsynced to a
///   CRC-framed WAL segment *before* it is acknowledged; replay on open recovers
///   exactly the acknowledged prefix (see [`p2h_store::wal`]).
/// * **Compactable** — [`LiveIndex::compact`] folds the memtable and the old base
///   into a freshly built Ball-Tree and commits it as a new store epoch through the
///   manifest's atomic rename; serving continues throughout, and superseded WAL
///   segments are reclaimed only after the commit.
///
/// All methods take `&self`: the index is `Send + Sync` and can serve searches from
/// many threads while another inserts, deletes, or compacts. See
/// `docs/ONLINE_UPDATES.md` for the full API and durability contract.
#[derive(Debug)]
pub struct LiveIndex {
    name: String,
    store: Store,
    pub(crate) state: RwLock<LiveState>,
    pub(crate) metrics: LiveMetrics,
}

impl LiveIndex {
    /// Creates a new, empty live entry named `name` in `store` with the given
    /// **augmented** dimensionality (raw dimensionality + 1; the index augments
    /// inserted points itself), stages its epoch-0 id file and WAL segment durably,
    /// and commits the entry through the manifest.
    ///
    /// # Errors
    ///
    /// [`StoreError::Invalid`] for `dim < 2`; a manifest error if `name` is already
    /// taken (live entries are never silently clobbered); any I/O failure.
    pub fn create(store: &Store, name: &str, dim: usize) -> StoreResult<Self> {
        if dim < 2 {
            return Err(StoreError::Invalid(Error::InvalidDimension(dim)));
        }
        match store.live_entry(name) {
            Err(StoreError::MissingEntry(_)) => {}
            Err(other) => return Err(other),
            Ok(_) => {
                return Err(StoreError::Invalid(Error::InvalidParameter {
                    name: "name",
                    message: format!("live entry `{name}` already exists (open it instead)"),
                }));
            }
        }
        let ids_file = live_ids_file(name, 0);
        let wal_file = live_wal_file(name, 0);
        store.save_live_ids(
            &ids_file,
            &LiveIdsSnapshot { epoch: 0, dim, next_id: 0, ids: Vec::new().into() },
        )?;
        let wal_path = store.live_path(&wal_file)?;
        // A create that crashed after staging leaves an unreferenced segment behind;
        // clear it so the no-clobber create below starts from a clean slate.
        let _ = fs::remove_file(&wal_path);
        let wal = WalWriter::create(&wal_path, WalHeader { epoch: 0, dim, first_id: 0 })?;
        let files = LiveEntryFiles { ids_file, base_file: None, wal_files: vec![wal_file] };
        store.commit_live(name, &files)?;
        let metrics = LiveMetrics::for_index(name);
        let state = LiveState {
            dim,
            wal_epoch: 0,
            next_id: 0,
            base: None,
            base_ids: Vec::new().into(),
            base_tombs: BTreeSet::new(),
            layers: vec![Layer::empty(0)],
            wal,
            files,
            compaction: None,
        };
        Ok(Self {
            name: name.to_string(),
            store: store.clone(),
            state: RwLock::new(state),
            metrics,
        })
    }

    /// Opens the live entry named `name`: loads the id file and base snapshot (under
    /// the store's [`p2h_store::LoadMode`]), replays every WAL segment in manifest
    /// order over them, truncates any torn tail, and reopens the last segment for
    /// appending. The recovered state contains exactly the acknowledged operations
    /// (an unacknowledged final batch may additionally survive if its write completed
    /// before the crash — standard WAL semantics).
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from loading: missing entry, I/O, snapshot corruption, or
    /// [`StoreError::WalCorrupt`] when a segment is malformed beyond a torn tail or
    /// is inconsistent with the id file (wrong dimension, epoch, or id continuity).
    pub fn open(store: &Store, name: &str) -> StoreResult<Self> {
        let files = store.live_entry(name)?;
        let ids = store.load_live_ids(&files.ids_file)?;
        let base = match &files.base_file {
            Some(file) => Some(store.load_live_base(file)?),
            None => None,
        };
        if let Some(base) = &base {
            let index = base.as_index();
            if index.dim() != ids.dim {
                return Err(StoreError::Invalid(Error::Corrupt(format!(
                    "base snapshot dimension {} disagrees with the id file's {}",
                    index.dim(),
                    ids.dim
                ))));
            }
            if index.len() != ids.ids.len() {
                return Err(StoreError::Invalid(Error::Corrupt(format!(
                    "base snapshot holds {} points but the id file maps {}",
                    index.len(),
                    ids.ids.len()
                ))));
            }
        }
        let metrics = LiveMetrics::for_index(name);
        let mut layer = Layer::empty(ids.next_id);
        let mut base_tombs = BTreeSet::new();
        let mut next_id = ids.next_id;
        let mut wal_epoch = ids.epoch;
        let mut last_replay = None;
        for (ordinal, wal_file) in files.wal_files.iter().enumerate() {
            let replay = replay_wal(&store.live_path(wal_file)?)?;
            let corrupt = |message: String| StoreError::WalCorrupt { message };
            if replay.header.dim != ids.dim {
                return Err(corrupt(format!(
                    "segment `{wal_file}` has dimension {} but the id file says {}",
                    replay.header.dim, ids.dim
                )));
            }
            if ordinal == 0 && replay.header.epoch != ids.epoch {
                return Err(corrupt(format!(
                    "first segment `{wal_file}` is epoch {} but the id file is epoch {}",
                    replay.header.epoch, ids.epoch
                )));
            }
            if ordinal > 0 && replay.header.epoch <= wal_epoch {
                return Err(corrupt(format!(
                    "segment `{wal_file}` epoch {} does not advance past {wal_epoch}",
                    replay.header.epoch
                )));
            }
            if replay.header.first_id != next_id {
                return Err(corrupt(format!(
                    "segment `{wal_file}` starts at id {} but replay reached {next_id}",
                    replay.header.first_id
                )));
            }
            wal_epoch = replay.header.epoch;
            for op in &replay.ops {
                match op {
                    WalOp::Insert { point, .. } => {
                        layer.push(point);
                        next_id += 1;
                    }
                    WalOp::Delete { id } => {
                        apply_replayed_delete(*id, &ids, &mut base_tombs, &mut layer)?;
                    }
                }
            }
            metrics.wal_replayed_ops.add(replay.ops.len() as u64);
            last_replay = Some(replay);
        }
        let last_file = files.wal_files.last().expect("commit_live enforces ≥ 1 segment");
        let replay = last_replay.as_ref().expect("loop ran at least once");
        let wal = WalWriter::reopen(&store.live_path(last_file)?, replay)?;
        let state = LiveState {
            dim: ids.dim,
            wal_epoch,
            next_id,
            base,
            base_ids: ids.ids,
            base_tombs,
            layers: vec![layer],
            wal,
            files,
            compaction: None,
        };
        let index = Self {
            name: name.to_string(),
            store: store.clone(),
            state: RwLock::new(state),
            metrics,
        };
        index.publish_gauges(&index.read_state());
        Ok(index)
    }

    /// [`LiveIndex::open`] when the entry exists, [`LiveIndex::create`] otherwise.
    pub fn open_or_create(store: &Store, name: &str, dim: usize) -> StoreResult<Self> {
        match store.live_entry(name) {
            Ok(_) => Self::open(store, name),
            Err(StoreError::MissingEntry(_)) => Self::create(store, name, dim),
            Err(other) => Err(other),
        }
    }

    /// Inserts one **raw** point (the index appends the homogeneous coordinate 1
    /// itself) and returns its assigned global id. The insert is framed, appended,
    /// and fsynced to the WAL before this returns: an `Ok` is durable.
    ///
    /// # Errors
    ///
    /// [`LiveError::Core`] on a dimension mismatch (`raw.len()` must be the
    /// augmented dimension − 1) or an exhausted id space; [`LiveError::Store`] on
    /// WAL I/O failure (the memtable is left unchanged — an error means *not
    /// acknowledged*).
    pub fn insert(&self, raw: &[Scalar]) -> LiveResult<u32> {
        let ids = self.insert_rows(&[raw])?;
        Ok(ids[0])
    }

    /// Inserts a batch of raw points with **one** WAL append and one fsync, returning
    /// the assigned ids in order. Same contract as [`LiveIndex::insert`], and the
    /// whole batch is acknowledged atomically.
    pub fn insert_batch(&self, rows: &[Vec<Scalar>]) -> LiveResult<Vec<u32>> {
        let refs: Vec<&[Scalar]> = rows.iter().map(Vec::as_slice).collect();
        self.insert_rows(&refs)
    }

    fn insert_rows(&self, rows: &[&[Scalar]]) -> LiveResult<Vec<u32>> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let mut state = self.write_state();
        let dim = state.dim;
        for row in rows {
            if row.len() + 1 != dim {
                return Err(
                    Error::DimensionMismatch { expected: dim - 1, actual: row.len() }.into()
                );
            }
        }
        if u64::from(state.next_id) + rows.len() as u64 > u64::from(u32::MAX) {
            return Err(Error::InvalidParameter {
                name: "rows",
                message: "global id space exhausted".into(),
            }
            .into());
        }
        let first = state.next_id;
        let ops: Vec<WalOp> = rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let mut point = Vec::with_capacity(dim);
                point.extend_from_slice(row);
                point.push(1.0);
                WalOp::Insert { id: first + i as u32, point }
            })
            .collect();
        // Acknowledgement point: append returns only after the fsync.
        let bytes = state.wal.append(&ops)?;
        for op in &ops {
            if let WalOp::Insert { point, .. } = op {
                state.layers.last_mut().expect("at least one layer").push(point);
            }
        }
        state.next_id = first + rows.len() as u32;
        self.metrics.inserts.add(rows.len() as u64);
        self.metrics.wal_appends.inc();
        self.metrics.wal_fsyncs.inc();
        self.metrics.wal_bytes.add(bytes);
        self.publish_gauges(&state);
        Ok((first..first + rows.len() as u32).collect())
    }

    /// Deletes the point with global id `id`. Liveness is checked first — a dead id
    /// is refused *before* anything reaches the log — then the delete is framed,
    /// fsynced, and applied. An `Ok` is durable.
    ///
    /// # Errors
    ///
    /// [`LiveError::NotFound`] when `id` was never assigned or is already deleted;
    /// [`LiveError::Store`] on WAL I/O failure (nothing applied).
    pub fn delete(&self, id: u32) -> LiveResult<()> {
        let mut state = self.write_state();
        let target = locate_live(&state, id).ok_or(LiveError::NotFound(id))?;
        let bytes = state.wal.append(&[WalOp::Delete { id }])?;
        match target {
            Target::Layer(ordinal) => {
                state.layers[ordinal].delete(id);
            }
            Target::Base(pos) => {
                state.base_tombs.insert(pos);
            }
        }
        if let Some(pending) = &mut state.compaction {
            if id < pending.freeze_next_id {
                pending.tombs.push(id);
            }
        }
        self.metrics.deletes.inc();
        self.metrics.wal_appends.inc();
        self.metrics.wal_fsyncs.inc();
        self.metrics.wal_bytes.add(bytes);
        self.publish_gauges(&state);
        Ok(())
    }

    /// The entry name this index serves under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of live points (base survivors + memtable rows, minus tombstones).
    pub fn len(&self) -> usize {
        self.read_state().live_len()
    }

    /// Whether the index holds no live points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Augmented point dimensionality (raw dimensionality + 1).
    pub fn dim(&self) -> usize {
        self.read_state().dim
    }

    /// The epoch of the active WAL segment (bumped by every compaction).
    pub fn epoch(&self) -> u64 {
        self.read_state().wal_epoch
    }

    /// The next global id an insert will be assigned.
    pub fn next_id(&self) -> u32 {
        self.read_state().next_id
    }

    /// Live rows currently held by the memtable (not yet compacted into a base).
    pub fn memtable_len(&self) -> usize {
        self.read_state().memtable_rows()
    }

    /// Whether the point with global id `id` is currently live.
    pub fn is_live(&self, id: u32) -> bool {
        locate_live(&self.read_state(), id).is_some()
    }

    /// The live `(id, augmented point)` pairs in ascending id order — the exact set a
    /// full rebuild would contain. Intended for tests and tooling, not the hot path.
    pub fn live_points(&self) -> Vec<(u32, Vec<Scalar>)> {
        let state = self.read_state();
        let dim = state.dim;
        let mut out = Vec::with_capacity(state.live_len());
        if let Some(base) = &state.base {
            let rows = crate::compact::base_rows(base);
            for (pos, &id) in state.base_ids.iter().enumerate() {
                if !state.base_tombs.contains(&(pos as u32)) {
                    out.push((id, rows.row(pos).to_vec()));
                }
            }
        }
        for layer in &state.layers {
            for row in 0..layer.rows {
                if !layer.deleted[row] {
                    out.push((
                        layer.start_id + row as u32,
                        layer.flat[row * dim..(row + 1) * dim].to_vec(),
                    ));
                }
            }
        }
        out
    }

    pub(crate) fn read_state(&self) -> RwLockReadGuard<'_, LiveState> {
        self.state.read().expect("live index lock poisoned")
    }

    pub(crate) fn write_state(&self) -> RwLockWriteGuard<'_, LiveState> {
        self.state.write().expect("live index lock poisoned")
    }

    pub(crate) fn store(&self) -> &Store {
        &self.store
    }

    pub(crate) fn publish_gauges(&self, state: &LiveState) {
        self.metrics.memtable_points.set(state.memtable_rows() as u64);
        self.metrics.memtable_tombstones.set(state.tombstones() as u64);
    }
}

/// Resolves a live id to its location, or `None` when it is not live.
fn locate_live(state: &LiveState, id: u32) -> Option<Target> {
    for (ordinal, layer) in state.layers.iter().enumerate() {
        if layer.contains(id) {
            return layer.is_live(id).then_some(Target::Layer(ordinal));
        }
    }
    match state.base_ids.binary_search(&id) {
        Ok(pos) => {
            let pos = pos as u32;
            (!state.base_tombs.contains(&pos)).then_some(Target::Base(pos))
        }
        Err(_) => None,
    }
}

/// Applies one replayed delete. A valid writer history only logs deletes of live
/// ids, so a miss here is corruption, not a tombstone to ignore.
fn apply_replayed_delete(
    id: u32,
    ids: &LiveIdsSnapshot,
    base_tombs: &mut BTreeSet<u32>,
    layer: &mut Layer,
) -> StoreResult<()> {
    if layer.contains(id) {
        if !layer.delete(id) {
            return Err(StoreError::WalCorrupt {
                message: format!(
                    "replayed delete of id {id}, which an earlier frame already deleted"
                ),
            });
        }
        return Ok(());
    }
    match ids.ids.binary_search(&id) {
        Ok(pos) => {
            if !base_tombs.insert(pos as u32) {
                return Err(StoreError::WalCorrupt {
                    message: format!(
                        "replayed delete of id {id}, which an earlier frame already deleted"
                    ),
                });
            }
            Ok(())
        }
        Err(_) => Err(StoreError::WalCorrupt {
            message: format!("replayed delete of id {id}, which no live point carries"),
        }),
    }
}
