//! Layered search: base tier + memtable scan, merged under the total `Neighbor`
//! order so answers are bit-identical to a full rebuild over the same live points.
//!
//! ## Why the layering cannot change a bit
//!
//! The top-k of a point set under the total order `(distance.total_cmp, id)` is a
//! unique set, independent of the order candidates are offered in. The layered path
//! offers exactly the live points a rebuild would contain, with exactly the
//! distances a rebuild would compute:
//!
//! * **Distances** — memtable rows go through [`p2h_core::kernels::abs_dot_block`],
//!   the same dispatched kernel every index uses, and blocked evaluation is
//!   bit-identical per row to single-row evaluation regardless of where block
//!   boundaries fall. The base tier is an ordinary exact index, itself bit-identical
//!   to a linear scan over its points.
//! * **Tie-breaks** — base results are reported in base-local positions; the id
//!   file's mapping is strictly increasing, so translating positions to global ids
//!   preserves the order and therefore every accept/reject decision. Memtable rows
//!   are offered under their global ids directly.
//! * **Tombstones** — the base is searched with `k' = k + tombstones`: the k best
//!   *surviving* base points are always contained in the top-`k'` overall, so
//!   filtering tombstones after the fact loses nothing.
//!
//! The final [`merge_topk`] is the same merge shard fan-out uses.
//!
//! Under a `candidate_limit` budget the scan order is the global id order (base
//! survivors first, then memtable rows), matching a rebuilt linear scan's prefix
//! exactly when the base is a [`p2h_core::LinearScan`]; tree bases spend the budget
//! in tree order, as they do everywhere else.

use std::time::Instant;

use p2h_core::{
    kernels, merge_topk, Error, HyperplaneQuery, Neighbor, QueryScratch, Result, SearchParams,
    SearchResult, SearchStats, LEAF_STRIP,
};

use crate::index::{LiveIndex, LiveState};

impl LiveIndex {
    /// Searches the layered index. Same parameter semantics as
    /// [`p2h_core::P2hIndex::search`]; answers are bit-identical to a full rebuild
    /// containing the same live points.
    ///
    /// # Errors
    ///
    /// [`Error::DimensionMismatch`] when the query dimension differs from the
    /// index's augmented dimension (a checked error here, where the trait-bound
    /// indexes panic — the live tier is reachable from serving paths that must not
    /// take a worker down).
    pub fn search(&self, query: &HyperplaneQuery, params: &SearchParams) -> Result<SearchResult> {
        self.search_with_scratch(query, params, &mut QueryScratch::new())
    }

    /// [`LiveIndex::search`] with caller-provided scratch space (allocation-free
    /// steady state).
    pub fn search_with_scratch(
        &self,
        query: &HyperplaneQuery,
        params: &SearchParams,
        scratch: &mut QueryScratch,
    ) -> Result<SearchResult> {
        let state = self.read_state();
        if query.dim() != state.dim {
            return Err(Error::DimensionMismatch { expected: state.dim, actual: query.dim() });
        }
        Ok(search_layered(&state, query, params, scratch))
    }

    /// Exhaustive top-`k` (no candidate budget).
    pub fn search_exact(&self, query: &HyperplaneQuery, k: usize) -> Result<SearchResult> {
        self.search(query, &SearchParams::exact(k))
    }
}

fn search_layered(
    state: &LiveState,
    query: &HyperplaneQuery,
    params: &SearchParams,
    scratch: &mut QueryScratch,
) -> SearchResult {
    let start = Instant::now();
    let k = params.k;
    let mut stats = SearchStats::default();
    let mut remaining = params.candidate_limit.unwrap_or(usize::MAX);
    let mut lists = Vec::with_capacity(2);

    if let Some(base) = &state.base {
        let tombs = state.base_tombs.len();
        let surviving = state.base_ids.len() - tombs;
        let scan = remaining.min(surviving);
        let mut base_params = params.clone();
        // Overfetch by the tombstone count: the k best survivors are always inside
        // the top-(k + tombs) overall.
        base_params.k = k + tombs;
        base_params.candidate_limit = params.candidate_limit.map(|_| {
            // Budgets count *surviving* points. Translate `scan` survivors into the
            // base-local position prefix that contains them (each tombstone inside
            // the prefix extends it by one position).
            let mut positions = scan;
            for &tomb in &state.base_tombs {
                if (tomb as usize) < positions {
                    positions += 1;
                } else {
                    break;
                }
            }
            positions
        });
        let base_result = base.as_index().search_with_scratch(query, &base_params, scratch);
        stats.merge(&base_result.stats);
        let list: Vec<Neighbor> = base_result
            .neighbors
            .into_iter()
            .filter(|n| !state.base_tombs.contains(&(n.index as u32)))
            .map(|n| Neighbor::new(state.base_ids[n.index] as usize, n.distance))
            .take(k)
            .collect();
        lists.push(list);
        remaining = remaining.saturating_sub(scan);
    }

    // Memtable tier: one strip-scan across every layer in ascending id order,
    // offering live rows under their global ids (identical per-row distances and
    // identical tie-breaks to a rebuilt linear scan — see the module docs).
    let verify_start = Instant::now();
    scratch.reset(k);
    let QueryScratch { collector, strip, .. } = scratch;
    let dim = state.dim;
    let q = query.coeffs();
    let mut computed = 0u64;
    let mut offered = 0u64;
    'layers: for layer in &state.layers {
        let mut pos = 0usize;
        while pos < layer.rows {
            if remaining == 0 {
                break 'layers;
            }
            let block = (layer.rows - pos).min(LEAF_STRIP);
            kernels::abs_dot_block(
                q,
                &layer.flat[pos * dim..(pos + block) * dim],
                dim,
                &mut strip[..block],
            );
            computed += block as u64;
            for (i, &dist) in strip[..block].iter().enumerate() {
                if layer.deleted[pos + i] {
                    continue;
                }
                if remaining == 0 {
                    break;
                }
                collector.offer(layer.start_id as usize + pos + i, dist);
                offered += 1;
                remaining -= 1;
            }
            pos += block;
        }
    }
    stats.inner_products += computed;
    stats.candidates_verified += offered;
    stats.time_verify_ns += verify_start.elapsed().as_nanos() as u64;
    lists.push(collector.take_sorted());

    let merge_start = Instant::now();
    let neighbors = merge_topk(k, lists);
    stats.time_merge_ns += merge_start.elapsed().as_nanos() as u64;
    // The base tier's total is a slice of this wall time, not an addition to it.
    stats.time_total_ns = start.elapsed().as_nanos() as u64;
    SearchResult { neighbors, stats }
}
