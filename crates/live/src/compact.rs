//! Epoch compaction: fold the memtable and the old base into a freshly built
//! Ball-Tree and commit it as a new store epoch, without stopping serving.
//!
//! Three phases, two of them under the write lock:
//!
//! 1. **Freeze** (write lock) — create the next epoch's WAL segment, commit the
//!    manifest to reference it *alongside* the old files (so every append from this
//!    instant is durable under a manifest-referenced segment), roll the active
//!    writer over, push a fresh active layer, and snapshot the survivors (base minus
//!    tombstones, plus the frozen layers' live rows) in global-id order.
//! 2. **Build** (no lock) — construct a Ball-Tree over the survivors, stage it and
//!    the new id file durably. Inserts, deletes, and searches proceed concurrently;
//!    deletes that hit frozen points are tracked so they can be re-applied to the
//!    new base.
//! 3. **Commit** (write lock) — atomically swap the manifest to the new epoch's
//!    files, install the new base in memory, re-apply the tracked tombstones, and
//!    drop the frozen layers. Only this commit reclaims the superseded WAL segments
//!    and epoch files — a crash at any earlier instant leaves the old epoch fully
//!    replayable.
//!
//! A crash mid-compaction is recovered by [`crate::LiveIndex::open`]: the manifest
//! references either the old epoch (with one or two WAL segments — both are
//! replayed in order) or the new one; either way exactly the acknowledged
//! operations come back. A *failed* (non-crashing) compaction clears its marker and
//! leaves the index serving the old epoch with the extra segment still referenced;
//! a retry simply advances to the next epoch number.

use std::collections::BTreeSet;
use std::fs;
use std::time::Instant;

use p2h_balltree::{BallTreeBuilder, DEFAULT_LEAF_SIZE};
use p2h_core::{PointSet, Scalar};
use p2h_store::{
    live_base_file, live_ids_file, live_wal_file, LiveEntryFiles, LiveIdsSnapshot, LoadedIndex,
    Snapshot, WalHeader, WalWriter,
};

use crate::error::{LiveError, LiveResult};
use crate::index::{CompactionPending, Layer, LiveIndex};

/// What caused a compaction to run — the `trigger` label on
/// `p2h_live_compactions_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionTrigger {
    /// An explicit [`LiveIndex::compact`] call.
    Manual,
    /// The background policy fired because the memtable crossed its point threshold.
    Size,
    /// The background policy fired because too much time passed since the last
    /// compaction while mutations were pending.
    Time,
}

impl CompactionTrigger {
    /// The stable label value.
    pub fn as_str(self) -> &'static str {
        match self {
            CompactionTrigger::Manual => "manual",
            CompactionTrigger::Size => "size",
            CompactionTrigger::Time => "time",
        }
    }
}

/// What a completed compaction did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// The committed store epoch.
    pub epoch: u64,
    /// Points in the new base (live points at the freeze instant).
    pub survivors: usize,
    /// Memtable rows folded into the base (live frozen-layer rows).
    pub folded_rows: usize,
    /// End-to-end wall time in nanoseconds.
    pub wall_ns: u64,
}

/// The survivor snapshot the freeze phase hands to the lock-free build phase.
struct Frozen {
    new_epoch: u64,
    dim: usize,
    freeze_next_id: u32,
    new_wal_name: String,
    ids: Vec<u32>,
    flat: Vec<Scalar>,
    folded_rows: usize,
}

impl LiveIndex {
    /// Runs one full compaction. Serving, inserts, and deletes continue
    /// concurrently; answers are bit-identical before, during, and after.
    ///
    /// # Errors
    ///
    /// [`LiveError::CompactionInProgress`] when another compaction is running;
    /// [`LiveError::Store`] / [`LiveError::Core`] on staging or build failure — the
    /// index keeps serving the old epoch and a retry starts a fresh attempt.
    pub fn compact(&self) -> LiveResult<CompactionReport> {
        self.compact_triggered(CompactionTrigger::Manual)
    }

    /// [`LiveIndex::compact`] with an explicit [`CompactionTrigger`] — what the
    /// background policy ([`crate::CompactionPolicy`]) calls, so the
    /// `p2h_live_compactions_total{trigger=…}` counters attribute each compaction to
    /// its cause. The compaction itself is identical regardless of trigger.
    pub fn compact_triggered(&self, trigger: CompactionTrigger) -> LiveResult<CompactionReport> {
        let wall_start = Instant::now();
        let freeze_start = Instant::now();
        let frozen = self.freeze_phase()?;
        self.metrics.phase_freeze_ns.record(freeze_start.elapsed().as_nanos() as u64);
        match self.build_and_commit(frozen, wall_start, trigger) {
            Ok(report) => Ok(report),
            Err(e) => {
                // Abandon the attempt but keep a consistent serving state: appends
                // already target the new segment (which the manifest references), and
                // the frozen layers simply stay searchable until a retry succeeds.
                self.write_state().compaction = None;
                Err(e)
            }
        }
    }

    /// Whether a compaction is currently running.
    pub fn is_compacting(&self) -> bool {
        self.read_state().compaction.is_some()
    }

    fn freeze_phase(&self) -> LiveResult<Frozen> {
        let mut state = self.write_state();
        if state.compaction.is_some() {
            return Err(LiveError::CompactionInProgress);
        }
        let dim = state.dim;
        let new_epoch = state.wal_epoch + 1;
        let new_wal_name = live_wal_file(self.name(), new_epoch);
        let new_wal_path = self.store().live_path(&new_wal_name)?;
        // A previous attempt that crashed after creating the segment left an
        // unreferenced file; clear it so the no-clobber create starts clean.
        let _ = fs::remove_file(&new_wal_path);
        let header = WalHeader { epoch: new_epoch, dim, first_id: state.next_id };
        let wal = WalWriter::create(&new_wal_path, header)?;
        let mut files = state.files.clone();
        files.wal_files.push(new_wal_name.clone());
        // Commit the segment into the manifest *before* any append can land in it:
        // an acknowledged write must never live only in an unreferenced file.
        self.store().commit_live(self.name(), &files)?;
        state.wal = wal;
        state.files = files;
        state.wal_epoch = new_epoch;
        let freeze_next_id = state.next_id;
        state.layers.push(Layer::empty(freeze_next_id));
        state.compaction = Some(CompactionPending { freeze_next_id, tombs: Vec::new() });

        // Snapshot the survivors in ascending global-id order: base points (whose
        // ids all precede the memtable's) minus tombstones, then each frozen
        // layer's live rows.
        let mut ids = Vec::with_capacity(state.live_len());
        let mut flat = Vec::with_capacity(state.live_len() * dim);
        if let Some(base) = &state.base {
            let rows = base_rows(base);
            for (pos, &id) in state.base_ids.iter().enumerate() {
                if !state.base_tombs.contains(&(pos as u32)) {
                    ids.push(id);
                    flat.extend_from_slice(rows.row(pos));
                }
            }
        }
        let mut folded_rows = 0usize;
        let frozen_layers = state.layers.len() - 1;
        for layer in &state.layers[..frozen_layers] {
            for row in 0..layer.rows {
                if !layer.deleted[row] {
                    ids.push(layer.start_id + row as u32);
                    flat.extend_from_slice(&layer.flat[row * dim..(row + 1) * dim]);
                    folded_rows += 1;
                }
            }
        }
        Ok(Frozen { new_epoch, dim, freeze_next_id, new_wal_name, ids, flat, folded_rows })
    }

    fn build_and_commit(
        &self,
        frozen: Frozen,
        wall_start: Instant,
        trigger: CompactionTrigger,
    ) -> LiveResult<CompactionReport> {
        let build_start = Instant::now();
        let Frozen { new_epoch, dim, freeze_next_id, new_wal_name, ids, flat, folded_rows } =
            frozen;
        let tree = if ids.is_empty() {
            None
        } else {
            let points = PointSet::from_flat(dim, flat)?;
            Some(BallTreeBuilder::new(DEFAULT_LEAF_SIZE).with_seed(new_epoch).build(&points)?)
        };
        let new_base_name = tree.as_ref().map(|tree| {
            let name = live_base_file(self.name(), new_epoch);
            (name, tree.encode_snapshot())
        });
        if let Some((name, bytes)) = &new_base_name {
            self.store().save_live_snapshot(name, bytes)?;
        }
        let new_ids_name = live_ids_file(self.name(), new_epoch);
        let ids_snapshot = LiveIdsSnapshot {
            epoch: new_epoch,
            dim,
            next_id: freeze_next_id,
            ids: ids.clone().into(),
        };
        self.store().save_live_ids(&new_ids_name, &ids_snapshot)?;
        self.metrics.phase_build_ns.record(build_start.elapsed().as_nanos() as u64);

        let commit_start = Instant::now();
        let files = LiveEntryFiles {
            ids_file: new_ids_name,
            base_file: new_base_name.map(|(name, _)| name),
            wal_files: vec![new_wal_name],
        };
        let mut state = self.write_state();
        // The epoch swap: after this rename the superseded segments and epoch files
        // are unreferenced and get reclaimed (only now — never before the commit).
        self.store().commit_live(self.name(), &files)?;
        let pending = state.compaction.take().expect("freeze phase installed the marker");
        state.files = files;
        state.base = tree.map(LoadedIndex::BallTree);
        state.base_ids = ids.into();
        let new_tombs: BTreeSet<u32> = {
            let base_ids = &state.base_ids;
            pending
                .tombs
                .iter()
                .map(|gid| {
                    let pos = base_ids
                        .binary_search(gid)
                        .expect("a point deleted mid-compaction survived the freeze snapshot");
                    pos as u32
                })
                .collect()
        };
        state.base_tombs = new_tombs;
        let active = state.layers.pop().expect("freeze phase pushed the active layer");
        state.layers = vec![active];
        let survivors = state.base_ids.len();
        self.metrics.phase_commit_ns.record(commit_start.elapsed().as_nanos() as u64);
        let wall_ns = wall_start.elapsed().as_nanos() as u64;
        self.metrics.compaction_wall_ns.record(wall_ns);
        self.metrics.compactions_for(trigger).inc();
        self.metrics.epoch_swaps.inc();
        self.publish_gauges(&state);
        Ok(CompactionReport { epoch: new_epoch, survivors, folded_rows, wall_ns })
    }
}

/// Uniform original-order row access over any base index kind. Tree snapshots store
/// their points reordered; `original_ids` inverts that back to the order the id file
/// maps.
pub(crate) struct BaseRows<'a> {
    points: &'a PointSet,
    /// `perm[original_pos]` = storage position; empty when storage order *is*
    /// original order.
    perm: Vec<u32>,
}

impl BaseRows<'_> {
    pub fn row(&self, original_pos: usize) -> &[Scalar] {
        let storage =
            if self.perm.is_empty() { original_pos } else { self.perm[original_pos] as usize };
        self.points.flat_range(storage, storage + 1)
    }
}

pub(crate) fn base_rows(base: &LoadedIndex) -> BaseRows<'_> {
    let (points, original_ids): (&PointSet, Option<&[u32]>) = match base {
        LoadedIndex::LinearScan(index) => (index.points(), None),
        LoadedIndex::BallTree(index) => (index.points(), Some(index.original_ids())),
        LoadedIndex::BcTree(index) => (index.points(), Some(index.original_ids())),
        LoadedIndex::Nh(index) => (index.points(), None),
        LoadedIndex::Fh(index) => (index.points(), None),
    };
    let perm = match original_ids {
        None => Vec::new(),
        Some(ids) => {
            let mut perm = vec![0u32; ids.len()];
            for (storage, &original) in ids.iter().enumerate() {
                perm[original as usize] = storage as u32;
            }
            perm
        }
    };
    BaseRows { points, perm }
}
