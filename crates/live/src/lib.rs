//! # p2h-live
//!
//! Online updates for point-to-hyperplane nearest neighbor search: a **mutable live
//! tier** over the workspace's immutable snapshot indexes.
//!
//! The paper's workload is interactive — active learning labels the points nearest
//! the current decision hyperplane, retrains, and queries again — but every index in
//! the workspace is built offline and frozen. This crate closes that loop with an
//! LSM-style layering:
//!
//! * a **memtable** of recent inserts (scanned linearly through the same dispatched
//!   kernels as every other index) plus a tombstone set for deletes, layered over
//! * an immutable **base snapshot** (a compacted Ball-Tree, loaded copy or
//!   zero-copy like any other snapshot), with
//! * a CRC-framed **write-ahead log** making every mutation durable before it is
//!   acknowledged ([`p2h_store::wal`]), and
//! * a **compactor** ([`LiveIndex::compact`]) that folds memtable + base into a
//!   freshly built tree and commits it as a new store epoch through the manifest's
//!   atomic rename — serving continues throughout.
//!
//! Layered answers are **bit-identical** to a full rebuild containing the same live
//! points (same kernel backend): the memtable scan is exact by construction, base
//! results translate through a strictly increasing id mapping (order-preserving, so
//! every tie-break survives), and the final merge is the same total-order
//! [`p2h_core::merge_topk`] shard fan-out uses. See [`search`](crate::LiveIndex::search)
//! and `docs/ONLINE_UPDATES.md`.
//!
//! ## Quick start
//!
//! ```no_run
//! use p2h_live::LiveIndex;
//! use p2h_store::Store;
//! use p2h_core::HyperplaneQuery;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let store = Store::create("indexes")?;
//! // Augmented dimensionality 3 = raw 2-dimensional points.
//! let live = LiveIndex::create(&store, "stream", 3)?;
//!
//! // Mutations are durable when they return: framed, appended, fsynced.
//! let id = live.insert(&[0.5, 1.5])?;
//! live.insert(&[2.0, -1.0])?;
//! live.delete(id)?;
//!
//! // Serve exactly — bit-identical to an offline rebuild over the live points.
//! let query = HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0], -1.0)?;
//! let result = live.search_exact(&query, 1)?;
//! assert_eq!(result.neighbors.len(), 1);
//!
//! // Fold the memtable into a compacted Ball-Tree base (new store epoch).
//! live.compact()?;
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod compact;
mod error;
mod index;
mod metrics;
mod policy;
mod search;

pub use compact::{CompactionReport, CompactionTrigger};
pub use error::{LiveError, LiveResult};
pub use index::LiveIndex;
pub use policy::{CompactionPolicy, Compactor};
