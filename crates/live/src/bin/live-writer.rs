//! Crash-test helper: a single-writer process that streams acknowledged mutations to
//! stdout so a harness can `kill -9` it at an arbitrary instant and verify that
//! recovery preserves exactly the acknowledged prefix.
//!
//! ```text
//! live-writer <store-dir> <name> <raw-dim> insert-loop
//! live-writer <store-dir> <name> <raw-dim> compact-after <n>
//! ```
//!
//! Every `ACK I <id>` / `ACK D <id>` line is printed *after* the operation's WAL
//! fsync returned, so any acknowledged line the harness observed must survive a
//! crash. `compact-after` inserts `n` points, prints `COMPACT-START`, compacts
//! (printing `COMPACT-DONE <epoch>`), and keeps inserting — the harness kills it
//! anywhere in that window. Points are a pure function of (id, dim) so the harness
//! can rebuild the expected set bit-for-bit; every 7th insert is followed by a
//! delete five ids back, exercising tombstones across base and memtable.

use std::io::{self, Write};

use p2h_core::Scalar;
use p2h_live::LiveIndex;
use p2h_store::Store;

/// Deterministic raw point for a global id (splitmix64 per coordinate, mapped into
/// [-1, 1]). The crash harness reimplements this function; keep them identical.
fn raw_point(id: u32, raw_dim: usize) -> Vec<Scalar> {
    (0..raw_dim)
        .map(|j| {
            let mut x = (u64::from(id) << 32) | j as u64;
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            (x >> 40) as Scalar / (1u64 << 23) as Scalar - 1.0
        })
        .collect()
}

fn ack(out: &mut impl Write, tag: &str, id: u32) {
    writeln!(out, "ACK {tag} {id}").expect("stdout");
    out.flush().expect("stdout flush");
}

/// Inserts the next point; every id ≡ 3 (mod 7) is followed by a delete of id − 5.
fn step(live: &LiveIndex, raw_dim: usize, out: &mut impl Write) {
    let id = live.insert(&raw_point(live.next_id(), raw_dim)).expect("insert");
    ack(out, "I", id);
    if id % 7 == 3 && id >= 5 {
        let victim = id - 5;
        live.delete(victim).expect("delete");
        ack(out, "D", victim);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 5 {
        eprintln!("usage: live-writer <store-dir> <name> <raw-dim> <insert-loop|compact-after n>");
        std::process::exit(2);
    }
    let (dir, name) = (&args[1], &args[2]);
    let raw_dim: usize = args[3].parse().expect("raw-dim");
    let store = match Store::open(dir) {
        Ok(store) => store,
        Err(_) => Store::create(dir).expect("create store"),
    };
    let live = LiveIndex::open_or_create(&store, name, raw_dim + 1).expect("open live index");
    let mut out = io::stdout().lock();
    writeln!(out, "READY {}", live.next_id()).expect("stdout");
    out.flush().expect("stdout flush");
    match args[4].as_str() {
        "insert-loop" => loop {
            step(&live, raw_dim, &mut out);
        },
        "compact-after" => {
            let n: u32 = args[5].parse().expect("n");
            for _ in 0..n {
                step(&live, raw_dim, &mut out);
            }
            writeln!(out, "COMPACT-START").expect("stdout");
            out.flush().expect("stdout flush");
            let report = live.compact().expect("compact");
            writeln!(out, "COMPACT-DONE {}", report.epoch).expect("stdout");
            out.flush().expect("stdout flush");
            loop {
                step(&live, raw_dim, &mut out);
            }
        }
        other => {
            eprintln!("unknown mode `{other}`");
            std::process::exit(2);
        }
    }
}
