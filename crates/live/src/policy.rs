//! Background compaction: a policy thread that watches a [`LiveIndex`]'s memtable
//! and runs [`LiveIndex::compact_triggered`] when a size or time threshold trips.
//!
//! The policy is deliberately dumb — poll the memtable point count on an interval,
//! fire on `points >= max_memtable_points` (trigger `size`) or on
//! `max_interval` elapsing with mutations pending (trigger `time`) — because the
//! compaction itself already carries all the hard guarantees (serving continues,
//! answers stay bit-identical, crashes recover to exactly the acknowledged
//! operations). Every fired compaction lands in
//! `p2h_live_compactions_total{index,trigger}` so operators can tell policy-driven
//! work from explicit [`LiveIndex::compact`] calls.
//!
//! A [`Compactor`] handle owns the thread; dropping it (or calling
//! [`Compactor::shutdown`]) stops the loop without interrupting a compaction that
//! is already running.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::compact::CompactionTrigger;
use crate::error::LiveError;
use crate::index::LiveIndex;

/// When the background compactor fires. Thresholds set to their "disabled" value
/// (`0` points / zero interval) turn that trigger off individually.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Fire (trigger `size`) once the memtable holds at least this many live rows.
    /// `0` disables the size trigger.
    pub max_memtable_points: usize,
    /// Fire (trigger `time`) when this much time has passed since the last
    /// compaction (or since the policy started) and the memtable is non-empty.
    /// `Duration::ZERO` disables the time trigger.
    pub max_interval: Duration,
    /// How often the policy thread samples the memtable.
    pub poll_interval: Duration,
}

impl Default for CompactionPolicy {
    /// Size-triggered at 4096 memtable points, time trigger off, 200 ms polls.
    fn default() -> Self {
        Self {
            max_memtable_points: 4096,
            max_interval: Duration::ZERO,
            poll_interval: Duration::from_millis(200),
        }
    }
}

impl CompactionPolicy {
    /// Reads the policy from the environment, falling back to [`Default`] per field:
    ///
    /// * `P2H_LIVE_COMPACT_POINTS` — size threshold in memtable rows (`0` disables);
    /// * `P2H_LIVE_COMPACT_INTERVAL_MS` — time threshold in milliseconds (`0`
    ///   disables);
    /// * `P2H_LIVE_COMPACT_POLL_MS` — poll cadence in milliseconds (clamped to at
    ///   least 1 ms so a zero cannot busy-spin a core).
    ///
    /// Unparsable values fall back to the default rather than erroring: a serving
    /// process should come up with a sane policy, not die on a typo'd tuning knob.
    pub fn from_env() -> Self {
        Self::from_values(
            std::env::var("P2H_LIVE_COMPACT_POINTS").ok().as_deref(),
            std::env::var("P2H_LIVE_COMPACT_INTERVAL_MS").ok().as_deref(),
            std::env::var("P2H_LIVE_COMPACT_POLL_MS").ok().as_deref(),
        )
    }

    /// [`CompactionPolicy::from_env`] on explicit strings (testable without touching
    /// process-global environment).
    fn from_values(points: Option<&str>, interval_ms: Option<&str>, poll_ms: Option<&str>) -> Self {
        let defaults = Self::default();
        let parse = |value: Option<&str>| value.and_then(|v| v.trim().parse::<u64>().ok());
        Self {
            max_memtable_points: parse(points).map_or(defaults.max_memtable_points, |v| v as usize),
            max_interval: parse(interval_ms).map_or(defaults.max_interval, Duration::from_millis),
            poll_interval: Duration::from_millis(parse(poll_ms).map_or(
                defaults.poll_interval.as_millis() as u64,
                |v| v.max(1), // a zero poll interval must not busy-spin a core
            )),
        }
    }

    /// Spawns the policy thread over `index`. The returned [`Compactor`] stops the
    /// loop when dropped; the `Arc` keeps the index alive for the thread's lifetime,
    /// so shutting down the compactor before dropping the index is not required
    /// (just tidy).
    pub fn spawn(self, index: Arc<LiveIndex>) -> Compactor {
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let name = format!("p2h-live-compact-{}", index.name());
        let thread = std::thread::Builder::new()
            .name(name)
            .spawn(move || policy_loop(&self, &index, &stop))
            .expect("spawn compaction policy thread");
        Compactor { shutdown, thread: Some(thread) }
    }

    /// The trigger that should fire for a memtable of `points` rows `since_last`
    /// after the previous compaction, if any. Size wins over time when both trip.
    fn due(&self, points: usize, since_last: Duration) -> Option<CompactionTrigger> {
        if self.max_memtable_points > 0 && points >= self.max_memtable_points {
            return Some(CompactionTrigger::Size);
        }
        if !self.max_interval.is_zero() && since_last >= self.max_interval && points > 0 {
            return Some(CompactionTrigger::Time);
        }
        None
    }
}

fn policy_loop(policy: &CompactionPolicy, index: &LiveIndex, shutdown: &AtomicBool) {
    let mut last = Instant::now();
    while !shutdown.load(Ordering::SeqCst) {
        if let Some(trigger) = policy.due(index.memtable_len(), last.elapsed()) {
            match index.compact_triggered(trigger) {
                // A concurrent manual compaction is doing our work; treat its run
                // as ours for interval purposes and re-sample next poll.
                Ok(_) | Err(LiveError::CompactionInProgress) => last = Instant::now(),
                // Staging/build failures leave the index serving the old epoch;
                // retrying every poll would hammer a broken store, so back the
                // clock off a full interval like a success would.
                Err(_) => last = Instant::now(),
            }
        }
        std::thread::sleep(policy.poll_interval);
    }
}

/// Handle to a running background compactor. Dropping it stops the policy loop
/// (after at most one `poll_interval`); a compaction already in flight completes.
#[derive(Debug)]
pub struct Compactor {
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Compactor {
    /// Stops the policy loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_store::Store;

    fn live_in(dir: &std::path::Path, name: &str) -> Arc<LiveIndex> {
        let store = Store::create(dir).unwrap();
        Arc::new(LiveIndex::create(&store, name, 3).unwrap())
    }

    fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if done() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    fn compactions(name: &str, trigger: &str) -> u64 {
        p2h_obs::global()
            .snapshot()
            .series("p2h_live_compactions_total", &[("index", name), ("trigger", trigger)])
            .map_or(0, |series| series.value.scalar())
    }

    #[test]
    fn env_parsing_falls_back_per_field() {
        let policy = CompactionPolicy::from_values(Some("128"), Some("5000"), Some("50"));
        assert_eq!(policy.max_memtable_points, 128);
        assert_eq!(policy.max_interval, Duration::from_millis(5000));
        assert_eq!(policy.poll_interval, Duration::from_millis(50));

        let defaults = CompactionPolicy::default();
        assert_eq!(CompactionPolicy::from_values(None, None, None), defaults);
        // Typos fall back instead of erroring; zero poll cannot busy-spin.
        let garbled = CompactionPolicy::from_values(Some("lots"), Some(""), Some("0"));
        assert_eq!(garbled.max_memtable_points, defaults.max_memtable_points);
        assert_eq!(garbled.max_interval, defaults.max_interval);
        assert_eq!(garbled.poll_interval, Duration::from_millis(1));
        // Explicit zeros disable the triggers.
        let off = CompactionPolicy::from_values(Some("0"), Some("0"), None);
        assert_eq!(off.due(1_000_000, Duration::from_secs(3600)), None);
    }

    #[test]
    fn due_prefers_size_and_skips_empty_memtables() {
        let policy = CompactionPolicy {
            max_memtable_points: 10,
            max_interval: Duration::from_secs(1),
            poll_interval: Duration::from_millis(1),
        };
        assert_eq!(policy.due(10, Duration::ZERO), Some(CompactionTrigger::Size));
        assert_eq!(policy.due(9, Duration::from_secs(2)), Some(CompactionTrigger::Time));
        assert_eq!(policy.due(9, Duration::from_millis(500)), None);
        // An idle index never time-compacts: there is nothing to fold.
        assert_eq!(policy.due(0, Duration::from_secs(2)), None);
    }

    #[test]
    fn size_trigger_compacts_in_the_background() {
        let dir = std::env::temp_dir().join(format!("p2h-policy-size-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let live = live_in(&dir, "policy-size");
        let policy = CompactionPolicy {
            max_memtable_points: 8,
            max_interval: Duration::ZERO,
            poll_interval: Duration::from_millis(5),
        };
        let compactor = policy.spawn(Arc::clone(&live));
        for i in 0..20 {
            live.insert(&[i as f32, 1.0]).unwrap();
        }
        assert!(
            wait_until(Duration::from_secs(10), || live.memtable_len() < 8
                && !live.is_compacting()),
            "background compaction never drained the memtable"
        );
        assert!(compactions("policy-size", "size") >= 1);
        assert_eq!(compactions("policy-size", "time"), 0);
        // Answers still cover every inserted point after the fold.
        assert_eq!(live.len(), 20);
        compactor.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn time_trigger_compacts_pending_mutations() {
        let dir = std::env::temp_dir().join(format!("p2h-policy-time-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let live = live_in(&dir, "policy-time");
        let policy = CompactionPolicy {
            max_memtable_points: 0, // size trigger off
            max_interval: Duration::from_millis(30),
            poll_interval: Duration::from_millis(5),
        };
        for i in 0..3 {
            live.insert(&[i as f32, -1.0]).unwrap();
        }
        let compactor = policy.spawn(Arc::clone(&live));
        assert!(
            wait_until(Duration::from_secs(10), || live.memtable_len() == 0
                && !live.is_compacting()),
            "time trigger never fired"
        );
        assert!(compactions("policy-time", "time") >= 1);
        assert_eq!(compactions("policy-time", "size"), 0);
        assert_eq!(live.len(), 3);
        compactor.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
