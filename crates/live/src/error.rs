//! Typed errors of the live tier.

use std::fmt;

use p2h_store::StoreError;

/// Everything a [`crate::LiveIndex`] mutation or compaction can fail with.
///
/// Open/create paths return [`p2h_store::StoreResult`] directly (they can only fail
/// in the storage layer), and searches return [`p2h_core::Result`] (they can only
/// fail validation); this enum is the union the mutating paths need.
#[derive(Debug)]
pub enum LiveError {
    /// Invalid argument or state (dimension mismatch, exhausted id space, …).
    Core(p2h_core::Error),
    /// Storage failure: WAL I/O, segment corruption, manifest trouble.
    Store(StoreError),
    /// A delete targeted an id that is not live — never assigned, or already
    /// deleted. Deletes of dead ids are refused *before* they reach the log, so a
    /// replayed WAL never contains one.
    NotFound(u32),
    /// A compaction is already running on this index; retry after it finishes.
    CompactionInProgress,
}

/// Convenience alias for live-tier results.
pub type LiveResult<T> = std::result::Result<T, LiveError>;

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Core(e) => write!(f, "{e}"),
            LiveError::Store(e) => write!(f, "{e}"),
            LiveError::NotFound(id) => write!(f, "id {id} is not live"),
            LiveError::CompactionInProgress => {
                write!(f, "a compaction is already running on this index")
            }
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::Core(e) => Some(e),
            LiveError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<p2h_core::Error> for LiveError {
    fn from(e: p2h_core::Error) -> Self {
        LiveError::Core(e)
    }
}

impl From<StoreError> for LiveError {
    fn from(e: StoreError) -> Self {
        LiveError::Store(e)
    }
}
