//! Tests for the process-global `force_scalar` dispatch override.
//!
//! This file is its own test binary with a single `#[test]`: toggling the override
//! while other tests run concurrently in the same process would flip the backend
//! between a test's blocked call and its single-row reference call and break their
//! bitwise comparisons. (The unit tests in `kernels::tests` deliberately avoid the
//! toggle for the same reason.)

use p2h_core::kernels::{self, scalar};
use p2h_core::{KernelBackend, Scalar};

#[test]
fn force_scalar_switches_the_active_backend_and_back() {
    let dim = 40;
    let rows = 4;
    let query: Vec<Scalar> = (0..dim).map(|j| (j as Scalar * 0.37).sin() * 2.0).collect();
    let data: Vec<Scalar> = (0..dim * rows).map(|j| (j as Scalar * 0.13).cos() * 3.0).collect();
    let mut out = vec![0.0 as Scalar; rows];

    kernels::force_scalar(true);
    assert_eq!(kernels::active_backend(), KernelBackend::Scalar);
    kernels::dot_block(&query, &data, dim, &mut out);
    for r in 0..rows {
        assert_eq!(
            out[r].to_bits(),
            scalar::dot(&query, &data[r * dim..(r + 1) * dim]).to_bits(),
            "forced-scalar dispatch must route through the scalar kernels"
        );
    }

    // Un-forcing restores hardware dispatch (and overrides any P2H_FORCE_SCALAR env
    // setting, which is why this asserts against detected_backend, not a constant).
    kernels::force_scalar(false);
    assert_eq!(kernels::active_backend(), kernels::detected_backend());
    kernels::dot_block(&query, &data, dim, &mut out);
    for r in 0..rows {
        let single = kernels::dot(&query, &data[r * dim..(r + 1) * dim]);
        assert_eq!(out[r].to_bits(), single.to_bits());
    }
}
