//! Property tests for the kernel layer: every dispatched (possibly SIMD) kernel must
//! match the scalar reference within `1e-3` relative tolerance, across dimensions that
//! exercise every lane-count tail (scalar unroll 4, NEON stride 8, AVX2 stride 16 plus
//! the single extra 8-lane chunk), and the blocked kernels must be bit-identical per
//! row to their single-vector counterparts.

use p2h_core::kernels::{self, scalar};
use p2h_core::Scalar;
use proptest::prelude::*;

/// Relative-tolerance check: SIMD reassociation and FMA contraction may move the last
/// few ulps, bounded well below 1e-3 relative for inputs of this magnitude.
fn close(fast: Scalar, reference: Scalar) -> bool {
    (fast - reference).abs() <= 1e-3 * (1.0 + reference.abs())
}

/// A dimension strategy that hits every tail class: 1..=36 covers all residues mod 16
/// (and mod 8 / mod 4) with and without the extra 8-lane chunk; the larger sizes add
/// multi-iteration main loops with every residue.
fn dims() -> impl Strategy<Value = usize> {
    (0usize..48).prop_map(|i| if i < 36 { i + 1 } else { 16 * (i - 35) + (i % 9) })
}

proptest! {
    #[test]
    fn dispatched_dot_matches_scalar_reference(
        dim in dims(),
        seed in -5.0f32..5.0,
    ) {
        let a: Vec<Scalar> = (0..dim).map(|j| seed + (j as Scalar * 0.37).sin() * 3.0).collect();
        let b: Vec<Scalar> = (0..dim).map(|j| (j as Scalar * 0.73).cos() * 2.0 - seed).collect();
        prop_assert!(close(kernels::dot(&a, &b), scalar::dot(&a, &b)),
            "dim {}: {} vs {}", dim, kernels::dot(&a, &b), scalar::dot(&a, &b));
    }

    #[test]
    fn dispatched_norm_sq_matches_scalar_reference(dim in dims(), seed in -5.0f32..5.0) {
        let a: Vec<Scalar> = (0..dim).map(|j| seed + (j as Scalar * 0.59).sin() * 2.0).collect();
        prop_assert!(close(kernels::norm_sq(&a), scalar::norm_sq(&a)));
    }

    #[test]
    fn dispatched_euclidean_sq_matches_scalar_reference(dim in dims(), seed in -5.0f32..5.0) {
        let a: Vec<Scalar> = (0..dim).map(|j| seed + (j as Scalar * 0.41).sin() * 2.0).collect();
        let b: Vec<Scalar> = (0..dim).map(|j| (j as Scalar * 0.29).cos() * 3.0).collect();
        prop_assert!(close(kernels::euclidean_sq(&a, &b), scalar::euclidean_sq(&a, &b)));
    }

    #[test]
    fn blocked_dot_is_bit_identical_to_single_dot(
        dim in dims(),
        rows in 1usize..11,
        seed in -3.0f32..3.0,
    ) {
        let query: Vec<Scalar> =
            (0..dim).map(|j| seed + (j as Scalar * 0.61).sin() * 2.0).collect();
        let data: Vec<Scalar> =
            (0..dim * rows).map(|j| (j as Scalar * 0.17).cos() * 2.0 - seed).collect();
        let mut blocked = vec![0.0 as Scalar; rows];
        kernels::dot_block(&query, &data, dim, &mut blocked);
        for r in 0..rows {
            let single = kernels::dot(&query, &data[r * dim..(r + 1) * dim]);
            prop_assert!(blocked[r].to_bits() == single.to_bits(),
                "dim {}, row {}: {} vs {}", dim, r, blocked[r], single);
        }
    }

    #[test]
    fn blocked_abs_dot_matches_scalar_reference_within_tolerance(
        dim in dims(),
        rows in 1usize..11,
        seed in -3.0f32..3.0,
    ) {
        let query: Vec<Scalar> =
            (0..dim).map(|j| seed + (j as Scalar * 0.53).sin() * 2.0).collect();
        let data: Vec<Scalar> =
            (0..dim * rows).map(|j| (j as Scalar * 0.19).cos() * 2.0 + seed * 0.1).collect();
        let mut blocked = vec![0.0 as Scalar; rows];
        kernels::abs_dot_block(&query, &data, dim, &mut blocked);
        for r in 0..rows {
            let reference = scalar::dot(&query, &data[r * dim..(r + 1) * dim]).abs();
            prop_assert!(close(blocked[r], reference),
                "dim {}, row {}: {} vs {}", dim, r, blocked[r], reference);
        }
    }

    #[test]
    fn scalar_blocked_dot_is_bit_identical_to_scalar_dot(
        dim in dims(),
        rows in 1usize..9,
        seed in -3.0f32..3.0,
    ) {
        let query: Vec<Scalar> =
            (0..dim).map(|j| seed + (j as Scalar * 0.31).sin() * 2.0).collect();
        let data: Vec<Scalar> =
            (0..dim * rows).map(|j| (j as Scalar * 0.23).cos() * 2.0).collect();
        let mut blocked = vec![0.0 as Scalar; rows];
        scalar::dot_block(&query, &data, dim, &mut blocked);
        for r in 0..rows {
            let single = scalar::dot(&query, &data[r * dim..(r + 1) * dim]);
            prop_assert_eq!(blocked[r].to_bits(), single.to_bits());
        }
    }
}
