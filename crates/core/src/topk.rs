//! Bounded top-k collection for nearest-neighbor candidates.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Scalar;

/// One answer of a P2HNNS query: a data point index together with its point-to-hyperplane
/// distance `|⟨x, q⟩|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the data point in the original [`crate::PointSet`].
    pub index: usize,
    /// Point-to-hyperplane distance of the data point to the query.
    pub distance: Scalar,
}

impl Neighbor {
    /// Creates a new neighbor record.
    #[inline]
    pub fn new(index: usize, distance: Scalar) -> Self {
        Self { index, distance }
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    /// Orders by distance (total order on floats), breaking ties by index so results are
    /// deterministic.
    fn cmp(&self, other: &Self) -> Ordering {
        self.distance.total_cmp(&other.distance).then_with(|| self.index.cmp(&other.index))
    }
}

/// Merges per-source top-k lists (already mapped to global ids) into the global top-k,
/// using the total [`Neighbor`] order — fully deterministic, no arrival-order tie
/// breaking. Each input list must itself be sorted; the output holds at most
/// `max(k, 1)` neighbors (matching the collector's clamp of `k = 0`).
///
/// This is the single merge used by every fan-out path in the workspace — shard
/// fan-out, the distributed router, and the live memtable-over-base layering — which
/// is what makes their answers bit-identical to an unsharded/rebuilt index.
pub fn merge_topk(k: usize, lists: Vec<Vec<Neighbor>>) -> Vec<Neighbor> {
    let k = k.max(1);
    let mut merged: Vec<Neighbor> = match lists.len() {
        0 => Vec::new(),
        1 => lists.into_iter().next().expect("one list"),
        _ => {
            // Exact-size concatenation: `flatten().collect()` would reallocate while
            // growing (flatten cannot size-hint the total), breaking the fixed
            // shards + 2 per-query allocation budget of the fan-out path.
            let total = lists.iter().map(Vec::len).sum();
            let mut merged = Vec::with_capacity(total);
            for list in &lists {
                merged.extend_from_slice(list);
            }
            merged
        }
    };
    // Per-source lists are tiny (≤ k each), so one sort beats a k-way heap merge in
    // both simplicity and constant factor; `Neighbor`'s `Ord` is the total order.
    merged.sort_unstable();
    merged.truncate(k);
    merged
}

/// A bounded max-heap that keeps the `k` smallest-distance neighbors seen so far.
///
/// This is the `q.bm` / `q.λ` pair of Algorithms 3 and 5 in the paper generalized to
/// top-k: [`TopKCollector::threshold`] is the current `q.λ`, i.e. the distance that a new
/// candidate must beat to enter the result set.
#[derive(Debug, Clone)]
pub struct TopKCollector {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopKCollector {
    /// Creates a collector for the `k` nearest neighbors. `k` is clamped to at least 1.
    pub fn new(k: usize) -> Self {
        let k = k.max(1);
        Self { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// The `k` this collector was created with.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of neighbors currently held (at most `k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no neighbor has been offered yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the collector already holds `k` neighbors.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The current pruning threshold `q.λ`: the k-th smallest distance seen so far, or
    /// `+∞` while fewer than `k` candidates have been accepted.
    ///
    /// Any candidate (or subtree) whose lower bound is at least this value cannot improve
    /// the result set and can be pruned.
    #[inline]
    pub fn threshold(&self) -> Scalar {
        if self.is_full() {
            self.heap.peek().map_or(Scalar::INFINITY, |n| n.distance)
        } else {
            Scalar::INFINITY
        }
    }

    /// Offers a candidate; returns `true` if it entered the current top-k.
    pub fn offer(&mut self, index: usize, distance: Scalar) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(Neighbor::new(index, distance));
            return true;
        }
        // Heap is full: replace the current worst if the candidate is strictly better.
        if distance < self.threshold() {
            self.heap.pop();
            self.heap.push(Neighbor::new(index, distance));
            true
        } else {
            false
        }
    }

    /// Prepares the collector for a fresh query: empties the heap (keeping its
    /// allocation) and sets a new `k` (clamped to at least 1).
    ///
    /// This is the reuse hook of the allocation-free query path: a
    /// [`crate::QueryScratch`] resets its collector between queries instead of
    /// constructing a new one, so the heap storage is allocated once per worker rather
    /// than once per query.
    pub fn reset(&mut self, k: usize) {
        self.k = k.max(1);
        self.heap.clear();
    }

    /// Drains the collector and returns the neighbors sorted by ascending distance,
    /// keeping the heap's allocation for reuse (unlike [`Self::into_sorted_vec`]).
    ///
    /// The returned vector is the only allocation: it is the query's answer, owned by
    /// the caller.
    pub fn take_sorted(&mut self) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self.heap.drain().collect();
        v.sort_unstable();
        v
    }

    /// Consumes the collector and returns the neighbors sorted by ascending distance.
    pub fn into_sorted_vec(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }

    /// Returns the neighbors sorted by ascending distance without consuming the
    /// collector.
    pub fn to_sorted_vec(&self) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self.heap.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keeps_k_smallest() {
        let mut c = TopKCollector::new(3);
        assert!(c.is_empty());
        assert_eq!(c.threshold(), Scalar::INFINITY);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0, 0.5].iter().enumerate() {
            c.offer(i, *d);
        }
        assert!(c.is_full());
        let result = c.into_sorted_vec();
        let distances: Vec<Scalar> = result.iter().map(|n| n.distance).collect();
        assert_eq!(distances, vec![0.5, 1.0, 2.0]);
        assert_eq!(result[0].index, 5);
    }

    #[test]
    fn threshold_tracks_kth_best() {
        let mut c = TopKCollector::new(2);
        c.offer(0, 10.0);
        assert_eq!(c.threshold(), Scalar::INFINITY, "not full yet");
        c.offer(1, 5.0);
        assert_eq!(c.threshold(), 10.0);
        assert!(c.offer(2, 1.0));
        assert_eq!(c.threshold(), 5.0);
        assert!(!c.offer(3, 9.0), "worse than threshold must be rejected");
        assert_eq!(c.threshold(), 5.0);
    }

    #[test]
    fn k_zero_clamps_to_one() {
        let mut c = TopKCollector::new(0);
        assert_eq!(c.k(), 1);
        c.offer(0, 2.0);
        c.offer(1, 1.0);
        let v = c.into_sorted_vec();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].index, 1);
    }

    #[test]
    fn equal_distances_break_ties_by_index() {
        let a = Neighbor::new(3, 1.0);
        let b = Neighbor::new(5, 1.0);
        assert!(a < b);
        let mut c = TopKCollector::new(1);
        c.offer(5, 1.0);
        // An equal distance does not displace the incumbent (strictly-better rule).
        assert!(!c.offer(3, 1.0));
    }

    #[test]
    fn reset_reuses_the_heap_and_reclamps_k() {
        let mut c = TopKCollector::new(3);
        for (i, d) in [4.0, 2.0, 6.0, 1.0].iter().enumerate() {
            c.offer(i, *d);
        }
        assert!(c.is_full());
        c.reset(2);
        assert!(c.is_empty());
        assert_eq!(c.k(), 2);
        assert_eq!(c.threshold(), Scalar::INFINITY);
        c.offer(7, 9.0);
        c.offer(8, 3.0);
        let v = c.take_sorted();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].index, 8);
        // take_sorted drained the heap but the collector remains usable.
        assert!(c.is_empty());
        c.offer(1, 1.0);
        assert_eq!(c.len(), 1);
        c.reset(0);
        assert_eq!(c.k(), 1, "k is clamped to at least 1 on reset");
    }

    #[test]
    fn take_sorted_matches_into_sorted_vec() {
        let mut a = TopKCollector::new(4);
        let mut b = TopKCollector::new(4);
        for (i, d) in [5.0, 1.0, 3.0, 2.0, 4.0, 0.5].iter().enumerate() {
            a.offer(i, *d);
            b.offer(i, *d);
        }
        assert_eq!(a.take_sorted(), b.into_sorted_vec());
    }

    #[test]
    fn to_sorted_vec_does_not_consume() {
        let mut c = TopKCollector::new(2);
        c.offer(0, 3.0);
        c.offer(1, 1.0);
        let snapshot = c.to_sorted_vec();
        assert_eq!(snapshot.len(), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(snapshot, c.into_sorted_vec());
    }

    proptest! {
        #[test]
        fn matches_full_sort(
            distances in proptest::collection::vec(0.0f32..100.0, 1..200),
            k in 1usize..20,
        ) {
            let mut c = TopKCollector::new(k);
            for (i, &d) in distances.iter().enumerate() {
                c.offer(i, d);
            }
            let got: Vec<Scalar> = c.into_sorted_vec().iter().map(|n| n.distance).collect();

            let mut expected = distances.clone();
            expected.sort_by(|a, b| a.total_cmp(b));
            expected.truncate(k);
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn threshold_is_monotone_nonincreasing(
            distances in proptest::collection::vec(0.0f32..100.0, 1..100),
            k in 1usize..10,
        ) {
            let mut c = TopKCollector::new(k);
            let mut prev = Scalar::INFINITY;
            for (i, &d) in distances.iter().enumerate() {
                c.offer(i, d);
                let t = c.threshold();
                prop_assert!(t <= prev);
                prev = t;
            }
        }
    }
}
