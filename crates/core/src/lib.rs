//! # p2h-core
//!
//! Core types and primitives for Point-to-Hyperplane Nearest Neighbor Search (P2HNNS).
//!
//! This crate defines the shared vocabulary used by every index in the workspace:
//!
//! * [`PointSet`] — a dense, row-major collection of data points, with the
//!   dimension-append convention of the paper (`x = (p; 1)`),
//! * [`HyperplaneQuery`] — a hyperplane query normalized so that the point-to-hyperplane
//!   distance reduces to an absolute inner product,
//! * [`TopKCollector`] and [`Neighbor`] — a bounded max-heap for maintaining the current
//!   top-k answers and the pruning threshold `q.λ`, plus [`merge_topk`] — the
//!   deterministic total-order merge shared by every fan-out path (shards, the
//!   distributed router, the live memtable layering),
//! * [`P2hIndex`] — the trait every index (linear scan, Ball-Tree, BC-Tree, NH, FH)
//!   implements, together with [`SearchParams`], [`SearchResult`] and [`SearchStats`],
//! * [`LinearScan`] — the exhaustive-scan baseline used for ground truth,
//! * [`VecBuf`] — the owned-or-mapped buffer behind every large read-only array
//!   ([`PointSet`] payloads, tree centers, permutations, projection tables), which is
//!   what lets `p2h-store` restore indexes zero-copy from memory-mapped snapshots,
//! * [`QueryScratch`] — reusable per-worker working memory for allocation-free search,
//! * low-level dense kernels in [`distance`], backed by the runtime-dispatched SIMD
//!   implementations in [`kernels`].
//!
//! ## Kernel dispatch
//!
//! The dense kernels ([`kernels::dot`], [`kernels::abs_dot`], [`kernels::norm_sq`],
//! [`kernels::euclidean_sq`], and the blocked [`kernels::dot_block`] /
//! [`kernels::abs_dot_block`]) select an implementation **once per process, at
//! runtime**:
//!
//! * on `x86_64`, AVX2+FMA when `is_x86_feature_detected!` reports both features;
//! * on `aarch64`, NEON (a baseline feature, no detection needed);
//! * otherwise, the portable 4-way-unrolled scalar code in [`kernels::scalar`].
//!
//! The scalar path can be forced for benchmarking, CI, or cross-machine
//! reproducibility, either with the environment variable `P2H_FORCE_SCALAR=1` or at
//! runtime with [`kernels::force_scalar`]`(true)`; [`kernels::active_backend`] reports
//! the current choice.
//!
//! Two properties make dispatch safe for the *exact*-search guarantees of the paper
//! reproduction: within a backend the blocked kernels are bit-identical per row to the
//! single-vector kernels, and every index (including the [`LinearScan`] ground-truth
//! oracle) routes through the same dispatcher — so inside one process all methods share
//! one floating-point summation order and exact searches remain comparable with
//! `assert_eq!`. Different backends differ in the last ulps (FMA contraction), which is
//! why the trees must never hand-roll their own inner products. See the [`kernels`]
//! module documentation for details.
//!
//! The formulation follows Section II of "Lightweight-Yet-Efficient: Revitalizing
//! Ball-Tree for Point-to-Hyperplane Nearest Neighbor Search" (Huang & Tung, ICDE 2023):
//! data points `p ∈ R^{d-1}` are augmented to `x = (p; 1) ∈ R^d`, queries `q ∈ R^d` are
//! rescaled so that the norm of their first `d-1` coordinates is 1, and the
//! point-to-hyperplane distance is `|⟨x, q⟩|`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buf;
pub mod distance;
mod error;
mod index;
pub mod kernels;
mod linear_scan;
mod point_set;
mod query;
mod scratch;
mod topk;

pub use buf::{BufBacking, BufElem, VecBuf};
pub use error::{Error, Result};
pub use index::{BranchPreference, P2hIndex, SearchParams, SearchResult, SearchStats};
pub use kernels::KernelBackend;
pub use linear_scan::LinearScan;
pub use point_set::PointSet;
pub use query::HyperplaneQuery;
pub use scratch::{QueryScratch, LEAF_STRIP};
pub use topk::{merge_topk, Neighbor, TopKCollector};

/// The floating point type used for data points and queries throughout the workspace.
///
/// The reference implementation of the paper uses single-precision floats; so do we.
pub type Scalar = f32;
