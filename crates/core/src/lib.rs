//! # p2h-core
//!
//! Core types and primitives for Point-to-Hyperplane Nearest Neighbor Search (P2HNNS).
//!
//! This crate defines the shared vocabulary used by every index in the workspace:
//!
//! * [`PointSet`] — a dense, row-major collection of data points, with the
//!   dimension-append convention of the paper (`x = (p; 1)`),
//! * [`HyperplaneQuery`] — a hyperplane query normalized so that the point-to-hyperplane
//!   distance reduces to an absolute inner product,
//! * [`TopKCollector`] and [`Neighbor`] — a bounded max-heap for maintaining the current
//!   top-k answers and the pruning threshold `q.λ`,
//! * [`P2hIndex`] — the trait every index (linear scan, Ball-Tree, BC-Tree, NH, FH)
//!   implements, together with [`SearchParams`], [`SearchResult`] and [`SearchStats`],
//! * [`LinearScan`] — the exhaustive-scan baseline used for ground truth,
//! * low-level dense kernels in [`distance`].
//!
//! The formulation follows Section II of "Lightweight-Yet-Efficient: Revitalizing
//! Ball-Tree for Point-to-Hyperplane Nearest Neighbor Search" (Huang & Tung, ICDE 2023):
//! data points `p ∈ R^{d-1}` are augmented to `x = (p; 1) ∈ R^d`, queries `q ∈ R^d` are
//! rescaled so that the norm of their first `d-1` coordinates is 1, and the
//! point-to-hyperplane distance is `|⟨x, q⟩|`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distance;
mod error;
mod index;
mod linear_scan;
mod point_set;
mod query;
mod topk;

pub use error::{Error, Result};
pub use index::{BranchPreference, P2hIndex, SearchParams, SearchResult, SearchStats};
pub use linear_scan::LinearScan;
pub use point_set::PointSet;
pub use query::HyperplaneQuery;
pub use topk::{Neighbor, TopKCollector};

/// The floating point type used for data points and queries throughout the workspace.
///
/// The reference implementation of the paper uses single-precision floats; so do we.
pub type Scalar = f32;
