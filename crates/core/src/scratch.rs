//! Reusable per-query working memory for allocation-free search paths.

use crate::{Neighbor, Scalar, TopKCollector};

/// Number of rows a blocked leaf scan processes per strip. Chosen to keep the strip and
/// survivor buffers comfortably inside one cache line's worth of bookkeeping while still
/// amortizing query loads across many rows; leaves larger than this are simply scanned
/// in several strips.
pub const LEAF_STRIP: usize = 64;

/// Scratch space threaded through a search so the steady-state query path performs no
/// heap allocation.
///
/// A `QueryScratch` owns everything a tree search needs to allocate otherwise: the
/// [`TopKCollector`]'s heap storage, the explicit traversal stack that replaces
/// recursion, the distance strip the blocked kernels write into, and the survivor index
/// buffer the BC-Tree's point-level pruning uses. Create one per worker thread and pass
/// it to [`crate::P2hIndex::search_with_scratch`] for every query; the buffers are
/// reset (not freed) between queries, so after the first few queries warm the collector
/// heap and the stack, thousands of subsequent queries allocate nothing beyond the
/// k-element result vector that every [`crate::SearchResult`] hands to the caller.
#[derive(Debug, Clone)]
pub struct QueryScratch {
    /// Bounded top-k heap, reused across queries via [`TopKCollector::reset`].
    pub collector: TopKCollector,
    /// Explicit traversal stack of `(node_id, ⟨q, center⟩)` pairs, replacing recursion.
    pub stack: Vec<(u32, Scalar)>,
    /// Distances of the current strip of leaf rows, written by the blocked kernels.
    pub strip: [Scalar; LEAF_STRIP],
    /// Reordered positions within the current strip that survived point-level pruning.
    pub keep: [u32; LEAF_STRIP],
}

impl QueryScratch {
    /// Creates scratch sized for typical trees (stack capacity covers depth ~64 without
    /// regrowth; deeper trees grow it once and keep the larger buffer).
    pub fn new() -> Self {
        Self {
            collector: TopKCollector::new(1),
            stack: Vec::with_capacity(64),
            strip: [0.0; LEAF_STRIP],
            keep: [0; LEAF_STRIP],
        }
    }

    /// Prepares the scratch for a fresh query with the given `k`: clears the collector
    /// and the stack while keeping every allocation.
    pub fn reset(&mut self, k: usize) {
        self.collector.reset(k);
        self.stack.clear();
    }

    /// Convenience for assertions and examples: the current top-k as a sorted vector
    /// without consuming the scratch.
    pub fn current_topk(&self) -> Vec<Neighbor> {
        self.collector.to_sorted_vec()
    }
}

impl Default for QueryScratch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_preserves_capacity() {
        let mut scratch = QueryScratch::new();
        scratch.collector.reset(8);
        for i in 0..20 {
            scratch.collector.offer(i, i as Scalar);
        }
        scratch.stack.extend((0..100).map(|i| (i as u32, 0.5)));
        let stack_cap = scratch.stack.capacity();
        scratch.reset(8);
        assert!(scratch.stack.is_empty());
        assert_eq!(scratch.stack.capacity(), stack_cap);
        assert!(scratch.collector.is_empty());
        assert_eq!(scratch.collector.k(), 8);
        assert!(scratch.current_topk().is_empty());
    }

    #[test]
    fn default_matches_new() {
        let a = QueryScratch::default();
        assert_eq!(a.collector.k(), 1);
        assert_eq!(a.strip.len(), LEAF_STRIP);
        assert_eq!(a.keep.len(), LEAF_STRIP);
    }
}
