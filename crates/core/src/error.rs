//! Error type shared by the P2HNNS crates.

use std::fmt;

/// Convenience result alias for fallible operations in the P2HNNS crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors that can arise when constructing data sets, queries, or indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The data set is empty but the operation requires at least one point.
    EmptyDataSet,
    /// A point or query had a dimensionality different from the one expected.
    DimensionMismatch {
        /// The dimensionality required by the container or index.
        expected: usize,
        /// The dimensionality that was actually supplied.
        actual: usize,
    },
    /// The requested dimension is too small to be meaningful (must be at least 2
    /// after the append-one augmentation).
    InvalidDimension(usize),
    /// A query hyperplane had a (near-)zero normal vector and cannot be normalized.
    DegenerateQuery,
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// An I/O error occurred while reading or writing a data set.
    Io(String),
    /// A file's *content* is malformed — truncated payload, bad magic, inconsistent
    /// counts — as opposed to [`Error::Io`], which covers operating-system failures
    /// (missing file, permission denied). Loaders return this so callers can tell a
    /// corrupt artifact from an environment problem.
    Corrupt(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyDataSet => write!(f, "the data set is empty"),
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            Error::InvalidDimension(d) => {
                write!(f, "invalid dimension {d}: must be at least 2")
            }
            Error::DegenerateQuery => {
                write!(f, "degenerate hyperplane query: normal vector has zero norm")
            }
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            Error::Io(msg) => write!(f, "I/O error: {msg}"),
            Error::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(Error::EmptyDataSet.to_string().contains("empty"));
        assert!(Error::DimensionMismatch { expected: 4, actual: 7 }
            .to_string()
            .contains("expected 4"));
        assert!(Error::InvalidDimension(1).to_string().contains('1'));
        assert!(Error::DegenerateQuery.to_string().contains("zero norm"));
        let e = Error::InvalidParameter { name: "k", message: "must be positive".into() };
        assert!(e.to_string().contains('k'));
        assert!(e.to_string().contains("positive"));
    }

    #[test]
    fn corrupt_is_distinct_from_io() {
        let corrupt = Error::Corrupt("bad magic".into());
        assert!(corrupt.to_string().contains("corrupt"));
        assert!(corrupt.to_string().contains("bad magic"));
        assert_ne!(corrupt, Error::Io("bad magic".into()));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing file");
        let err: Error = io.into();
        assert!(matches!(err, Error::Io(_)));
        assert!(err.to_string().contains("missing file"));
    }
}
