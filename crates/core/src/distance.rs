//! Dense vector kernels: inner products, norms, and Euclidean distances.
//!
//! These are the innermost loops of every index in the workspace. Since the kernel
//! refactor they are thin wrappers over the runtime-dispatched implementations in
//! [`crate::kernels`] (AVX2+FMA on `x86_64`, NEON on `aarch64`, unrolled scalar
//! everywhere else), so every caller — trees, hashing schemes, and the linear-scan
//! oracle alike — shares one summation order per process. See the [`crate::kernels`]
//! module docs for the dispatch rules and the exact-match guarantees.

use crate::kernels;
use crate::Scalar;

/// Computes the inner product `⟨a, b⟩` of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[Scalar], b: &[Scalar]) -> Scalar {
    kernels::dot(a, b)
}

/// Computes the squared Euclidean norm `‖a‖²`.
#[inline]
pub fn norm_sq(a: &[Scalar]) -> Scalar {
    kernels::norm_sq(a)
}

/// Computes the Euclidean norm `‖a‖`.
#[inline]
pub fn norm(a: &[Scalar]) -> Scalar {
    norm_sq(a).sqrt()
}

/// Computes the squared Euclidean distance `‖a − b‖²`.
#[inline]
pub fn euclidean_sq(a: &[Scalar], b: &[Scalar]) -> Scalar {
    kernels::euclidean_sq(a, b)
}

/// Computes the Euclidean distance `‖a − b‖`.
#[inline]
pub fn euclidean(a: &[Scalar], b: &[Scalar]) -> Scalar {
    euclidean_sq(a, b).sqrt()
}

/// Computes the absolute inner product `|⟨a, b⟩|`, the P2H distance after the
/// normalization of Section II of the paper.
#[inline]
pub fn abs_dot(a: &[Scalar], b: &[Scalar]) -> Scalar {
    kernels::abs_dot(a, b)
}

/// Computes the cosine of the angle between `a` and `b`.
///
/// Returns 0 when either vector has zero norm (the angle is undefined; treating it as
/// orthogonal is the conservative choice for the bounds in this workspace).
#[inline]
pub fn cosine(a: &[Scalar], b: &[Scalar]) -> Scalar {
    let na = norm(a);
    let nb = norm(b);
    if na <= Scalar::EPSILON || nb <= Scalar::EPSILON {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Adds `src` into `dst` element-wise (`dst += src`).
#[inline]
pub fn add_assign(dst: &mut [Scalar], src: &[Scalar]) {
    debug_assert_eq!(dst.len(), src.len(), "add_assign: length mismatch");
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d += s;
    }
}

/// Scales every element of `v` by `factor`.
#[inline]
pub fn scale(v: &mut [Scalar], factor: Scalar) {
    for x in v.iter_mut() {
        *x *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_dot(a: &[Scalar], b: &[Scalar]) -> Scalar {
        a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn dot_small_vectors() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        // Length 5 exercises both the unrolled chunk and the tail.
        assert_eq!(dot(&[1.0; 5], &[2.0; 5]), 10.0);
    }

    #[test]
    fn norms_and_distances() {
        let a = [3.0, 4.0];
        assert_eq!(norm_sq(&a), 25.0);
        assert_eq!(norm(&a), 5.0);
        assert_eq!(euclidean_sq(&a, &[0.0, 0.0]), 25.0);
        assert_eq!(euclidean(&a, &[0.0, 0.0]), 5.0);
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    fn abs_dot_is_absolute() {
        assert_eq!(abs_dot(&[1.0, -2.0], &[3.0, 1.0]), 1.0);
        assert_eq!(abs_dot(&[-1.0, 0.0], &[5.0, 7.0]), 5.0);
    }

    #[test]
    fn cosine_basic_angles() {
        let x = [1.0, 0.0];
        let y = [0.0, 1.0];
        assert!((cosine(&x, &y)).abs() < 1e-6);
        assert!((cosine(&x, &x) - 1.0).abs() < 1e-6);
        assert!((cosine(&x, &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        // Degenerate: zero vector treated as orthogonal.
        assert_eq!(cosine(&x, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut v = vec![1.0, 2.0, 3.0];
        add_assign(&mut v, &[1.0, 1.0, 1.0]);
        assert_eq!(v, vec![2.0, 3.0, 4.0]);
        scale(&mut v, 0.5);
        assert_eq!(v, vec![1.0, 1.5, 2.0]);
    }

    proptest! {
        #[test]
        fn dot_matches_naive(v in proptest::collection::vec(-100.0f32..100.0, 0..64)) {
            let w: Vec<Scalar> = v.iter().map(|x| x * 0.5 + 1.0).collect();
            let fast = dot(&v, &w);
            let slow = naive_dot(&v, &w);
            prop_assert!((fast - slow).abs() <= 1e-2 * (1.0 + slow.abs()));
        }

        #[test]
        fn cauchy_schwarz(v in proptest::collection::vec(-10.0f32..10.0, 1..32),
                          w in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
            let n = v.len().min(w.len());
            let (v, w) = (&v[..n], &w[..n]);
            prop_assert!(dot(v, w).abs() <= norm(v) * norm(w) * (1.0 + 1e-4) + 1e-4);
        }

        #[test]
        fn triangle_inequality(a in proptest::collection::vec(-10.0f32..10.0, 4usize..4+1),
                               b in proptest::collection::vec(-10.0f32..10.0, 4usize..4+1),
                               c in proptest::collection::vec(-10.0f32..10.0, 4usize..4+1)) {
            let ab = euclidean(&a, &b);
            let bc = euclidean(&b, &c);
            let ac = euclidean(&a, &c);
            prop_assert!(ac <= ab + bc + 1e-3);
        }

        #[test]
        fn cosine_in_range(v in proptest::collection::vec(-10.0f32..10.0, 1..32),
                           w in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
            let n = v.len().min(w.len());
            let c = cosine(&v[..n], &w[..n]);
            prop_assert!((-1.0..=1.0).contains(&c));
        }
    }
}
