//! Owned-or-mapped storage for the large read-only arrays of an index.
//!
//! Every index in this workspace is, at heart, a bundle of immutable dense arrays:
//! the row-major point payload, tree centers, id permutations, projection tables. A
//! [`VecBuf<T>`] holds such an array either as an ordinary heap `Vec<T>` (the build
//! path and the copying snapshot loader) or as a typed window into a shared
//! memory-mapped region (the zero-copy snapshot loader of `p2h-store`). Either way it
//! dereferences to `&[T]`, so search code is oblivious to the backing.
//!
//! The mapped arm is *safe by construction* in this crate: a backing region implements
//! [`BufBacking`], whose methods return already-typed slices. The only implementor
//! that performs the `[u8] → [T]` reinterpretation lives in `p2h-store`'s `MmapRegion`
//! module, which is where all `unsafe` for the zero-copy path is confined. This crate
//! merely validates the window (element alignment, checked byte arithmetic, region
//! bounds) before accepting it.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use crate::{Error, Result, Scalar};

/// A read-only byte region that can serve typed slices — the contract between
/// [`VecBuf`] and a memory-mapped (or otherwise shared) snapshot file.
///
/// Implementations must guarantee that, for the lifetime of the region, the bytes are
/// immutable and that `f32s`/`u32s` return exactly `len` elements starting `offset`
/// bytes into the region. `offset` is always a multiple of the element alignment and
/// `offset + len * 4 <= len_bytes()` by the time [`VecBuf::mapped`] hands it down; an
/// implementation may panic on arguments violating that contract (they indicate a bug,
/// not hostile input — hostile input is rejected with typed errors before this point).
pub trait BufBacking: Send + Sync + fmt::Debug {
    /// Total region size in bytes.
    fn len_bytes(&self) -> usize;
    /// A typed `f32` view of `len` scalars at byte `offset`.
    fn f32s(&self, offset: usize, len: usize) -> &[Scalar];
    /// A typed `u32` view of `len` integers at byte `offset`.
    fn u32s(&self, offset: usize, len: usize) -> &[u32];
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for u32 {}
}

/// Element types a [`VecBuf`] can hold. Sealed: the set is fixed by what
/// [`BufBacking`] can serve (4-byte little-endian scalars and integers).
pub trait BufElem: Copy + PartialEq + fmt::Debug + Send + Sync + sealed::Sealed + 'static {
    /// Fetches the typed slice from a backing region. Internal dispatch for
    /// [`VecBuf`]'s `Deref`.
    #[doc(hidden)]
    fn backing_slice(backing: &dyn BufBacking, offset: usize, len: usize) -> &[Self];
}

impl BufElem for f32 {
    fn backing_slice(backing: &dyn BufBacking, offset: usize, len: usize) -> &[Self] {
        backing.f32s(offset, len)
    }
}

impl BufElem for u32 {
    fn backing_slice(backing: &dyn BufBacking, offset: usize, len: usize) -> &[Self] {
        backing.u32s(offset, len)
    }
}

/// An immutable array that is either heap-owned or a window into a shared mapped
/// region. Dereferences to `&[T]`.
///
/// Cloning an owned buffer clones the `Vec`; cloning a mapped buffer clones the `Arc`
/// (cheap, shares the region). Equality compares element slices regardless of backing,
/// so an owned buffer and a mapped buffer over the same values compare equal.
pub struct VecBuf<T: BufElem> {
    inner: Inner<T>,
}

enum Inner<T: BufElem> {
    Owned(Vec<T>),
    Mapped { backing: Arc<dyn BufBacking>, offset: usize, len: usize },
}

impl<T: BufElem> VecBuf<T> {
    /// Wraps a heap vector.
    pub fn owned(values: Vec<T>) -> Self {
        Self { inner: Inner::Owned(values) }
    }

    /// Creates a buffer viewing `len` elements starting `offset` bytes into a shared
    /// backing region.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] (never panics) if `offset` is not aligned for `T`,
    /// if `len × size_of::<T>()` overflows, or if the window extends past the end of
    /// the region — the checks that make the typed reinterpretation performed by the
    /// backing sound.
    pub fn mapped(backing: Arc<dyn BufBacking>, offset: usize, len: usize) -> Result<Self> {
        let elem = std::mem::size_of::<T>();
        if !offset.is_multiple_of(std::mem::align_of::<T>()) {
            return Err(Error::Corrupt(format!(
                "mapped buffer offset {offset} is not aligned to {} bytes",
                std::mem::align_of::<T>()
            )));
        }
        let bytes = len
            .checked_mul(elem)
            .ok_or_else(|| Error::Corrupt(format!("mapped buffer length {len} overflows")))?;
        let end = offset
            .checked_add(bytes)
            .ok_or_else(|| Error::Corrupt(format!("mapped buffer offset {offset} overflows")))?;
        if end > backing.len_bytes() {
            return Err(Error::Corrupt(format!(
                "mapped buffer {offset}..{end} exceeds the {}-byte region",
                backing.len_bytes()
            )));
        }
        Ok(Self { inner: Inner::Mapped { backing, offset, len } })
    }

    /// Whether this buffer views a shared mapped region (as opposed to owning a heap
    /// allocation).
    pub fn is_mapped(&self) -> bool {
        matches!(self.inner, Inner::Mapped { .. })
    }

    /// Heap bytes owned by this buffer: `len × size_of::<T>()` when owned, 0 when
    /// mapped (mapped bytes belong to the shared region — potentially shared between
    /// many indexes and even processes — and must not be double-counted as footprint).
    pub fn heap_bytes(&self) -> usize {
        match &self.inner {
            Inner::Owned(values) => values.len() * std::mem::size_of::<T>(),
            Inner::Mapped { .. } => 0,
        }
    }

    /// Copies the elements into a fresh heap vector.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }

    /// The elements as a slice (same as `Deref`).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match &self.inner {
            Inner::Owned(values) => values,
            Inner::Mapped { backing, offset, len } => T::backing_slice(&**backing, *offset, *len),
        }
    }
}

impl<T: BufElem> Deref for VecBuf<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: BufElem> From<Vec<T>> for VecBuf<T> {
    fn from(values: Vec<T>) -> Self {
        Self::owned(values)
    }
}

impl<T: BufElem> Clone for VecBuf<T> {
    fn clone(&self) -> Self {
        match &self.inner {
            Inner::Owned(values) => Self::owned(values.clone()),
            Inner::Mapped { backing, offset, len } => Self {
                inner: Inner::Mapped { backing: Arc::clone(backing), offset: *offset, len: *len },
            },
        }
    }
}

impl<T: BufElem> PartialEq for VecBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: BufElem> fmt::Debug for VecBuf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.is_mapped() { "mapped" } else { "owned" };
        write!(f, "VecBuf<{kind}>(len = {})", self.len())
    }
}

impl<T: BufElem> Default for VecBuf<T> {
    fn default() -> Self {
        Self::owned(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A heap-backed test region: stores little-endian bytes, serves typed slices by
    /// decoding into leaked storage is unnecessary — it keeps parallel typed copies.
    #[derive(Debug)]
    struct TestBacking {
        bytes: usize,
        f32s: Vec<Scalar>,
        u32s: Vec<u32>,
    }

    impl TestBacking {
        fn of_f32s(values: Vec<Scalar>) -> Self {
            Self { bytes: values.len() * 4, f32s: values, u32s: Vec::new() }
        }
    }

    impl BufBacking for TestBacking {
        fn len_bytes(&self) -> usize {
            self.bytes
        }
        fn f32s(&self, offset: usize, len: usize) -> &[Scalar] {
            &self.f32s[offset / 4..offset / 4 + len]
        }
        fn u32s(&self, offset: usize, len: usize) -> &[u32] {
            &self.u32s[offset / 4..offset / 4 + len]
        }
    }

    #[test]
    fn owned_buffer_derefs_and_reports_heap() {
        let buf: VecBuf<f32> = vec![1.0, 2.0, 3.0].into();
        assert_eq!(&*buf, &[1.0, 2.0, 3.0]);
        assert!(!buf.is_mapped());
        assert_eq!(buf.heap_bytes(), 12);
        assert_eq!(buf.to_vec(), vec![1.0, 2.0, 3.0]);
        assert_eq!(buf.clone(), buf);
        assert!(format!("{buf:?}").contains("owned"));
    }

    #[test]
    fn mapped_buffer_views_the_region_without_owning() {
        let backing = Arc::new(TestBacking::of_f32s(vec![0.5, 1.5, 2.5, 3.5]));
        let buf = VecBuf::<f32>::mapped(backing, 4, 2).unwrap();
        assert_eq!(&*buf, &[1.5, 2.5]);
        assert!(buf.is_mapped());
        assert_eq!(buf.heap_bytes(), 0);
        assert!(format!("{buf:?}").contains("mapped"));
        // Equality is by contents, not backing.
        let owned: VecBuf<f32> = vec![1.5, 2.5].into();
        assert_eq!(buf, owned);
        // Clones share the region.
        assert_eq!(buf.clone(), owned);
    }

    #[test]
    fn mapped_rejects_misalignment_and_out_of_bounds() {
        let backing: Arc<dyn BufBacking> = Arc::new(TestBacking::of_f32s(vec![0.0; 4]));
        assert!(matches!(
            VecBuf::<f32>::mapped(Arc::clone(&backing), 2, 1),
            Err(Error::Corrupt(_))
        ));
        assert!(matches!(
            VecBuf::<f32>::mapped(Arc::clone(&backing), 8, 3),
            Err(Error::Corrupt(_))
        ));
        assert!(matches!(
            VecBuf::<f32>::mapped(Arc::clone(&backing), 0, usize::MAX / 2),
            Err(Error::Corrupt(_))
        ));
        assert!(VecBuf::<f32>::mapped(backing, 8, 2).is_ok());
    }
}
