//! Dense, row-major storage for the data points of a P2HNNS instance.

use crate::distance;
use crate::{Error, Result, Scalar};

/// A dense collection of `n` points in `R^dim`, stored row-major in a single allocation.
///
/// Following Section II of the paper, indexes operate on *augmented* points
/// `x = (p; 1) ∈ R^d` obtained from raw data points `p ∈ R^{d-1}` by appending a
/// constant 1. [`PointSet::augment`] performs that augmentation;
/// [`PointSet::from_rows`] accepts points that are already in the index dimension
/// (useful for tests and synthetic data).
///
/// Points are immutable once the set is created: every index in this workspace stores
/// either a reference to the [`PointSet`] or a reordered copy of its rows.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSet {
    /// Row-major data: `data[i * dim .. (i + 1) * dim]` is point `i`.
    data: Vec<Scalar>,
    /// Number of points.
    len: usize,
    /// Dimensionality of each point (after augmentation, if any).
    dim: usize,
}

impl PointSet {
    /// Creates a point set from a flat row-major buffer of points already in `R^dim`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDimension`] if `dim < 2`, [`Error::EmptyDataSet`] if the
    /// buffer is empty, and [`Error::DimensionMismatch`] if the buffer length is not a
    /// multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<Scalar>) -> Result<Self> {
        if dim < 2 {
            return Err(Error::InvalidDimension(dim));
        }
        if data.is_empty() {
            return Err(Error::EmptyDataSet);
        }
        if !data.len().is_multiple_of(dim) {
            return Err(Error::DimensionMismatch { expected: dim, actual: data.len() % dim });
        }
        let len = data.len() / dim;
        Ok(Self { data, len, dim })
    }

    /// Creates a point set from per-point rows already in `R^dim`.
    ///
    /// # Errors
    ///
    /// Returns an error if the rows are empty, have inconsistent lengths, or `dim < 2`.
    pub fn from_rows(rows: &[Vec<Scalar>]) -> Result<Self> {
        let first = rows.first().ok_or(Error::EmptyDataSet)?;
        let dim = first.len();
        if dim < 2 {
            return Err(Error::InvalidDimension(dim));
        }
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in rows {
            if row.len() != dim {
                return Err(Error::DimensionMismatch { expected: dim, actual: row.len() });
            }
            data.extend_from_slice(row);
        }
        Ok(Self { data, len: rows.len(), dim })
    }

    /// Creates a point set by appending the constant 1 to every raw data point
    /// (`x = (p; 1)`, Section II of the paper).
    ///
    /// The resulting dimensionality is `raw_dim + 1`.
    ///
    /// # Errors
    ///
    /// Returns an error if the rows are empty or have inconsistent lengths.
    pub fn augment(raw_rows: &[Vec<Scalar>]) -> Result<Self> {
        let first = raw_rows.first().ok_or(Error::EmptyDataSet)?;
        let raw_dim = first.len();
        if raw_dim < 1 {
            return Err(Error::InvalidDimension(raw_dim + 1));
        }
        let dim = raw_dim + 1;
        let mut data = Vec::with_capacity(raw_rows.len() * dim);
        for row in raw_rows {
            if row.len() != raw_dim {
                return Err(Error::DimensionMismatch { expected: raw_dim, actual: row.len() });
            }
            data.extend_from_slice(row);
            data.push(1.0);
        }
        Ok(Self { data, len: raw_rows.len(), dim })
    }

    /// Creates a point set by appending the constant 1 to every row of a flat buffer of
    /// raw points in `R^{raw_dim}`.
    ///
    /// # Errors
    ///
    /// Returns an error if the buffer is empty or its length is not a multiple of
    /// `raw_dim`.
    pub fn augment_flat(raw_dim: usize, raw: &[Scalar]) -> Result<Self> {
        if raw_dim < 1 {
            return Err(Error::InvalidDimension(raw_dim + 1));
        }
        if raw.is_empty() {
            return Err(Error::EmptyDataSet);
        }
        if !raw.len().is_multiple_of(raw_dim) {
            return Err(Error::DimensionMismatch {
                expected: raw_dim,
                actual: raw.len() % raw_dim,
            });
        }
        let n = raw.len() / raw_dim;
        let dim = raw_dim + 1;
        let mut data = Vec::with_capacity(n * dim);
        for i in 0..n {
            data.extend_from_slice(&raw[i * raw_dim..(i + 1) * raw_dim]);
            data.push(1.0);
        }
        Ok(Self { data, len: n, dim })
    }

    /// Number of points in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set contains no points. Always `false` for successfully constructed
    /// sets, but provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of each point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns point `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[Scalar] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Returns the underlying row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[Scalar] {
        &self.data
    }

    /// Returns the contiguous row-major slice covering points `start..end`, i.e.
    /// `end - start` rows of `dim` scalars each. This is the input shape of the blocked
    /// kernels ([`crate::kernels::dot_block`]): a leaf's points, verified as one strip.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    #[inline]
    pub fn flat_range(&self, start: usize, end: usize) -> &[Scalar] {
        &self.data[start * self.dim..end * self.dim]
    }

    /// Iterates over all points in index order.
    pub fn iter(&self) -> impl Iterator<Item = &[Scalar]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// Computes the centroid (arithmetic mean) of a subset of points given by `indices`.
    ///
    /// Returns the centroid of the whole set when `indices` is empty.
    pub fn centroid_of(&self, indices: &[usize]) -> Vec<Scalar> {
        let mut center = vec![0.0; self.dim];
        if indices.is_empty() {
            for p in self.iter() {
                distance::add_assign(&mut center, p);
            }
            distance::scale(&mut center, 1.0 / self.len as Scalar);
        } else {
            for &i in indices {
                distance::add_assign(&mut center, self.point(i));
            }
            distance::scale(&mut center, 1.0 / indices.len() as Scalar);
        }
        center
    }

    /// Computes the centroid of the whole point set.
    pub fn centroid(&self) -> Vec<Scalar> {
        self.centroid_of(&[])
    }

    /// Approximate memory footprint of the stored points in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<Scalar>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let ps = PointSet::from_rows(&rows).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.dim(), 3);
        assert!(!ps.is_empty());
        assert_eq!(ps.point(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ps.point(1), &[4.0, 5.0, 6.0]);
        let collected: Vec<&[Scalar]> = ps.iter().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    fn from_flat_checks_shape() {
        assert!(matches!(
            PointSet::from_flat(3, vec![1.0, 2.0]),
            Err(Error::DimensionMismatch { .. })
        ));
        assert!(matches!(PointSet::from_flat(1, vec![1.0]), Err(Error::InvalidDimension(1))));
        assert!(matches!(PointSet::from_flat(2, vec![]), Err(Error::EmptyDataSet)));
        let ps = PointSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn augmentation_appends_one() {
        let raw = vec![vec![0.5, -0.5], vec![2.0, 3.0]];
        let ps = PointSet::augment(&raw).unwrap();
        assert_eq!(ps.dim(), 3);
        assert_eq!(ps.point(0), &[0.5, -0.5, 1.0]);
        assert_eq!(ps.point(1), &[2.0, 3.0, 1.0]);
    }

    #[test]
    fn augment_flat_matches_augment() {
        let raw_rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let flat: Vec<Scalar> = raw_rows.iter().flatten().copied().collect();
        let a = PointSet::augment(&raw_rows).unwrap();
        let b = PointSet::augment_flat(2, &flat).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ragged_rows_rejected() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(PointSet::from_rows(&rows), Err(Error::DimensionMismatch { .. })));
        assert!(matches!(PointSet::augment(&rows), Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn empty_rejected() {
        let rows: Vec<Vec<Scalar>> = vec![];
        assert!(matches!(PointSet::from_rows(&rows), Err(Error::EmptyDataSet)));
        assert!(matches!(PointSet::augment(&rows), Err(Error::EmptyDataSet)));
        assert!(matches!(PointSet::augment_flat(2, &[]), Err(Error::EmptyDataSet)));
    }

    #[test]
    fn centroid_is_mean() {
        let rows = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let ps = PointSet::from_rows(&rows).unwrap();
        assert_eq!(ps.centroid(), vec![1.0, 2.0]);
        assert_eq!(ps.centroid_of(&[1]), vec![2.0, 4.0]);
    }

    #[test]
    fn size_bytes_counts_data() {
        let ps = PointSet::from_flat(2, vec![0.0; 64]).unwrap();
        assert!(ps.size_bytes() >= 64 * std::mem::size_of::<Scalar>());
    }
}
