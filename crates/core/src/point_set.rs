//! Dense, row-major storage for the data points of a P2HNNS instance.

use crate::buf::VecBuf;
use crate::distance;
use crate::{Error, Result, Scalar};

/// A dense collection of `n` points in `R^dim`, stored row-major in a single buffer.
///
/// Following Section II of the paper, indexes operate on *augmented* points
/// `x = (p; 1) ∈ R^d` obtained from raw data points `p ∈ R^{d-1}` by appending a
/// constant 1. [`PointSet::augment`] performs that augmentation;
/// [`PointSet::from_rows`] accepts points that are already in the index dimension
/// (useful for tests and synthetic data).
///
/// Points are immutable once the set is created: every index in this workspace stores
/// either a reference to the [`PointSet`] or a reordered copy of its rows. The buffer
/// is a [`VecBuf`], so a point set restored from a memory-mapped snapshot
/// (`p2h-store`, `LoadMode::Mmap`) views the file directly instead of owning a heap
/// copy — [`PointSet::from_buf`] is that zero-copy construction path.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSet {
    /// Row-major data: `data[i * dim .. (i + 1) * dim]` is point `i`.
    data: VecBuf<Scalar>,
    /// Number of points.
    len: usize,
    /// Dimensionality of each point (after augmentation, if any).
    dim: usize,
}

impl PointSet {
    /// Creates a point set from a flat row-major buffer of points already in `R^dim`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDimension`] if `dim < 2`, [`Error::EmptyDataSet`] if the
    /// buffer is empty, and [`Error::DimensionMismatch`] if the buffer length is not a
    /// multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<Scalar>) -> Result<Self> {
        Self::from_buf(dim, data.into())
    }

    /// Creates a point set from an owned-or-mapped row-major buffer — the zero-copy
    /// construction path used when restoring a memory-mapped snapshot.
    ///
    /// # Errors
    ///
    /// Same shape checks as [`PointSet::from_flat`].
    pub fn from_buf(dim: usize, data: VecBuf<Scalar>) -> Result<Self> {
        if dim < 2 {
            return Err(Error::InvalidDimension(dim));
        }
        if data.is_empty() {
            return Err(Error::EmptyDataSet);
        }
        if !data.len().is_multiple_of(dim) {
            return Err(Error::DimensionMismatch { expected: dim, actual: data.len() % dim });
        }
        let len = data.len() / dim;
        Ok(Self { data, len, dim })
    }

    /// Creates a point set from per-point rows already in `R^dim`.
    ///
    /// # Errors
    ///
    /// Returns an error if the rows are empty, have inconsistent lengths, or `dim < 2`.
    pub fn from_rows(rows: &[Vec<Scalar>]) -> Result<Self> {
        let first = rows.first().ok_or(Error::EmptyDataSet)?;
        let dim = first.len();
        if dim < 2 {
            return Err(Error::InvalidDimension(dim));
        }
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in rows {
            if row.len() != dim {
                return Err(Error::DimensionMismatch { expected: dim, actual: row.len() });
            }
            data.extend_from_slice(row);
        }
        Ok(Self { data: data.into(), len: rows.len(), dim })
    }

    /// Creates a point set by appending the constant 1 to every raw data point
    /// (`x = (p; 1)`, Section II of the paper).
    ///
    /// The resulting dimensionality is `raw_dim + 1`.
    ///
    /// # Errors
    ///
    /// Returns an error if the rows are empty or have inconsistent lengths.
    pub fn augment(raw_rows: &[Vec<Scalar>]) -> Result<Self> {
        let first = raw_rows.first().ok_or(Error::EmptyDataSet)?;
        let raw_dim = first.len();
        if raw_dim < 1 {
            return Err(Error::InvalidDimension(raw_dim + 1));
        }
        let dim = raw_dim + 1;
        let mut data = Vec::with_capacity(raw_rows.len() * dim);
        for row in raw_rows {
            if row.len() != raw_dim {
                return Err(Error::DimensionMismatch { expected: raw_dim, actual: row.len() });
            }
            data.extend_from_slice(row);
            data.push(1.0);
        }
        Ok(Self { data: data.into(), len: raw_rows.len(), dim })
    }

    /// Creates a point set by appending the constant 1 to every row of a flat buffer of
    /// raw points in `R^{raw_dim}`.
    ///
    /// # Errors
    ///
    /// Returns an error if the buffer is empty or its length is not a multiple of
    /// `raw_dim`.
    pub fn augment_flat(raw_dim: usize, raw: &[Scalar]) -> Result<Self> {
        if raw_dim < 1 {
            return Err(Error::InvalidDimension(raw_dim + 1));
        }
        if raw.is_empty() {
            return Err(Error::EmptyDataSet);
        }
        if !raw.len().is_multiple_of(raw_dim) {
            return Err(Error::DimensionMismatch {
                expected: raw_dim,
                actual: raw.len() % raw_dim,
            });
        }
        let n = raw.len() / raw_dim;
        let dim = raw_dim + 1;
        let mut data = Vec::with_capacity(n * dim);
        for i in 0..n {
            data.extend_from_slice(&raw[i * raw_dim..(i + 1) * raw_dim]);
            data.push(1.0);
        }
        Ok(Self { data: data.into(), len: n, dim })
    }

    /// Number of points in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set contains no points. Always `false` for successfully constructed
    /// sets, but provided for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of each point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns point `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[Scalar] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Returns the underlying row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[Scalar] {
        &self.data
    }

    /// Returns the contiguous row-major slice covering points `start..end`, i.e.
    /// `end - start` rows of `dim` scalars each. This is the input shape of the blocked
    /// kernels ([`crate::kernels::dot_block`]): a leaf's points, verified as one strip.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    #[inline]
    pub fn flat_range(&self, start: usize, end: usize) -> &[Scalar] {
        &self.data[start * self.dim..end * self.dim]
    }

    /// Iterates over all points in index order.
    pub fn iter(&self) -> impl Iterator<Item = &[Scalar]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// Computes the centroid (arithmetic mean) of a subset of points given by `indices`.
    ///
    /// Returns the centroid of the whole set when `indices` is empty. When the indices
    /// form a contiguous ascending run `start..end` (always the case for the whole set
    /// and for tree-ordered leaf ranges), the accumulation runs over the contiguous
    /// row-major slice with the blocked scheme of [`PointSet::centroid_of_range`]
    /// instead of one bounds-checked row lookup per point.
    pub fn centroid_of(&self, indices: &[usize]) -> Vec<Scalar> {
        if indices.is_empty() {
            return self.centroid_of_range(0, self.len);
        }
        let contiguous = indices.windows(2).all(|w| w[1] == w[0] + 1);
        if contiguous {
            return self.centroid_of_range(indices[0], indices[0] + indices.len());
        }
        let mut center = vec![0.0; self.dim];
        for &i in indices {
            distance::add_assign(&mut center, self.point(i));
        }
        distance::scale(&mut center, 1.0 / indices.len() as Scalar);
        center
    }

    /// Computes the centroid of the contiguous point range `start..end` with a blocked
    /// accumulation: four rows are combined per accumulator update, so `center` is
    /// loaded and stored once per block instead of once per row and the inner loop
    /// streams one contiguous slice. The per-coordinate sum associates as
    /// `c + (((r0 + r1) + r2) + r3)` per block (rows in index order) — deterministic
    /// for a given range, identical across thread counts and load modes.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` or `end > self.len()`.
    pub fn centroid_of_range(&self, start: usize, end: usize) -> Vec<Scalar> {
        assert!(start < end && end <= self.len, "invalid centroid range {start}..{end}");
        let dim = self.dim;
        let mut center = vec![0.0; dim];
        let rows = self.flat_range(start, end);
        let mut blocks = rows.chunks_exact(4 * dim);
        for block in &mut blocks {
            for j in 0..dim {
                center[j] +=
                    ((block[j] + block[dim + j]) + block[2 * dim + j]) + block[3 * dim + j];
            }
        }
        for row in blocks.remainder().chunks_exact(dim) {
            distance::add_assign(&mut center, row);
        }
        distance::scale(&mut center, 1.0 / (end - start) as Scalar);
        center
    }

    /// Computes the centroid of the whole point set.
    pub fn centroid(&self) -> Vec<Scalar> {
        self.centroid_of(&[])
    }

    /// Memory footprint this point set *owns*, in bytes.
    ///
    /// For a heap-backed set this counts the point payload plus the struct; for a
    /// mapped set (restored zero-copy from a snapshot) the payload bytes belong to the
    /// shared region — shared between every index viewing the file and, via the page
    /// cache, between processes — so they are not counted here.
    pub fn size_bytes(&self) -> usize {
        self.data.heap_bytes() + std::mem::size_of::<Self>()
    }

    /// Whether the point payload views a shared mapped region instead of owning heap.
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let ps = PointSet::from_rows(&rows).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.dim(), 3);
        assert!(!ps.is_empty());
        assert_eq!(ps.point(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ps.point(1), &[4.0, 5.0, 6.0]);
        let collected: Vec<&[Scalar]> = ps.iter().collect();
        assert_eq!(collected.len(), 2);
    }

    #[test]
    fn from_flat_checks_shape() {
        assert!(matches!(
            PointSet::from_flat(3, vec![1.0, 2.0]),
            Err(Error::DimensionMismatch { .. })
        ));
        assert!(matches!(PointSet::from_flat(1, vec![1.0]), Err(Error::InvalidDimension(1))));
        assert!(matches!(PointSet::from_flat(2, vec![]), Err(Error::EmptyDataSet)));
        let ps = PointSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn augmentation_appends_one() {
        let raw = vec![vec![0.5, -0.5], vec![2.0, 3.0]];
        let ps = PointSet::augment(&raw).unwrap();
        assert_eq!(ps.dim(), 3);
        assert_eq!(ps.point(0), &[0.5, -0.5, 1.0]);
        assert_eq!(ps.point(1), &[2.0, 3.0, 1.0]);
    }

    #[test]
    fn augment_flat_matches_augment() {
        let raw_rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let flat: Vec<Scalar> = raw_rows.iter().flatten().copied().collect();
        let a = PointSet::augment(&raw_rows).unwrap();
        let b = PointSet::augment_flat(2, &flat).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ragged_rows_rejected() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(matches!(PointSet::from_rows(&rows), Err(Error::DimensionMismatch { .. })));
        assert!(matches!(PointSet::augment(&rows), Err(Error::DimensionMismatch { .. })));
    }

    #[test]
    fn empty_rejected() {
        let rows: Vec<Vec<Scalar>> = vec![];
        assert!(matches!(PointSet::from_rows(&rows), Err(Error::EmptyDataSet)));
        assert!(matches!(PointSet::augment(&rows), Err(Error::EmptyDataSet)));
        assert!(matches!(PointSet::augment_flat(2, &[]), Err(Error::EmptyDataSet)));
    }

    #[test]
    fn centroid_is_mean() {
        let rows = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let ps = PointSet::from_rows(&rows).unwrap();
        assert_eq!(ps.centroid(), vec![1.0, 2.0]);
        assert_eq!(ps.centroid_of(&[1]), vec![2.0, 4.0]);
    }

    #[test]
    fn size_bytes_counts_data() {
        let ps = PointSet::from_flat(2, vec![0.0; 64]).unwrap();
        assert!(ps.size_bytes() >= 64 * std::mem::size_of::<Scalar>());
        assert!(!ps.is_mapped());
    }

    #[test]
    fn contiguous_centroid_matches_range_path() {
        let rows: Vec<Vec<Scalar>> =
            (0..11).map(|i| vec![i as Scalar, (i * i) as Scalar * 0.25]).collect();
        let ps = PointSet::from_rows(&rows).unwrap();
        // A contiguous index list takes the blocked range path — bitwise the same.
        let indices: Vec<usize> = (2..9).collect();
        assert_eq!(ps.centroid_of(&indices), ps.centroid_of_range(2, 9));
        assert_eq!(ps.centroid(), ps.centroid_of_range(0, 11));
        // The blocked sum is the exact mean within f32 tolerance of the naive loop.
        let mut naive = vec![0.0 as Scalar; 2];
        for &i in &indices {
            distance::add_assign(&mut naive, ps.point(i));
        }
        distance::scale(&mut naive, 1.0 / indices.len() as Scalar);
        for (a, b) in ps.centroid_of(&indices).iter().zip(&naive) {
            assert!((a - b).abs() <= 1e-4 * (1.0 + b.abs()), "{a} vs {b}");
        }
        // Scattered indices still take the per-point path.
        assert_eq!(ps.centroid_of(&[3]), ps.point(3).to_vec());
        let scattered = ps.centroid_of(&[0, 4, 10]);
        assert_eq!(scattered.len(), 2);
    }

    #[test]
    fn from_buf_is_from_flat_on_owned_buffers() {
        let a = PointSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = PointSet::from_buf(2, vec![1.0, 2.0, 3.0, 4.0].into()).unwrap();
        assert_eq!(a, b);
    }
}
