//! Exhaustive-scan baseline and ground-truth oracle.

use std::time::Instant;

use crate::scratch::LEAF_STRIP;
use crate::{
    kernels, HyperplaneQuery, P2hIndex, PointSet, QueryScratch, SearchParams, SearchResult,
    SearchStats,
};

/// The trivial P2HNNS method: verify every data point.
///
/// Linear scan is the correctness oracle for every other index in the workspace (it is
/// what "recall" is measured against) and the baseline the paper calls "computationally
/// prohibitive" for large data sets.
#[derive(Debug, Clone)]
pub struct LinearScan {
    points: PointSet,
}

impl LinearScan {
    /// Wraps a point set for exhaustive scanning. No preprocessing is performed.
    pub fn new(points: PointSet) -> Self {
        Self { points }
    }

    /// Returns a reference to the underlying point set.
    pub fn points(&self) -> &PointSet {
        &self.points
    }
}

impl P2hIndex for LinearScan {
    fn name(&self) -> &'static str {
        "Linear-Scan"
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn dim(&self) -> usize {
        self.points.dim()
    }

    fn index_size_bytes(&self) -> usize {
        // Linear scan has no index structure beyond the raw points.
        std::mem::size_of::<Self>()
    }

    fn search(&self, query: &HyperplaneQuery, params: &SearchParams) -> SearchResult {
        self.search_with_scratch(query, params, &mut QueryScratch::new())
    }

    fn search_with_scratch(
        &self,
        query: &HyperplaneQuery,
        params: &SearchParams,
        scratch: &mut QueryScratch,
    ) -> SearchResult {
        assert_eq!(
            query.dim(),
            self.points.dim(),
            "query dimension must match the augmented data dimension"
        );
        let start = Instant::now();
        scratch.reset(params.k);
        let QueryScratch { collector, strip, .. } = scratch;
        let dim = self.points.dim();
        let q = query.coeffs();
        let limit = params.candidate_limit.unwrap_or(usize::MAX).min(self.points.len());

        // Verify in contiguous strips: one blocked matvec per LEAF_STRIP rows instead of
        // one inner-product call per point (same distances bit-for-bit; see kernels).
        let verify_start = Instant::now();
        let mut pos = 0usize;
        while pos < limit {
            let block = (limit - pos).min(LEAF_STRIP);
            kernels::abs_dot_block(
                q,
                self.points.flat_range(pos, pos + block),
                dim,
                &mut strip[..block],
            );
            for (i, &dist) in strip[..block].iter().enumerate() {
                collector.offer(pos + i, dist);
            }
            pos += block;
        }
        let verify_ns = verify_start.elapsed().as_nanos() as u64;

        let stats = SearchStats {
            inner_products: pos as u64,
            candidates_verified: pos as u64,
            time_verify_ns: verify_ns,
            time_total_ns: start.elapsed().as_nanos() as u64,
            ..Default::default()
        };
        SearchResult { neighbors: collector.take_sorted(), stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scalar;

    fn grid_points() -> PointSet {
        // Raw points on a 1-D grid: 0, 1, 2, ..., 9 embedded in R^2 (second coord 0).
        let rows: Vec<Vec<Scalar>> = (0..10).map(|i| vec![i as Scalar, 0.0]).collect();
        PointSet::augment(&rows).unwrap()
    }

    #[test]
    fn finds_point_on_hyperplane() {
        let ps = grid_points();
        let scan = LinearScan::new(ps);
        // Hyperplane x = 4.5: nearest raw points are 4 and 5 at distance 0.5.
        let q = HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0], -4.5).unwrap();
        let result = scan.search_exact(&q, 2);
        let mut idx = result.indices();
        idx.sort_unstable();
        assert_eq!(idx, vec![4, 5]);
        for d in result.distances() {
            assert!((d - 0.5).abs() < 1e-6);
        }
        assert_eq!(result.stats.candidates_verified, 10);
    }

    #[test]
    fn respects_candidate_limit() {
        let ps = grid_points();
        let scan = LinearScan::new(ps);
        let q = HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0], -9.0).unwrap();
        let result = scan.search(&q, &SearchParams::approximate(1, 3));
        // Only the first three points are examined, so the best found is index 2.
        assert_eq!(result.stats.candidates_verified, 3);
        assert_eq!(result.indices(), vec![2]);
    }

    #[test]
    fn returns_sorted_distances() {
        let ps = grid_points();
        let scan = LinearScan::new(ps);
        let q = HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0], -3.0).unwrap();
        let result = scan.search_exact(&q, 5);
        let d = result.distances();
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(result.neighbors.len(), 5);
    }

    #[test]
    fn trait_metadata() {
        let ps = grid_points();
        let scan = LinearScan::new(ps);
        assert_eq!(scan.name(), "Linear-Scan");
        assert_eq!(scan.len(), 10);
        assert_eq!(scan.dim(), 3);
        assert!(!scan.is_empty());
        assert!(scan.index_size_bytes() < 1024);
        assert_eq!(scan.points().len(), 10);
    }

    #[test]
    fn scratch_reuse_matches_fresh_search() {
        let ps = grid_points();
        let scan = LinearScan::new(ps);
        let mut scratch = QueryScratch::new();
        for bias in [-1.0, -4.5, -8.0] {
            let q = HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0], bias).unwrap();
            let fresh = scan.search_exact(&q, 3);
            let reused = scan.search_with_scratch(&q, &SearchParams::exact(3), &mut scratch);
            assert_eq!(fresh.neighbors, reused.neighbors);
        }
    }

    #[test]
    #[should_panic(expected = "query dimension")]
    fn mismatched_query_dimension_panics() {
        let ps = grid_points();
        let scan = LinearScan::new(ps);
        let q = HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0, 0.0], 0.0).unwrap();
        let _ = scan.search_exact(&q, 1);
    }
}
