//! Hyperplane queries and the point-to-hyperplane distance.

use crate::distance;
use crate::{Error, Result, Scalar};

/// A hyperplane query `q ∈ R^d`.
///
/// The hyperplane is the set `{ p ∈ R^{d-1} : q_d + Σ_{i<d} p_i q_i = 0 }`, i.e. the
/// first `d-1` coordinates are the normal vector and the last coordinate is the offset.
///
/// On construction the query is rescaled so that the norm of its first `d-1` coordinates
/// is 1 (the simplification of Section II of the paper). With that normalization and the
/// dimension-append convention of [`crate::PointSet::augment`], the point-to-hyperplane
/// distance of a data point is exactly `|⟨x, q⟩|`.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperplaneQuery {
    /// Normalized coefficients; `coeffs.len() == dim`.
    coeffs: Vec<Scalar>,
    /// Euclidean norm of the full normalized coefficient vector (used by the ball
    /// bounds, which need `‖q‖`).
    norm: Scalar,
}

impl HyperplaneQuery {
    /// Creates a query from raw hyperplane coefficients `(q_1, …, q_{d-1}, q_d)`.
    ///
    /// The coefficients are rescaled so `‖(q_1, …, q_{d-1})‖ = 1`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDimension`] if fewer than 2 coefficients are supplied and
    /// [`Error::DegenerateQuery`] if the normal vector has (near-)zero norm.
    pub fn new(mut coeffs: Vec<Scalar>) -> Result<Self> {
        if coeffs.len() < 2 {
            return Err(Error::InvalidDimension(coeffs.len()));
        }
        let d = coeffs.len();
        let normal_norm = distance::norm(&coeffs[..d - 1]);
        if !normal_norm.is_finite() || normal_norm <= Scalar::EPSILON {
            return Err(Error::DegenerateQuery);
        }
        distance::scale(&mut coeffs, 1.0 / normal_norm);
        let norm = distance::norm(&coeffs);
        Ok(Self { coeffs, norm })
    }

    /// Creates a query from a normal vector `w ∈ R^{d-1}` and an offset `b`, describing
    /// the hyperplane `{ p : ⟨w, p⟩ + b = 0 }`.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`HyperplaneQuery::new`].
    pub fn from_normal_and_bias(normal: &[Scalar], bias: Scalar) -> Result<Self> {
        let mut coeffs = Vec::with_capacity(normal.len() + 1);
        coeffs.extend_from_slice(normal);
        coeffs.push(bias);
        Self::new(coeffs)
    }

    /// Reconstructs a query from *already normalized* coefficients and their norm, as
    /// produced by [`Self::coeffs`] and [`Self::norm`] on the sending side of a wire
    /// transport.
    ///
    /// [`Self::new`] would rescale by `1 / ‖normal‖` — a value that is ≈ 1 but not
    /// exactly 1 after one normalization — and thereby perturb the coefficient bits,
    /// so a round-tripped query would no longer produce bit-identical distances. This
    /// constructor trusts the transported bits instead; it only validates shape and
    /// finiteness, not the unit-norm invariant.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDimension`] if fewer than 2 coefficients are supplied
    /// and [`Error::DegenerateQuery`] if any coefficient or the norm is non-finite.
    pub fn from_transport_parts(coeffs: Vec<Scalar>, norm: Scalar) -> Result<Self> {
        if coeffs.len() < 2 {
            return Err(Error::InvalidDimension(coeffs.len()));
        }
        if !norm.is_finite() || norm <= 0.0 || coeffs.iter().any(|c| !c.is_finite()) {
            return Err(Error::DegenerateQuery);
        }
        Ok(Self { coeffs, norm })
    }

    /// The normalized coefficient vector, of length [`Self::dim`].
    #[inline]
    pub fn coeffs(&self) -> &[Scalar] {
        &self.coeffs
    }

    /// Dimensionality `d` of the query (equals the augmented data dimension).
    #[inline]
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// Euclidean norm `‖q‖` of the normalized coefficient vector.
    ///
    /// Because the first `d-1` coordinates have unit norm this equals
    /// `sqrt(1 + q_d²)` and is always at least 1.
    #[inline]
    pub fn norm(&self) -> Scalar {
        self.norm
    }

    /// Point-to-hyperplane distance of an *augmented* point `x = (p; 1) ∈ R^d`.
    ///
    /// This is `|⟨x, q⟩|` (Equation 2 of the paper).
    #[inline]
    pub fn p2h_distance(&self, augmented_point: &[Scalar]) -> Scalar {
        debug_assert_eq!(augmented_point.len(), self.coeffs.len());
        distance::abs_dot(augmented_point, &self.coeffs)
    }

    /// Signed inner product `⟨x, q⟩` of an augmented point and the query.
    ///
    /// The sign tells which side of the hyperplane the point lies on; the absolute value
    /// is the P2H distance.
    #[inline]
    pub fn signed_margin(&self, augmented_point: &[Scalar]) -> Scalar {
        debug_assert_eq!(augmented_point.len(), self.coeffs.len());
        distance::dot(augmented_point, &self.coeffs)
    }

    /// Point-to-hyperplane distance of a *raw* point `p ∈ R^{d-1}` (Equation 1 of the
    /// paper), without requiring the caller to augment it.
    #[inline]
    pub fn p2h_distance_raw(&self, raw_point: &[Scalar]) -> Scalar {
        debug_assert_eq!(raw_point.len() + 1, self.coeffs.len());
        let d = self.coeffs.len();
        (distance::dot(raw_point, &self.coeffs[..d - 1]) + self.coeffs[d - 1]).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalization_makes_normal_unit() {
        let q = HyperplaneQuery::new(vec![3.0, 4.0, 10.0]).unwrap();
        let normal = &q.coeffs()[..2];
        assert!((distance::norm(normal) - 1.0).abs() < 1e-6);
        assert!((q.coeffs()[2] - 2.0).abs() < 1e-6);
        assert!((q.norm() - (1.0f32 + 4.0).sqrt()).abs() < 1e-5);
    }

    #[test]
    fn degenerate_queries_rejected() {
        assert!(matches!(HyperplaneQuery::new(vec![0.0, 0.0, 5.0]), Err(Error::DegenerateQuery)));
        assert!(matches!(HyperplaneQuery::new(vec![1.0]), Err(Error::InvalidDimension(1))));
        assert!(matches!(
            HyperplaneQuery::new(vec![Scalar::NAN, 1.0, 0.0]),
            Err(Error::DegenerateQuery)
        ));
    }

    #[test]
    fn transport_round_trip_is_bit_identical() {
        let q = HyperplaneQuery::new(vec![3.0, 4.0, 10.0]).unwrap();
        let rebuilt = HyperplaneQuery::from_transport_parts(q.coeffs().to_vec(), q.norm()).unwrap();
        assert_eq!(q, rebuilt);
        let x = [0.25, -1.5, 1.0];
        assert_eq!(q.p2h_distance(&x).to_bits(), rebuilt.p2h_distance(&x).to_bits());
        // Re-running `new` on normalized coeffs is NOT guaranteed bit-identical —
        // that's exactly why this constructor exists.
        assert!(matches!(
            HyperplaneQuery::from_transport_parts(vec![1.0], 1.0),
            Err(Error::InvalidDimension(1))
        ));
        assert!(matches!(
            HyperplaneQuery::from_transport_parts(vec![Scalar::NAN, 1.0], 1.0),
            Err(Error::DegenerateQuery)
        ));
        assert!(matches!(
            HyperplaneQuery::from_transport_parts(vec![1.0, 0.0], 0.0),
            Err(Error::DegenerateQuery)
        ));
    }

    #[test]
    fn distance_matches_geometry() {
        // Hyperplane x + y - 1 = 0 in R^2; the point (1, 1) is at distance 1/sqrt(2).
        let q = HyperplaneQuery::from_normal_and_bias(&[1.0, 1.0], -1.0).unwrap();
        let raw = [1.0, 1.0];
        let expected = 1.0 / (2.0f32).sqrt();
        assert!((q.p2h_distance_raw(&raw) - expected).abs() < 1e-6);
        let augmented = [1.0, 1.0, 1.0];
        assert!((q.p2h_distance(&augmented) - expected).abs() < 1e-6);
        // A point on the hyperplane has zero distance.
        assert!(q.p2h_distance_raw(&[1.0, 0.0]).abs() < 1e-6);
        assert!(q.p2h_distance_raw(&[0.0, 1.0]).abs() < 1e-6);
    }

    #[test]
    fn signed_margin_sign_distinguishes_sides() {
        let q = HyperplaneQuery::from_normal_and_bias(&[1.0, 0.0], 0.0).unwrap();
        assert!(q.signed_margin(&[2.0, 0.0, 1.0]) > 0.0);
        assert!(q.signed_margin(&[-2.0, 0.0, 1.0]) < 0.0);
    }

    #[test]
    fn rescaling_invariance() {
        // Scaling all coefficients by a positive constant must not change the distance.
        let q1 = HyperplaneQuery::new(vec![1.0, 2.0, 3.0]).unwrap();
        let q2 = HyperplaneQuery::new(vec![10.0, 20.0, 30.0]).unwrap();
        let x = [0.5, -1.5, 1.0];
        assert!((q1.p2h_distance(&x) - q2.p2h_distance(&x)).abs() < 1e-5);
    }

    proptest! {
        #[test]
        fn raw_and_augmented_distances_agree(
            normal in proptest::collection::vec(-10.0f32..10.0, 3..8),
            bias in -10.0f32..10.0,
            point in proptest::collection::vec(-10.0f32..10.0, 3..8),
        ) {
            let d = normal.len().min(point.len());
            let normal = &normal[..d];
            let point = &point[..d];
            prop_assume!(distance::norm(normal) > 1e-3);
            let q = HyperplaneQuery::from_normal_and_bias(normal, bias).unwrap();
            let mut augmented = point.to_vec();
            augmented.push(1.0);
            let via_raw = q.p2h_distance_raw(point);
            let via_aug = q.p2h_distance(&augmented);
            prop_assert!((via_raw - via_aug).abs() < 1e-3 * (1.0 + via_raw.abs()));
        }

        #[test]
        fn distance_is_nonnegative(
            point in proptest::collection::vec(-10.0f32..10.0, 2..7),
            extra in -10.0f32..10.0,
            bias in -10.0f32..10.0,
        ) {
            // Build coefficients with exactly one more entry than the point.
            let mut coeffs: Vec<Scalar> = point.iter().map(|x| x + extra + 0.1).collect();
            coeffs.push(bias);
            prop_assume!(distance::norm(&coeffs[..coeffs.len()-1]) > 1e-3);
            let q = HyperplaneQuery::new(coeffs).unwrap();
            prop_assert!(q.p2h_distance_raw(&point) >= 0.0);
        }
    }
}
