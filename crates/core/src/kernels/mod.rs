//! Runtime-dispatched SIMD kernels: the innermost loops of every index.
//!
//! Every query in this workspace bottoms out in dense inner products — two `O(d)` dots
//! per expanded Ball-Tree node, one per BC-Tree node, and one `|⟨x, q⟩|` per verified
//! candidate. This module provides those kernels in three interchangeable backends:
//!
//! * **Scalar** ([`scalar`]) — portable 4-way unrolled loops, always available, and the
//!   reference the SIMD backends are property-tested against;
//! * **AVX2 + FMA** — selected at runtime on `x86_64` via `is_x86_feature_detected!`;
//! * **NEON** — selected unconditionally on `aarch64` (NEON is baseline there).
//!
//! On top of the single-vector kernels ([`dot`], [`abs_dot`], [`norm_sq`],
//! [`euclidean_sq`]) sit the **blocked** kernels ([`dot_block`], [`abs_dot_block`]):
//! one query against a contiguous strip of row-major points, processed four rows at a
//! time with shared query loads and independent accumulators. Leaf verification through
//! the blocked kernels is a small matvec instead of `leaf_size` independent calls.
//!
//! # Consistency guarantees
//!
//! Floating-point summation order matters: reassociating a reduction changes the last
//! few ulps. Two guarantees keep the exact-search invariants of the workspace intact:
//!
//! 1. **Within a backend, blocked ≡ single.** `dot_block` produces bit-identical per-row
//!    results to `dot` (the blocked kernels keep the same per-row accumulator scheme,
//!    reduction order, and tail handling — they only interleave column loads across
//!    rows). Search paths may therefore mix blocked strips with single-point
//!    verification freely.
//! 2. **One backend per answer.** `LinearScan` (the ground-truth oracle) and the tree
//!    indexes all call through this dispatcher, so within a process they share one
//!    summation order and the `assert_eq!`-style exact-match tests remain valid. This is
//!    why the trees must *not* hand-roll their own inner products: a tree verifying with
//!    FMA against an oracle summing in scalar order would differ in the last ulp and
//!    break bitwise comparisons.
//!
//! Across backends results differ within a small relative tolerance (FMA contraction,
//! different reduction trees); property tests bound the difference by `1e-3` relative.
//!
//! # Forcing the scalar path
//!
//! Set the environment variable `P2H_FORCE_SCALAR=1` before the first kernel call, or
//! call [`force_scalar`]`(true)` at any time, to route every kernel through the portable
//! scalar backend. This exists for A/B benchmarking (`kernel_bench`), for CI (both
//! dispatch arms stay green), and for reproducing results bit-for-bit across machines
//! with different SIMD capabilities.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Once, OnceLock};

use crate::Scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;
pub mod scalar;

/// Which kernel implementation answers calls in this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Portable unrolled scalar loops (the reference implementation).
    Scalar,
    /// AVX2 + FMA on `x86_64`, selected when the CPU reports both features.
    Avx2Fma,
    /// NEON on `aarch64` (baseline feature, no detection needed).
    Neon,
}

impl KernelBackend {
    /// Human-readable backend name for benchmark tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2Fma => "avx2+fma",
            KernelBackend::Neon => "neon",
        }
    }
}

/// Set when the scalar path is forced (env var or [`force_scalar`]).
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);
/// Guards the one-time read of `P2H_FORCE_SCALAR`.
static ENV_INIT: Once = Once::new();
/// The backend the hardware supports, detected once.
static DETECTED: OnceLock<KernelBackend> = OnceLock::new();

fn env_init() {
    ENV_INIT.call_once(|| {
        let forced = std::env::var("P2H_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0");
        if forced {
            FORCE_SCALAR.store(true, Ordering::Relaxed);
        }
    });
}

#[allow(unreachable_code)] // the aarch64 arm returns unconditionally
fn detect() -> KernelBackend {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return KernelBackend::Avx2Fma;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return KernelBackend::Neon;
    }
    KernelBackend::Scalar
}

/// The backend the hardware supports, ignoring any forced override.
pub fn detected_backend() -> KernelBackend {
    *DETECTED.get_or_init(detect)
}

/// The backend that will answer the next kernel call.
#[inline]
pub fn active_backend() -> KernelBackend {
    env_init();
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        KernelBackend::Scalar
    } else {
        detected_backend()
    }
}

/// Forces (or un-forces) the scalar backend at runtime.
///
/// `force_scalar(true)` routes every subsequent kernel call through the portable scalar
/// implementation; `force_scalar(false)` restores hardware dispatch. The switch is
/// process-global and takes effect immediately, which is what the forced-dispatch tests
/// and the `kernel_bench` A/B comparison rely on. Passing `false` also overrides a
/// `P2H_FORCE_SCALAR=1` environment setting.
pub fn force_scalar(on: bool) {
    env_init();
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Computes the inner product `⟨a, b⟩` of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths (in every build profile: the SIMD
/// backends read through raw pointers bounded by `a.len()`, so the length check must be
/// a hard precondition of this safe API, not a debug assertion).
#[inline]
pub fn dot(a: &[Scalar], b: &[Scalar]) -> Scalar {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the dispatcher returns Avx2Fma only after runtime feature detection.
        KernelBackend::Avx2Fma => unsafe { avx2::dot(a, b) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is a baseline feature of every aarch64 target.
        KernelBackend::Neon => unsafe { neon::dot(a, b) },
        _ => scalar::dot(a, b),
    }
}

/// Computes the absolute inner product `|⟨a, b⟩|`, the P2H distance after the paper's
/// normalization.
#[inline]
pub fn abs_dot(a: &[Scalar], b: &[Scalar]) -> Scalar {
    dot(a, b).abs()
}

/// Computes the squared Euclidean norm `‖a‖²`.
#[inline]
pub fn norm_sq(a: &[Scalar]) -> Scalar {
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the dispatcher returns Avx2Fma only after runtime feature detection.
        KernelBackend::Avx2Fma => unsafe { avx2::norm_sq(a) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is a baseline feature of every aarch64 target.
        KernelBackend::Neon => unsafe { neon::norm_sq(a) },
        _ => scalar::norm_sq(a),
    }
}

/// Computes the squared Euclidean distance `‖a − b‖²`.
///
/// # Panics
///
/// Panics if the slices have different lengths (hard precondition, as for [`dot`]).
#[inline]
pub fn euclidean_sq(a: &[Scalar], b: &[Scalar]) -> Scalar {
    assert_eq!(a.len(), b.len(), "euclidean_sq: length mismatch");
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the dispatcher returns Avx2Fma only after runtime feature detection.
        KernelBackend::Avx2Fma => unsafe { avx2::euclidean_sq(a, b) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is a baseline feature of every aarch64 target.
        KernelBackend::Neon => unsafe { neon::euclidean_sq(a, b) },
        _ => scalar::euclidean_sq(a, b),
    }
}

/// Computes the inner products of one query against `out.len()` contiguous row-major
/// rows: `out[r] = ⟨query, rows[r·dim .. (r+1)·dim]⟩`.
///
/// Per-row results are bit-identical to [`dot`] on the same row (see the module docs).
///
/// # Panics
///
/// Panics if `rows.len() != dim * out.len()` or `query.len() != dim`.
#[inline]
pub fn dot_block(query: &[Scalar], rows: &[Scalar], dim: usize, out: &mut [Scalar]) {
    assert_eq!(query.len(), dim, "dot_block: query length must equal dim");
    assert_eq!(rows.len(), dim * out.len(), "dot_block: rows must hold dim * out.len() scalars");
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the dispatcher returns Avx2Fma only after runtime feature detection.
        KernelBackend::Avx2Fma => unsafe { avx2::dot_block(query, rows, dim, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is a baseline feature of every aarch64 target.
        KernelBackend::Neon => unsafe { neon::dot_block(query, rows, dim, out) },
        _ => scalar::dot_block(query, rows, dim, out),
    }
}

/// Like [`dot_block`] but stores `|⟨query, row⟩|`: the point-to-hyperplane distances of
/// a strip of candidates. This is the kernel behind every blocked leaf scan.
#[inline]
pub fn abs_dot_block(query: &[Scalar], rows: &[Scalar], dim: usize, out: &mut [Scalar]) {
    dot_block(query, rows, dim, out);
    for d in out.iter_mut() {
        *d = d.abs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(dim: usize, rows: usize) -> (Vec<Scalar>, Vec<Scalar>) {
        let query: Vec<Scalar> =
            (0..dim).map(|j| ((j * 37 + 5) % 23) as Scalar * 0.17 - 1.5).collect();
        let data: Vec<Scalar> =
            (0..dim * rows).map(|j| ((j * 13 + 2) % 29) as Scalar * 0.11 - 1.3).collect();
        (query, data)
    }

    #[test]
    fn dispatched_dot_block_matches_single_dot_bitwise() {
        // Exercise every lane-count tail: below one SIMD register, between registers,
        // multiples of the stride, and large odd sizes.
        for dim in [1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 24, 31, 32, 33, 63, 64, 65, 129] {
            for rows in 1..=9 {
                let (query, data) = vecs(dim, rows);
                let mut blocked = vec![0.0; rows];
                dot_block(&query, &data, dim, &mut blocked);
                for r in 0..rows {
                    let single = dot(&query, &data[r * dim..(r + 1) * dim]);
                    assert_eq!(
                        blocked[r].to_bits(),
                        single.to_bits(),
                        "dim {dim}, row {r}/{rows}: blocked {} != single {}",
                        blocked[r],
                        single
                    );
                }
            }
        }
    }

    #[test]
    fn scalar_dot_block_matches_scalar_dot_bitwise() {
        for dim in [1, 3, 4, 5, 8, 11, 16, 19, 64, 67] {
            for rows in 1..=6 {
                let (query, data) = vecs(dim, rows);
                let mut blocked = vec![0.0; rows];
                scalar::dot_block(&query, &data, dim, &mut blocked);
                for r in 0..rows {
                    let single = scalar::dot(&query, &data[r * dim..(r + 1) * dim]);
                    assert_eq!(blocked[r].to_bits(), single.to_bits(), "dim {dim}, row {r}");
                }
            }
        }
    }

    #[test]
    fn abs_dot_block_is_absolute_value_of_dot_block() {
        let (query, data) = vecs(33, 7);
        let mut signed = vec![0.0; 7];
        let mut unsigned = vec![0.0; 7];
        dot_block(&query, &data, 33, &mut signed);
        abs_dot_block(&query, &data, 33, &mut unsigned);
        for (s, u) in signed.iter().zip(unsigned.iter()) {
            assert_eq!(s.abs().to_bits(), u.to_bits());
        }
    }

    // NOTE: the `force_scalar` toggle is deliberately NOT unit-tested here: it is
    // process-global, and the bitwise dispatch tests in this binary run on parallel
    // test threads — a mid-test toggle would flip the backend between a test's
    // `dot_block` and its reference `dot` call and fail the `to_bits` comparison.
    // It is covered by `tests/force_scalar.rs` (own process, single test), and the
    // end-to-end ranking equivalence lives in the balltree crate's
    // `forced_scalar_dispatch` integration test.

    #[test]
    fn backends_agree_within_tolerance() {
        for dim in [5, 16, 17, 64, 100, 129] {
            let (query, data) = vecs(dim, 1);
            let fast = dot(&query, &data);
            let reference = scalar::dot(&query, &data);
            assert!(
                (fast - reference).abs() <= 1e-3 * (1.0 + reference.abs()),
                "dim {dim}: {fast} vs {reference}"
            );
            let fast_e = euclidean_sq(&query, &data);
            let ref_e = scalar::euclidean_sq(&query, &data);
            assert!((fast_e - ref_e).abs() <= 1e-3 * (1.0 + ref_e.abs()));
            let fast_n = norm_sq(&query);
            let ref_n = scalar::norm_sq(&query);
            assert!((fast_n - ref_n).abs() <= 1e-3 * (1.0 + ref_n.abs()));
        }
    }

    #[test]
    fn backend_labels_are_stable() {
        assert_eq!(KernelBackend::Scalar.label(), "scalar");
        assert_eq!(KernelBackend::Avx2Fma.label(), "avx2+fma");
        assert_eq!(KernelBackend::Neon.label(), "neon");
        // detected_backend is deterministic within a process.
        assert_eq!(detected_backend(), detected_backend());
    }

    #[test]
    #[should_panic(expected = "rows must hold")]
    fn dot_block_rejects_mismatched_rows() {
        let mut out = vec![0.0; 2];
        dot_block(&[1.0, 2.0], &[1.0, 2.0, 3.0], 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch")]
    fn dot_rejects_mismatched_lengths_in_release_too() {
        // The SIMD backends read through raw pointers bounded by a.len(), so this must
        // be a hard assert, not a debug_assert.
        let _ = dot(&[1.0, 2.0, 3.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "euclidean_sq: length mismatch")]
    fn euclidean_sq_rejects_mismatched_lengths() {
        let _ = euclidean_sq(&[1.0, 2.0, 3.0], &[1.0, 2.0]);
    }
}
