//! Portable scalar kernels: the reference implementations every SIMD backend must match.
//!
//! All kernels share one accumulation scheme — a 4-way unrolled main loop (four
//! independent partial sums over a stride-4 interleaving of the input) followed by a
//! sequential tail — so the compiler can vectorize and pipeline them even without
//! explicit SIMD, and so [`dot_block`] produces *bit-identical* per-row results to
//! [`dot`]: the blocked kernel keeps the same four partial sums per row and the same
//! tail, it merely interleaves the columns of several rows to amortize query loads.

use crate::Scalar;

/// Number of independent partial sums in the unrolled main loops.
const UNROLL: usize = 4;

/// Sequential tail of an inner product: `Σ_{j ≥ from} a[j]·b[j]`, accumulated strictly
/// left to right. Shared by the scalar and SIMD backends so every `dot`-family kernel
/// handles the non-multiple-of-lane-count remainder identically.
#[inline(always)]
pub(crate) fn tail_dot(a: &[Scalar], b: &[Scalar], from: usize) -> Scalar {
    let mut tail = 0.0;
    for j in from..a.len() {
        tail += a[j] * b[j];
    }
    tail
}

/// Sequential tail of a squared Euclidean distance: `Σ_{j ≥ from} (a[j] − b[j])²`,
/// accumulated strictly left to right. Shared across backends like [`tail_dot`].
#[inline(always)]
pub(crate) fn tail_euclidean_sq(a: &[Scalar], b: &[Scalar], from: usize) -> Scalar {
    let mut tail = 0.0;
    for j in from..a.len() {
        let diff = a[j] - b[j];
        tail += diff * diff;
    }
    tail
}

/// Inner product `⟨a, b⟩` with 4-way unrolled accumulation.
#[inline]
pub fn dot(a: &[Scalar], b: &[Scalar]) -> Scalar {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let main = a.len() - a.len() % UNROLL;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let mut j = 0;
    while j < main {
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
        j += UNROLL;
    }
    s0 + s1 + s2 + s3 + tail_dot(a, b, main)
}

/// Squared Euclidean norm `‖a‖²`, via the same accumulation scheme as [`dot`].
#[inline]
pub fn norm_sq(a: &[Scalar]) -> Scalar {
    dot(a, a)
}

/// Squared Euclidean distance `‖a − b‖²` with the same 4-way unrolled accumulation as
/// [`dot`] (the seed implementation was a naive fold; routing it through the unrolled
/// scheme lets the compiler vectorize it identically).
#[inline]
pub fn euclidean_sq(a: &[Scalar], b: &[Scalar]) -> Scalar {
    debug_assert_eq!(a.len(), b.len(), "euclidean_sq: length mismatch");
    let main = a.len() - a.len() % UNROLL;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let mut j = 0;
    while j < main {
        let d0 = a[j] - b[j];
        let d1 = a[j + 1] - b[j + 1];
        let d2 = a[j + 2] - b[j + 2];
        let d3 = a[j + 3] - b[j + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
        j += UNROLL;
    }
    s0 + s1 + s2 + s3 + tail_euclidean_sq(a, b, main)
}

/// Number of rows processed together by the blocked kernels' fast path.
pub(crate) const BLOCK_ROWS: usize = 4;

/// Blocked inner products: one query against `out.len()` contiguous row-major rows.
///
/// `rows` must hold exactly `dim · out.len()` scalars; `out[r]` receives
/// `⟨query, rows[r·dim .. (r+1)·dim]⟩`, bit-identical to calling [`dot`] on that row.
///
/// Rows are processed [`BLOCK_ROWS`] at a time with column interleaving: each query
/// chunk is read once and fed to every row's partial sums, which amortizes the query
/// traffic and gives the optimizer `4 × BLOCK_ROWS` independent dependency chains.
pub fn dot_block(query: &[Scalar], rows: &[Scalar], dim: usize, out: &mut [Scalar]) {
    debug_assert_eq!(query.len(), dim, "dot_block: query/dim mismatch");
    debug_assert_eq!(rows.len(), dim * out.len(), "dot_block: rows/out mismatch");
    let main = dim - dim % UNROLL;
    let mut r = 0;
    while r + BLOCK_ROWS <= out.len() {
        let base = r * dim;
        let r0 = &rows[base..base + dim];
        let r1 = &rows[base + dim..base + 2 * dim];
        let r2 = &rows[base + 2 * dim..base + 3 * dim];
        let r3 = &rows[base + 3 * dim..base + 4 * dim];
        // acc[row][lane]: same four partial sums per row as in `dot`.
        let mut acc = [[0.0 as Scalar; UNROLL]; BLOCK_ROWS];
        let mut j = 0;
        while j < main {
            let q0 = query[j];
            let q1 = query[j + 1];
            let q2 = query[j + 2];
            let q3 = query[j + 3];
            acc[0][0] += r0[j] * q0;
            acc[0][1] += r0[j + 1] * q1;
            acc[0][2] += r0[j + 2] * q2;
            acc[0][3] += r0[j + 3] * q3;
            acc[1][0] += r1[j] * q0;
            acc[1][1] += r1[j + 1] * q1;
            acc[1][2] += r1[j + 2] * q2;
            acc[1][3] += r1[j + 3] * q3;
            acc[2][0] += r2[j] * q0;
            acc[2][1] += r2[j + 1] * q1;
            acc[2][2] += r2[j + 2] * q2;
            acc[2][3] += r2[j + 3] * q3;
            acc[3][0] += r3[j] * q0;
            acc[3][1] += r3[j + 1] * q1;
            acc[3][2] += r3[j + 2] * q2;
            acc[3][3] += r3[j + 3] * q3;
            j += UNROLL;
        }
        for (row, slice) in [r0, r1, r2, r3].into_iter().enumerate() {
            out[r + row] = acc[row][0]
                + acc[row][1]
                + acc[row][2]
                + acc[row][3]
                + tail_dot(query, slice, main);
        }
        r += BLOCK_ROWS;
    }
    // Remainder rows: the single-row kernel has the same summation order by design.
    while r < out.len() {
        out[r] = dot(query, &rows[r * dim..(r + 1) * dim]);
        r += 1;
    }
}
