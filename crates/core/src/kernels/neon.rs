//! NEON kernels for `aarch64`.
//!
//! Mirrors the AVX2 backend with 4-lane registers: two accumulators over a stride-8
//! main loop, an optional extra 4-lane chunk folded into the first accumulator, the
//! `vaddvq_f32` horizontal reduction, and the shared sequential scalar tails. As on
//! x86, [`dot_block`] keeps the exact per-row scheme of [`dot`], so blocked and
//! single-row results are bit-identical within this backend.
//!
//! NEON is a baseline feature of every `aarch64` target Rust supports, so no runtime
//! detection is needed — the dispatcher selects this backend unconditionally on
//! `aarch64` (unless the scalar path is forced).
//!
//! # Safety
//!
//! The intrinsics are `unsafe` only because raw pointers are dereferenced; all pointers
//! are derived from in-bounds slice indices.

#![allow(unsafe_code)]

use std::arch::aarch64::{
    float32x4_t, vaddq_f32, vaddvq_f32, vdupq_n_f32, vfmaq_f32, vld1q_f32, vsubq_f32,
};

use super::scalar::{tail_dot, tail_euclidean_sq, BLOCK_ROWS};
use crate::Scalar;

/// Lanes per NEON register.
const LANES: usize = 4;
/// Main-loop stride: two 4-lane accumulators.
const STRIDE: usize = 2 * LANES;

/// Splits a length into the stride-8 main part and whether one extra 4-lane chunk fits.
#[inline(always)]
fn split_len(len: usize) -> (usize, bool) {
    let main = len - len % STRIDE;
    (main, len - main >= LANES)
}

/// Fixed-order reduction shared by the single and blocked kernels.
#[inline(always)]
unsafe fn reduce(acc0: float32x4_t, acc1: float32x4_t) -> Scalar {
    vaddvq_f32(vaddq_f32(acc0, acc1))
}

/// Inner product `⟨a, b⟩`.
///
/// # Safety
///
/// Only callable on `aarch64` (NEON is baseline there); slices must be equal-length.
pub unsafe fn dot(a: &[Scalar], b: &[Scalar]) -> Scalar {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let (main, extra4) = split_len(a.len());
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut j = 0;
    while j < main {
        acc0 = vfmaq_f32(acc0, vld1q_f32(pa.add(j)), vld1q_f32(pb.add(j)));
        acc1 = vfmaq_f32(acc1, vld1q_f32(pa.add(j + LANES)), vld1q_f32(pb.add(j + LANES)));
        j += STRIDE;
    }
    if extra4 {
        acc0 = vfmaq_f32(acc0, vld1q_f32(pa.add(main)), vld1q_f32(pb.add(main)));
    }
    let tail_from = main + if extra4 { LANES } else { 0 };
    reduce(acc0, acc1) + tail_dot(a, b, tail_from)
}

/// Squared Euclidean norm `‖a‖²`.
///
/// # Safety
///
/// Only callable on `aarch64`.
pub unsafe fn norm_sq(a: &[Scalar]) -> Scalar {
    dot(a, a)
}

/// Squared Euclidean distance `‖a − b‖²`.
///
/// # Safety
///
/// Only callable on `aarch64`; slices must be equal-length.
pub unsafe fn euclidean_sq(a: &[Scalar], b: &[Scalar]) -> Scalar {
    debug_assert_eq!(a.len(), b.len(), "euclidean_sq: length mismatch");
    let (main, extra4) = split_len(a.len());
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut j = 0;
    while j < main {
        let d0 = vsubq_f32(vld1q_f32(pa.add(j)), vld1q_f32(pb.add(j)));
        let d1 = vsubq_f32(vld1q_f32(pa.add(j + LANES)), vld1q_f32(pb.add(j + LANES)));
        acc0 = vfmaq_f32(acc0, d0, d0);
        acc1 = vfmaq_f32(acc1, d1, d1);
        j += STRIDE;
    }
    if extra4 {
        let d = vsubq_f32(vld1q_f32(pa.add(main)), vld1q_f32(pb.add(main)));
        acc0 = vfmaq_f32(acc0, d, d);
    }
    let tail_from = main + if extra4 { LANES } else { 0 };
    reduce(acc0, acc1) + tail_euclidean_sq(a, b, tail_from)
}

/// Blocked inner products; per-row results are bit-identical to [`dot`].
///
/// # Safety
///
/// Only callable on `aarch64`; `rows.len() == dim * out.len()` and `query.len() == dim`.
pub unsafe fn dot_block(query: &[Scalar], rows: &[Scalar], dim: usize, out: &mut [Scalar]) {
    debug_assert_eq!(query.len(), dim, "dot_block: query/dim mismatch");
    debug_assert_eq!(rows.len(), dim * out.len(), "dot_block: rows/out mismatch");
    let mut r = 0;
    while r + BLOCK_ROWS <= out.len() {
        dot_block4(query, rows, dim, r, out);
        r += BLOCK_ROWS;
    }
    while r < out.len() {
        out[r] = dot(query, &rows[r * dim..(r + 1) * dim]);
        r += 1;
    }
}

/// Four rows at once with shared query loads (see the AVX2 sibling for the rationale).
///
/// # Safety
///
/// Only callable on `aarch64`; `r + 4 <= out.len()`.
#[inline]
unsafe fn dot_block4(query: &[Scalar], rows: &[Scalar], dim: usize, r: usize, out: &mut [Scalar]) {
    let (main, extra4) = split_len(dim);
    let q = query.as_ptr();
    let p0 = rows.as_ptr().add(r * dim);
    let p1 = rows.as_ptr().add((r + 1) * dim);
    let p2 = rows.as_ptr().add((r + 2) * dim);
    let p3 = rows.as_ptr().add((r + 3) * dim);
    let mut a00 = vdupq_n_f32(0.0);
    let mut a01 = vdupq_n_f32(0.0);
    let mut a10 = vdupq_n_f32(0.0);
    let mut a11 = vdupq_n_f32(0.0);
    let mut a20 = vdupq_n_f32(0.0);
    let mut a21 = vdupq_n_f32(0.0);
    let mut a30 = vdupq_n_f32(0.0);
    let mut a31 = vdupq_n_f32(0.0);
    let mut j = 0;
    while j < main {
        let q0 = vld1q_f32(q.add(j));
        let q1 = vld1q_f32(q.add(j + LANES));
        a00 = vfmaq_f32(a00, vld1q_f32(p0.add(j)), q0);
        a01 = vfmaq_f32(a01, vld1q_f32(p0.add(j + LANES)), q1);
        a10 = vfmaq_f32(a10, vld1q_f32(p1.add(j)), q0);
        a11 = vfmaq_f32(a11, vld1q_f32(p1.add(j + LANES)), q1);
        a20 = vfmaq_f32(a20, vld1q_f32(p2.add(j)), q0);
        a21 = vfmaq_f32(a21, vld1q_f32(p2.add(j + LANES)), q1);
        a30 = vfmaq_f32(a30, vld1q_f32(p3.add(j)), q0);
        a31 = vfmaq_f32(a31, vld1q_f32(p3.add(j + LANES)), q1);
        j += STRIDE;
    }
    if extra4 {
        let q0 = vld1q_f32(q.add(main));
        a00 = vfmaq_f32(a00, vld1q_f32(p0.add(main)), q0);
        a10 = vfmaq_f32(a10, vld1q_f32(p1.add(main)), q0);
        a20 = vfmaq_f32(a20, vld1q_f32(p2.add(main)), q0);
        a30 = vfmaq_f32(a30, vld1q_f32(p3.add(main)), q0);
    }
    let tail_from = main + if extra4 { LANES } else { 0 };
    let base = r * dim;
    out[r] = reduce(a00, a01) + tail_dot(query, &rows[base..base + dim], tail_from);
    out[r + 1] = reduce(a10, a11) + tail_dot(query, &rows[base + dim..base + 2 * dim], tail_from);
    out[r + 2] =
        reduce(a20, a21) + tail_dot(query, &rows[base + 2 * dim..base + 3 * dim], tail_from);
    out[r + 3] =
        reduce(a30, a31) + tail_dot(query, &rows[base + 3 * dim..base + 4 * dim], tail_from);
}
