//! AVX2 + FMA kernels for `x86_64`.
//!
//! # Summation order
//!
//! Every kernel here uses one canonical per-vector scheme: two 8-lane accumulators over
//! a stride-16 main loop, an optional single extra 8-lane chunk folded into the first
//! accumulator, a fixed-order horizontal reduction ([`hsum8`]), and the shared
//! sequential scalar tail from the [`super::scalar`] module. [`dot_block`] keeps exactly
//! this scheme per row (it only interleaves the column loop across four rows), so its
//! results are **bit-identical** to [`dot`] on the same row — the property the exact
//! search paths rely on when they mix blocked and single-point verification.
//!
//! FMA contraction means these results differ from the scalar backend in the last few
//! ulps; that is fine because a process always answers queries through one backend (see
//! the module docs of [`super`]).
//!
//! # Safety
//!
//! Every function is `unsafe` because it is compiled with
//! `#[target_feature(enable = "avx2,fma")]`: the caller must have verified (via
//! `is_x86_feature_detected!`) that the CPU supports AVX2 and FMA. The dispatcher in
//! [`super`] is the only caller and checks exactly that.

#![allow(unsafe_code)]

use std::arch::x86_64::{
    __m256, _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_setzero_ps, _mm256_storeu_ps,
    _mm256_sub_ps,
};

use super::scalar::{tail_dot, tail_euclidean_sq, BLOCK_ROWS};
use crate::Scalar;

/// Lanes per AVX2 register.
const LANES: usize = 8;
/// Main-loop stride: two 8-lane accumulators.
const STRIDE: usize = 2 * LANES;

/// Horizontal sum of an 8-lane register in a fixed, backend-canonical order.
///
/// # Safety
///
/// Requires AVX2 (callers are themselves `target_feature(avx2,fma)` functions).
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn hsum8(v: __m256) -> Scalar {
    let mut lanes = [0.0 as Scalar; LANES];
    _mm256_storeu_ps(lanes.as_mut_ptr(), v);
    ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
        + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]))
}

/// Splits a length into the stride-16 main part and whether one extra 8-lane chunk fits.
#[inline(always)]
fn split_len(len: usize) -> (usize, bool) {
    let main = len - len % STRIDE;
    (main, len - main >= LANES)
}

/// Inner product `⟨a, b⟩`.
///
/// # Safety
///
/// CPU must support AVX2 and FMA.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn dot(a: &[Scalar], b: &[Scalar]) -> Scalar {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let (main, extra8) = split_len(a.len());
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut j = 0;
    while j < main {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(j)), _mm256_loadu_ps(pb.add(j)), acc0);
        acc1 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(j + LANES)),
            _mm256_loadu_ps(pb.add(j + LANES)),
            acc1,
        );
        j += STRIDE;
    }
    if extra8 {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(main)), _mm256_loadu_ps(pb.add(main)), acc0);
    }
    let tail_from = main + if extra8 { LANES } else { 0 };
    hsum8(_mm256_add_ps(acc0, acc1)) + tail_dot(a, b, tail_from)
}

/// Squared Euclidean norm `‖a‖²`.
///
/// # Safety
///
/// CPU must support AVX2 and FMA.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn norm_sq(a: &[Scalar]) -> Scalar {
    dot(a, a)
}

/// Squared Euclidean distance `‖a − b‖²`.
///
/// # Safety
///
/// CPU must support AVX2 and FMA.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn euclidean_sq(a: &[Scalar], b: &[Scalar]) -> Scalar {
    debug_assert_eq!(a.len(), b.len(), "euclidean_sq: length mismatch");
    let (main, extra8) = split_len(a.len());
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut j = 0;
    while j < main {
        let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(j)), _mm256_loadu_ps(pb.add(j)));
        let d1 =
            _mm256_sub_ps(_mm256_loadu_ps(pa.add(j + LANES)), _mm256_loadu_ps(pb.add(j + LANES)));
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        acc1 = _mm256_fmadd_ps(d1, d1, acc1);
        j += STRIDE;
    }
    if extra8 {
        let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(main)), _mm256_loadu_ps(pb.add(main)));
        acc0 = _mm256_fmadd_ps(d, d, acc0);
    }
    let tail_from = main + if extra8 { LANES } else { 0 };
    hsum8(_mm256_add_ps(acc0, acc1)) + tail_euclidean_sq(a, b, tail_from)
}

/// Blocked inner products: one query against contiguous row-major rows; per-row results
/// are bit-identical to [`dot`].
///
/// # Safety
///
/// CPU must support AVX2 and FMA.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn dot_block(query: &[Scalar], rows: &[Scalar], dim: usize, out: &mut [Scalar]) {
    debug_assert_eq!(query.len(), dim, "dot_block: query/dim mismatch");
    debug_assert_eq!(rows.len(), dim * out.len(), "dot_block: rows/out mismatch");
    let mut r = 0;
    while r + BLOCK_ROWS <= out.len() {
        dot_block4(query, rows, dim, r, out);
        r += BLOCK_ROWS;
    }
    while r < out.len() {
        out[r] = dot(query, &rows[r * dim..(r + 1) * dim]);
        r += 1;
    }
}

/// Four rows at once: each query chunk is loaded once and FMA-ed into four rows' private
/// accumulator pairs (eight independent dependency chains), so leaf verification becomes
/// a small matvec instead of four separate inner products.
///
/// # Safety
///
/// CPU must support AVX2 and FMA; `r + 4 <= out.len()`.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_block4(query: &[Scalar], rows: &[Scalar], dim: usize, r: usize, out: &mut [Scalar]) {
    let (main, extra8) = split_len(dim);
    let q = query.as_ptr();
    let p0 = rows.as_ptr().add(r * dim);
    let p1 = rows.as_ptr().add((r + 1) * dim);
    let p2 = rows.as_ptr().add((r + 2) * dim);
    let p3 = rows.as_ptr().add((r + 3) * dim);
    let mut a00 = _mm256_setzero_ps();
    let mut a01 = _mm256_setzero_ps();
    let mut a10 = _mm256_setzero_ps();
    let mut a11 = _mm256_setzero_ps();
    let mut a20 = _mm256_setzero_ps();
    let mut a21 = _mm256_setzero_ps();
    let mut a30 = _mm256_setzero_ps();
    let mut a31 = _mm256_setzero_ps();
    let mut j = 0;
    while j < main {
        let q0 = _mm256_loadu_ps(q.add(j));
        let q1 = _mm256_loadu_ps(q.add(j + LANES));
        a00 = _mm256_fmadd_ps(_mm256_loadu_ps(p0.add(j)), q0, a00);
        a01 = _mm256_fmadd_ps(_mm256_loadu_ps(p0.add(j + LANES)), q1, a01);
        a10 = _mm256_fmadd_ps(_mm256_loadu_ps(p1.add(j)), q0, a10);
        a11 = _mm256_fmadd_ps(_mm256_loadu_ps(p1.add(j + LANES)), q1, a11);
        a20 = _mm256_fmadd_ps(_mm256_loadu_ps(p2.add(j)), q0, a20);
        a21 = _mm256_fmadd_ps(_mm256_loadu_ps(p2.add(j + LANES)), q1, a21);
        a30 = _mm256_fmadd_ps(_mm256_loadu_ps(p3.add(j)), q0, a30);
        a31 = _mm256_fmadd_ps(_mm256_loadu_ps(p3.add(j + LANES)), q1, a31);
        j += STRIDE;
    }
    if extra8 {
        let q0 = _mm256_loadu_ps(q.add(main));
        a00 = _mm256_fmadd_ps(_mm256_loadu_ps(p0.add(main)), q0, a00);
        a10 = _mm256_fmadd_ps(_mm256_loadu_ps(p1.add(main)), q0, a10);
        a20 = _mm256_fmadd_ps(_mm256_loadu_ps(p2.add(main)), q0, a20);
        a30 = _mm256_fmadd_ps(_mm256_loadu_ps(p3.add(main)), q0, a30);
    }
    let tail_from = main + if extra8 { LANES } else { 0 };
    let base = r * dim;
    out[r] = hsum8(_mm256_add_ps(a00, a01)) + tail_dot(query, &rows[base..base + dim], tail_from);
    out[r + 1] = hsum8(_mm256_add_ps(a10, a11))
        + tail_dot(query, &rows[base + dim..base + 2 * dim], tail_from);
    out[r + 2] = hsum8(_mm256_add_ps(a20, a21))
        + tail_dot(query, &rows[base + 2 * dim..base + 3 * dim], tail_from);
    out[r + 3] = hsum8(_mm256_add_ps(a30, a31))
        + tail_dot(query, &rows[base + 3 * dim..base + 4 * dim], tail_from);
}
