//! The index abstraction shared by every P2HNNS method in the workspace.

use serde::{Deserialize, Serialize};

use crate::{HyperplaneQuery, Neighbor, QueryScratch, Scalar};

/// Which child of an internal tree node is descended first during branch-and-bound.
///
/// Section III-C of the paper compares the two choices and recommends the center
/// preference; Figure 7 reproduces that comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BranchPreference {
    /// Visit the child whose center has the smaller absolute inner product with the
    /// query first (the paper's default).
    #[default]
    Center,
    /// Visit the child with the smaller node-level ball bound first.
    LowerBound,
}

/// Parameters of a single P2HNNS query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchParams {
    /// Number of neighbors to return (top-k).
    pub k: usize,
    /// Maximum number of candidate points whose exact distance may be evaluated.
    ///
    /// `None` means unlimited, which yields the exact answer for the tree indexes. A
    /// finite budget yields the approximate search used throughout the paper's
    /// evaluation (the "candidate fraction" knob); smaller budgets are faster but may
    /// miss true neighbors.
    pub candidate_limit: Option<usize>,
    /// Branch ordering heuristic for tree-based indexes. Ignored by hashing methods.
    pub branch_preference: BranchPreference,
    /// Whether to collect the fine-grained phase timings (`time_bounds_ns`,
    /// `time_verify_ns`, `time_lookup_ns`). Collecting them adds clock-read overhead to
    /// the hot path, so it is off by default and only enabled for the Figure 10 time
    /// profile experiment.
    pub collect_timing: bool,
}

impl SearchParams {
    /// Exact top-k search with the default (center) branch preference.
    pub fn exact(k: usize) -> Self {
        Self {
            k,
            candidate_limit: None,
            branch_preference: BranchPreference::Center,
            collect_timing: false,
        }
    }

    /// Approximate top-k search that verifies at most `candidate_limit` points.
    pub fn approximate(k: usize, candidate_limit: usize) -> Self {
        Self { candidate_limit: Some(candidate_limit), ..Self::exact(k) }
    }

    /// Returns a copy with the given branch preference.
    pub fn with_branch_preference(mut self, preference: BranchPreference) -> Self {
        self.branch_preference = preference;
        self
    }

    /// Returns a copy with fine-grained phase timing enabled.
    pub fn with_timing(mut self) -> Self {
        self.collect_timing = true;
        self
    }
}

impl Default for SearchParams {
    fn default() -> Self {
        Self::exact(1)
    }
}

/// Counters and timings collected while answering one query.
///
/// The counters mirror the cost model of the paper: inner-product computations dominate
/// both the lower-bound evaluation (node visits) and the candidate verification, and the
/// time profile of Figure 10 splits the query time into verification, bucket lookup,
/// lower-bound computation, and everything else.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Number of O(d) inner products computed (center bounds + candidate verification).
    pub inner_products: u64,
    /// Number of tree nodes (internal + leaf) visited.
    pub nodes_visited: u64,
    /// Number of leaf nodes visited.
    pub leaves_visited: u64,
    /// Number of data points whose exact distance was computed.
    pub candidates_verified: u64,
    /// Number of subtrees pruned by the node-level ball bound.
    pub pruned_subtrees: u64,
    /// Number of points skipped by the point-level ball bound (including batch breaks).
    pub pruned_by_ball_bound: u64,
    /// Number of points skipped by the point-level cone bound.
    pub pruned_by_cone_bound: u64,
    /// Number of hash buckets (or projection positions) probed. Zero for tree indexes.
    pub buckets_probed: u64,
    /// Nanoseconds spent computing lower bounds (node- and point-level).
    pub time_bounds_ns: u64,
    /// Nanoseconds spent verifying candidates (exact inner products).
    pub time_verify_ns: u64,
    /// Nanoseconds spent looking up hash tables / projection arrays. Zero for trees.
    pub time_lookup_ns: u64,
    /// Nanoseconds spent merging per-shard top-k lists. Zero outside the sharded
    /// fan-out serving path.
    pub time_merge_ns: u64,
    /// Total wall-clock nanoseconds for the query.
    pub time_total_ns: u64,
}

impl SearchStats {
    /// Merges another stats record into this one (component-wise **saturating** sum).
    ///
    /// Aggregation saturates rather than wraps: stats merge across whole batches,
    /// shards, and long-lived serving processes, and a counter quietly wrapping past
    /// `u64::MAX` (e.g. a hostile batch replaying an expensive query) would corrupt
    /// every downstream aggregate. A pegged `u64::MAX` is an obvious outlier instead.
    pub fn merge(&mut self, other: &SearchStats) {
        self.inner_products = self.inner_products.saturating_add(other.inner_products);
        self.nodes_visited = self.nodes_visited.saturating_add(other.nodes_visited);
        self.leaves_visited = self.leaves_visited.saturating_add(other.leaves_visited);
        self.candidates_verified =
            self.candidates_verified.saturating_add(other.candidates_verified);
        self.pruned_subtrees = self.pruned_subtrees.saturating_add(other.pruned_subtrees);
        self.pruned_by_ball_bound =
            self.pruned_by_ball_bound.saturating_add(other.pruned_by_ball_bound);
        self.pruned_by_cone_bound =
            self.pruned_by_cone_bound.saturating_add(other.pruned_by_cone_bound);
        self.buckets_probed = self.buckets_probed.saturating_add(other.buckets_probed);
        self.time_bounds_ns = self.time_bounds_ns.saturating_add(other.time_bounds_ns);
        self.time_verify_ns = self.time_verify_ns.saturating_add(other.time_verify_ns);
        self.time_lookup_ns = self.time_lookup_ns.saturating_add(other.time_lookup_ns);
        self.time_merge_ns = self.time_merge_ns.saturating_add(other.time_merge_ns);
        self.time_total_ns = self.time_total_ns.saturating_add(other.time_total_ns);
    }

    /// Nanoseconds not accounted for by verification, lookup, bound computation, or
    /// fan-out merging (tree traversal bookkeeping, heap maintenance, …).
    pub fn time_other_ns(&self) -> u64 {
        self.time_total_ns
            .saturating_sub(self.time_bounds_ns)
            .saturating_sub(self.time_verify_ns)
            .saturating_sub(self.time_lookup_ns)
            .saturating_sub(self.time_merge_ns)
    }

    /// Every counter as a `(name, value)` pair, in declaration order — the mapping an
    /// observability layer turns into named metrics. The names are stable and match
    /// the field names (they appear as `p2h_search_<name>_total` in the engine's
    /// Prometheus exposition, see `docs/OBSERVABILITY.md`).
    pub fn to_metrics(&self) -> [(&'static str, u64); 13] {
        [
            ("inner_products", self.inner_products),
            ("nodes_visited", self.nodes_visited),
            ("leaves_visited", self.leaves_visited),
            ("candidates_verified", self.candidates_verified),
            ("pruned_subtrees", self.pruned_subtrees),
            ("pruned_by_ball_bound", self.pruned_by_ball_bound),
            ("pruned_by_cone_bound", self.pruned_by_cone_bound),
            ("buckets_probed", self.buckets_probed),
            ("time_bounds_ns", self.time_bounds_ns),
            ("time_verify_ns", self.time_verify_ns),
            ("time_lookup_ns", self.time_lookup_ns),
            ("time_merge_ns", self.time_merge_ns),
            ("time_total_ns", self.time_total_ns),
        ]
    }
}

impl std::fmt::Display for SearchStats {
    /// One log-friendly line: the work counters, then the timing split when present.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ip={} nodes={} leaves={} verified={} pruned={} ball={} cone={} buckets={}",
            self.inner_products,
            self.nodes_visited,
            self.leaves_visited,
            self.candidates_verified,
            self.pruned_subtrees,
            self.pruned_by_ball_bound,
            self.pruned_by_cone_bound,
            self.buckets_probed,
        )?;
        if self.time_total_ns > 0 {
            write!(
                f,
                " time={:.3}ms (bounds={:.3} verify={:.3} lookup={:.3} merge={:.3} other={:.3})",
                self.time_total_ns as f64 / 1.0e6,
                self.time_bounds_ns as f64 / 1.0e6,
                self.time_verify_ns as f64 / 1.0e6,
                self.time_lookup_ns as f64 / 1.0e6,
                self.time_merge_ns as f64 / 1.0e6,
                self.time_other_ns() as f64 / 1.0e6,
            )?;
        }
        Ok(())
    }
}

/// The answer to one P2HNNS query.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// The neighbors found, sorted by ascending point-to-hyperplane distance.
    pub neighbors: Vec<Neighbor>,
    /// Work counters and timings for this query.
    pub stats: SearchStats,
}

impl SearchResult {
    /// Indices of the returned neighbors, in ascending-distance order.
    pub fn indices(&self) -> Vec<usize> {
        self.neighbors.iter().map(|n| n.index).collect()
    }

    /// Distances of the returned neighbors, in ascending order.
    pub fn distances(&self) -> Vec<Scalar> {
        self.neighbors.iter().map(|n| n.distance).collect()
    }
}

/// A point-to-hyperplane nearest neighbor index.
///
/// Every method in the workspace — [`crate::LinearScan`], Ball-Tree, BC-Tree, NH, and FH
/// — implements this trait, which is what the evaluation harness and the examples are
/// written against.
///
/// The `Send + Sync` supertrait makes every index shareable across threads behind an
/// `Arc<dyn P2hIndex>`: [`P2hIndex::search`] takes `&self`, so a fully built index is an
/// immutable structure that any number of serving threads may query concurrently (the
/// contract the `p2h-engine` crate builds on). Implementations must not use interior
/// mutability in the search path.
pub trait P2hIndex: Send + Sync {
    /// Human-readable name of the method (e.g. `"BC-Tree"`), used in reports.
    fn name(&self) -> &'static str;

    /// Number of indexed data points.
    fn len(&self) -> usize;

    /// Whether the index is empty. Indexes are built from non-empty point sets, so this
    /// is normally `false`.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the indexed (augmented) points.
    fn dim(&self) -> usize;

    /// Approximate memory footprint of the index structure in bytes, *excluding* the raw
    /// data points themselves (which every method needs for verification). This is the
    /// quantity reported as "Index Size" in Table III of the paper.
    fn index_size_bytes(&self) -> usize;

    /// Answers a top-k point-to-hyperplane nearest neighbor query.
    fn search(&self, query: &HyperplaneQuery, params: &SearchParams) -> SearchResult;

    /// Answers a query using caller-provided [`QueryScratch`], enabling allocation-free
    /// steady-state execution when many queries run on one thread.
    ///
    /// Results are identical to [`P2hIndex::search`] — the scratch only carries
    /// reusable working memory (top-k heap storage, traversal stack, distance strips).
    /// The default implementation ignores the scratch and delegates to `search`, so
    /// indexes without a scratch-aware path (e.g. the hashing baselines) remain
    /// correct; the tree indexes and `LinearScan` override it.
    fn search_with_scratch(
        &self,
        query: &HyperplaneQuery,
        params: &SearchParams,
        scratch: &mut QueryScratch,
    ) -> SearchResult {
        let _ = scratch;
        self.search(query, params)
    }

    /// Convenience wrapper: exact top-k search with default parameters.
    fn search_exact(&self, query: &HyperplaneQuery, k: usize) -> SearchResult {
        self.search(query, &SearchParams::exact(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_params_constructors() {
        let exact = SearchParams::exact(10);
        assert_eq!(exact.k, 10);
        assert_eq!(exact.candidate_limit, None);
        assert_eq!(exact.branch_preference, BranchPreference::Center);

        let approx = SearchParams::approximate(5, 1000);
        assert_eq!(approx.k, 5);
        assert_eq!(approx.candidate_limit, Some(1000));

        let lb = exact.with_branch_preference(BranchPreference::LowerBound);
        assert_eq!(lb.branch_preference, BranchPreference::LowerBound);
        assert_eq!(SearchParams::default().k, 1);
    }

    #[test]
    fn stats_merge_sums_fields() {
        let mut a = SearchStats { inner_products: 2, candidates_verified: 3, ..Default::default() };
        let b = SearchStats {
            inner_products: 5,
            candidates_verified: 7,
            nodes_visited: 1,
            time_total_ns: 100,
            time_verify_ns: 40,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.inner_products, 7);
        assert_eq!(a.candidates_verified, 10);
        assert_eq!(a.nodes_visited, 1);
        assert_eq!(a.time_total_ns, 100);
    }

    #[test]
    fn stats_merge_saturates_instead_of_wrapping() {
        let mut near_max = SearchStats {
            inner_products: u64::MAX - 1,
            candidates_verified: u64::MAX,
            time_total_ns: u64::MAX - 10,
            ..Default::default()
        };
        let more = SearchStats {
            inner_products: 5,
            candidates_verified: 1,
            nodes_visited: 3,
            time_total_ns: 100,
            ..Default::default()
        };
        near_max.merge(&more);
        // Saturated, not wrapped to a tiny value.
        assert_eq!(near_max.inner_products, u64::MAX);
        assert_eq!(near_max.candidates_verified, u64::MAX);
        assert_eq!(near_max.time_total_ns, u64::MAX);
        // Unsaturated fields still sum normally.
        assert_eq!(near_max.nodes_visited, 3);
    }

    #[test]
    fn stats_metrics_mapping_covers_every_field_in_order() {
        let stats = SearchStats {
            inner_products: 1,
            nodes_visited: 2,
            leaves_visited: 3,
            candidates_verified: 4,
            pruned_subtrees: 5,
            pruned_by_ball_bound: 6,
            pruned_by_cone_bound: 7,
            buckets_probed: 8,
            time_bounds_ns: 9,
            time_verify_ns: 10,
            time_lookup_ns: 11,
            time_merge_ns: 12,
            time_total_ns: 13,
        };
        let metrics = stats.to_metrics();
        assert_eq!(metrics.len(), 13);
        let values: Vec<u64> = metrics.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, (1..=13).collect::<Vec<u64>>());
        // Names are unique and field-shaped.
        let mut names: Vec<&str> = metrics.iter().map(|&(n, _)| n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13);
        assert!(metrics.iter().all(|(n, _)| n.chars().all(|c| c.is_ascii_lowercase() || c == '_')));
    }

    #[test]
    fn stats_display_is_one_line_and_gains_timing_when_present() {
        let plain = SearchStats { candidates_verified: 42, ..Default::default() };
        let line = plain.to_string();
        assert!(line.contains("verified=42"));
        assert!(!line.contains("time="), "no timing section without timings");
        assert!(!line.contains('\n'));

        let timed = SearchStats {
            candidates_verified: 42,
            time_total_ns: 2_000_000,
            time_verify_ns: 1_000_000,
            time_merge_ns: 500_000,
            ..Default::default()
        };
        let line = timed.to_string();
        assert!(line.contains("time=2.000ms"));
        assert!(line.contains("merge=0.500"));
        assert!(line.contains("other=0.500"));
    }

    #[test]
    fn time_other_never_underflows() {
        let stats = SearchStats {
            time_total_ns: 10,
            time_verify_ns: 20,
            time_bounds_ns: 5,
            ..Default::default()
        };
        assert_eq!(stats.time_other_ns(), 0);
        let stats2 = SearchStats {
            time_total_ns: 100,
            time_verify_ns: 20,
            time_bounds_ns: 30,
            time_lookup_ns: 10,
            ..Default::default()
        };
        assert_eq!(stats2.time_other_ns(), 40);
    }

    #[test]
    fn search_result_accessors() {
        let result = SearchResult {
            neighbors: vec![Neighbor::new(4, 0.1), Neighbor::new(2, 0.5)],
            stats: SearchStats::default(),
        };
        assert_eq!(result.indices(), vec![4, 2]);
        assert_eq!(result.distances(), vec![0.1, 0.5]);
    }
}
