//! Report data structures and writers (CSV + Markdown) used by the benchmark binaries.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use p2h_core::{Error, Result};

/// One point of a query-time/recall curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Mean recall in percent (x-axis of the paper's figures).
    pub recall_pct: f64,
    /// Average query time in milliseconds (y-axis, log scale in the paper).
    pub time_ms: f64,
    /// The candidate budget that produced this point (0 = exact).
    pub budget: usize,
}

/// A labelled query-time/recall curve (one line of a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    /// Method label (e.g. `"BC-Tree"`).
    pub label: String,
    /// Curve points, ordered by increasing budget.
    pub points: Vec<CurvePoint>,
}

impl Curve {
    /// Creates an empty curve with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into(), points: Vec::new() }
    }

    /// Appends a point.
    pub fn push(&mut self, recall_pct: f64, time_ms: f64, budget: usize) {
        self.points.push(CurvePoint { recall_pct, time_ms, budget });
    }

    /// The query time (ms) of the first point reaching `recall_pct`, if any.
    pub fn time_at_recall(&self, recall_pct: f64) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.recall_pct >= recall_pct)
            .map(|p| p.time_ms)
            .fold(None, |best, t| Some(best.map_or(t, |b: f64| b.min(t))))
    }
}

/// One row of Table III: indexing time and index size for one method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexingReport {
    /// Method label.
    pub label: String,
    /// Wall-clock build time in seconds.
    pub build_time_s: f64,
    /// Index structure size in bytes (excluding the raw data points).
    pub index_size_bytes: usize,
}

impl IndexingReport {
    /// Index size in mebibytes, the unit of Table III.
    pub fn index_size_mb(&self) -> f64 {
        self.index_size_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Writes rows of strings as a CSV file, creating parent directories as needed.
///
/// # Errors
///
/// Returns an error if the file or its parent directory cannot be created or written.
pub fn write_csv(path: &Path, headers: &[&str], rows: &[Vec<String>]) -> Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| Error::Io(e.to_string()))?;
    }
    let mut writer = BufWriter::new(File::create(path)?);
    writeln!(writer, "{}", headers.join(","))?;
    for row in rows {
        writeln!(writer, "{}", row.join(","))?;
    }
    writer.flush()?;
    Ok(())
}

/// Renders a Markdown table from headers and rows (used for the stdout reports of the
/// benchmark binaries and for EXPERIMENTS.md).
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_accumulates_points_and_finds_recall_targets() {
        let mut curve = Curve::new("BC-Tree");
        curve.push(40.0, 0.5, 100);
        curve.push(85.0, 2.0, 1_000);
        curve.push(99.0, 5.0, 10_000);
        assert_eq!(curve.points.len(), 3);
        assert_eq!(curve.time_at_recall(80.0), Some(2.0));
        assert_eq!(curve.time_at_recall(99.5), None);
        assert_eq!(curve.time_at_recall(10.0), Some(0.5));
    }

    #[test]
    fn indexing_report_converts_units() {
        let report = IndexingReport {
            label: "Ball-Tree".into(),
            build_time_s: 1.5,
            index_size_bytes: 3 * 1024 * 1024,
        };
        assert!((report.index_size_mb() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn csv_round_trip_on_disk() {
        let mut path = std::env::temp_dir();
        path.push(format!("p2h-eval-report-{}.csv", std::process::id()));
        write_csv(
            &path,
            &["method", "recall", "time_ms"],
            &[
                vec!["BC-Tree".into(), "85.0".into(), "2.0".into()],
                vec!["NH".into(), "85.0".into(), "9.1".into()],
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("method,recall,time_ms\n"));
        assert!(text.contains("BC-Tree,85.0,2.0"));
        assert_eq!(text.lines().count(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn markdown_table_is_well_formed() {
        let table = markdown_table(
            &["Data Set", "Time"],
            &[vec!["Sift".into(), "1.2".into()], vec!["Gist".into(), "3.4".into()]],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| Data Set | Time |");
        assert_eq!(lines[1], "|---|---|");
        assert!(lines[2].contains("Sift"));
    }

    #[test]
    fn curves_serialize() {
        let mut curve = Curve::new("FH");
        curve.push(50.0, 1.0, 10);
        let text = serde_json::to_string(&curve).unwrap();
        let back: Curve = serde_json::from_str(&text).unwrap();
        assert_eq!(back, curve);
    }
}
