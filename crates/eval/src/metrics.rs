//! Per-query and per-method evaluation records.

use serde::{Deserialize, Serialize};

use p2h_core::SearchStats;

/// The outcome of running one query against one index configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryEvaluation {
    /// Recall against the exact ground truth (`|returned ∩ exact| / k`).
    pub recall: f64,
    /// Wall-clock query time in nanoseconds.
    pub time_ns: u64,
    /// Work counters collected during the query.
    pub stats: SearchStats,
}

/// Aggregated evaluation of one index configuration over a query batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodEvaluation {
    /// Method label (e.g. `"BC-Tree"`, `"NH (λ=8d)"`).
    pub label: String,
    /// `k` of the top-k queries.
    pub k: usize,
    /// Candidate budget used (`None` = exact search).
    pub candidate_limit: Option<usize>,
    /// Mean recall over all queries, in `[0, 1]`.
    pub mean_recall: f64,
    /// Average wall-clock query time in milliseconds.
    pub avg_query_time_ms: f64,
    /// Sum of the per-query work counters.
    pub total_stats: SearchStats,
    /// The individual per-query records.
    pub per_query: Vec<QueryEvaluation>,
}

impl MethodEvaluation {
    /// Builds the aggregate from per-query records.
    pub fn from_queries(
        label: impl Into<String>,
        k: usize,
        candidate_limit: Option<usize>,
        per_query: Vec<QueryEvaluation>,
    ) -> Self {
        let n = per_query.len().max(1) as f64;
        let mean_recall = per_query.iter().map(|q| q.recall).sum::<f64>() / n;
        let avg_query_time_ms = per_query.iter().map(|q| q.time_ns as f64).sum::<f64>() / n / 1.0e6;
        let mut total_stats = SearchStats::default();
        for q in &per_query {
            total_stats.merge(&q.stats);
        }
        Self {
            label: label.into(),
            k,
            candidate_limit,
            mean_recall,
            avg_query_time_ms,
            total_stats,
            per_query,
        }
    }

    /// Mean recall expressed as a percentage (the unit of the paper's figures).
    pub fn recall_pct(&self) -> f64 {
        self.mean_recall * 100.0
    }

    /// Average number of candidates verified per query.
    pub fn avg_candidates(&self) -> f64 {
        self.total_stats.candidates_verified as f64 / self.per_query.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(recall: f64, time_ns: u64, verified: u64) -> QueryEvaluation {
        QueryEvaluation {
            recall,
            time_ns,
            stats: SearchStats { candidates_verified: verified, ..Default::default() },
        }
    }

    #[test]
    fn aggregates_mean_recall_and_time() {
        let eval = MethodEvaluation::from_queries(
            "test",
            10,
            Some(100),
            vec![q(1.0, 2_000_000, 50), q(0.5, 4_000_000, 150)],
        );
        assert!((eval.mean_recall - 0.75).abs() < 1e-12);
        assert!((eval.recall_pct() - 75.0).abs() < 1e-9);
        assert!((eval.avg_query_time_ms - 3.0).abs() < 1e-9);
        assert_eq!(eval.total_stats.candidates_verified, 200);
        assert!((eval.avg_candidates() - 100.0).abs() < 1e-9);
        assert_eq!(eval.k, 10);
        assert_eq!(eval.candidate_limit, Some(100));
        assert_eq!(eval.label, "test");
    }

    #[test]
    fn empty_query_batch_is_safe() {
        let eval = MethodEvaluation::from_queries("empty", 5, None, vec![]);
        assert_eq!(eval.mean_recall, 0.0);
        assert_eq!(eval.avg_query_time_ms, 0.0);
        assert_eq!(eval.avg_candidates(), 0.0);
    }

    #[test]
    fn serializes_to_json() {
        let eval = MethodEvaluation::from_queries("json", 1, None, vec![q(1.0, 1_000, 1)]);
        let text = serde_json::to_string(&eval).unwrap();
        assert!(text.contains("\"label\":\"json\""));
        let back: MethodEvaluation = serde_json::from_str(&text).unwrap();
        assert_eq!(back, eval);
    }
}
