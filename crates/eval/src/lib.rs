//! # p2h-eval
//!
//! Evaluation harness for the P2HNNS indexes: the metrics of Section V-B of the paper
//! (recall, query time, indexing time, index size), candidate-budget sweeps that trace
//! the query-time/recall curves of Figures 5–9 and 11, the phase-level time profile of
//! Figure 10, report emission (CSV + Markdown) used by the benchmark binaries, and a
//! parallel batch-evaluation path ([`evaluate_parallel`]) reporting both per-query
//! latency and batch throughput.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod metrics;
mod profile;
mod report;
mod runner;

pub use metrics::{MethodEvaluation, QueryEvaluation};
pub use profile::{time_profile, TimeProfile};
pub use report::{markdown_table, write_csv, Curve, CurvePoint, IndexingReport};
pub use runner::{
    budget_for_recall, evaluate, evaluate_parallel, measure_build, sweep_budgets,
    ParallelEvaluation,
};
