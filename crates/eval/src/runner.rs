//! Running indexes over query batches: evaluation, budget sweeps, and build measurement.

use std::time::Instant;

use p2h_core::{HyperplaneQuery, P2hIndex, SearchParams};
use p2h_data::GroundTruth;

use crate::metrics::{MethodEvaluation, QueryEvaluation};
use crate::report::IndexingReport;

/// Evaluates an index on a batch of queries with the given search parameters.
///
/// Returns mean recall, average query time and aggregated work counters — the raw
/// material of every query-performance figure in the paper.
pub fn evaluate(
    index: &dyn P2hIndex,
    label: impl Into<String>,
    queries: &[HyperplaneQuery],
    ground_truth: &GroundTruth,
    params: &SearchParams,
) -> MethodEvaluation {
    assert_eq!(
        queries.len(),
        ground_truth.len(),
        "ground truth must cover exactly the evaluated queries"
    );
    let mut per_query = Vec::with_capacity(queries.len());
    for (i, query) in queries.iter().enumerate() {
        let start = Instant::now();
        let result = index.search(query, params);
        let time_ns = start.elapsed().as_nanos() as u64;
        let recall = ground_truth.recall(i, &result.indices(), &result.distances());
        per_query.push(QueryEvaluation { recall, time_ns, stats: result.stats });
    }
    MethodEvaluation::from_queries(label, params.k, params.candidate_limit, per_query)
}

/// Sweeps a list of candidate budgets, producing one [`MethodEvaluation`] per budget —
/// the points of a query-time/recall curve (Figures 5, 7, 9, 11).
pub fn sweep_budgets(
    index: &dyn P2hIndex,
    label: &str,
    queries: &[HyperplaneQuery],
    ground_truth: &GroundTruth,
    k: usize,
    budgets: &[usize],
) -> Vec<MethodEvaluation> {
    budgets
        .iter()
        .map(|&budget| {
            evaluate(
                index,
                label,
                queries,
                ground_truth,
                &SearchParams::approximate(k, budget),
            )
        })
        .collect()
}

/// Finds the smallest budget from `budgets` whose mean recall reaches `target_recall`
/// (in `[0, 1]`), returning its evaluation. Returns the evaluation of the largest budget
/// if the target is never reached (mirroring the paper's "at about X% recall" protocol).
pub fn budget_for_recall(
    index: &dyn P2hIndex,
    label: &str,
    queries: &[HyperplaneQuery],
    ground_truth: &GroundTruth,
    k: usize,
    target_recall: f64,
    budgets: &[usize],
) -> Option<MethodEvaluation> {
    let mut last = None;
    for &budget in budgets {
        let eval = evaluate(
            index,
            label,
            queries,
            ground_truth,
            &SearchParams::approximate(k, budget),
        );
        let reached = eval.mean_recall >= target_recall;
        last = Some(eval);
        if reached {
            return last;
        }
    }
    last
}

/// Measures the wall-clock build time of an index constructor and packages it with the
/// resulting index size — one row of Table III.
pub fn measure_build<I, F>(label: impl Into<String>, build: F) -> (I, IndexingReport)
where
    I: P2hIndex,
    F: FnOnce() -> I,
{
    let start = Instant::now();
    let index = build();
    let build_time_s = start.elapsed().as_secs_f64();
    let report = IndexingReport {
        label: label.into(),
        build_time_s,
        index_size_bytes: index.index_size_bytes(),
    };
    (index, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_balltree::BallTreeBuilder;
    use p2h_bctree::BcTreeBuilder;
    use p2h_core::{LinearScan, PointSet};
    use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};

    fn setup(n: usize) -> (PointSet, Vec<HyperplaneQuery>, GroundTruth) {
        let ps = SyntheticDataset::new(
            "eval-run",
            n,
            10,
            DataDistribution::GaussianClusters { clusters: 5, std_dev: 1.2 },
            55,
        )
        .generate()
        .unwrap();
        let queries = generate_queries(&ps, 12, QueryDistribution::DataDifference, 7).unwrap();
        let gt = GroundTruth::compute(&ps, &queries, 10, 2);
        (ps, queries, gt)
    }

    #[test]
    fn exact_evaluation_has_full_recall() {
        let (ps, queries, gt) = setup(1_500);
        let scan = LinearScan::new(ps.clone());
        let eval = evaluate(&scan, "Linear-Scan", &queries, &gt, &SearchParams::exact(10));
        assert!((eval.mean_recall - 1.0).abs() < 1e-9);
        assert_eq!(eval.per_query.len(), 12);
        assert!(eval.avg_query_time_ms >= 0.0);

        let tree = BcTreeBuilder::new(64).build(&ps).unwrap();
        let eval = evaluate(&tree, "BC-Tree", &queries, &gt, &SearchParams::exact(10));
        assert!((eval.mean_recall - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_recall_is_monotone_in_budget() {
        let (ps, queries, gt) = setup(4_000);
        let tree = BallTreeBuilder::new(100).build(&ps).unwrap();
        let budgets = [100, 500, 2_000, 4_000];
        let evals = sweep_budgets(&tree, "Ball-Tree", &queries, &gt, 10, &budgets);
        assert_eq!(evals.len(), budgets.len());
        for pair in evals.windows(2) {
            assert!(
                pair[1].mean_recall + 1e-9 >= pair[0].mean_recall,
                "recall must not decrease with a larger budget: {} -> {}",
                pair[0].mean_recall,
                pair[1].mean_recall
            );
        }
        assert!((evals.last().unwrap().mean_recall - 1.0).abs() < 1e-9);
        // Labels and budgets are carried through.
        assert_eq!(evals[0].label, "Ball-Tree");
        assert_eq!(evals[0].candidate_limit, Some(100));
    }

    #[test]
    fn budget_for_recall_picks_smallest_sufficient_budget() {
        let (ps, queries, gt) = setup(3_000);
        let tree = BcTreeBuilder::new(64).build(&ps).unwrap();
        let budgets = [50, 200, 1_000, 3_000];
        let eval =
            budget_for_recall(&tree, "BC-Tree", &queries, &gt, 10, 0.8, &budgets).unwrap();
        assert!(eval.mean_recall >= 0.8);
        assert!(eval.candidate_limit.unwrap() <= 3_000);

        // An unreachable target falls back to the largest budget.
        let eval =
            budget_for_recall(&tree, "BC-Tree", &queries, &gt, 10, 2.0, &[10, 20]).unwrap();
        assert_eq!(eval.candidate_limit, Some(20));
    }

    #[test]
    fn measure_build_reports_time_and_size() {
        let (ps, _, _) = setup(2_000);
        let (index, report) =
            measure_build("Ball-Tree", || BallTreeBuilder::new(100).build(&ps).unwrap());
        assert_eq!(report.label, "Ball-Tree");
        assert!(report.build_time_s > 0.0);
        assert_eq!(report.index_size_bytes, index.index_size_bytes());
        assert!(report.index_size_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "ground truth must cover")]
    fn mismatched_ground_truth_panics() {
        let (ps, queries, gt) = setup(500);
        let scan = LinearScan::new(ps);
        evaluate(&scan, "x", &queries[..3], &gt, &SearchParams::exact(1));
    }
}
