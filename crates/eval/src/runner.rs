//! Running indexes over query batches: evaluation (sequential and parallel), budget
//! sweeps, and build measurement.

use std::time::Instant;

use p2h_core::{HyperplaneQuery, P2hIndex, SearchParams};
use p2h_data::GroundTruth;
use p2h_engine::{BatchExecutor, BatchRequest};

use crate::metrics::{MethodEvaluation, QueryEvaluation};
use crate::report::IndexingReport;

/// Evaluates an index on a batch of queries with the given search parameters.
///
/// Returns mean recall, average query time and aggregated work counters — the raw
/// material of every query-performance figure in the paper.
pub fn evaluate(
    index: &dyn P2hIndex,
    label: impl Into<String>,
    queries: &[HyperplaneQuery],
    ground_truth: &GroundTruth,
    params: &SearchParams,
) -> MethodEvaluation {
    assert_eq!(
        queries.len(),
        ground_truth.len(),
        "ground truth must cover exactly the evaluated queries"
    );
    let mut per_query = Vec::with_capacity(queries.len());
    for (i, query) in queries.iter().enumerate() {
        let start = Instant::now();
        let result = index.search(query, params);
        let time_ns = start.elapsed().as_nanos() as u64;
        let recall = ground_truth.recall(i, &result.indices(), &result.distances());
        per_query.push(QueryEvaluation { recall, time_ns, stats: result.stats });
    }
    MethodEvaluation::from_queries(label, params.k, params.candidate_limit, per_query)
}

/// A [`MethodEvaluation`] produced by concurrent workers, together with the batch-level
/// throughput numbers that only make sense for a parallel run.
///
/// The per-query recalls and work counters in `method` are bit-identical to what
/// [`evaluate`] computes (each query is answered independently and results are
/// reassembled in query order); per-query `time_ns` and the wall-clock throughput are
/// the only fields that vary run to run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelEvaluation {
    /// The usual per-query metrics, in query order.
    pub method: MethodEvaluation,
    /// Wall-clock nanoseconds for the whole batch.
    pub wall_time_ns: u64,
    /// Number of worker threads used.
    pub threads: usize,
}

impl ParallelEvaluation {
    /// Queries answered per second of batch wall-clock time.
    pub fn throughput_qps(&self) -> f64 {
        if self.wall_time_ns == 0 {
            return 0.0;
        }
        self.method.per_query.len() as f64 / (self.wall_time_ns as f64 / 1.0e9)
    }
}

/// Evaluates an index on a batch of queries using `threads` worker threads (`0` = one
/// per available CPU), reporting both per-query latency metrics and batch throughput.
///
/// The batch itself runs on `p2h_engine`'s [`BatchExecutor`] — one scheduler for the
/// whole workspace — so work is handed out dynamically and results come back in query
/// order; recall scoring happens afterwards on the ordered results.
pub fn evaluate_parallel(
    index: &dyn P2hIndex,
    label: impl Into<String>,
    queries: &[HyperplaneQuery],
    ground_truth: &GroundTruth,
    params: &SearchParams,
    threads: usize,
) -> ParallelEvaluation {
    assert_eq!(
        queries.len(),
        ground_truth.len(),
        "ground truth must cover exactly the evaluated queries"
    );
    let executor = BatchExecutor::new(threads);
    let request = BatchRequest::new(queries.to_vec(), params.clone());
    let response = executor.execute(index, &request);

    let per_query: Vec<QueryEvaluation> = response
        .results
        .iter()
        .zip(response.latencies_ns.iter())
        .enumerate()
        .map(|(i, (result, &time_ns))| QueryEvaluation {
            recall: ground_truth.recall(i, &result.indices(), &result.distances()),
            time_ns,
            stats: result.stats,
        })
        .collect();
    ParallelEvaluation {
        method: MethodEvaluation::from_queries(label, params.k, params.candidate_limit, per_query),
        wall_time_ns: response.wall_time_ns,
        threads: executor.threads(),
    }
}

/// Sweeps a list of candidate budgets, producing one [`MethodEvaluation`] per budget —
/// the points of a query-time/recall curve (Figures 5, 7, 9, 11).
pub fn sweep_budgets(
    index: &dyn P2hIndex,
    label: &str,
    queries: &[HyperplaneQuery],
    ground_truth: &GroundTruth,
    k: usize,
    budgets: &[usize],
) -> Vec<MethodEvaluation> {
    budgets
        .iter()
        .map(|&budget| {
            evaluate(index, label, queries, ground_truth, &SearchParams::approximate(k, budget))
        })
        .collect()
}

/// Finds the smallest budget from `budgets` whose mean recall reaches `target_recall`
/// (in `[0, 1]`), returning its evaluation. Returns the evaluation of the largest budget
/// if the target is never reached (mirroring the paper's "at about X% recall" protocol).
pub fn budget_for_recall(
    index: &dyn P2hIndex,
    label: &str,
    queries: &[HyperplaneQuery],
    ground_truth: &GroundTruth,
    k: usize,
    target_recall: f64,
    budgets: &[usize],
) -> Option<MethodEvaluation> {
    let mut last = None;
    for &budget in budgets {
        let eval =
            evaluate(index, label, queries, ground_truth, &SearchParams::approximate(k, budget));
        let reached = eval.mean_recall >= target_recall;
        last = Some(eval);
        if reached {
            return last;
        }
    }
    last
}

/// Measures the wall-clock build time of an index constructor and packages it with the
/// resulting index size — one row of Table III.
pub fn measure_build<I, F>(label: impl Into<String>, build: F) -> (I, IndexingReport)
where
    I: P2hIndex,
    F: FnOnce() -> I,
{
    let start = Instant::now();
    let index = build();
    let build_time_s = start.elapsed().as_secs_f64();
    let report = IndexingReport {
        label: label.into(),
        build_time_s,
        index_size_bytes: index.index_size_bytes(),
    };
    (index, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_balltree::BallTreeBuilder;
    use p2h_bctree::BcTreeBuilder;
    use p2h_core::{LinearScan, PointSet};
    use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};

    fn setup(n: usize) -> (PointSet, Vec<HyperplaneQuery>, GroundTruth) {
        let ps = SyntheticDataset::new(
            "eval-run",
            n,
            10,
            DataDistribution::GaussianClusters { clusters: 5, std_dev: 1.2 },
            55,
        )
        .generate()
        .unwrap();
        let queries = generate_queries(&ps, 12, QueryDistribution::DataDifference, 7).unwrap();
        let gt = GroundTruth::compute(&ps, &queries, 10, 2);
        (ps, queries, gt)
    }

    #[test]
    fn exact_evaluation_has_full_recall() {
        let (ps, queries, gt) = setup(1_500);
        let scan = LinearScan::new(ps.clone());
        let eval = evaluate(&scan, "Linear-Scan", &queries, &gt, &SearchParams::exact(10));
        assert!((eval.mean_recall - 1.0).abs() < 1e-9);
        assert_eq!(eval.per_query.len(), 12);
        assert!(eval.avg_query_time_ms >= 0.0);

        let tree = BcTreeBuilder::new(64).build(&ps).unwrap();
        let eval = evaluate(&tree, "BC-Tree", &queries, &gt, &SearchParams::exact(10));
        assert!((eval.mean_recall - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_recall_is_monotone_in_budget() {
        let (ps, queries, gt) = setup(4_000);
        let tree = BallTreeBuilder::new(100).build(&ps).unwrap();
        let budgets = [100, 500, 2_000, 4_000];
        let evals = sweep_budgets(&tree, "Ball-Tree", &queries, &gt, 10, &budgets);
        assert_eq!(evals.len(), budgets.len());
        for pair in evals.windows(2) {
            assert!(
                pair[1].mean_recall + 1e-9 >= pair[0].mean_recall,
                "recall must not decrease with a larger budget: {} -> {}",
                pair[0].mean_recall,
                pair[1].mean_recall
            );
        }
        assert!((evals.last().unwrap().mean_recall - 1.0).abs() < 1e-9);
        // Labels and budgets are carried through.
        assert_eq!(evals[0].label, "Ball-Tree");
        assert_eq!(evals[0].candidate_limit, Some(100));
    }

    #[test]
    fn budget_for_recall_picks_smallest_sufficient_budget() {
        let (ps, queries, gt) = setup(3_000);
        let tree = BcTreeBuilder::new(64).build(&ps).unwrap();
        let budgets = [50, 200, 1_000, 3_000];
        let eval = budget_for_recall(&tree, "BC-Tree", &queries, &gt, 10, 0.8, &budgets).unwrap();
        assert!(eval.mean_recall >= 0.8);
        assert!(eval.candidate_limit.unwrap() <= 3_000);

        // An unreachable target falls back to the largest budget.
        let eval = budget_for_recall(&tree, "BC-Tree", &queries, &gt, 10, 2.0, &[10, 20]).unwrap();
        assert_eq!(eval.candidate_limit, Some(20));
    }

    #[test]
    fn measure_build_reports_time_and_size() {
        let (ps, _, _) = setup(2_000);
        let (index, report) =
            measure_build("Ball-Tree", || BallTreeBuilder::new(100).build(&ps).unwrap());
        assert_eq!(report.label, "Ball-Tree");
        assert!(report.build_time_s > 0.0);
        assert_eq!(report.index_size_bytes, index.index_size_bytes());
        assert!(report.index_size_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "ground truth must cover")]
    fn mismatched_ground_truth_panics() {
        let (ps, queries, gt) = setup(500);
        let scan = LinearScan::new(ps);
        evaluate(&scan, "x", &queries[..3], &gt, &SearchParams::exact(1));
    }

    #[test]
    fn parallel_evaluation_matches_sequential_metrics() {
        let (ps, queries, gt) = setup(2_000);
        let tree = BcTreeBuilder::new(64).build(&ps).unwrap();
        let params = SearchParams::approximate(10, 600);
        let sequential = evaluate(&tree, "BC-Tree", &queries, &gt, &params);
        for threads in [1, 2, 4] {
            let parallel = evaluate_parallel(&tree, "BC-Tree", &queries, &gt, &params, threads);
            assert_eq!(parallel.threads, threads);
            assert_eq!(parallel.method.per_query.len(), sequential.per_query.len());
            assert_eq!(parallel.method.label, sequential.label);
            assert!((parallel.method.mean_recall - sequential.mean_recall).abs() < 1e-12);
            // Work counters are deterministic; only timings vary between runs.
            for (p, s) in parallel.method.per_query.iter().zip(sequential.per_query.iter()) {
                assert_eq!(p.recall, s.recall);
                assert_eq!(p.stats.candidates_verified, s.stats.candidates_verified);
                assert_eq!(p.stats.inner_products, s.stats.inner_products);
            }
            assert!(parallel.wall_time_ns > 0);
            assert!(parallel.throughput_qps() > 0.0);
        }
    }

    #[test]
    fn parallel_evaluation_handles_empty_and_zero_threads() {
        let (ps, _, _) = setup(200);
        let scan = LinearScan::new(ps);
        let gt = GroundTruth::compute(scan.points(), &[], 5, 2);
        let parallel = evaluate_parallel(&scan, "scan", &[], &gt, &SearchParams::exact(5), 0);
        assert!(parallel.method.per_query.is_empty());
        assert!(parallel.threads >= 1);
    }
}
