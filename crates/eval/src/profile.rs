//! Phase-level time profiling (Figure 10 of the paper).

use serde::{Deserialize, Serialize};

use p2h_core::{HyperplaneQuery, P2hIndex, SearchParams};

/// Average per-query time, split into the four phases of Figure 10.
///
/// * `verification_ms` — exact `|⟨x, q⟩|` evaluations of candidates,
/// * `lookup_ms` — hash-table / projection-array probing (zero for the trees),
/// * `bounds_ms` — node-level and point-level lower-bound computation (zero for the
///   hashing methods),
/// * `other_ms` — traversal bookkeeping, heap maintenance, result assembly.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeProfile {
    /// Average candidate-verification time per query (ms).
    pub verification_ms: f64,
    /// Average table/projection lookup time per query (ms).
    pub lookup_ms: f64,
    /// Average lower-bound computation time per query (ms).
    pub bounds_ms: f64,
    /// Average unattributed time per query (ms).
    pub other_ms: f64,
}

impl TimeProfile {
    /// Total average query time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.verification_ms + self.lookup_ms + self.bounds_ms + self.other_ms
    }

    /// The four phases as fractions of the total (summing to 1 unless the total is 0).
    pub fn fractions(&self) -> [f64; 4] {
        let total = self.total_ms();
        if total <= 0.0 {
            return [0.0; 4];
        }
        [
            self.verification_ms / total,
            self.lookup_ms / total,
            self.bounds_ms / total,
            self.other_ms / total,
        ]
    }
}

/// Profiles an index over a query batch with fine-grained timing enabled, averaging the
/// phase breakdown over all queries.
pub fn time_profile(
    index: &dyn P2hIndex,
    queries: &[HyperplaneQuery],
    k: usize,
    candidate_limit: Option<usize>,
) -> TimeProfile {
    if queries.is_empty() {
        return TimeProfile::default();
    }
    let mut params = SearchParams::exact(k).with_timing();
    params.candidate_limit = candidate_limit;
    let mut total = TimeProfile::default();
    for query in queries {
        let result = index.search(query, &params);
        let stats = result.stats;
        total.verification_ms += stats.time_verify_ns as f64 / 1.0e6;
        total.lookup_ms += stats.time_lookup_ns as f64 / 1.0e6;
        total.bounds_ms += stats.time_bounds_ns as f64 / 1.0e6;
        total.other_ms += stats.time_other_ns() as f64 / 1.0e6;
    }
    let n = queries.len() as f64;
    TimeProfile {
        verification_ms: total.verification_ms / n,
        lookup_ms: total.lookup_ms / n,
        bounds_ms: total.bounds_ms / n,
        other_ms: total.other_ms / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_bctree::BcTreeBuilder;
    use p2h_core::LinearScan;
    use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};

    #[test]
    fn fractions_sum_to_one() {
        let p = TimeProfile { verification_ms: 2.0, lookup_ms: 1.0, bounds_ms: 0.5, other_ms: 0.5 };
        assert!((p.total_ms() - 4.0).abs() < 1e-12);
        let f = p.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((f[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_profile_is_safe() {
        let p = TimeProfile::default();
        assert_eq!(p.total_ms(), 0.0);
        assert_eq!(p.fractions(), [0.0; 4]);
        assert_eq!(time_profile(&dummy_index(), &[], 5, None), TimeProfile::default());
    }

    fn dummy_index() -> LinearScan {
        let ps = SyntheticDataset::new(
            "profile-dummy",
            50,
            4,
            DataDistribution::Uniform { scale: 1.0 },
            1,
        )
        .generate()
        .unwrap();
        LinearScan::new(ps)
    }

    #[test]
    fn profiles_real_indexes() {
        let ps = SyntheticDataset::new(
            "profile",
            3_000,
            16,
            DataDistribution::GaussianClusters { clusters: 4, std_dev: 1.0 },
            2,
        )
        .generate()
        .unwrap();
        let queries = generate_queries(&ps, 5, QueryDistribution::DataDifference, 3).unwrap();
        let tree = BcTreeBuilder::new(100).build(&ps).unwrap();
        let profile = time_profile(&tree, &queries, 10, None);
        assert!(profile.total_ms() > 0.0);
        // A tree spends time on bounds and verification, none on table lookups.
        assert!(profile.bounds_ms > 0.0);
        assert_eq!(profile.lookup_ms, 0.0);

        let scan = LinearScan::new(ps);
        let profile = time_profile(&scan, &queries, 10, None);
        assert!(profile.verification_ms > 0.0);
        assert_eq!(profile.bounds_ms, 0.0);
    }
}
