//! The lock-free metric instruments: counters, gauges, and atomic histograms.
//!
//! Every instrument is a plain collection of `AtomicU64`s updated with `Relaxed`
//! ordering — each sample is an independent event and exposition only needs a
//! point-in-time snapshot, so no ordering relationship between metrics is promised
//! (the standard Prometheus-client contract). Handles are `Arc`s handed out by the
//! [`crate::MetricsRegistry`]; recording never takes a lock and never allocates.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::{bucket_index, StreamingHistogram, BUCKET_COUNT};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self { value: AtomicU64::new(0) }
    }

    /// Adds `delta` (saturating at `u64::MAX` is not attempted — counters wrap only
    /// after centuries of nanosecond accumulation, and Prometheus rate() handles
    /// resets).
    #[inline]
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depths, bytes currently mapped).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self { value: AtomicU64::new(0) }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtracts `delta`, saturating at zero (a concurrent mis-paired `sub` must not
    /// wrap the gauge to ~2^64).
    #[inline]
    pub fn sub(&self, delta: u64) {
        let mut current = self.value.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(delta);
            match self.value.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A shared histogram over the workspace bucket layout (see [`crate::hist`]),
/// recordable from any thread without locks.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample: two `fetch_add`s, one `fetch_max`, one bucket `fetch_add`.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Merges a locally accumulated [`StreamingHistogram`] in one pass — the cheap way
    /// for a batch executor to publish per-query samples: record into a local
    /// histogram on the hot path, merge once per batch.
    pub fn merge_from(&self, local: &StreamingHistogram) {
        if local.is_empty() {
            return;
        }
        for (bucket, &count) in local.bucket_counts().iter().enumerate() {
            if count > 0 {
                self.buckets[bucket].fetch_add(count, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(local.count(), Ordering::Relaxed);
        self.sum.fetch_add(local.sum(), Ordering::Relaxed);
        self.max.fetch_max(local.max_value(), Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram as a value type.
    pub fn snapshot(&self) -> StreamingHistogram {
        let mut counts = [0u64; BUCKET_COUNT];
        for (bucket, atomic) in self.buckets.iter().enumerate() {
            counts[bucket] = atomic.load(Ordering::Relaxed);
        }
        StreamingHistogram::from_parts(
            counts,
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let counter = Counter::new();
        counter.inc();
        counter.add(41);
        assert_eq!(counter.value(), 42);

        let gauge = Gauge::new();
        gauge.set(10);
        gauge.add(5);
        gauge.sub(3);
        assert_eq!(gauge.value(), 12);
        gauge.sub(100);
        assert_eq!(gauge.value(), 0, "gauge sub saturates at zero");
    }

    #[test]
    fn atomic_histogram_matches_streaming() {
        let atomic = Histogram::new();
        let mut local = StreamingHistogram::new();
        for value in [0u64, 1, 7, 63, 64, 4096, 1 << 50] {
            atomic.record(value);
            local.record(value);
        }
        assert_eq!(atomic.snapshot(), local);
        assert_eq!(atomic.count(), 7);
    }

    #[test]
    fn merge_from_equals_recording() {
        let direct = Histogram::new();
        let merged = Histogram::new();
        let mut local = StreamingHistogram::new();
        for value in 0..1000u64 {
            direct.record(value * 13 % 8192);
            local.record(value * 13 % 8192);
        }
        merged.merge_from(&local);
        assert_eq!(direct.snapshot(), merged.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let hist = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let hist = &hist;
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        hist.record(t * 1_000 + i % 977);
                    }
                });
            }
        });
        assert_eq!(hist.count(), 40_000);
        assert_eq!(hist.snapshot().count(), 40_000);
    }
}
