//! Prometheus text exposition format (version 0.0.4) rendering.
//!
//! The renderer walks a [`MetricsSnapshot`] and emits one `# HELP`/`# TYPE` header per
//! family followed by its series. Histograms expand into the standard triple:
//! cumulative `_bucket{le="..."}` series (finite bounds from the shared log-bucket
//! layout, then `le="+Inf"`), `_sum`, and `_count`. Empty buckets are elided except
//! `+Inf`, which is always present — scrape-side quantile math only needs the
//! cumulative counts at the bounds that actually changed.
//!
//! Output is deterministic: families, series, and labels all come out of the snapshot
//! pre-sorted, so a golden-file test can compare byte-for-byte.

use std::fmt::Write as _;

use crate::hist::{bucket_upper_bound, StreamingHistogram};
use crate::registry::{MetricsSnapshot, SeriesValue};

impl MetricsSnapshot {
    /// Renders the snapshot in Prometheus text exposition format.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for series in &family.series {
                match &series.value {
                    SeriesValue::Counter(v) | SeriesValue::Gauge(v) => {
                        write_sample(&mut out, &family.name, &series.labels, None, *v);
                    }
                    SeriesValue::Histogram(hist) => {
                        write_histogram(&mut out, &family.name, &series.labels, hist);
                    }
                }
            }
        }
        out
    }
}

fn write_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    hist: &StreamingHistogram,
) {
    let bucket_name = format!("{name}_bucket");
    let mut cumulative = 0u64;
    for (bucket, &count) in hist.bucket_counts().iter().enumerate() {
        cumulative += count;
        match bucket_upper_bound(bucket) {
            Some(le) => {
                if count > 0 {
                    write_sample(out, &bucket_name, labels, Some(&le.to_string()), cumulative);
                }
            }
            None => write_sample(out, &bucket_name, labels, Some("+Inf"), cumulative),
        }
    }
    write_sample(out, &format!("{name}_sum"), labels, None, hist.sum());
    write_sample(out, &format!("{name}_count"), labels, None, hist.count());
}

fn write_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    le: Option<&str>,
    value: u64,
) {
    out.push_str(name);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (key, val) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{key}=\"{}\"", escape_label(val));
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "le=\"{le}\"");
        }
        out.push('}');
    }
    let _ = writeln!(out, " {value}");
}

/// Escapes a label value per the exposition format: backslash, double-quote, newline.
fn escape_label(value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => escaped.push_str("\\\\"),
            '"' => escaped.push_str("\\\""),
            '\n' => escaped.push_str("\\n"),
            other => escaped.push(other),
        }
    }
    escaped
}

/// Escapes help text: backslash and newline (quotes are legal in help).
fn escape_help(value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            other => escaped.push(other),
        }
    }
    escaped
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    #[test]
    fn renders_counters_and_gauges() {
        let registry = MetricsRegistry::new();
        registry.counter("reqs_total", "Requests served.", &[("index", "ball")]).add(3);
        registry.gauge("depth", "Queue depth.", &[]).set(2);
        let text = registry.render_text();
        assert!(text.contains("# HELP reqs_total Requests served.\n"));
        assert!(text.contains("# TYPE reqs_total counter\n"));
        assert!(text.contains("reqs_total{index=\"ball\"} 3\n"));
        assert!(text.contains("# TYPE depth gauge\n"));
        assert!(text.contains("\ndepth 2\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("lat_ns", "Latency.", &[]);
        for v in [1u64, 1, 2, 1000] {
            hist.record(v);
        }
        let text = registry.render_text();
        assert!(text.contains("lat_ns_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("lat_ns_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("lat_ns_bucket{le=\"1023\"} 4\n"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("lat_ns_sum 1004\n"));
        assert!(text.contains("lat_ns_count 4\n"));
        // Empty buckets between 3 and 1023 are elided.
        assert!(!text.contains("le=\"7\""));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new();
        registry.counter("c_total", "C.", &[("name", "a\"b\\c\nd")]).inc();
        let text = registry.render_text();
        assert!(text.contains("c_total{name=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }
}
