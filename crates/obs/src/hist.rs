//! Fixed-boundary log-bucketed streaming histograms.
//!
//! Every histogram in the workspace shares one bucket layout: bucket 0 holds the value
//! 0, bucket `i` (1 ≤ i ≤ 41) holds the values in `[2^(i-1), 2^i - 1]`, and the last
//! bucket is the `+Inf` overflow. The boundaries are powers of two, so classifying a
//! sample is a `leading_zeros` instruction — no search, no float math — and two
//! histograms recorded independently can be merged by adding their bucket counts
//! without any loss relative to recording every sample into one histogram. That merge
//! stability is what lets per-batch histograms accumulate into the process-wide
//! registry, and it is property-tested in `tests/histogram_merge.rs`.
//!
//! Quantiles use the nearest-rank method and report the *upper bound* of the bucket
//! containing the ranked sample (the exact maximum for the overflow bucket). The
//! reported value therefore overestimates the true quantile by at most 2x — the usual
//! log-bucket contract (Prometheus, HdrHistogram at base-2 granularity) — and is
//! deterministic under merging.

/// Number of buckets: value 0, 41 power-of-two ranges (up to `2^41 - 1` ≈ 36 minutes
/// in nanoseconds), and the `+Inf` overflow.
pub const BUCKET_COUNT: usize = 43;

/// Index of the `+Inf` overflow bucket.
pub const OVERFLOW_BUCKET: usize = BUCKET_COUNT - 1;

/// The bucket a value falls into: 0 for 0, otherwise `ceil(log2(v + 1))` capped at the
/// overflow bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(OVERFLOW_BUCKET)
    }
}

/// The inclusive upper bound of a bucket, or `None` for the `+Inf` overflow bucket.
#[inline]
pub fn bucket_upper_bound(bucket: usize) -> Option<u64> {
    match bucket {
        0 => Some(0),
        b if b < OVERFLOW_BUCKET => Some((1u64 << b) - 1),
        _ => None,
    }
}

/// A single-threaded streaming histogram over the shared bucket layout, with exact
/// count, sum, and maximum.
///
/// This is the value type: executors record into a local `StreamingHistogram` while a
/// batch runs (no atomics on the per-query path), then merge it into the shared
/// [`crate::Histogram`] in one pass. It is also what a registry snapshot hands back
/// for rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingHistogram {
    buckets: [u64; BUCKET_COUNT],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self { buckets: [0; BUCKET_COUNT], count: 0, sum: 0, max: 0 }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Builds a histogram from an iterator of samples.
    pub fn from_samples(samples: impl IntoIterator<Item = u64>) -> Self {
        let mut hist = Self::new();
        for sample in samples {
            hist.record(sample);
        }
        hist
    }

    /// Adds every bucket of `other` into this histogram. Equivalent to having recorded
    /// `other`'s samples here (up to the saturating sum), whatever order they arrived
    /// in.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Saturating sum of every recorded sample.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample, or 0 with no samples.
    pub fn max_value(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The per-bucket counts (non-cumulative), in bucket order.
    pub fn bucket_counts(&self) -> &[u64; BUCKET_COUNT] {
        &self.buckets
    }

    /// Assembles a histogram from raw parts — used by [`crate::Histogram::snapshot`]
    /// to turn a set of atomic loads into the value type.
    pub(crate) fn from_parts(buckets: [u64; BUCKET_COUNT], count: u64, sum: u64, max: u64) -> Self {
        Self { buckets, count, sum, max }
    }

    /// The `q`-quantile (`q` in `[0, 1]`, nearest-rank method): the upper bound of the
    /// bucket containing the ranked sample, the exact maximum for the overflow bucket,
    /// and 0 with no samples. Deterministic under [`StreamingHistogram::merge`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (bucket, &count) in self.buckets.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return bucket_upper_bound(bucket).unwrap_or(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), OVERFLOW_BUCKET);
        // Every finite bucket's upper bound lands in its own bucket, and the next
        // value lands in the next bucket.
        for bucket in 0..OVERFLOW_BUCKET {
            let le = bucket_upper_bound(bucket).unwrap();
            assert_eq!(bucket_index(le), bucket, "le={le}");
            assert_eq!(bucket_index(le + 1), bucket + 1);
        }
        assert_eq!(bucket_upper_bound(OVERFLOW_BUCKET), None);
    }

    #[test]
    fn records_count_sum_max() {
        let hist = StreamingHistogram::from_samples([0, 1, 5, 1000]);
        assert_eq!(hist.count(), 4);
        assert_eq!(hist.sum(), 1006);
        assert_eq!(hist.max_value(), 1000);
        assert!((hist.mean() - 251.5).abs() < 1e-9);
        assert!(!hist.is_empty());
    }

    #[test]
    fn quantile_reports_bucket_upper_bound() {
        // 1..=100: ranks 1..=50 live in buckets up to bucket_index(50)=6 (le=63).
        let hist = StreamingHistogram::from_samples(1..=100);
        assert_eq!(hist.quantile(0.5), 63);
        assert_eq!(hist.quantile(0.95), 127);
        assert_eq!(hist.quantile(0.0), 1); // rank 1 → bucket 1, le=1
        assert_eq!(hist.quantile(1.0), 127);
        assert_eq!(hist.max_value(), 100);
    }

    #[test]
    fn overflow_bucket_reports_exact_max() {
        let huge = 1u64 << 50;
        let hist = StreamingHistogram::from_samples([huge]);
        assert_eq!(hist.bucket_counts()[OVERFLOW_BUCKET], 1);
        assert_eq!(hist.quantile(0.99), huge);
    }

    #[test]
    fn merge_matches_single_pass() {
        let all = StreamingHistogram::from_samples((0..500).map(|i| i * 37 % 4096));
        let mut merged = StreamingHistogram::from_samples((0..250).map(|i| i * 37 % 4096));
        merged.merge(&StreamingHistogram::from_samples((250..500).map(|i| i * 37 % 4096)));
        assert_eq!(merged, all);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let hist = StreamingHistogram::new();
        assert_eq!(hist.quantile(0.99), 0);
        assert_eq!(hist.mean(), 0.0);
        assert_eq!(hist.max_value(), 0);
        assert!(hist.is_empty());
    }

    #[test]
    fn sum_saturates() {
        let mut hist = StreamingHistogram::from_samples([u64::MAX]);
        hist.record(u64::MAX);
        assert_eq!(hist.sum(), u64::MAX);
        assert_eq!(hist.count(), 2);
    }
}
