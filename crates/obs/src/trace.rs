//! Sampled structured query tracing: every-Nth-query spans written as JSON lines.
//!
//! Tracing is configured once per process through the `P2H_TRACE` environment
//! variable: `P2H_TRACE=path` traces every query to `path`, `P2H_TRACE=path:N` traces
//! every Nth query. When the variable is unset (the default), [`from_env`] returns
//! `None` and the serving hot path pays exactly one `OnceLock` load per batch —
//! no branch per query, no allocation, no clock read.
//!
//! Each record is one JSON object per line (see `docs/OBSERVABILITY.md` for the
//! schema): the query's position and effective parameters, its wall-clock latency,
//! and the stage breakdown carried by [`SearchStats`-shaped fields] — bounds
//! (traversal), verify (leaf verification), lookup (hash probing), merge (sharded
//! fan-out merge), and the unattributed remainder. Stage timings require the serving
//! layer to enable `collect_timing` for sampled queries; that only adds clock reads,
//! so traced answers stay bit-identical (enforced in CI by running
//! `snapshot_bench --check` under `P2H_TRACE`).

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A JSON-lines trace sink with every-Nth sampling.
///
/// A failed append (disk full, closed fd) permanently disables the sink: tracing is
/// best-effort telemetry, and an unwritable sink must neither take the serve path
/// down nor re-discover the same error on every sampled query. The first failure
/// increments `p2h_trace_errors_total` exactly once; after that [`sample`] returns
/// `None` without drawing a sequence number, so the serve path pays one relaxed load.
///
/// [`sample`]: TraceSink::sample
#[derive(Debug)]
pub struct TraceSink {
    writer: Mutex<BufWriter<File>>,
    rate: u64,
    sequence: AtomicU64,
    disabled: AtomicBool,
}

impl TraceSink {
    /// Creates a sink writing to `path`, sampling every `rate`-th query (`rate` is
    /// clamped to at least 1).
    pub fn create(path: &Path, rate: u64) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
            rate: rate.max(1),
            sequence: AtomicU64::new(0),
            disabled: AtomicBool::new(false),
        })
    }

    /// The sampling rate (1 = every query).
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Whether a write failure has permanently disabled this sink.
    pub fn is_disabled(&self) -> bool {
        self.disabled.load(Ordering::Acquire)
    }

    /// Draws the next global sequence number and decides whether that query is
    /// sampled; returns the sequence number if so. One `fetch_add` per call, one
    /// relaxed load once the sink is disabled.
    #[inline]
    pub fn sample(&self) -> Option<u64> {
        if self.disabled.load(Ordering::Acquire) {
            return None;
        }
        let seq = self.sequence.fetch_add(1, Ordering::Relaxed);
        seq.is_multiple_of(self.rate).then_some(seq)
    }

    /// Writes one record as a JSON line and flushes it (the sink lives for the whole
    /// process, so buffered bytes would otherwise only surface at exit). A failed
    /// write or flush disables the sink (see the type-level docs).
    pub fn write(&self, record: &QueryTrace<'_>) {
        let line = record.to_json_line();
        let mut writer = self.writer.lock().expect("trace sink poisoned");
        let result = match crate::fault::check("trace.write") {
            Some(_) => Err(std::io::Error::other("injected trace write failure")),
            None => writer.write_all(line.as_bytes()).and_then(|()| writer.flush()),
        };
        if result.is_err() {
            self.disable();
        }
    }

    /// Flushes buffered records; a failure disables the sink like a failed write.
    pub fn flush(&self) {
        if self.writer.lock().expect("trace sink poisoned").flush().is_err() {
            self.disable();
        }
    }

    fn disable(&self) {
        // swap() makes the metric increment exactly-once even under concurrent
        // failing writers.
        if !self.disabled.swap(true, Ordering::AcqRel) {
            crate::global()
                .counter(
                    "p2h_trace_errors_total",
                    "Trace sinks disabled after a failed JSON-lines append.",
                    &[],
                )
                .inc();
        }
    }
}

/// One sampled query span.
#[derive(Debug, Clone, Copy)]
pub struct QueryTrace<'a> {
    /// Global sample sequence number (from [`TraceSink::sample`]).
    pub seq: u64,
    /// Name the index is registered under.
    pub index: &'a str,
    /// Serving path: `"batch"` (query-parallel), `"sharded"` (fan-out),
    /// `"live"` (layered memtable + base), or `"front"` (coalesced batches
    /// dispatched through `Engine::serve_front`).
    pub path: &'a str,
    /// Query position within its batch.
    pub query: usize,
    /// Requested top-k.
    pub k: u64,
    /// Candidate budget, if the query was approximate.
    pub candidate_limit: Option<u64>,
    /// Wall-clock latency of the query (fan-out sum for the sharded path).
    pub latency_ns: u64,
    /// Nanoseconds in lower-bound computation (tree traversal).
    pub stage_bounds_ns: u64,
    /// Nanoseconds verifying candidates (leaf verification).
    pub stage_verify_ns: u64,
    /// Nanoseconds probing hash tables / projections.
    pub stage_lookup_ns: u64,
    /// Nanoseconds merging per-shard top-k lists (sharded path only).
    pub stage_merge_ns: u64,
    /// Unattributed remainder of `latency_ns`.
    pub stage_other_ns: u64,
    /// Tree nodes visited.
    pub nodes_visited: u64,
    /// Exact distances computed.
    pub candidates_verified: u64,
    /// Subtrees pruned by the ball bound.
    pub pruned_subtrees: u64,
    /// Neighbors returned.
    pub result_len: u64,
}

impl QueryTrace<'_> {
    /// Serializes the record as one JSON line (trailing `\n` included).
    pub fn to_json_line(&self) -> String {
        let mut line = String::with_capacity(256);
        line.push('{');
        push_field(&mut line, "seq", self.seq);
        line.push_str(",\"index\":\"");
        push_escaped(&mut line, self.index);
        line.push_str("\",\"path\":\"");
        push_escaped(&mut line, self.path);
        line.push('"');
        line.push(',');
        push_field(&mut line, "query", self.query as u64);
        line.push(',');
        push_field(&mut line, "k", self.k);
        match self.candidate_limit {
            Some(limit) => {
                line.push(',');
                push_field(&mut line, "candidate_limit", limit);
            }
            None => line.push_str(",\"candidate_limit\":null"),
        }
        for (name, value) in [
            ("latency_ns", self.latency_ns),
            ("stage_bounds_ns", self.stage_bounds_ns),
            ("stage_verify_ns", self.stage_verify_ns),
            ("stage_lookup_ns", self.stage_lookup_ns),
            ("stage_merge_ns", self.stage_merge_ns),
            ("stage_other_ns", self.stage_other_ns),
            ("nodes_visited", self.nodes_visited),
            ("candidates_verified", self.candidates_verified),
            ("pruned_subtrees", self.pruned_subtrees),
            ("result_len", self.result_len),
        ] {
            line.push(',');
            push_field(&mut line, name, value);
        }
        line.push_str("}\n");
        line
    }
}

fn push_field(line: &mut String, name: &str, value: u64) {
    use std::fmt::Write as _;
    let _ = write!(line, "\"{name}\":{value}");
}

fn push_escaped(line: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '"' => line.push_str("\\\""),
            '\\' => line.push_str("\\\\"),
            '\n' => line.push_str("\\n"),
            '\r' => line.push_str("\\r"),
            '\t' => line.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(line, "\\u{:04x}", c as u32);
            }
            c => line.push(c),
        }
    }
}

/// The process-wide trace sink configured by `P2H_TRACE=path[:rate]`, or `None` when
/// tracing is disabled (unset/empty variable, or an unwritable path — tracing must
/// never take the serving path down). The variable is read once, on first call.
pub fn from_env() -> Option<&'static TraceSink> {
    static SINK: OnceLock<Option<TraceSink>> = OnceLock::new();
    SINK.get_or_init(|| {
        let spec = std::env::var("P2H_TRACE").ok()?;
        if spec.is_empty() {
            return None;
        }
        let (path, rate) = match spec.rsplit_once(':') {
            Some((path, rate_str)) if !path.is_empty() => match rate_str.parse::<u64>() {
                Ok(rate) => (path.to_string(), rate),
                Err(_) => (spec.clone(), 1),
            },
            _ => (spec.clone(), 1),
        };
        TraceSink::create(Path::new(&path), rate).ok()
    })
    .as_ref()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> QueryTrace<'static> {
        QueryTrace {
            seq: 7,
            index: "ball",
            path: "batch",
            query: 3,
            k: 10,
            candidate_limit: Some(200),
            latency_ns: 1234,
            stage_bounds_ns: 400,
            stage_verify_ns: 500,
            stage_lookup_ns: 0,
            stage_merge_ns: 0,
            stage_other_ns: 334,
            nodes_visited: 42,
            candidates_verified: 17,
            pruned_subtrees: 5,
            result_len: 10,
        }
    }

    #[test]
    fn json_line_has_every_field() {
        let line = record().to_json_line();
        assert!(line.starts_with('{') && line.ends_with("}\n"));
        for needle in [
            "\"seq\":7",
            "\"index\":\"ball\"",
            "\"path\":\"batch\"",
            "\"query\":3",
            "\"k\":10",
            "\"candidate_limit\":200",
            "\"latency_ns\":1234",
            "\"stage_bounds_ns\":400",
            "\"stage_merge_ns\":0",
            "\"result_len\":10",
        ] {
            assert!(line.contains(needle), "{needle} missing from {line}");
        }
        let exact = QueryTrace { candidate_limit: None, ..record() };
        assert!(exact.to_json_line().contains("\"candidate_limit\":null"));
    }

    #[test]
    fn index_names_are_escaped() {
        let weird = QueryTrace { index: "a\"b\\c\nd", ..record() };
        assert!(weird.to_json_line().contains("\"index\":\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn sampling_takes_every_nth() {
        let dir = std::env::temp_dir().join(format!("p2h-obs-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sink = TraceSink::create(&dir.join("t.jsonl"), 3).unwrap();
        let sampled: Vec<bool> = (0..9).map(|_| sink.sample().is_some()).collect();
        assert_eq!(sampled, [true, false, false, true, false, false, true, false, false]);
        assert_eq!(sink.rate(), 3);
        // rate 0 clamps to 1: every query sampled.
        let every = TraceSink::create(&dir.join("u.jsonl"), 0).unwrap();
        assert!(every.sample().is_some() && every.sample().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_disables_sink_with_one_metric_increment() {
        let _guard = crate::fault::test_lock();
        let dir = std::env::temp_dir().join(format!("p2h-obs-trace-f-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sink = TraceSink::create(&dir.join("fail.jsonl"), 1).unwrap();
        let errors = crate::global().counter(
            "p2h_trace_errors_total",
            "Trace sinks disabled after a failed JSON-lines append.",
            &[],
        );
        let before = errors.value();

        crate::fault::set_spec("trace.write:disconnect:1:1").unwrap();
        assert!(sink.sample().is_some(), "sink starts enabled");
        sink.write(&record());
        crate::fault::set_rules(Vec::new());

        assert!(sink.is_disabled(), "failed append disables the sink");
        assert_eq!(errors.value(), before + 1, "exactly one error increment");
        assert!(sink.sample().is_none(), "disabled sink stops sampling");
        // Further writes must not error again or double-count.
        sink.write(&record());
        sink.flush();
        assert_eq!(errors.value(), before + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writes_are_line_oriented() {
        let dir = std::env::temp_dir().join(format!("p2h-obs-trace-w-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lines.jsonl");
        let sink = TraceSink::create(&path, 1).unwrap();
        sink.write(&record());
        sink.write(&record());
        sink.flush();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 2);
        for line in contents.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
