//! # p2h-obs
//!
//! The observability layer of the p2hnns serving stack: a lock-free metrics registry,
//! streaming log-bucketed histograms, sampled structured query tracing, and a
//! Prometheus text-format renderer. The crate is dependency-free (std only) and sits
//! below every other workspace crate, so `p2h-store` and `p2h-engine` both record
//! into the same [`global`] registry.
//!
//! Design constraints, in order:
//!
//! 1. **The hot path stays allocation-free and lock-free.** Instrument handles
//!    ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s resolved once and cached;
//!    recording is a handful of `Relaxed` atomic adds. Batch executors go further and
//!    record per-query samples into a thread-local [`StreamingHistogram`], publishing
//!    with one [`Histogram::merge_from`] per batch. The engine's
//!    `obs_overhead` integration test pins this at ≤ 1 allocation per query.
//! 2. **Quantiles are merge-stable.** All histograms share one fixed power-of-two
//!    bucket layout ([`hist`]), so merging per-batch histograms into the registry
//!    reports exactly the same p50/p95/p99 as recording every sample centrally
//!    (property-tested).
//! 3. **Tracing never perturbs answers.** The `P2H_TRACE=path[:rate]` sink ([`trace`])
//!    samples every Nth query and only adds clock reads to sampled queries; answers
//!    stay bit-identical, which CI enforces by running the snapshot bench's
//!    oracle check under `P2H_TRACE`.
//!
//! ## Example
//!
//! ```
//! use p2h_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let latency = registry.histogram(
//!     "query_latency_ns",
//!     "Per-query wall-clock latency.",
//!     &[("index", "ball")],
//! );
//! for sample in [120_000u64, 95_000, 2_400_000] {
//!     latency.record(sample);
//! }
//! let snapshot = registry.snapshot();
//! let hist = snapshot
//!     .series("query_latency_ns", &[("index", "ball")])
//!     .and_then(|s| s.value.histogram())
//!     .unwrap();
//! assert_eq!(hist.count(), 3);
//! assert!(registry.render_text().contains("query_latency_ns_bucket"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fault;
pub mod hist;
mod metrics;
mod registry;
mod render;
pub mod trace;

pub use fault::{FaultKind, FaultRule};
pub use hist::{bucket_index, bucket_upper_bound, StreamingHistogram, BUCKET_COUNT};
pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{
    global, FamilySnapshot, MetricKind, MetricsRegistry, MetricsSnapshot, SeriesSnapshot,
    SeriesValue,
};
pub use trace::{QueryTrace, TraceSink};
