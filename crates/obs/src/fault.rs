//! Deterministic fault injection: named failure points threaded through I/O paths.
//!
//! A *fail point* is a named site in client or server code (e.g. `client.connect`,
//! `server.send`, `store.read`) that asks this registry whether an artificial fault
//! should fire before doing its real work. Faults are configured once per process via
//! the `P2H_FAULTS` environment variable (same `OnceLock` pattern as `P2H_TRACE`):
//!
//! ```text
//! P2H_FAULTS=point:kind:rate:seed[,point:kind:rate:seed…]
//! ```
//!
//! * `point` — the fail-point name to attach to (each crate documents its points).
//! * `kind` — what fires: `refuse`, `disconnect`, `truncate`, `corrupt`, `eintr`,
//!   or `slow(<ms>)`.
//! * `rate` — firing probability in `[0, 1]` (`1` = every check).
//! * `seed` — a `u64` seeding the deterministic draw sequence for this rule.
//!
//! Example: `P2H_FAULTS=server.send:corrupt:0.3:42,client.connect:refuse:0.1:7`.
//!
//! Determinism is the point: each rule draws from a [SplitMix64] stream keyed by its
//! seed and a per-rule atomic counter, so a given `(rate, seed)` pair fires on exactly
//! the same check ordinals in every run — no wall clock, no global RNG. Tests assert
//! hard properties ("the router's completed answers are bit-identical under this fault
//! mix") instead of statistical ones.
//!
//! When `P2H_FAULTS` is unset the whole machinery costs one relaxed atomic load per
//! check ([`check`] reads a static `AtomicBool` and returns) — nothing allocates, no
//! lock is touched, and the serve path stays on its ≤ 1 alloc/query budget.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// What a fired fault asks the instrumented site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail a connection attempt as if the peer refused it.
    Refuse,
    /// Drop the connection mid-operation (mid-frame when framing is in play).
    Disconnect,
    /// Deliver or persist only a prefix of the bytes, then behave as if complete.
    Truncate,
    /// Flip bits in the payload (checksums must catch this downstream).
    Corrupt,
    /// Fail one syscall with `EINTR` (`ErrorKind::Interrupted`); retry loops must
    /// absorb it.
    Eintr,
    /// Sleep for the given number of milliseconds before proceeding (tail latency).
    Slow(u64),
}

impl FaultKind {
    /// The metric label value for this kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Refuse => "refuse",
            FaultKind::Disconnect => "disconnect",
            FaultKind::Truncate => "truncate",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Eintr => "eintr",
            FaultKind::Slow(_) => "slow",
        }
    }

    fn parse(token: &str) -> Option<Self> {
        match token {
            "refuse" => Some(FaultKind::Refuse),
            "disconnect" => Some(FaultKind::Disconnect),
            "truncate" => Some(FaultKind::Truncate),
            "corrupt" => Some(FaultKind::Corrupt),
            "eintr" => Some(FaultKind::Eintr),
            _ => {
                let ms = token.strip_prefix("slow(")?.strip_suffix(')')?;
                ms.parse::<u64>().ok().map(FaultKind::Slow)
            }
        }
    }
}

/// One configured fault rule: fire `kind` at `point` with probability `rate`,
/// deterministically derived from `seed` and the rule's own check counter.
#[derive(Debug)]
pub struct FaultRule {
    /// The fail-point name this rule attaches to.
    pub point: String,
    /// What fires.
    pub kind: FaultKind,
    /// Firing probability in `[0, 1]`.
    pub rate: f64,
    /// Seed of the deterministic draw stream.
    pub seed: u64,
    counter: AtomicU64,
}

impl FaultRule {
    /// Creates a rule (rate clamped to `[0, 1]`).
    pub fn new(point: impl Into<String>, kind: FaultKind, rate: f64, seed: u64) -> Self {
        Self {
            point: point.into(),
            kind,
            rate: rate.clamp(0.0, 1.0),
            seed,
            counter: AtomicU64::new(0),
        }
    }

    /// Draws the next deterministic decision for this rule.
    fn fires(&self) -> bool {
        let ordinal = self.counter.fetch_add(1, Ordering::Relaxed);
        if self.rate >= 1.0 {
            return true;
        }
        if self.rate <= 0.0 {
            return false;
        }
        // SplitMix64 over (seed, ordinal): the top 53 bits become a uniform draw in
        // [0, 1) — the same ordinal always gets the same verdict for a given seed.
        let draw = (splitmix64(self.seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 11)
            as f64
            / (1u64 << 53) as f64;
        draw < self.rate
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Parses a full `P2H_FAULTS` specification. Returns `Err` with a description of the
/// first malformed clause; an empty spec yields no rules.
pub fn parse_spec(spec: &str) -> Result<Vec<FaultRule>, String> {
    let mut rules = Vec::new();
    for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
        let fields: Vec<&str> = clause.split(':').collect();
        let [point, kind, rate, seed] = fields.as_slice() else {
            return Err(format!("expected `point:kind:rate:seed`, found `{clause}`"));
        };
        if point.is_empty() {
            return Err(format!("empty fail-point name in `{clause}`"));
        }
        let kind = FaultKind::parse(kind).ok_or_else(|| {
            format!(
                "unknown fault kind `{kind}` in `{clause}` (expected refuse, disconnect, \
                 truncate, corrupt, eintr, or slow(<ms>))"
            )
        })?;
        let rate: f64 = rate
            .parse()
            .map_err(|_| format!("rate `{rate}` in `{clause}` is not a number in [0, 1]"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("rate `{rate}` in `{clause}` is outside [0, 1]"));
        }
        let seed: u64 =
            seed.parse().map_err(|_| format!("seed `{seed}` in `{clause}` is not a u64"))?;
        rules.push(FaultRule::new(*point, kind, rate, seed));
    }
    Ok(rules)
}

struct FaultRegistry {
    rules: RwLock<Vec<FaultRule>>,
}

/// Whether any rule is active — the only state the disabled hot path reads.
static ANY_ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static FaultRegistry {
    static REGISTRY: OnceLock<FaultRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let rules = match std::env::var("P2H_FAULTS") {
            Ok(spec) if !spec.is_empty() => match parse_spec(&spec) {
                Ok(rules) => rules,
                Err(message) => {
                    // A malformed spec must not take the process down (the variable may
                    // be set fleet-wide); it is reported once and ignored.
                    eprintln!("p2h-obs: ignoring malformed P2H_FAULTS: {message}");
                    Vec::new()
                }
            },
            _ => Vec::new(),
        };
        if !rules.is_empty() {
            ANY_ACTIVE.store(true, Ordering::Release);
        }
        FaultRegistry { rules: RwLock::new(rules) }
    })
}

/// Asks whether a fault should fire at `point`. Returns the first matching rule's
/// [`FaultKind`] whose deterministic draw fires, or `None`.
///
/// With no rules configured this is one relaxed atomic load — safe to call on hot
/// paths.
#[inline]
pub fn check(point: &str) -> Option<FaultKind> {
    if !ANY_ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    check_slow(point)
}

#[cold]
fn check_slow(point: &str) -> Option<FaultKind> {
    let registry = registry();
    let rules = registry.rules.read().expect("fault registry poisoned");
    for rule in rules.iter().filter(|r| r.point == point) {
        if rule.fires() {
            record_injection(&rule.point, rule.kind);
            return Some(rule.kind);
        }
    }
    None
}

/// Counts every injected fault in the process-wide metrics registry, labeled by point
/// and kind — a chaos run's ground truth for "how many faults actually fired".
fn record_injection(point: &str, kind: FaultKind) {
    crate::global()
        .counter(
            "p2h_faults_injected_total",
            "Artificial faults fired by the P2H_FAULTS registry.",
            &[("point", point), ("kind", kind.as_str())],
        )
        .inc();
}

/// Replaces the active rule set programmatically — the test-harness entry point
/// (`P2H_FAULTS` is read once per process, which multi-case test binaries cannot use).
/// Passing an empty vector disables all injection.
///
/// Tests that call this from a shared test binary must serialize themselves (the rule
/// set is process-global).
pub fn set_rules(rules: Vec<FaultRule>) {
    let registry = registry();
    let mut active = registry.rules.write().expect("fault registry poisoned");
    ANY_ACTIVE.store(!rules.is_empty(), Ordering::Release);
    *active = rules;
}

/// Parses and installs a spec string (see [`parse_spec`]); the test-side equivalent of
/// setting `P2H_FAULTS`.
///
/// # Errors
///
/// Returns the parse error of the first malformed clause; the active rules are left
/// unchanged in that case.
pub fn set_spec(spec: &str) -> Result<(), String> {
    set_rules(parse_spec(spec)?);
    Ok(())
}

/// Serializes in-crate tests that mutate the process-global rule set.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_accepts_the_documented_grammar() {
        let rules = parse_spec("server.send:corrupt:0.25:42, client.connect:refuse:1:7").unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].point, "server.send");
        assert_eq!(rules[0].kind, FaultKind::Corrupt);
        assert!((rules[0].rate - 0.25).abs() < 1e-12);
        assert_eq!(rules[0].seed, 42);
        assert_eq!(rules[1].kind, FaultKind::Refuse);

        let slow = parse_spec("shard.serve:slow(15):1.0:3").unwrap();
        assert_eq!(slow[0].kind, FaultKind::Slow(15));
        assert!(parse_spec("").unwrap().is_empty());
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for bad in [
            "no-fields",
            "p:unknownkind:1:1",
            "p:refuse:2.0:1",
            "p:refuse:x:1",
            "p:refuse:1:x",
            ":refuse:1:1",
            "p:slow(x):1:1",
        ] {
            assert!(parse_spec(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let a = FaultRule::new("p", FaultKind::Corrupt, 0.5, 99);
        let b = FaultRule::new("p", FaultKind::Corrupt, 0.5, 99);
        let seq_a: Vec<bool> = (0..64).map(|_| a.fires()).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.fires()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same ordinals, same verdicts");
        assert!(seq_a.iter().any(|&f| f) && seq_a.iter().any(|&f| !f), "rate 0.5 mixes");

        let c = FaultRule::new("p", FaultKind::Corrupt, 0.5, 100);
        let seq_c: Vec<bool> = (0..64).map(|_| c.fires()).collect();
        assert_ne!(seq_a, seq_c, "different seeds diverge");
    }

    #[test]
    fn rate_extremes_always_and_never_fire() {
        let always = FaultRule::new("p", FaultKind::Eintr, 1.0, 0);
        let never = FaultRule::new("p", FaultKind::Eintr, 0.0, 0);
        assert!((0..32).all(|_| always.fires()));
        assert!((0..32).all(|_| !never.fires()));
    }

    #[test]
    fn check_is_inert_until_rules_are_set() {
        let _guard = test_lock();
        // The shared registry starts empty in the test process (P2H_FAULTS unset).
        assert_eq!(check("obs.unit.nothing"), None);
        set_rules(vec![FaultRule::new("obs.unit.point", FaultKind::Refuse, 1.0, 1)]);
        assert_eq!(check("obs.unit.point"), Some(FaultKind::Refuse));
        assert_eq!(check("obs.unit.other"), None);
        set_rules(Vec::new());
        assert_eq!(check("obs.unit.point"), None);
    }
}
