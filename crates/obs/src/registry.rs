//! The metrics registry: named, labeled families of counters/gauges/histograms.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a write lock and allocates; it
//! is meant to run once per metric series, at startup or on first sight of a label
//! value. The returned `Arc` handles are then cached by the instrumented layer and
//! recording through them is lock-free (see [`crate::metrics`]). Snapshots take the
//! read lock only long enough to copy the atomic values out.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::hist::StreamingHistogram;
use crate::metrics::{Counter, Gauge, Histogram};

/// The kind of a metric family, matching the Prometheus `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Goes up and down.
    Gauge,
    /// Log-bucketed distribution.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Sorted label pairs identifying one series within a family.
type LabelSet = Vec<(String, String)>;

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Family {
    help: String,
    kind: MetricKind,
    series: BTreeMap<LabelSet, Instrument>,
}

/// A process-wide (or test-local) collection of metric families.
///
/// Use [`global`] for the shared registry every instrumented layer records into, or
/// `MetricsRegistry::new()` for an isolated one (tests, embedded exposition).
#[derive(Default)]
pub struct MetricsRegistry {
    families: RwLock<BTreeMap<String, Family>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.families.read().expect("metrics registry poisoned");
        f.debug_struct("MetricsRegistry").field("families", &families.len()).finish()
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    debug_assert!(
        labels.iter().all(|(k, _)| valid_name(k)),
        "label names must match [a-zA-Z_][a-zA-Z0-9_]*: {labels:?}"
    );
    let mut set: LabelSet = labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    set.sort();
    set
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        debug_assert!(valid_name(name), "metric names must match [a-zA-Z_][a-zA-Z0-9_]*: {name}");
        let set = label_set(labels);
        let mut families = self.families.write().expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` registered as {:?} and again as {kind:?}",
            family.kind
        );
        match family.series.entry(set).or_insert_with(make) {
            Instrument::Counter(c) => Instrument::Counter(Arc::clone(c)),
            Instrument::Gauge(g) => Instrument::Gauge(Arc::clone(g)),
            Instrument::Histogram(h) => Instrument::Histogram(Arc::clone(h)),
        }
    }

    /// Registers (or retrieves) the counter `name{labels}`. The `help` text of the
    /// first registration wins.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.instrument(name, help, MetricKind::Counter, labels, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked by instrument()"),
        }
    }

    /// Registers (or retrieves) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.instrument(name, help, MetricKind::Gauge, labels, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked by instrument()"),
        }
    }

    /// Registers (or retrieves) the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.instrument(name, help, MetricKind::Histogram, labels, || {
            Instrument::Histogram(Arc::new(Histogram::new()))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked by instrument()"),
        }
    }

    /// A point-in-time copy of every family and series, ready for rendering or
    /// programmatic inspection. Families and series come out in deterministic
    /// (lexicographic) order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let families = self.families.read().expect("metrics registry poisoned");
        MetricsSnapshot {
            families: families
                .iter()
                .map(|(name, family)| FamilySnapshot {
                    name: name.clone(),
                    help: family.help.clone(),
                    kind: family.kind,
                    series: family
                        .series
                        .iter()
                        .map(|(labels, instrument)| SeriesSnapshot {
                            labels: labels.clone(),
                            value: match instrument {
                                Instrument::Counter(c) => SeriesValue::Counter(c.value()),
                                Instrument::Gauge(g) => SeriesValue::Gauge(g.value()),
                                Instrument::Histogram(h) => SeriesValue::Histogram(h.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Renders the current state in Prometheus text exposition format (shorthand for
    /// `self.snapshot().render_text()`).
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Every metric family, in name order.
    pub families: Vec<FamilySnapshot>,
}

/// One metric family (a name, its kind/help, and every label combination seen).
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySnapshot {
    /// The family name, e.g. `p2h_query_latency_ns`.
    pub name: String,
    /// The `# HELP` text.
    pub help: String,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// Every series of the family, in label order.
    pub series: Vec<SeriesSnapshot>,
}

impl MetricsSnapshot {
    /// The series `name{labels}`, if present (labels in any order).
    pub fn series(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesSnapshot> {
        let want = label_set(labels);
        self.families.iter().find(|f| f.name == name)?.series.iter().find(|s| s.labels == want)
    }
}

/// One labeled series within a family.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SeriesValue,
}

/// The sampled value of one series.
///
/// The histogram variant is boxed-free on purpose: snapshots are taken once per
/// scrape, not per query, and an inline `StreamingHistogram` (a few hundred bytes)
/// keeps snapshot traversal pointer-chase-free.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum SeriesValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(u64),
    /// A full histogram copy.
    Histogram(StreamingHistogram),
}

impl SeriesValue {
    /// The scalar value of a counter/gauge, or a histogram's sample count.
    pub fn scalar(&self) -> u64 {
        match self {
            SeriesValue::Counter(v) | SeriesValue::Gauge(v) => *v,
            SeriesValue::Histogram(h) => h.count(),
        }
    }

    /// The histogram, if this series is one.
    pub fn histogram(&self) -> Option<&StreamingHistogram> {
        match self {
            SeriesValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// The process-wide registry every instrumented layer (engine, store) records into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_the_instrument() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("requests_total", "Requests.", &[("index", "ball")]);
        let b = registry.counter("requests_total", "Requests.", &[("index", "ball")]);
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), 5);
        let other = registry.counter("requests_total", "Requests.", &[("index", "bc")]);
        assert_eq!(other.value(), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let registry = MetricsRegistry::new();
        let a = registry.gauge("depth", "Depth.", &[("a", "1"), ("b", "2")]);
        let b = registry.gauge("depth", "Depth.", &[("b", "2"), ("a", "1")]);
        a.set(9);
        assert_eq!(b.value(), 9);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("mixed", "A counter.", &[]);
        registry.gauge("mixed", "Now a gauge?", &[]);
    }

    #[test]
    fn snapshot_is_deterministic_and_lookupable() {
        let registry = MetricsRegistry::new();
        registry.counter("b_total", "B.", &[("z", "1")]).add(7);
        registry.counter("a_total", "A.", &[]).add(1);
        registry.histogram("h", "H.", &[]).record(100);
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a_total", "b_total", "h"]);
        assert_eq!(snap.series("b_total", &[("z", "1")]).unwrap().value.scalar(), 7);
        assert_eq!(snap.series("h", &[]).unwrap().value.histogram().unwrap().count(), 1);
        assert!(snap.series("b_total", &[("z", "2")]).is_none());
    }

    #[test]
    fn global_registry_is_shared() {
        let a = global().counter("obs_unit_global_total", "Shared.", &[]);
        global().counter("obs_unit_global_total", "Shared.", &[]).inc();
        assert!(a.value() >= 1);
    }
}
