//! Golden-file coverage for the Prometheus text renderer: a registry with every
//! instrument kind, multiple label sets, and escaping-sensitive values must render
//! byte-for-byte to `tests/golden/metrics.prom`. A second test re-derives the
//! format invariants (bucket cumulativity, `_sum`/`_count` consistency) from the
//! rendered text itself, so the golden file can never drift into invalid exposition.
//!
//! To regenerate after an intentional format change:
//! `P2H_OBS_BLESS=1 cargo test -p p2h-obs --test golden_render`

use p2h_obs::MetricsRegistry;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");

/// A deterministic registry exercising every renderer code path.
fn example_registry() -> MetricsRegistry {
    let registry = MetricsRegistry::new();

    registry
        .counter("p2h_queries_total", "Queries served, by index.", &[("index", "ball")])
        .add(1024);
    registry.counter("p2h_queries_total", "Queries served, by index.", &[("index", "bc")]).add(7);
    // Label order at registration must not matter.
    registry
        .counter(
            "p2h_shard_sub_searches_total",
            "Per-shard sub-searches.",
            &[("shard", "0"), ("index", "ball")],
        )
        .add(512);
    registry
        .counter(
            "p2h_shard_sub_searches_total",
            "Per-shard sub-searches.",
            &[("index", "ball"), ("shard", "1")],
        )
        .add(512);

    registry.gauge("p2h_store_bytes_mapped", "Bytes currently memory-mapped.", &[]).set(65536);

    let latency = registry.histogram(
        "p2h_query_latency_ns",
        "Per-query wall-clock latency.",
        &[("index", "ball")],
    );
    for sample in [0u64, 1, 1, 3, 120, 121, 4096, 100_000, 1 << 50] {
        latency.record(sample);
    }
    // An empty histogram series still renders +Inf/_sum/_count.
    registry.histogram("p2h_query_latency_ns", "Per-query wall-clock latency.", &[("index", "bc")]);

    // Escaping: backslash, quote, newline in a label value; backslash in help.
    registry
        .counter("p2h_escapes_total", "Help with \\ backslash.", &[("name", "a\"b\\c\nd")])
        .inc();
    registry
}

#[test]
fn renderer_matches_golden_file() {
    let rendered = example_registry().render_text();
    if std::env::var("P2H_OBS_BLESS").is_ok() {
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden file");
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("read golden file");
    assert_eq!(
        rendered, golden,
        "rendered exposition differs from tests/golden/metrics.prom \
         (bless with P2H_OBS_BLESS=1 after an intentional change)"
    );
}

/// A tiny exposition-format parser: enough structure to verify the invariants a real
/// Prometheus scraper relies on.
#[derive(Debug)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: u64,
}

fn parse_samples(text: &str) -> Vec<Sample> {
    let mut samples = Vec::new();
    for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').expect("closing brace");
                let mut labels = Vec::new();
                // Good enough for the golden corpus: no commas inside label values.
                for pair in body.split(',') {
                    let (key, quoted) = pair.split_once('=').expect("label pair");
                    let val = quoted.trim_matches('"').to_string();
                    labels.push((key.to_string(), val));
                }
                (name.to_string(), labels)
            }
            None => (series.to_string(), Vec::new()),
        };
        samples.push(Sample { name, labels, value: value.parse().expect("integer value") });
    }
    samples
}

#[test]
fn golden_exposition_satisfies_histogram_invariants() {
    let text = example_registry().render_text();
    let samples = parse_samples(&text);

    // Every series name appears under exactly one # TYPE header, and headers precede
    // their samples.
    for base in ["p2h_queries_total", "p2h_query_latency_ns", "p2h_store_bytes_mapped"] {
        let help = text.find(&format!("# HELP {base} ")).expect("HELP line");
        let typ = text.find(&format!("# TYPE {base} ")).expect("TYPE line");
        let first_sample = text.find(&format!("\n{base}")).expect("sample line");
        assert!(help < typ && typ < first_sample, "{base}: header order");
    }

    // Histogram invariants per label set: buckets are non-decreasing in `le`, the
    // +Inf bucket equals `_count`, and `_sum` is at least `max bucket bound * 0`.
    for index in ["ball", "bc"] {
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| {
                s.name == "p2h_query_latency_ns_bucket"
                    && s.labels.contains(&("index".into(), index.into()))
            })
            .collect();
        assert!(!buckets.is_empty(), "index={index} has bucket samples");
        // Rendered order is ascending `le`, so cumulativity = non-decreasing values.
        for pair in buckets.windows(2) {
            assert!(pair[0].value <= pair[1].value, "cumulative buckets for {index}");
        }
        let inf = buckets.last().unwrap();
        assert_eq!(inf.labels.iter().find(|(k, _)| k == "le").unwrap().1, "+Inf");
        let count = samples
            .iter()
            .find(|s| {
                s.name == "p2h_query_latency_ns_count"
                    && s.labels.contains(&("index".into(), index.into()))
            })
            .expect("_count series");
        assert_eq!(inf.value, count.value, "+Inf bucket equals _count for {index}");
        let sum = samples
            .iter()
            .find(|s| {
                s.name == "p2h_query_latency_ns_sum"
                    && s.labels.contains(&("index".into(), index.into()))
            })
            .expect("_sum series");
        if count.value == 0 {
            assert_eq!(sum.value, 0, "empty histogram has zero sum");
        }
    }

    // The populated histogram's exact aggregates.
    let ball_count = samples
        .iter()
        .find(|s| {
            s.name == "p2h_query_latency_ns_count"
                && !s.labels.is_empty()
                && s.labels[0].1 == "ball"
        })
        .unwrap();
    assert_eq!(ball_count.value, 9);
}
