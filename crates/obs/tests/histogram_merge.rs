//! Property: histograms are merge-stable. However a stream of samples is split across
//! independently recorded histograms, merging them reports exactly the same bucket
//! counts — and therefore the same quantiles — as recording the whole stream into one
//! histogram. This is the invariant that lets per-batch histograms accumulate into
//! the process-wide registry without distorting p50/p95/p99.

use p2h_obs::{Histogram, StreamingHistogram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merged_histograms_match_single_pass_recording(
        samples in collection::vec(0u64..5_000_000_000, 1..400),
        split_points in collection::vec(0usize..400, 0..6),
    ) {
        // Single pass: everything into one histogram.
        let single = StreamingHistogram::from_samples(samples.iter().copied());

        // Split the stream at arbitrary points and record each piece independently.
        let mut cuts: Vec<usize> =
            split_points.iter().map(|&p| p % samples.len()).collect();
        cuts.push(0);
        cuts.push(samples.len());
        cuts.sort_unstable();
        let mut merged = StreamingHistogram::new();
        for window in cuts.windows(2) {
            let piece = StreamingHistogram::from_samples(samples[window[0]..window[1]].iter().copied());
            merged.merge(&piece);
        }

        prop_assert_eq!(&merged, &single);
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), single.quantile(q));
        }

        // Publishing through the atomic registry histogram preserves it too.
        let shared = Histogram::new();
        shared.merge_from(&merged);
        prop_assert_eq!(shared.snapshot(), single);
    }

    #[test]
    fn quantile_upper_bounds_the_true_quantile_within_2x(
        samples in collection::vec(1u64..1_000_000_000, 1..200),
    ) {
        let hist = StreamingHistogram::from_samples(samples.iter().copied());
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[rank - 1];
            let reported = hist.quantile(q);
            prop_assert!(reported >= exact, "reported {} < exact {}", reported, exact);
            prop_assert!(reported < exact * 2, "reported {} >= 2x exact {}", reported, exact);
        }
    }
}
