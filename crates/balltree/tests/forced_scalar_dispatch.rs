//! Forced-dispatch equivalence: searches answered through the scalar kernel path must
//! produce the same *rankings* as the hardware-dispatched (SIMD) path on a realistic
//! data set. Distances may differ in the last ulps between backends (FMA contraction),
//! but the induced candidate order — and therefore the returned neighbor indexes — must
//! agree.
//!
//! This file is its own test binary with a single `#[test]` because
//! `kernels::force_scalar` is process-global: no other test may run concurrently in
//! this process while the scalar path is forced.

use p2h_balltree::BallTreeBuilder;
use p2h_core::{kernels, LinearScan, P2hIndex, SearchParams};
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};

#[test]
fn forced_scalar_dispatch_produces_identical_search_rankings() {
    let points = SyntheticDataset::new(
        "dispatch-equivalence",
        5_000,
        24,
        DataDistribution::GaussianClusters { clusters: 8, std_dev: 1.4 },
        31,
    )
    .generate()
    .unwrap();
    let tree = BallTreeBuilder::new(64).build(&points).unwrap();
    let scan = LinearScan::new(points.clone());
    let queries = generate_queries(&points, 20, QueryDistribution::DataDifference, 17).unwrap();
    let k = 10;

    // Hardware-dispatched pass (AVX2/NEON where available, scalar otherwise).
    let dispatched: Vec<(Vec<usize>, Vec<usize>)> = queries
        .iter()
        .map(|q| (tree.search_exact(q, k).indices(), scan.search_exact(q, k).indices()))
        .collect();

    kernels::force_scalar(true);
    assert_eq!(kernels::active_backend(), p2h_core::KernelBackend::Scalar);
    let forced: Vec<(Vec<usize>, Vec<usize>)> = queries
        .iter()
        .map(|q| (tree.search_exact(q, k).indices(), scan.search_exact(q, k).indices()))
        .collect();
    kernels::force_scalar(false);

    for (qi, ((tree_simd, scan_simd), (tree_scalar, scan_scalar))) in
        dispatched.iter().zip(forced.iter()).enumerate()
    {
        assert_eq!(tree_simd, tree_scalar, "query {qi}: tree ranking differs across backends");
        assert_eq!(scan_simd, scan_scalar, "query {qi}: scan ranking differs across backends");
        assert_eq!(tree_simd, scan_simd, "query {qi}: tree disagrees with the oracle");
    }

    // Approximate search (candidate-budget-limited) must also rank identically: the
    // traversal order depends only on comparisons, which both backends agree on here.
    kernels::force_scalar(true);
    let approx_scalar: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| tree.search(q, &SearchParams::approximate(k, 800)).indices())
        .collect();
    kernels::force_scalar(false);
    for (qi, q) in queries.iter().enumerate() {
        let approx_simd = tree.search(q, &SearchParams::approximate(k, 800)).indices();
        assert_eq!(
            approx_simd, approx_scalar[qi],
            "query {qi}: approximate ranking differs across backends"
        );
    }
}
