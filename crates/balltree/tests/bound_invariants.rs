//! Integration tests of the Ball-Tree against its own theory: the node-level ball bound
//! (Theorem 2) must lower-bound the true minimum absolute inner product of every node's
//! points, for real trees built on real (synthetic) data.

use p2h_balltree::bound::node_ball_bound;
use p2h_balltree::BallTreeBuilder;
use p2h_core::{distance, P2hIndex, SearchParams};
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};

fn dataset(distribution: DataDistribution, seed: u64) -> p2h_core::PointSet {
    SyntheticDataset::new("bound-invariants", 1_200, 12, distribution, seed).generate().unwrap()
}

#[test]
fn node_bound_is_valid_for_every_node_of_a_real_tree() {
    for (i, distribution) in [
        DataDistribution::GaussianClusters { clusters: 5, std_dev: 1.0 },
        DataDistribution::Uniform { scale: 4.0 },
        DataDistribution::HeavyTailedNorms { mu: 0.5, sigma: 0.7 },
    ]
    .into_iter()
    .enumerate()
    {
        let points = dataset(distribution, 200 + i as u64);
        let tree = BallTreeBuilder::new(40).build(&points).unwrap();
        let reordered = tree.points();
        let queries = generate_queries(&points, 3, QueryDistribution::DataDifference, 11).unwrap();
        for query in &queries {
            for node in tree.nodes() {
                // Recompute the node's center from its range in the reordered points.
                let indices: Vec<usize> = (node.start..node.end).map(|p| p as usize).collect();
                let center = reordered.centroid_of(&indices);
                let bound = node_ball_bound(
                    distance::abs_dot(query.coeffs(), &center),
                    query.norm(),
                    node.radius,
                );
                let true_min = indices
                    .iter()
                    .map(|&p| query.p2h_distance(reordered.point(p)))
                    .fold(f32::INFINITY, f32::min);
                assert!(
                    bound <= true_min + 1e-2 * (1.0 + true_min),
                    "node bound {bound} exceeds true minimum {true_min} (radius {})",
                    node.radius
                );
            }
        }
    }
}

#[test]
fn exact_search_never_reports_a_distance_below_the_global_minimum() {
    let points = dataset(DataDistribution::Correlated { rank: 3, noise: 0.4 }, 300);
    let tree = BallTreeBuilder::new(64).build(&points).unwrap();
    let queries = generate_queries(&points, 5, QueryDistribution::RandomNormal, 13).unwrap();
    for query in &queries {
        let global_min = points.iter().map(|x| query.p2h_distance(x)).fold(f32::INFINITY, f32::min);
        let result = tree.search_exact(query, 1);
        assert!((result.neighbors[0].distance - global_min).abs() < 1e-5);
    }
}

#[test]
fn pruned_work_grows_with_k() {
    // Larger k means a looser pruning threshold, hence at least as many candidates.
    let points = dataset(DataDistribution::GaussianClusters { clusters: 6, std_dev: 1.2 }, 400);
    let tree = BallTreeBuilder::new(40).build(&points).unwrap();
    let queries = generate_queries(&points, 5, QueryDistribution::DataDifference, 17).unwrap();
    for query in &queries {
        let small = tree.search(query, &SearchParams::exact(1));
        let large = tree.search(query, &SearchParams::exact(50));
        assert!(
            large.stats.candidates_verified >= small.stats.candidates_verified,
            "k=50 should verify at least as many candidates as k=1"
        );
    }
}

#[test]
fn stats_are_internally_consistent() {
    let points = dataset(DataDistribution::Uniform { scale: 2.0 }, 500);
    let tree = BallTreeBuilder::new(50).build(&points).unwrap();
    let queries = generate_queries(&points, 5, QueryDistribution::DataDifference, 19).unwrap();
    for query in &queries {
        let result = tree.search_exact(query, 10);
        let stats = result.stats;
        assert!(stats.leaves_visited <= stats.nodes_visited);
        assert!(stats.nodes_visited as usize <= tree.node_count());
        assert!(stats.candidates_verified <= points.len() as u64);
        // Inner products = candidate verifications + center evaluations.
        assert!(stats.inner_products >= stats.candidates_verified);
        assert_eq!(stats.buckets_probed, 0, "trees never probe hash buckets");
    }
}
