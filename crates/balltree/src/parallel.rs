//! Parallel Ball-Tree construction (feature `parallel`).
//!
//! The recursion of Algorithm 1 is embarrassingly parallel below the split: the two
//! child subtrees touch disjoint index slices and build independent node arenas. This
//! module runs the two recursive calls on scoped threads (rayon-`join` style, but on
//! `std::thread::scope` — the build environment cannot vendor rayon) above a size
//! cutoff, then splices the child arenas into the parent with node-id and center-offset
//! fixups. The spliced layout is the same preorder layout the sequential builder
//! produces, so search performance is identical.
//!
//! ## Determinism
//!
//! The sequential builder threads one RNG through the whole recursion, which makes the
//! pivot stream order-dependent and impossible to reproduce concurrently. The parallel
//! builder instead derives an independent seed per node from
//! `(builder seed, subtree offset, subtree length)`, which is scheduling-independent:
//! **the same seed and leaf size produce bit-identical trees for every thread count**
//! (including 1). The tree generally differs from the sequential builder's tree — both
//! are valid Ball-Trees with the same invariants and the same exact search results.

use rand::rngs::StdRng;
use rand::SeedableRng;

use p2h_core::{distance, Error, PointSet, Result, Scalar};

use crate::build::{pack_sibling_centers, BallTree, BallTreeBuilder};
use crate::node::{Node, NO_CHILD};
use crate::split::seed_grow_split;

/// Subtrees smaller than this are built sequentially: below ~2k points the split work
/// per level is too small to amortize a thread spawn.
pub const PARALLEL_CUTOFF: usize = 2_048;

/// A subtree under construction: locally-numbered nodes (root = 0) over absolute point
/// ranges, with a local center buffer.
pub struct Subtree {
    /// Locally-numbered nodes; index 0 is this subtree's root.
    pub nodes: Vec<Node>,
    /// Flat center buffer (one `dim`-sized row per node, same order as `nodes`).
    pub centers: Vec<Scalar>,
}

/// Mixes a per-node seed from the builder seed and the subtree's (offset, length).
///
/// Both inputs are invariants of the subtree itself (not of scheduling), which is what
/// makes the parallel build deterministic across thread counts. SplitMix64-style
/// finalizer over the packed inputs.
pub fn node_seed(builder_seed: u64, offset: usize, len: usize) -> u64 {
    let mut z = builder_seed
        ^ (offset as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (len as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Splices `sub` onto the end of `nodes`/`centers`, rebasing child ids and center
/// offsets, and returns the spliced root's node id.
pub fn splice(nodes: &mut Vec<Node>, centers: &mut Vec<Scalar>, sub: Subtree, dim: usize) -> u32 {
    let node_base = nodes.len() as u32;
    let center_base = (centers.len() / dim) as u32;
    nodes.reserve(sub.nodes.len());
    for mut node in sub.nodes {
        node.center_offset += center_base;
        if node.left != NO_CHILD {
            node.left += node_base;
            node.right += node_base;
        }
        nodes.push(node);
    }
    centers.extend(sub.centers);
    node_base
}

/// Resolves a thread-count argument: `0` means one worker per available CPU.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(4, |p| p.get())
    } else {
        threads
    }
}

impl BallTreeBuilder {
    /// Builds a Ball-Tree with parallel recursive construction over `threads` worker
    /// threads (`0` = one per available CPU).
    ///
    /// The result is deterministic for a given `(seed, leaf_size)` regardless of
    /// `threads`, but generally differs from [`BallTreeBuilder::build`] (see the module
    /// docs). All structural invariants and exact-search guarantees are identical.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BallTreeBuilder::build`].
    pub fn build_parallel(&self, points: &PointSet, threads: usize) -> Result<BallTree> {
        if self.leaf_size == 0 {
            return Err(Error::InvalidParameter {
                name: "leaf_size",
                message: "the maximum leaf size N0 must be at least 1".into(),
            });
        }
        if points.is_empty() {
            return Err(Error::EmptyDataSet);
        }
        let n = points.len();
        let dim = points.dim();
        let threads = resolve_threads(threads);
        let mut order: Vec<usize> = (0..n).collect();

        let subtree = build_recursive(points, &mut order, 0, self.leaf_size, self.seed, threads);

        let mut reordered = Vec::with_capacity(n * dim);
        let mut original_ids = Vec::with_capacity(n);
        for &idx in &order {
            reordered.extend_from_slice(points.point(idx));
            original_ids.push(idx as u32);
        }
        let reordered = PointSet::from_flat(dim, reordered)?;

        let mut nodes = subtree.nodes;
        let centers = pack_sibling_centers(&mut nodes, &subtree.centers, dim);

        Ok(BallTree {
            points: reordered,
            original_ids: original_ids.into(),
            nodes,
            centers: centers.into(),
            leaf_size: self.leaf_size,
            build_seed: self.seed,
        })
    }
}

/// Builds the subtree covering `slice` (positions `offset..offset + slice.len()` of the
/// final ordering), splitting the recursion across up to `threads` workers.
fn build_recursive(
    points: &PointSet,
    slice: &mut [usize],
    offset: usize,
    leaf_size: usize,
    builder_seed: u64,
    threads: usize,
) -> Subtree {
    let len = slice.len();
    let dim = points.dim();
    let center = points.centroid_of(slice);
    let radius = slice
        .iter()
        .map(|&i| distance::euclidean(points.point(i), &center))
        .fold(0.0 as Scalar, Scalar::max);

    let mut nodes = vec![Node {
        center_offset: 0,
        radius,
        start: offset as u32,
        end: (offset + len) as u32,
        left: NO_CHILD,
        right: NO_CHILD,
    }];
    let mut centers = center;

    if len > leaf_size {
        let mut rng = StdRng::seed_from_u64(node_seed(builder_seed, offset, len));
        let split = seed_grow_split(points, slice, &mut rng);
        let (left_slice, right_slice) = slice.split_at_mut(split);

        let (left_sub, right_sub) = if threads > 1 && len >= PARALLEL_CUTOFF {
            let right_threads = threads / 2;
            let left_threads = threads - right_threads;
            std::thread::scope(|scope| {
                let right_handle = scope.spawn(move || {
                    build_recursive(
                        points,
                        right_slice,
                        offset + split,
                        leaf_size,
                        builder_seed,
                        right_threads,
                    )
                });
                let left_sub = build_recursive(
                    points,
                    left_slice,
                    offset,
                    leaf_size,
                    builder_seed,
                    left_threads,
                );
                (left_sub, right_handle.join().expect("parallel build worker panicked"))
            })
        } else {
            (
                build_recursive(points, left_slice, offset, leaf_size, builder_seed, 1),
                build_recursive(points, right_slice, offset + split, leaf_size, builder_seed, 1),
            )
        };

        let left_id = splice(&mut nodes, &mut centers, left_sub, dim);
        let right_id = splice(&mut nodes, &mut centers, right_sub, dim);
        nodes[0].left = left_id;
        nodes[0].right = right_id;
    }

    Subtree { nodes, centers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::{HyperplaneQuery, LinearScan, P2hIndex};
    use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};

    fn dataset(n: usize, dim: usize) -> PointSet {
        SyntheticDataset::new(
            "bt-parallel",
            n,
            dim,
            DataDistribution::GaussianClusters { clusters: 8, std_dev: 1.5 },
            41,
        )
        .generate()
        .unwrap()
    }

    fn queries(ps: &PointSet) -> Vec<HyperplaneQuery> {
        generate_queries(ps, 6, QueryDistribution::DataDifference, 17).unwrap()
    }

    #[test]
    fn parallel_build_is_deterministic_across_thread_counts() {
        let ps = dataset(6_000, 12);
        let reference = BallTreeBuilder::new(64).with_seed(3).build_parallel(&ps, 1).unwrap();
        for threads in [2, 4, 8] {
            let tree = BallTreeBuilder::new(64).with_seed(3).build_parallel(&ps, threads).unwrap();
            assert_eq!(tree.original_ids, reference.original_ids, "threads={threads}");
            assert_eq!(tree.nodes, reference.nodes, "threads={threads}");
            assert_eq!(tree.centers, reference.centers, "threads={threads}");
        }
    }

    #[test]
    fn parallel_build_satisfies_invariants_and_is_exact() {
        let ps = dataset(5_000, 10);
        let tree = BallTreeBuilder::new(50).build_parallel(&ps, 4).unwrap();
        tree.check_invariants().unwrap();
        let scan = LinearScan::new(ps.clone());
        for q in &queries(&ps) {
            assert_eq!(tree.search_exact(q, 10).distances(), scan.search_exact(q, 10).distances());
        }
    }

    #[test]
    fn parallel_build_handles_edge_shapes() {
        // Single leaf (n <= leaf_size).
        let ps = dataset(100, 6);
        let tree = BallTreeBuilder::new(200).build_parallel(&ps, 4).unwrap();
        assert_eq!(tree.node_count(), 1);
        tree.check_invariants().unwrap();

        // Identical points (degenerate splits).
        let rows = vec![vec![1.0 as Scalar, 2.0]; 4_000];
        let ps = PointSet::augment(&rows).unwrap();
        let tree = BallTreeBuilder::new(32).build_parallel(&ps, 4).unwrap();
        tree.check_invariants().unwrap();

        // Parameter validation mirrors the sequential builder.
        assert!(matches!(
            BallTreeBuilder::new(0).build_parallel(&dataset(50, 4), 2),
            Err(Error::InvalidParameter { .. })
        ));
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let ps = dataset(3_000, 8);
        let tree = BallTreeBuilder::new(64).build_parallel(&ps, 0).unwrap();
        tree.check_invariants().unwrap();
        let same = BallTreeBuilder::new(64).build_parallel(&ps, 2).unwrap();
        assert_eq!(tree.original_ids, same.original_ids);
    }
}
