//! Branch-and-bound search over the Ball-Tree (Algorithm 3 of the paper).

use std::time::Instant;

use p2h_core::{
    distance, BranchPreference, HyperplaneQuery, P2hIndex, Scalar, SearchParams, SearchResult,
    SearchStats, TopKCollector,
};

use crate::bound::node_ball_bound;
use crate::build::BallTree;
use crate::node::Node;

/// Mutable state threaded through the recursive traversal.
struct Ctx<'a> {
    query: &'a [Scalar],
    query_norm: Scalar,
    preference: BranchPreference,
    collector: TopKCollector,
    stats: SearchStats,
    candidate_limit: u64,
    /// Set when the candidate budget is exhausted; stops the whole traversal.
    exhausted: bool,
    timing: bool,
}

impl Ctx<'_> {
    #[inline]
    fn threshold(&self) -> Scalar {
        self.collector.threshold()
    }
}

impl BallTree {
    /// Scans a leaf exhaustively (the `ExhaustiveScan` routine of Algorithm 3).
    fn scan_leaf(&self, node: &Node, ctx: &mut Ctx<'_>) {
        let timer = ctx.timing.then(Instant::now);
        for pos in node.start..node.end {
            if ctx.stats.candidates_verified >= ctx.candidate_limit {
                ctx.exhausted = true;
                break;
            }
            let point = self.point(pos as usize);
            let dist = distance::abs_dot(point, ctx.query);
            ctx.stats.inner_products += 1;
            ctx.stats.candidates_verified += 1;
            ctx.collector.offer(self.original_id(pos as usize), dist);
        }
        if let Some(t) = timer {
            ctx.stats.time_verify_ns += t.elapsed().as_nanos() as u64;
        }
    }

    /// Visits a node whose center inner product `ip = ⟨q, N.c⟩` has already been
    /// computed (by the parent, or at the root by [`BallTree::run_search`]).
    fn visit(&self, node_id: u32, ip: Scalar, ctx: &mut Ctx<'_>) {
        if ctx.exhausted {
            return;
        }
        let node = &self.nodes[node_id as usize];
        ctx.stats.nodes_visited += 1;

        let lb = node_ball_bound(ip.abs(), ctx.query_norm, node.radius);
        if lb >= ctx.threshold() {
            ctx.stats.pruned_subtrees += 1;
            return;
        }

        if node.is_leaf() {
            ctx.stats.leaves_visited += 1;
            self.scan_leaf(node, ctx);
            return;
        }

        // Compute the child center inner products once here; they are reused by the
        // recursive calls, so Ball-Tree performs exactly two O(d) inner products per
        // expanded internal node (the cost model of Theorem 5).
        let timer = ctx.timing.then(Instant::now);
        let left = &self.nodes[node.left as usize];
        let right = &self.nodes[node.right as usize];
        let ip_left = distance::dot(ctx.query, self.center(left));
        let ip_right = distance::dot(ctx.query, self.center(right));
        ctx.stats.inner_products += 2;
        if let Some(t) = timer {
            ctx.stats.time_bounds_ns += t.elapsed().as_nanos() as u64;
        }

        let left_first = match ctx.preference {
            BranchPreference::Center => ip_left.abs() < ip_right.abs(),
            BranchPreference::LowerBound => {
                node_ball_bound(ip_left.abs(), ctx.query_norm, left.radius)
                    < node_ball_bound(ip_right.abs(), ctx.query_norm, right.radius)
            }
        };
        if left_first {
            self.visit(node.left, ip_left, ctx);
            self.visit(node.right, ip_right, ctx);
        } else {
            self.visit(node.right, ip_right, ctx);
            self.visit(node.left, ip_left, ctx);
        }
    }

    /// Runs one query against the tree and returns the result with statistics.
    fn run_search(&self, query: &HyperplaneQuery, params: &SearchParams) -> SearchResult {
        assert_eq!(
            query.dim(),
            self.points.dim(),
            "query dimension must match the augmented data dimension"
        );
        let start = Instant::now();
        let mut ctx = Ctx {
            query: query.coeffs(),
            query_norm: query.norm(),
            preference: params.branch_preference,
            collector: TopKCollector::new(params.k),
            stats: SearchStats::default(),
            candidate_limit: params.candidate_limit.map_or(u64::MAX, |c| c as u64),
            exhausted: false,
            timing: params.collect_timing,
        };

        let root = &self.nodes[0];
        let timer = ctx.timing.then(Instant::now);
        let ip_root = distance::dot(ctx.query, self.center(root));
        ctx.stats.inner_products += 1;
        if let Some(t) = timer {
            ctx.stats.time_bounds_ns += t.elapsed().as_nanos() as u64;
        }
        self.visit(0, ip_root, &mut ctx);

        let mut stats = ctx.stats;
        stats.time_total_ns = start.elapsed().as_nanos() as u64;
        SearchResult { neighbors: ctx.collector.into_sorted_vec(), stats }
    }
}

impl P2hIndex for BallTree {
    fn name(&self) -> &'static str {
        "Ball-Tree"
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn dim(&self) -> usize {
        self.points.dim()
    }

    fn index_size_bytes(&self) -> usize {
        self.structure_size_bytes()
    }

    fn search(&self, query: &HyperplaneQuery, params: &SearchParams) -> SearchResult {
        self.run_search(query, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::BallTreeBuilder;
    use p2h_core::{LinearScan, PointSet};
    use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};

    fn dataset(n: usize, dim: usize, seed: u64) -> PointSet {
        SyntheticDataset::new(
            "bt-search",
            n,
            dim,
            DataDistribution::GaussianClusters { clusters: 6, std_dev: 1.5 },
            seed,
        )
        .generate()
        .unwrap()
    }

    fn queries(ps: &PointSet, count: usize) -> Vec<HyperplaneQuery> {
        generate_queries(ps, count, QueryDistribution::DataDifference, 77).unwrap()
    }

    #[test]
    fn exact_search_matches_linear_scan() {
        let ps = dataset(3_000, 12, 1);
        let tree = BallTreeBuilder::new(64).build(&ps).unwrap();
        let scan = LinearScan::new(ps.clone());
        for (qi, q) in queries(&ps, 10).iter().enumerate() {
            for k in [1, 5, 20] {
                let exact = scan.search_exact(q, k);
                let got = tree.search_exact(q, k);
                assert_eq!(
                    got.distances(),
                    exact.distances(),
                    "query {qi}, k={k}: distances differ"
                );
            }
        }
    }

    #[test]
    fn exact_search_prunes_work() {
        let ps = dataset(20_000, 16, 2);
        let tree = BallTreeBuilder::new(100).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        let result = tree.search_exact(q, 10);
        assert!(
            result.stats.candidates_verified < 20_000,
            "branch-and-bound should verify fewer than all points, verified {}",
            result.stats.candidates_verified
        );
        assert!(result.stats.pruned_subtrees > 0);
        assert_eq!(result.neighbors.len(), 10);
    }

    #[test]
    fn candidate_limit_bounds_verification() {
        let ps = dataset(5_000, 8, 3);
        let tree = BallTreeBuilder::new(100).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        let result = tree.search(q, &SearchParams::approximate(10, 500));
        assert!(result.stats.candidates_verified <= 500);
        assert_eq!(result.neighbors.len(), 10);
    }

    #[test]
    fn larger_candidate_budget_never_hurts_recall() {
        let ps = dataset(5_000, 12, 4);
        let tree = BallTreeBuilder::new(100).build(&ps).unwrap();
        let scan = LinearScan::new(ps.clone());
        let q = &queries(&ps, 1)[0];
        let exact: Vec<usize> = scan.search_exact(q, 10).indices();
        let recall = |limit: usize| {
            let result = tree.search(q, &SearchParams::approximate(10, limit));
            result.indices().iter().filter(|i| exact.contains(i)).count()
        };
        let small = recall(200);
        let large = recall(5_000);
        assert!(large >= small);
        assert_eq!(large, 10, "with an unlimited budget the search is exact");
    }

    #[test]
    fn both_branch_preferences_give_exact_results() {
        let ps = dataset(2_000, 8, 5);
        let tree = BallTreeBuilder::new(50).build(&ps).unwrap();
        let scan = LinearScan::new(ps.clone());
        for q in &queries(&ps, 5) {
            let exact = scan.search_exact(q, 5);
            for pref in [BranchPreference::Center, BranchPreference::LowerBound] {
                let params = SearchParams::exact(5).with_branch_preference(pref);
                let got = tree.search(q, &params);
                assert_eq!(got.distances(), exact.distances());
            }
        }
    }

    #[test]
    fn center_preference_verifies_no_more_than_lower_bound_on_average() {
        // Section III-C argues the center preference reaches good candidates sooner.
        // With a limited budget it should therefore achieve at least comparable recall.
        let ps = dataset(10_000, 16, 6);
        let tree = BallTreeBuilder::new(100).build(&ps).unwrap();
        let scan = LinearScan::new(ps.clone());
        let qs = queries(&ps, 20);
        let mut center_hits = 0usize;
        let mut lb_hits = 0usize;
        for q in &qs {
            let exact: Vec<usize> = scan.search_exact(q, 10).indices();
            let count = |pref| {
                let params = SearchParams::approximate(10, 1_000).with_branch_preference(pref);
                tree.search(q, &params).indices().iter().filter(|i| exact.contains(i)).count()
            };
            center_hits += count(BranchPreference::Center);
            lb_hits += count(BranchPreference::LowerBound);
        }
        assert!(
            center_hits + 10 >= lb_hits,
            "center preference should not be much worse: center={center_hits}, lb={lb_hits}"
        );
    }

    #[test]
    fn timing_collection_populates_phase_timers() {
        let ps = dataset(2_000, 8, 7);
        let tree = BallTreeBuilder::new(50).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        let result = tree.search(q, &SearchParams::exact(5).with_timing());
        assert!(result.stats.time_total_ns > 0);
        assert!(result.stats.time_verify_ns > 0);
        // Without timing the phase timers stay zero.
        let untimed = tree.search_exact(q, 5);
        assert_eq!(untimed.stats.time_verify_ns, 0);
        assert_eq!(untimed.stats.time_bounds_ns, 0);
    }

    #[test]
    fn index_trait_metadata() {
        let ps = dataset(1_000, 8, 8);
        let tree = BallTreeBuilder::new(100).build(&ps).unwrap();
        assert_eq!(tree.name(), "Ball-Tree");
        assert_eq!(tree.len(), 1_000);
        assert_eq!(tree.dim(), 9);
        assert!(tree.index_size_bytes() > 0);
    }

    #[test]
    fn k_larger_than_n_returns_all_points() {
        let ps = dataset(50, 4, 9);
        let tree = BallTreeBuilder::new(10).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        let result = tree.search_exact(q, 100);
        assert_eq!(result.neighbors.len(), 50);
        let d = result.distances();
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
    }
}
