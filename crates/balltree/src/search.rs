//! Branch-and-bound search over the Ball-Tree (Algorithm 3 of the paper).
//!
//! The traversal is iterative (an explicit stack living in the caller's
//! [`QueryScratch`]) and leaf verification is *blocked*: each leaf's contiguous rows are
//! fed to [`kernels::abs_dot_block`] in strips, turning candidate verification into a
//! small matvec instead of `leaf_size` independent inner-product calls. The visit
//! order, pruning decisions, and statistics are identical to the recursive formulation;
//! the distances are bit-identical to [`p2h_core::LinearScan`]'s because every index
//! shares the dispatched kernels (see `p2h_core::kernels`).

use std::time::Instant;

use p2h_core::{
    kernels, BranchPreference, HyperplaneQuery, P2hIndex, QueryScratch, Scalar, SearchParams,
    SearchResult, SearchStats, LEAF_STRIP,
};

use crate::bound::node_ball_bound;
use crate::build::BallTree;
use crate::node::Node;

impl BallTree {
    /// Runs one query against the tree and returns the result with statistics.
    fn run_search(
        &self,
        query: &HyperplaneQuery,
        params: &SearchParams,
        scratch: &mut QueryScratch,
    ) -> SearchResult {
        assert_eq!(
            query.dim(),
            self.points.dim(),
            "query dimension must match the augmented data dimension"
        );
        let start = Instant::now();
        scratch.reset(params.k);
        let QueryScratch { collector, stack, strip, .. } = scratch;

        let q = query.coeffs();
        let query_norm = query.norm();
        let dim = self.points.dim();
        let preference = params.branch_preference;
        let candidate_limit = params.candidate_limit.map_or(u64::MAX, |c| c as u64);
        let timing = params.collect_timing;
        let mut stats = SearchStats::default();

        // Resolve the buffer-backed arrays once per query: a mapped `VecBuf` pays a
        // dynamic-dispatch slice resolution per deref, which must stay out of the
        // per-node and per-candidate loops below.
        let points_flat = self.points.as_flat();
        let original_ids: &[u32] = &self.original_ids;
        let centers: &[Scalar] = &self.centers;
        let center_of = |node: &Node| {
            let start = node.center_offset as usize * dim;
            &centers[start..start + dim]
        };

        let timer = timing.then(Instant::now);
        let ip_root = kernels::dot(q, center_of(&self.nodes[0]));
        stats.inner_products += 1;
        if let Some(t) = timer {
            stats.time_bounds_ns += t.elapsed().as_nanos() as u64;
        }
        stack.push((0, ip_root));

        // Depth-first branch-and-bound: popping the preferred child first reproduces the
        // recursive visit order exactly, and the node-level bound is evaluated with the
        // threshold current at pop time — the same moment the recursion would check it.
        'traversal: while let Some((node_id, ip)) = stack.pop() {
            let node = &self.nodes[node_id as usize];
            stats.nodes_visited += 1;

            let lb = node_ball_bound(ip.abs(), query_norm, node.radius);
            if lb >= collector.threshold() {
                stats.pruned_subtrees += 1;
                continue;
            }

            if node.is_leaf() {
                stats.leaves_visited += 1;
                // Blocked exhaustive scan (the `ExhaustiveScan` routine of Algorithm 3):
                // one abs_dot_block call per strip of contiguous leaf rows.
                let timer = timing.then(Instant::now);
                let mut pos = node.start as usize;
                let end = node.end as usize;
                while pos < end {
                    let budget = candidate_limit - stats.candidates_verified;
                    if budget == 0 {
                        if let Some(t) = timer {
                            stats.time_verify_ns += t.elapsed().as_nanos() as u64;
                        }
                        break 'traversal;
                    }
                    let block = (end - pos).min(LEAF_STRIP).min(budget as usize);
                    kernels::abs_dot_block(
                        q,
                        &points_flat[pos * dim..(pos + block) * dim],
                        dim,
                        &mut strip[..block],
                    );
                    stats.inner_products += block as u64;
                    stats.candidates_verified += block as u64;
                    for (i, &dist) in strip[..block].iter().enumerate() {
                        collector.offer(original_ids[pos + i] as usize, dist);
                    }
                    pos += block;
                }
                if let Some(t) = timer {
                    stats.time_verify_ns += t.elapsed().as_nanos() as u64;
                }
                continue;
            }

            // Compute the child center inner products once here; they ride on the stack
            // to the child visits, so Ball-Tree performs exactly two O(d) inner products
            // per expanded internal node (the cost model of Theorem 5). Sibling centers
            // are stored adjacently (left row immediately followed by right), so both
            // products come from one two-row blocked matvec that loads the query once;
            // per-row results are bit-identical to two separate `dot` calls.
            let timer = timing.then(Instant::now);
            let left = &self.nodes[node.left as usize];
            let right = &self.nodes[node.right as usize];
            debug_assert_eq!(right.center_offset, left.center_offset + 1);
            let pair_start = left.center_offset as usize * dim;
            let mut pair = [0.0; 2];
            kernels::dot_block(q, &centers[pair_start..pair_start + 2 * dim], dim, &mut pair);
            let (ip_left, ip_right) = (pair[0], pair[1]);
            stats.inner_products += 2;
            if let Some(t) = timer {
                stats.time_bounds_ns += t.elapsed().as_nanos() as u64;
            }

            let left_first = match preference {
                BranchPreference::Center => ip_left.abs() < ip_right.abs(),
                BranchPreference::LowerBound => {
                    node_ball_bound(ip_left.abs(), query_norm, left.radius)
                        < node_ball_bound(ip_right.abs(), query_norm, right.radius)
                }
            };
            // Push the non-preferred child first so the preferred one pops first.
            if left_first {
                stack.push((node.right, ip_right));
                stack.push((node.left, ip_left));
            } else {
                stack.push((node.left, ip_left));
                stack.push((node.right, ip_right));
            }
        }

        stats.time_total_ns = start.elapsed().as_nanos() as u64;
        SearchResult { neighbors: collector.take_sorted(), stats }
    }
}

impl P2hIndex for BallTree {
    fn name(&self) -> &'static str {
        "Ball-Tree"
    }

    fn len(&self) -> usize {
        self.points.len()
    }

    fn dim(&self) -> usize {
        self.points.dim()
    }

    fn index_size_bytes(&self) -> usize {
        self.structure_size_bytes()
    }

    fn search(&self, query: &HyperplaneQuery, params: &SearchParams) -> SearchResult {
        self.run_search(query, params, &mut QueryScratch::new())
    }

    fn search_with_scratch(
        &self,
        query: &HyperplaneQuery,
        params: &SearchParams,
        scratch: &mut QueryScratch,
    ) -> SearchResult {
        self.run_search(query, params, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::BallTreeBuilder;
    use p2h_core::{LinearScan, PointSet};
    use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};

    fn dataset(n: usize, dim: usize, seed: u64) -> PointSet {
        SyntheticDataset::new(
            "bt-search",
            n,
            dim,
            DataDistribution::GaussianClusters { clusters: 6, std_dev: 1.5 },
            seed,
        )
        .generate()
        .unwrap()
    }

    fn queries(ps: &PointSet, count: usize) -> Vec<HyperplaneQuery> {
        generate_queries(ps, count, QueryDistribution::DataDifference, 77).unwrap()
    }

    #[test]
    fn exact_search_matches_linear_scan() {
        let ps = dataset(3_000, 12, 1);
        let tree = BallTreeBuilder::new(64).build(&ps).unwrap();
        let scan = LinearScan::new(ps.clone());
        for (qi, q) in queries(&ps, 10).iter().enumerate() {
            for k in [1, 5, 20] {
                let exact = scan.search_exact(q, k);
                let got = tree.search_exact(q, k);
                assert_eq!(
                    got.distances(),
                    exact.distances(),
                    "query {qi}, k={k}: distances differ"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_is_identical_to_fresh_searches() {
        let ps = dataset(4_000, 16, 11);
        let tree = BallTreeBuilder::new(64).build(&ps).unwrap();
        let mut scratch = QueryScratch::new();
        for q in &queries(&ps, 12) {
            for params in [SearchParams::exact(5), SearchParams::approximate(3, 400)] {
                let fresh = tree.search(q, &params);
                let reused = tree.search_with_scratch(q, &params, &mut scratch);
                assert_eq!(fresh.neighbors, reused.neighbors);
                assert_eq!(fresh.stats.candidates_verified, reused.stats.candidates_verified);
                assert_eq!(fresh.stats.nodes_visited, reused.stats.nodes_visited);
            }
        }
    }

    #[test]
    fn exact_search_prunes_work() {
        let ps = dataset(20_000, 16, 2);
        let tree = BallTreeBuilder::new(100).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        let result = tree.search_exact(q, 10);
        assert!(
            result.stats.candidates_verified < 20_000,
            "branch-and-bound should verify fewer than all points, verified {}",
            result.stats.candidates_verified
        );
        assert!(result.stats.pruned_subtrees > 0);
        assert_eq!(result.neighbors.len(), 10);
    }

    #[test]
    fn candidate_limit_bounds_verification() {
        let ps = dataset(5_000, 8, 3);
        let tree = BallTreeBuilder::new(100).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        let result = tree.search(q, &SearchParams::approximate(10, 500));
        assert!(result.stats.candidates_verified <= 500);
        assert_eq!(result.neighbors.len(), 10);
    }

    #[test]
    fn larger_candidate_budget_never_hurts_recall() {
        let ps = dataset(5_000, 12, 4);
        let tree = BallTreeBuilder::new(100).build(&ps).unwrap();
        let scan = LinearScan::new(ps.clone());
        let q = &queries(&ps, 1)[0];
        let exact: Vec<usize> = scan.search_exact(q, 10).indices();
        let recall = |limit: usize| {
            let result = tree.search(q, &SearchParams::approximate(10, limit));
            result.indices().iter().filter(|i| exact.contains(i)).count()
        };
        let small = recall(200);
        let large = recall(5_000);
        assert!(large >= small);
        assert_eq!(large, 10, "with an unlimited budget the search is exact");
    }

    #[test]
    fn both_branch_preferences_give_exact_results() {
        let ps = dataset(2_000, 8, 5);
        let tree = BallTreeBuilder::new(50).build(&ps).unwrap();
        let scan = LinearScan::new(ps.clone());
        for q in &queries(&ps, 5) {
            let exact = scan.search_exact(q, 5);
            for pref in [BranchPreference::Center, BranchPreference::LowerBound] {
                let params = SearchParams::exact(5).with_branch_preference(pref);
                let got = tree.search(q, &params);
                assert_eq!(got.distances(), exact.distances());
            }
        }
    }

    #[test]
    fn center_preference_verifies_no_more_than_lower_bound_on_average() {
        // Section III-C argues the center preference reaches good candidates sooner.
        // With a limited budget it should therefore achieve at least comparable recall.
        let ps = dataset(10_000, 16, 6);
        let tree = BallTreeBuilder::new(100).build(&ps).unwrap();
        let scan = LinearScan::new(ps.clone());
        let qs = queries(&ps, 20);
        let mut center_hits = 0usize;
        let mut lb_hits = 0usize;
        for q in &qs {
            let exact: Vec<usize> = scan.search_exact(q, 10).indices();
            let count = |pref| {
                let params = SearchParams::approximate(10, 1_000).with_branch_preference(pref);
                tree.search(q, &params).indices().iter().filter(|i| exact.contains(i)).count()
            };
            center_hits += count(BranchPreference::Center);
            lb_hits += count(BranchPreference::LowerBound);
        }
        assert!(
            center_hits + 10 >= lb_hits,
            "center preference should not be much worse: center={center_hits}, lb={lb_hits}"
        );
    }

    #[test]
    fn timing_collection_populates_phase_timers() {
        let ps = dataset(2_000, 8, 7);
        let tree = BallTreeBuilder::new(50).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        let result = tree.search(q, &SearchParams::exact(5).with_timing());
        assert!(result.stats.time_total_ns > 0);
        assert!(result.stats.time_verify_ns > 0);
        // Without timing the phase timers stay zero.
        let untimed = tree.search_exact(q, 5);
        assert_eq!(untimed.stats.time_verify_ns, 0);
        assert_eq!(untimed.stats.time_bounds_ns, 0);
    }

    #[test]
    fn index_trait_metadata() {
        let ps = dataset(1_000, 8, 8);
        let tree = BallTreeBuilder::new(100).build(&ps).unwrap();
        assert_eq!(tree.name(), "Ball-Tree");
        assert_eq!(tree.len(), 1_000);
        assert_eq!(tree.dim(), 9);
        assert!(tree.index_size_bytes() > 0);
    }

    #[test]
    fn k_larger_than_n_returns_all_points() {
        let ps = dataset(50, 4, 9);
        let tree = BallTreeBuilder::new(10).build(&ps).unwrap();
        let q = &queries(&ps, 1)[0];
        let result = tree.search_exact(q, 100);
        assert_eq!(result.neighbors.len(), 50);
        let d = result.distances();
        assert!(d.windows(2).all(|w| w[0] <= w[1]));
    }
}
