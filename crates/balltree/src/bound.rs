//! The node-level ball bound (Theorem 2 of the paper).

use p2h_core::Scalar;

/// Node-level (and point-level) ball bound.
///
/// Given `|⟨q, c⟩|` (absolute inner product of the query and a ball center), `‖q‖`, and
/// the ball radius `r`, every point `x` inside the ball satisfies
///
/// ```text
/// |⟨x, q⟩| ≥ max(|⟨q, c⟩| − ‖q‖·r, 0)
/// ```
///
/// This is Theorem 2 for tree nodes and Corollary 1 for individual leaf points (where `r`
/// becomes the point's own distance to the leaf center).
#[inline]
pub fn node_ball_bound(abs_ip: Scalar, query_norm: Scalar, radius: Scalar) -> Scalar {
    (abs_ip - query_norm * radius).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::distance;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bound_cases_of_theorem_2() {
        // Case 1: ball entirely on the positive side -> positive bound.
        assert_eq!(node_ball_bound(10.0, 2.0, 1.0), 8.0);
        // Case 3: ball crosses the hyperplane -> bound clamps to zero.
        assert_eq!(node_ball_bound(1.0, 2.0, 1.0), 0.0);
        // Boundary: exactly touching.
        assert_eq!(node_ball_bound(2.0, 2.0, 1.0), 0.0);
    }

    #[test]
    fn bound_is_nonnegative_and_monotone_in_radius() {
        let b1 = node_ball_bound(5.0, 1.0, 1.0);
        let b2 = node_ball_bound(5.0, 1.0, 2.0);
        assert!(b1 >= b2);
        assert!(b2 >= 0.0);
    }

    /// Brute-force check of Theorem 2: sample a ball of points, compute the true minimum
    /// absolute inner product, and verify the bound never exceeds it.
    #[test]
    fn bound_never_exceeds_true_minimum() {
        let mut rng = StdRng::seed_from_u64(17);
        let dim = 8;
        for _ in 0..50 {
            let center: Vec<Scalar> = (0..dim).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let radius: Scalar = rng.gen_range(0.1..3.0);
            let query: Vec<Scalar> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let qnorm = distance::norm(&query);
            if qnorm < 1e-3 {
                continue;
            }
            // Sample points inside the ball.
            let mut true_min = Scalar::INFINITY;
            for _ in 0..200 {
                let mut offset: Vec<Scalar> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let onorm = distance::norm(&offset).max(1e-6);
                let scale = rng.gen_range(0.0..radius) / onorm;
                for o in offset.iter_mut() {
                    *o *= scale;
                }
                let point: Vec<Scalar> =
                    center.iter().zip(offset.iter()).map(|(c, o)| c + o).collect();
                true_min = true_min.min(distance::abs_dot(&point, &query));
            }
            let bound = node_ball_bound(distance::abs_dot(&center, &query), qnorm, radius);
            assert!(bound <= true_min + 1e-3, "bound {bound} exceeds true minimum {true_min}");
        }
    }

    proptest! {
        #[test]
        fn bound_is_valid_for_any_point_in_ball(
            center in proptest::collection::vec(-10.0f32..10.0, 4),
            direction in proptest::collection::vec(-1.0f32..1.0, 4),
            query in proptest::collection::vec(-5.0f32..5.0, 4),
            radius in 0.01f32..5.0,
            t in 0.0f32..1.0,
        ) {
            let dnorm = distance::norm(&direction);
            prop_assume!(dnorm > 1e-3);
            let qnorm = distance::norm(&query);
            prop_assume!(qnorm > 1e-3);
            // x = center + t * radius * unit(direction) is inside the ball.
            let x: Vec<Scalar> = center
                .iter()
                .zip(direction.iter())
                .map(|(c, d)| c + t * radius * d / dnorm)
                .collect();
            let bound = node_ball_bound(distance::abs_dot(&center, &query), qnorm, radius);
            let actual = distance::abs_dot(&x, &query);
            prop_assert!(bound <= actual + 1e-2 * (1.0 + actual.abs()),
                "bound {} vs actual {}", bound, actual);
        }
    }
}
