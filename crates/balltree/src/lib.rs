//! # p2h-balltree
//!
//! The Ball-Tree index for point-to-hyperplane nearest neighbor search, implementing
//! Section III of "Lightweight-Yet-Efficient: Revitalizing Ball-Tree for
//! Point-to-Hyperplane Nearest Neighbor Search" (Huang & Tung, ICDE 2023).
//!
//! A Ball-Tree is a binary space-partition tree in which every node stores only the
//! centroid and radius of the points it covers. This crate provides:
//!
//! * [`BallTreeBuilder`] / [`BallTree`] — construction (Algorithms 1–2) and the
//!   branch-and-bound search (Algorithm 3) driven by the node-level ball bound
//!   (Theorem 2),
//! * [`split`] — the seed-grow splitting rule, shared with the BC-Tree crate,
//! * [`bound::node_ball_bound`] — the lower bound itself, exposed for reuse and testing,
//! * exact and approximate (candidate-budget-limited) top-k queries with either the
//!   center or the lower-bound branch preference.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bound;
mod build;
mod node;
#[cfg(feature = "parallel")]
pub mod parallel;
mod search;
pub mod split;

pub use build::{BallTree, BallTreeBuilder, DEFAULT_LEAF_SIZE};
pub use node::{validate_permutation, validate_structure, Node, NO_CHILD};
