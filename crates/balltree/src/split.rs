//! The seed-grow splitting rule (Algorithm 2 of the paper).
//!
//! Given a subset of points, pick a random seed `v`, let `x_l` be the point furthest from
//! `v` and `x_r` the point furthest from `x_l`; every point is then assigned to whichever
//! pivot is closer. The rule is cheap (two linear passes) yet produces splits whose
//! children have well-separated centroids, which is what makes the ball bounds effective.

use rand::rngs::StdRng;
use rand::Rng;

use p2h_core::{distance, PointSet, Scalar};

/// The two pivot points chosen by the seed-grow rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pivots {
    /// Position (within the index slice handed to [`choose_pivots`]) of the left pivot.
    pub left: usize,
    /// Position of the right pivot.
    pub right: usize,
}

/// Chooses the two split pivots for `indices` using the seed-grow rule.
///
/// Returns positions *into `indices`*, not original point ids. If all points coincide the
/// two pivots may be the same position; [`partition`] handles that case by falling back
/// to a balanced halving.
pub fn choose_pivots(points: &PointSet, indices: &[usize], rng: &mut StdRng) -> Pivots {
    debug_assert!(indices.len() >= 2, "splitting needs at least two points");
    let seed_pos = rng.gen_range(0..indices.len());
    let seed = points.point(indices[seed_pos]);

    let mut left = 0usize;
    let mut best = -1.0 as Scalar;
    for (pos, &idx) in indices.iter().enumerate() {
        let d = distance::euclidean_sq(seed, points.point(idx));
        if d > best {
            best = d;
            left = pos;
        }
    }

    let left_point = points.point(indices[left]);
    let mut right = 0usize;
    let mut best = -1.0 as Scalar;
    for (pos, &idx) in indices.iter().enumerate() {
        let d = distance::euclidean_sq(left_point, points.point(idx));
        if d > best {
            best = d;
            right = pos;
        }
    }
    Pivots { left, right }
}

/// Partitions `indices` in place into a left part (closer to the left pivot) and a right
/// part (closer to the right pivot), returning the size of the left part.
///
/// Guarantees that both parts are non-empty: if the distance-based assignment would put
/// every point on one side (which happens when all points coincide, or when ties all
/// resolve one way), the split falls back to a balanced halving so that tree construction
/// always terminates.
pub fn partition(points: &PointSet, indices: &mut [usize], pivots: Pivots) -> usize {
    let n = indices.len();
    debug_assert!(n >= 2);
    let left_pivot = points.point(indices[pivots.left]).to_vec();
    let right_pivot = points.point(indices[pivots.right]).to_vec();

    // Stable two-pass partition: collect assignments first, then reorder.
    let mut left_ids = Vec::with_capacity(n);
    let mut right_ids = Vec::with_capacity(n);
    for &idx in indices.iter() {
        let p = points.point(idx);
        let dl = distance::euclidean_sq(p, &left_pivot);
        let dr = distance::euclidean_sq(p, &right_pivot);
        if dl <= dr {
            left_ids.push(idx);
        } else {
            right_ids.push(idx);
        }
    }

    if left_ids.is_empty() || right_ids.is_empty() {
        // Degenerate split (identical points): halve deterministically.
        let mid = n / 2;
        return mid;
    }

    let split = left_ids.len();
    for (slot, idx) in indices.iter_mut().zip(left_ids.into_iter().chain(right_ids)) {
        *slot = idx;
    }
    split
}

/// Convenience wrapper: chooses pivots and partitions in one call, returning the left
/// part size.
pub fn seed_grow_split(points: &PointSet, indices: &mut [usize], rng: &mut StdRng) -> usize {
    let pivots = choose_pivots(points, indices, rng);
    partition(points, indices, pivots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn two_blob_points() -> PointSet {
        // Two well-separated blobs around (0,0) and (100,100).
        let mut rows = Vec::new();
        for i in 0..20 {
            let jitter = i as Scalar * 0.01;
            rows.push(vec![jitter, -jitter]);
            rows.push(vec![100.0 + jitter, 100.0 - jitter]);
        }
        PointSet::augment(&rows).unwrap()
    }

    #[test]
    fn pivots_come_from_opposite_blobs() {
        let ps = two_blob_points();
        let indices: Vec<usize> = (0..ps.len()).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let pivots = choose_pivots(&ps, &indices, &mut rng);
        let a = ps.point(indices[pivots.left]);
        let b = ps.point(indices[pivots.right]);
        assert!(
            distance::euclidean(a, b) > 100.0,
            "pivots should span the two blobs: {a:?} vs {b:?}"
        );
    }

    #[test]
    fn partition_separates_blobs() {
        let ps = two_blob_points();
        let mut indices: Vec<usize> = (0..ps.len()).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let split = seed_grow_split(&ps, &mut indices, &mut rng);
        assert_eq!(split, 20, "each blob has 20 points");
        // All points on each side belong to the same blob (blob is determined by the
        // parity of the original index in `two_blob_points`).
        let left_parities: Vec<usize> = indices[..split].iter().map(|i| i % 2).collect();
        let right_parities: Vec<usize> = indices[split..].iter().map(|i| i % 2).collect();
        assert!(left_parities.windows(2).all(|w| w[0] == w[1]));
        assert!(right_parities.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(left_parities[0], right_parities[0]);
    }

    #[test]
    fn degenerate_identical_points_split_in_half() {
        let rows = vec![vec![3.0 as Scalar, 4.0]; 9];
        let ps = PointSet::augment(&rows).unwrap();
        let mut indices: Vec<usize> = (0..9).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let split = seed_grow_split(&ps, &mut indices, &mut rng);
        assert!(split > 0 && split < 9, "split must leave both sides non-empty");
        assert_eq!(split, 4);
    }

    #[test]
    fn both_sides_always_nonempty_on_random_data() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let rows: Vec<Vec<Scalar>> =
                (0..50).map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
            let ps = PointSet::augment(&rows).unwrap();
            let mut indices: Vec<usize> = (0..50).collect();
            let split = seed_grow_split(&ps, &mut indices, &mut rng);
            assert!(split > 0 && split < 50, "trial {trial}: split {split} out of range");
            // The partition is a permutation of the original indices.
            let mut sorted = indices.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        }
    }
}
