//! Ball-Tree construction (Algorithm 1 of the paper).

use rand::rngs::StdRng;
use rand::SeedableRng;

use p2h_core::{distance, Error, PointSet, Result, Scalar, VecBuf};

use crate::node::{validate_structure, Node, NO_CHILD};
use crate::split::seed_grow_split;

/// Default maximum leaf size `N0` (the paper sweeps 100–10,000; 100 is its reference
/// setting for the indexing-cost experiments).
pub const DEFAULT_LEAF_SIZE: usize = 100;

/// Configuration for building a [`BallTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BallTreeBuilder {
    /// Maximum number of points in a leaf node (`N0` in the paper).
    pub leaf_size: usize,
    /// Seed for the random seed-grow pivot selection, so builds are reproducible.
    pub seed: u64,
}

impl Default for BallTreeBuilder {
    fn default() -> Self {
        Self { leaf_size: DEFAULT_LEAF_SIZE, seed: 0 }
    }
}

impl BallTreeBuilder {
    /// Creates a builder with the given maximum leaf size and the default seed.
    pub fn new(leaf_size: usize) -> Self {
        Self { leaf_size, ..Self::default() }
    }

    /// Sets the RNG seed used by the split rule.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds a Ball-Tree over the given (augmented) point set.
    ///
    /// Construction runs in `O(d · n · log n)` expected time and `O(n · d)` space
    /// (Theorem 1): every level of the recursion touches every point a constant number
    /// of times, and the tree has `O(log(n / N0))` expected levels.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] if `leaf_size` is zero and
    /// [`Error::EmptyDataSet`] if the point set is empty.
    pub fn build(&self, points: &PointSet) -> Result<BallTree> {
        if self.leaf_size == 0 {
            return Err(Error::InvalidParameter {
                name: "leaf_size",
                message: "the maximum leaf size N0 must be at least 1".into(),
            });
        }
        if points.is_empty() {
            return Err(Error::EmptyDataSet);
        }
        let n = points.len();
        let dim = points.dim();
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut order: Vec<usize> = (0..n).collect();
        // Rough capacity guess: ~2·n/N0 nodes for a balanced tree.
        let expected_nodes = (2 * n / self.leaf_size.max(1)).max(1) + 8;
        let mut arena = Arena {
            nodes: Vec::with_capacity(expected_nodes),
            centers: Vec::with_capacity(expected_nodes * dim),
            dim,
        };

        build_recursive(points, &mut order, 0, self.leaf_size, &mut arena, &mut rng);

        // Re-materialize the points in tree order so that every leaf scan is sequential.
        let mut reordered = Vec::with_capacity(n * dim);
        let mut original_ids = Vec::with_capacity(n);
        for &idx in &order {
            reordered.extend_from_slice(points.point(idx));
            original_ids.push(idx as u32);
        }
        let reordered = PointSet::from_flat(dim, reordered)?;

        let mut nodes = arena.nodes;
        let centers = pack_sibling_centers(&mut nodes, &arena.centers, dim);

        Ok(BallTree {
            points: reordered,
            original_ids: original_ids.into(),
            nodes,
            centers: centers.into(),
            leaf_size: self.leaf_size,
            build_seed: self.seed,
        })
    }
}

/// Reorders the flat center buffer so the two children of every internal node occupy
/// adjacent rows (left immediately followed by right), rewriting each node's
/// `center_offset`; the root keeps row 0. Returns the packed buffer.
///
/// This is the layout contract behind the search's paired-children matvec: one two-row
/// [`p2h_core::kernels::dot_block`] call computes both child center inner products of an
/// expanded node, sharing the query loads the two separate `dot` calls would repeat.
/// Per-row blocked results are bit-identical to `dot`, so search answers are unchanged.
pub(crate) fn pack_sibling_centers(
    nodes: &mut [Node],
    centers: &[Scalar],
    dim: usize,
) -> Vec<Scalar> {
    let row = |offset: u32| {
        let start = offset as usize * dim;
        &centers[start..start + dim]
    };
    let mut packed = Vec::with_capacity(centers.len());
    let mut new_offset = vec![0u32; nodes.len()];
    packed.extend_from_slice(row(nodes[0].center_offset));
    let mut stack: Vec<u32> = vec![0];
    while let Some(id) = stack.pop() {
        let node = nodes[id as usize];
        if node.is_leaf() {
            continue;
        }
        let next = (packed.len() / dim) as u32;
        new_offset[node.left as usize] = next;
        new_offset[node.right as usize] = next + 1;
        packed.extend_from_slice(row(nodes[node.left as usize].center_offset));
        packed.extend_from_slice(row(nodes[node.right as usize].center_offset));
        stack.push(node.left);
        stack.push(node.right);
    }
    for (node, &offset) in nodes.iter_mut().zip(&new_offset) {
        node.center_offset = offset;
    }
    packed
}

/// Growable node + center storage used during construction.
struct Arena {
    nodes: Vec<Node>,
    centers: Vec<Scalar>,
    dim: usize,
}

impl Arena {
    fn push(&mut self, center: Vec<Scalar>, radius: Scalar, start: usize, end: usize) -> u32 {
        let id = self.nodes.len() as u32;
        let center_offset = (self.centers.len() / self.dim) as u32;
        self.centers.extend_from_slice(&center);
        self.nodes.push(Node {
            center_offset,
            radius,
            start: start as u32,
            end: end as u32,
            left: NO_CHILD,
            right: NO_CHILD,
        });
        id
    }
}

/// Recursively builds the subtree covering `order[offset..offset + len]` (the slice
/// passed as `slice`), returning the node id.
fn build_recursive(
    points: &PointSet,
    slice: &mut [usize],
    offset: usize,
    leaf_size: usize,
    arena: &mut Arena,
    rng: &mut StdRng,
) -> u32 {
    let len = slice.len();
    let center = points.centroid_of(slice);
    let radius = slice
        .iter()
        .map(|&i| distance::euclidean(points.point(i), &center))
        .fold(0.0 as Scalar, Scalar::max);
    let node_id = arena.push(center, radius, offset, offset + len);

    if len > leaf_size {
        let split = seed_grow_split(points, slice, rng);
        let (left_slice, right_slice) = slice.split_at_mut(split);
        let left = build_recursive(points, left_slice, offset, leaf_size, arena, rng);
        let right = build_recursive(points, right_slice, offset + split, leaf_size, arena, rng);
        let node = &mut arena.nodes[node_id as usize];
        node.left = left;
        node.right = right;
    }
    node_id
}

/// A Ball-Tree index over an augmented point set (Section III of the paper).
///
/// Build one with [`BallTreeBuilder`]; query it through the
/// [`p2h_core::P2hIndex`] trait (implemented in the `search` module).
#[derive(Debug, Clone)]
pub struct BallTree {
    /// Points reordered so that every node covers a contiguous range.
    pub(crate) points: PointSet,
    /// Mapping from reordered position to the original point index. Buffer-backed so
    /// snapshot loaders can restore it zero-copy from a mapped region.
    pub(crate) original_ids: VecBuf<u32>,
    /// Node arena; node 0 is the root.
    pub(crate) nodes: Vec<Node>,
    /// Flat buffer of node centers, one `dim`-sized row per node, addressed through
    /// `Node::center_offset`. Sibling rows are adjacent (see `pack_sibling_centers`).
    /// Buffer-backed like `original_ids`.
    pub(crate) centers: VecBuf<Scalar>,
    /// Maximum leaf size `N0` the tree was built with.
    pub(crate) leaf_size: usize,
    /// RNG seed the tree was built with (recorded for snapshots and reproducibility).
    pub(crate) build_seed: u64,
}

impl BallTree {
    /// Builds a Ball-Tree with the default configuration (leaf size 100, seed 0).
    pub fn build(points: &PointSet) -> Result<Self> {
        BallTreeBuilder::default().build(points)
    }

    /// The maximum leaf size `N0` used for this tree.
    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// Total number of nodes (internal + leaf).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Depth of the tree (number of edges on the longest root-to-leaf path).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], id: u32) -> usize {
            let node = &nodes[id as usize];
            if node.is_leaf() {
                0
            } else {
                1 + depth_of(nodes, node.left).max(depth_of(nodes, node.right))
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// The node arena (root is node 0). Exposed for inspection and for the BC-Tree crate.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The flat center buffer: one `dim`-sized row per node, addressed through
    /// [`Node::center_offset`], with sibling rows adjacent. Exposed (with
    /// [`BallTree::original_ids`] and [`BallTree::nodes`]) so persistence layers can
    /// serialize the tree without rebuilding it.
    pub fn centers(&self) -> &[Scalar] {
        &self.centers
    }

    /// The mapping from reordered position to original point index.
    pub fn original_ids(&self) -> &[u32] {
        &self.original_ids
    }

    /// The RNG seed this tree was built with.
    pub fn build_seed(&self) -> u64 {
        self.build_seed
    }

    /// Reassembles a tree from its constituent arrays — the exact inverse of reading
    /// [`BallTree::points`], [`BallTree::original_ids`], [`BallTree::nodes`], and
    /// [`BallTree::centers`] off a built tree. This is the load path for persistent
    /// snapshots: because the arrays are restored verbatim, the reassembled tree
    /// answers every query bit-identically to the original (same kernel backend).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] (never panics) if the arrays are inconsistent: wrong
    /// lengths, an id mapping that is not a permutation, or a node arena that fails
    /// [`validate_structure`] — including the adjacent-sibling-centers layout contract
    /// the search's paired matvec relies on.
    pub fn from_parts(
        points: PointSet,
        original_ids: impl Into<VecBuf<u32>>,
        nodes: Vec<Node>,
        centers: impl Into<VecBuf<Scalar>>,
        leaf_size: usize,
        build_seed: u64,
    ) -> Result<Self> {
        let original_ids = original_ids.into();
        let centers = centers.into();
        let n = points.len();
        let dim = points.dim();
        crate::node::validate_permutation(&original_ids, n)?;
        if centers.len() != nodes.len() * dim {
            return Err(Error::Corrupt(format!(
                "center buffer has {} scalars for {} nodes of dim {dim}",
                centers.len(),
                nodes.len()
            )));
        }
        validate_structure(&nodes, n, nodes.len(), leaf_size, true)?;
        Ok(Self { points, original_ids, nodes, centers, leaf_size, build_seed })
    }

    /// The center of a node as a slice.
    #[inline]
    pub(crate) fn center(&self, node: &Node) -> &[Scalar] {
        let dim = self.points.dim();
        let start = node.center_offset as usize * dim;
        &self.centers[start..start + dim]
    }

    /// The reordered point at position `pos`.
    #[inline]
    pub(crate) fn point(&self, pos: usize) -> &[Scalar] {
        self.points.point(pos)
    }

    /// The reordered point set (contiguous per leaf).
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// Memory used by the tree structure (nodes, centers, id mapping), excluding the raw
    /// data points. This is the "Index Size" quantity of Table III. Mapped buffers
    /// (zero-copy snapshot loads) count 0: their bytes belong to the shared region.
    pub fn structure_size_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self.centers.heap_bytes()
            + self.original_ids.heap_bytes()
            + std::mem::size_of::<Self>()
    }

    /// Validates the structural invariants of the tree. Used by tests; cheap enough to
    /// call on moderately sized trees.
    ///
    /// Checks that: children partition their parent's range, every leaf has at most `N0`
    /// points, every point lies inside its node's ball (within a small tolerance), and
    /// the id mapping is a permutation.
    pub fn check_invariants(&self) -> Result<()> {
        let n = self.points.len();
        let mut seen = vec![false; n];
        for &id in self.original_ids.iter() {
            let id = id as usize;
            if id >= n || seen[id] {
                return Err(Error::InvalidParameter {
                    name: "original_ids",
                    message: "id mapping is not a permutation".into(),
                });
            }
            seen[id] = true;
        }
        for node in &self.nodes {
            if node.is_leaf() && node.size() > self.leaf_size {
                return Err(Error::InvalidParameter {
                    name: "leaf_size",
                    message: format!(
                        "leaf with {} points exceeds N0 = {}",
                        node.size(),
                        self.leaf_size
                    ),
                });
            }
            if !node.is_leaf() {
                let left = &self.nodes[node.left as usize];
                let right = &self.nodes[node.right as usize];
                if left.start != node.start || right.end != node.end || left.end != right.start {
                    return Err(Error::InvalidParameter {
                        name: "nodes",
                        message: "children do not partition the parent range".into(),
                    });
                }
                if right.center_offset != left.center_offset + 1 {
                    return Err(Error::InvalidParameter {
                        name: "centers",
                        message: "sibling centers are not stored adjacently".into(),
                    });
                }
            }
            let center = self.center(node);
            for pos in node.start..node.end {
                let d = distance::euclidean(self.point(pos as usize), center);
                if d > node.radius * (1.0 + 1e-4) + 1e-4 {
                    return Err(Error::InvalidParameter {
                        name: "radius",
                        message: format!(
                            "point at distance {d} outside ball of radius {}",
                            node.radius
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_data::{DataDistribution, SyntheticDataset};

    fn dataset(n: usize, dim: usize) -> PointSet {
        SyntheticDataset::new(
            "bt-build",
            n,
            dim,
            DataDistribution::GaussianClusters { clusters: 8, std_dev: 1.0 },
            13,
        )
        .generate()
        .unwrap()
    }

    #[test]
    fn builds_and_satisfies_invariants() {
        let ps = dataset(2_000, 16);
        let tree = BallTreeBuilder::new(50).with_seed(1).build(&ps).unwrap();
        tree.check_invariants().unwrap();
        assert_eq!(tree.points().len(), 2_000);
        assert!(tree.node_count() >= 2_000 / 50);
        assert!(tree.leaf_count() >= 2_000 / 50);
        assert!(tree.depth() >= 4, "depth {} too small for 2000/50 points", tree.depth());
        assert_eq!(tree.leaf_size(), 50);
    }

    #[test]
    fn default_build_works() {
        let ps = dataset(500, 8);
        let tree = BallTree::build(&ps).unwrap();
        tree.check_invariants().unwrap();
        assert_eq!(tree.leaf_size(), DEFAULT_LEAF_SIZE);
    }

    #[test]
    fn single_leaf_when_n_below_leaf_size() {
        let ps = dataset(64, 8);
        let tree = BallTreeBuilder::new(100).build(&ps).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.depth(), 0);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn smaller_leaves_mean_more_nodes() {
        let ps = dataset(3_000, 8);
        let coarse = BallTreeBuilder::new(500).build(&ps).unwrap();
        let fine = BallTreeBuilder::new(20).build(&ps).unwrap();
        assert!(fine.node_count() > coarse.node_count());
        assert!(fine.structure_size_bytes() > coarse.structure_size_bytes());
    }

    #[test]
    fn rejects_invalid_parameters() {
        let ps = dataset(100, 4);
        assert!(matches!(BallTreeBuilder::new(0).build(&ps), Err(Error::InvalidParameter { .. })));
    }

    #[test]
    fn identical_points_still_build() {
        let rows = vec![vec![1.0 as Scalar, 2.0, 3.0]; 500];
        let ps = PointSet::augment(&rows).unwrap();
        let tree = BallTreeBuilder::new(32).build(&ps).unwrap();
        tree.check_invariants().unwrap();
        assert!(tree.node_count() > 1);
        // Every node's radius is 0 for identical points.
        assert!(tree.nodes().iter().all(|n| n.radius < 1e-5));
    }

    #[test]
    fn construction_is_deterministic_for_a_seed() {
        let ps = dataset(1_000, 8);
        let a = BallTreeBuilder::new(64).with_seed(5).build(&ps).unwrap();
        let b = BallTreeBuilder::new(64).with_seed(5).build(&ps).unwrap();
        assert_eq!(a.original_ids, b.original_ids);
        assert_eq!(a.node_count(), b.node_count());
    }

    #[test]
    fn sibling_centers_are_adjacent_and_root_is_row_zero() {
        let ps = dataset(3_000, 12);
        let tree = BallTreeBuilder::new(64).with_seed(7).build(&ps).unwrap();
        assert_eq!(tree.nodes()[0].center_offset, 0);
        assert_eq!(tree.centers().len(), tree.node_count() * ps.dim());
        for node in tree.nodes() {
            if !node.is_leaf() {
                let left = &tree.nodes()[node.left as usize];
                let right = &tree.nodes()[node.right as usize];
                assert_eq!(right.center_offset, left.center_offset + 1);
            }
        }
        // The packed rows still hold each node's own centroid (spot-check via radius
        // containment, which `check_invariants` verifies against the packed buffer).
        tree.check_invariants().unwrap();
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let ps = dataset(1_200, 8);
        let tree = BallTreeBuilder::new(32).with_seed(3).build(&ps).unwrap();
        let rebuilt = BallTree::from_parts(
            tree.points().clone(),
            tree.original_ids().to_vec(),
            tree.nodes().to_vec(),
            tree.centers().to_vec(),
            tree.leaf_size(),
            tree.build_seed(),
        )
        .unwrap();
        assert_eq!(rebuilt.nodes, tree.nodes);
        assert_eq!(rebuilt.centers, tree.centers);
        assert_eq!(rebuilt.original_ids, tree.original_ids);
        assert_eq!(rebuilt.build_seed(), 3);
        rebuilt.check_invariants().unwrap();

        // Inconsistent arrays are rejected with typed errors, never panics.
        let truncated_ids = tree.original_ids()[..10].to_vec();
        assert!(matches!(
            BallTree::from_parts(
                tree.points().clone(),
                truncated_ids,
                tree.nodes().to_vec(),
                tree.centers().to_vec(),
                tree.leaf_size(),
                0,
            ),
            Err(Error::Corrupt(_))
        ));
        let mut bad_nodes = tree.nodes().to_vec();
        bad_nodes[0].left = u32::MAX - 1;
        assert!(matches!(
            BallTree::from_parts(
                tree.points().clone(),
                tree.original_ids().to_vec(),
                bad_nodes,
                tree.centers().to_vec(),
                tree.leaf_size(),
                0,
            ),
            Err(Error::Corrupt(_))
        ));
        let short_centers = tree.centers()[..tree.centers().len() - 1].to_vec();
        assert!(matches!(
            BallTree::from_parts(
                tree.points().clone(),
                tree.original_ids().to_vec(),
                tree.nodes().to_vec(),
                short_centers,
                tree.leaf_size(),
                0,
            ),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn structure_is_lightweight_relative_to_data() {
        // With N0 = 100 the paper observes index sizes much smaller than the data size;
        // the structure (centers + nodes + ids) should be well under the raw point bytes.
        let ps = dataset(10_000, 32);
        let tree = BallTreeBuilder::new(100).build(&ps).unwrap();
        let data_bytes = ps.size_bytes();
        assert!(
            tree.structure_size_bytes() < data_bytes,
            "structure {} should be smaller than data {}",
            tree.structure_size_bytes(),
            data_bytes
        );
    }
}
