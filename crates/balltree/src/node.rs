//! Arena node representation shared by the Ball-Tree (and reused by the BC-Tree crate).

use p2h_core::{Error, Result, Scalar};

/// Sentinel child id meaning "no child" (leaf node).
pub const NO_CHILD: u32 = u32::MAX;

/// One node of a ball tree, stored in an arena (`Vec<Node>`).
///
/// Centers are kept in a separate flat buffer (one `dim`-sized slice per node) so the
/// node array itself stays small and cache friendly; `center_offset` indexes into that
/// buffer. The points covered by a node are the contiguous range `start..end` of the
/// tree's reordered point array, which makes leaf scans sequential (the property the
/// paper relies on for cheap candidate verification).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node {
    /// Offset (in points, not scalars) of this node's center in the centers buffer.
    pub center_offset: u32,
    /// Radius: maximum Euclidean distance from the center to any covered point.
    pub radius: Scalar,
    /// First covered position in the reordered point array.
    pub start: u32,
    /// One past the last covered position in the reordered point array.
    pub end: u32,
    /// Left child node id, or [`NO_CHILD`] for a leaf.
    pub left: u32,
    /// Right child node id, or [`NO_CHILD`] for a leaf.
    pub right: u32,
}

impl Node {
    /// Number of points covered by this node.
    #[inline]
    pub fn size(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.left == NO_CHILD
    }
}

/// Validates an arena-encoded tree structure against everything the iterative searches
/// rely on for memory safety and termination, without touching floating-point data.
///
/// This is the load-time gate for snapshots coming off disk (`p2h-store`): a malformed
/// or hostile node array must yield a typed error, never an out-of-bounds index or an
/// endless traversal. Checks, for `point_count` points and `center_rows` center rows:
///
/// * the arena is non-empty and the root (node 0) covers exactly `0..point_count`;
/// * every node's range is ordered and in bounds, and its `center_offset` addresses a
///   valid center row;
/// * every leaf holds between 1 and `leaf_size` points;
/// * every internal node's children are in-range and partition the parent's range;
/// * every non-root node is referenced exactly once as a child (so the part of the
///   arena reachable from the root is a tree — traversals terminate);
/// * with `siblings_adjacent`, the right child's center row immediately follows the
///   left child's (the layout contract of the Ball-Tree's paired-children matvec).
pub fn validate_structure(
    nodes: &[Node],
    point_count: usize,
    center_rows: usize,
    leaf_size: usize,
    siblings_adjacent: bool,
) -> Result<()> {
    let corrupt = |message: String| Error::Corrupt(format!("tree structure: {message}"));
    if leaf_size == 0 {
        return Err(corrupt("leaf size must be at least 1".into()));
    }
    let root = nodes.first().ok_or_else(|| corrupt("empty node arena".into()))?;
    if root.start != 0 || root.end as usize != point_count {
        return Err(corrupt(format!(
            "root covers {}..{} instead of 0..{point_count}",
            root.start, root.end
        )));
    }
    let mut child_refs = vec![0u32; nodes.len()];
    for (id, node) in nodes.iter().enumerate() {
        let (start, end) = (node.start as usize, node.end as usize);
        if start > end || end > point_count {
            return Err(corrupt(format!("node {id} has invalid range {start}..{end}")));
        }
        if (node.center_offset as usize) >= center_rows {
            return Err(corrupt(format!(
                "node {id} center row {} out of bounds ({center_rows} rows)",
                node.center_offset
            )));
        }
        if node.is_leaf() {
            if node.right != NO_CHILD {
                return Err(corrupt(format!("node {id} has a right child but no left child")));
            }
            if node.size() == 0 || node.size() > leaf_size {
                return Err(corrupt(format!(
                    "leaf {id} holds {} points (N0 = {leaf_size})",
                    node.size()
                )));
            }
            continue;
        }
        let (left, right) = (node.left as usize, node.right as usize);
        if left >= nodes.len() || right >= nodes.len() || left == right {
            return Err(corrupt(format!("node {id} has invalid children {left}/{right}")));
        }
        child_refs[left] += 1;
        child_refs[right] += 1;
        let (l, r) = (&nodes[left], &nodes[right]);
        if l.start != node.start || l.end != r.start || r.end != node.end {
            return Err(corrupt(format!("children of node {id} do not partition its range")));
        }
        if siblings_adjacent && r.center_offset != l.center_offset + 1 {
            return Err(corrupt(format!(
                "sibling centers of node {id} are not adjacent ({} / {})",
                l.center_offset, r.center_offset
            )));
        }
    }
    if child_refs[0] != 0 {
        return Err(corrupt("root is referenced as a child".into()));
    }
    if let Some(id) = (1..nodes.len()).find(|&id| child_refs[id] != 1) {
        return Err(corrupt(format!(
            "node {id} is referenced {} times as a child",
            child_refs[id]
        )));
    }
    Ok(())
}

/// Validates that `ids` is a permutation of `0..point_count` (the reordered-position →
/// original-index mapping every tree stores). Load-time companion of
/// [`validate_structure`], shared by the Ball-Tree and BC-Tree snapshot paths.
pub fn validate_permutation(ids: &[u32], point_count: usize) -> Result<()> {
    if ids.len() != point_count {
        return Err(Error::Corrupt(format!(
            "id mapping has {} entries for {point_count} points",
            ids.len()
        )));
    }
    let mut seen = vec![false; point_count];
    for &id in ids {
        let id = id as usize;
        if id >= point_count || seen[id] {
            return Err(Error::Corrupt("id mapping is not a permutation".into()));
        }
        seen[id] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_leaf_flags() {
        let leaf = Node {
            center_offset: 0,
            radius: 1.0,
            start: 10,
            end: 25,
            left: NO_CHILD,
            right: NO_CHILD,
        };
        assert_eq!(leaf.size(), 15);
        assert!(leaf.is_leaf());

        let internal = Node { left: 3, right: 4, ..leaf };
        assert!(!internal.is_leaf());
    }

    #[test]
    fn node_is_small() {
        // The node must stay compact: 6 fields, at most 32 bytes on 64-bit targets.
        assert!(std::mem::size_of::<Node>() <= 32);
    }

    /// A well-formed three-node arena: root over 0..10 with children 0..6 and 6..10,
    /// sibling centers adjacent (rows 1 and 2).
    fn tiny_arena() -> Vec<Node> {
        let leaf = |center_offset, start, end| Node {
            center_offset,
            radius: 1.0,
            start,
            end,
            left: NO_CHILD,
            right: NO_CHILD,
        };
        vec![
            Node { center_offset: 0, radius: 2.0, start: 0, end: 10, left: 1, right: 2 },
            leaf(1, 0, 6),
            leaf(2, 6, 10),
        ]
    }

    #[test]
    fn validate_accepts_well_formed_arena() {
        let nodes = tiny_arena();
        validate_structure(&nodes, 10, 3, 8, true).unwrap();
        validate_structure(&nodes, 10, 3, 8, false).unwrap();
    }

    #[test]
    fn validate_rejects_malformed_arenas() {
        let ok = tiny_arena();
        let corrupt = |mutate: &dyn Fn(&mut Vec<Node>)| {
            let mut nodes = ok.clone();
            mutate(&mut nodes);
            validate_structure(&nodes, 10, 3, 8, true)
        };
        assert!(validate_structure(&[], 10, 0, 8, true).is_err(), "empty arena");
        assert!(validate_structure(&ok, 11, 3, 8, true).is_err(), "root range mismatch");
        assert!(validate_structure(&ok, 10, 2, 8, true).is_err(), "center row out of bounds");
        assert!(validate_structure(&ok, 10, 3, 0, true).is_err(), "zero leaf size");
        assert!(validate_structure(&ok, 10, 3, 4, true).is_err(), "leaf over N0");
        assert!(corrupt(&|n| n[0].left = 7).is_err(), "child id out of range");
        assert!(corrupt(&|n| n[0].right = 1).is_err(), "duplicated child");
        assert!(corrupt(&|n| n[1].end = 5).is_err(), "children do not partition");
        assert!(corrupt(&|n| n[1].start = 3).is_err(), "left start detached");
        assert!(corrupt(&|n| n[2].center_offset = 0).is_err(), "siblings not adjacent");
        assert!(corrupt(&|n| n[1].end = 0).is_err(), "inverted range");
        assert!(corrupt(&|n| n[0].right = 0).is_err(), "root referenced as child");
        // A self-cycle: node 1 claims the root's range and points back at itself.
        assert!(
            corrupt(&|n| {
                n[1] = n[0];
                n[1].center_offset = 1;
            })
            .is_err(),
            "cycle via re-referenced children"
        );
        // Non-adjacent siblings are fine when the layout contract is not requested.
        let mut swapped = ok.clone();
        swapped[1].center_offset = 2;
        swapped[2].center_offset = 1;
        assert!(validate_structure(&swapped, 10, 3, 8, false).is_ok());
        assert!(validate_structure(&swapped, 10, 3, 8, true).is_err());
    }
}
