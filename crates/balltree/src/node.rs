//! Arena node representation shared by the Ball-Tree (and reused by the BC-Tree crate).

use p2h_core::Scalar;

/// Sentinel child id meaning "no child" (leaf node).
pub const NO_CHILD: u32 = u32::MAX;

/// One node of a ball tree, stored in an arena (`Vec<Node>`).
///
/// Centers are kept in a separate flat buffer (one `dim`-sized slice per node) so the
/// node array itself stays small and cache friendly; `center_offset` indexes into that
/// buffer. The points covered by a node are the contiguous range `start..end` of the
/// tree's reordered point array, which makes leaf scans sequential (the property the
/// paper relies on for cheap candidate verification).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node {
    /// Offset (in points, not scalars) of this node's center in the centers buffer.
    pub center_offset: u32,
    /// Radius: maximum Euclidean distance from the center to any covered point.
    pub radius: Scalar,
    /// First covered position in the reordered point array.
    pub start: u32,
    /// One past the last covered position in the reordered point array.
    pub end: u32,
    /// Left child node id, or [`NO_CHILD`] for a leaf.
    pub left: u32,
    /// Right child node id, or [`NO_CHILD`] for a leaf.
    pub right: u32,
}

impl Node {
    /// Number of points covered by this node.
    #[inline]
    pub fn size(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether this node is a leaf.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.left == NO_CHILD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_leaf_flags() {
        let leaf = Node {
            center_offset: 0,
            radius: 1.0,
            start: 10,
            end: 25,
            left: NO_CHILD,
            right: NO_CHILD,
        };
        assert_eq!(leaf.size(), 15);
        assert!(leaf.is_leaf());

        let internal = Node { left: 3, right: 4, ..leaf };
        assert!(!internal.is_leaf());
    }

    #[test]
    fn node_is_small() {
        // The node must stay compact: 6 fields, at most 32 bytes on 64-bit targets.
        assert!(std::mem::size_of::<Node>() <= 32);
    }
}
