//! Satellite 4 — the deterministic fault matrix.
//!
//! Every combination of injected fault × recovery mechanism must end in exactly one
//! of two outcomes: a routed answer **bit-identical** (ids + `f32` distance bits) to
//! the local fan-out over the same index, or a **typed** [`NetError`]. Never a
//! panic, never a hang (every route carries a deadline), never a silently shortened
//! answer.
//!
//! The fault registry is process-global, so every test here serializes on one
//! mutex; cargo runs test binaries sequentially, so rules cannot leak into other
//! suites. All schedules are seeded — reruns replay identical fault sequences.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use p2h_core::{
    HyperplaneQuery, LinearScan, Neighbor, P2hIndex, PointSet, QueryScratch, SearchParams,
};
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_net::{
    BackoffPolicy, NetError, ReplicaSet, Router, RouterConfig, ServerHandle, ShardServer,
};
use p2h_obs::fault::{self, FaultRule};
use p2h_obs::FaultKind;
use p2h_shard::{Partitioner, ShardIndexKind, ShardedIndex, ShardedIndexBuilder};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Clears the installed rules even when the test body panics, so one failure
/// cannot cascade fake failures into the rest of the suite.
struct FaultScope;

impl FaultScope {
    fn install(rules: Vec<FaultRule>) -> Self {
        fault::set_rules(rules);
        FaultScope
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        fault::set_rules(Vec::new());
    }
}

const SHARDS: usize = 3;

struct Cluster {
    index: Arc<ShardedIndex>,
    points: PointSet,
    queries: Vec<HyperplaneQuery>,
    params: Vec<SearchParams>,
    replica_a: ServerHandle,
    replica_b: ServerHandle,
}

fn cluster(seed: u64) -> Cluster {
    let points = SyntheticDataset::new(
        "net-fault-matrix",
        400,
        8,
        DataDistribution::GaussianClusters { clusters: 4, std_dev: 1.1 },
        seed,
    )
    .generate()
    .unwrap();
    let queries =
        generate_queries(&points, 6, QueryDistribution::DataDifference, seed ^ 7).unwrap();
    // Linear-scan shards: budgeted search is bit-identical to the unsharded prefix
    // scan, so the oracle covers the shard-skip path too.
    let index = Arc::new(
        ShardedIndexBuilder::new(Partitioner::Hash { shards: SHARDS }, ShardIndexKind::LinearScan)
            .with_seed(seed)
            .build(&points)
            .unwrap(),
    );
    let params: Vec<SearchParams> = (0..queries.len())
        .map(|i| match i % 3 {
            0 => SearchParams::exact(10),
            1 => SearchParams::approximate(5, 48),
            _ => SearchParams::exact(3),
        })
        .collect();
    let replica_a = ShardServer::new(Arc::clone(&index)).serve("127.0.0.1:0").unwrap();
    let replica_b = ShardServer::new(Arc::clone(&index)).serve("127.0.0.1:0").unwrap();
    Cluster { index, points, queries, params, replica_a, replica_b }
}

impl Cluster {
    fn router_config(&self) -> RouterConfig {
        let replicas: Vec<ReplicaSet> = (0..SHARDS)
            .map(|_| {
                ReplicaSet::new([
                    self.replica_a.addr().to_string(),
                    self.replica_b.addr().to_string(),
                ])
            })
            .collect();
        let mut config = RouterConfig::new("fault-matrix", replicas);
        config.max_retries = 6;
        config.deadline = Duration::from_secs(10);
        config.backoff = BackoffPolicy::immediate(42);
        config
    }

    fn router(&self) -> Router {
        Router::new(self.router_config()).unwrap()
    }

    /// The local ground truth: the same sharded index searched in-process (itself
    /// bit-identical to an unsharded scan, proven in the shard crate's suite).
    fn local_answers(&self) -> Vec<Vec<Neighbor>> {
        let mut scratch = QueryScratch::new();
        self.queries
            .iter()
            .zip(&self.params)
            .map(|(q, p)| self.index.search_with_scratch(q, p, &mut scratch).neighbors)
            .collect()
    }

    /// Routes under whatever faults are installed; asserts bit-identity on success
    /// and returns the typed error otherwise.
    fn route_and_check(&self, router: &Router, context: &str) -> Result<(), NetError> {
        let routed = router.route(&self.queries, &self.params)?;
        assert!(routed.missing_shards.is_empty(), "{context}: partial response without opting in");
        let expected = self.local_answers();
        assert_eq!(routed.results.len(), expected.len(), "{context}: result count");
        for (position, (got, want)) in routed.results.iter().zip(&expected).enumerate() {
            assert_eq!(
                got.neighbors.len(),
                want.len(),
                "{context}: query {position} neighbor count"
            );
            for (rank, (g, w)) in got.neighbors.iter().zip(want).enumerate() {
                assert_eq!(g.index, w.index, "{context}: query {position} rank {rank} id");
                assert_eq!(
                    g.distance.to_bits(),
                    w.distance.to_bits(),
                    "{context}: query {position} rank {rank} distance bits"
                );
            }
        }
        Ok(())
    }
}

/// With no faults installed the routed path is simply bit-identical, and the oracle
/// also matches a fully unsharded scan.
#[test]
fn routed_answers_match_local_and_unsharded_without_faults() {
    let _guard = serialize();
    let cluster = cluster(1);
    let router = cluster.router();
    cluster.route_and_check(&router, "no faults").unwrap();

    let scan = LinearScan::new(cluster.points.clone());
    let routed = router.route(&cluster.queries, &cluster.params).unwrap();
    let mut scratch = QueryScratch::new();
    for (position, (query, params)) in cluster.queries.iter().zip(&cluster.params).enumerate() {
        let expected = scan.search_with_scratch(query, params, &mut scratch);
        let got = &routed.results[position].neighbors;
        assert_eq!(got.len(), expected.neighbors.len());
        for (g, w) in got.iter().zip(&expected.neighbors) {
            assert_eq!((g.index, g.distance.to_bits()), (w.index, w.distance.to_bits()));
        }
    }
}

/// The core matrix: each fault kind at each site, at a rate retries can beat.
/// Success must be bit-identical; failure must be one of the typed variants.
#[test]
fn every_fault_mix_yields_bit_identical_answers_or_typed_errors() {
    let _guard = serialize();
    let cluster = cluster(2);
    let router = cluster.router();
    let sites = [
        "client.connect",
        "client.send",
        "client.recv",
        "server.send",
        "server.recv",
        "server.accept",
    ];
    let kinds = [
        FaultKind::Refuse,
        FaultKind::Disconnect,
        FaultKind::Truncate,
        FaultKind::Corrupt,
        FaultKind::Eintr,
        FaultKind::Slow(5),
    ];
    for (i, site) in sites.iter().enumerate() {
        for (j, kind) in kinds.iter().enumerate() {
            let seed = (i * kinds.len() + j) as u64;
            let context = format!("{site}:{}", kind.as_str());
            let _scope = FaultScope::install(vec![FaultRule::new(*site, *kind, 0.3, seed)]);
            match cluster.route_and_check(&router, &context) {
                Ok(()) => {}
                Err(
                    NetError::ShardUnavailable { .. }
                    | NetError::DeadlineExceeded { .. }
                    | NetError::Refused { .. }
                    | NetError::Disconnected
                    | NetError::Corrupt { .. },
                ) => {}
                Err(other) => panic!("{context}: unexpected error class: {other}"),
            }
        }
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

    /// Randomized mixes of up to three simultaneous fault rules, replayed from seeds.
    #[test]
    fn random_fault_mixes_never_break_bit_identity(
        seed in 0u64..10_000,
        rule_count in 1usize..4,
    ) {
        let _guard = serialize();
        let cluster = cluster(3);
        let router = cluster.router();
        let sites = ["client.connect", "client.send", "client.recv", "server.send", "server.recv"];
        let kinds = [
            FaultKind::Refuse,
            FaultKind::Disconnect,
            FaultKind::Truncate,
            FaultKind::Corrupt,
            FaultKind::Eintr,
            FaultKind::Slow(3),
        ];
        let mut rules = Vec::new();
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for r in 0..rule_count {
            let site = sites[next() as usize % sites.len()];
            let kind = kinds[next() as usize % kinds.len()];
            rules.push(FaultRule::new(site, kind, 0.25, seed ^ r as u64));
        }
        let context = format!("seed {seed} rules {rule_count}");
        let _scope = FaultScope::install(rules);
        match cluster.route_and_check(&router, &context) {
            Ok(()) => {}
            Err(
                NetError::ShardUnavailable { .. }
                | NetError::DeadlineExceeded { .. }
                | NetError::Refused { .. }
                | NetError::Disconnected
                | NetError::Corrupt { .. },
            ) => {}
            Err(other) => panic!("{context}: unexpected error class: {other}"),
        }
    }
}

/// Transient EINTR on the network paths is absorbed below the retry layer — the
/// route succeeds without burning a single router-level retry.
#[test]
fn network_eintr_is_invisible_above_the_syscall_layer() {
    let _guard = serialize();
    let cluster = cluster(4);
    let router = cluster.router();
    let retries_before = counter("p2h_net_retries_total");
    let _scope = FaultScope::install(vec![
        FaultRule::new("client.send", FaultKind::Eintr, 0.5, 21),
        FaultRule::new("client.recv", FaultKind::Eintr, 0.5, 22),
        FaultRule::new("server.send", FaultKind::Eintr, 0.5, 23),
        FaultRule::new("server.recv", FaultKind::Eintr, 0.5, 24),
    ]);
    for round in 0..4 {
        cluster.route_and_check(&router, &format!("eintr round {round}")).unwrap();
    }
    assert_eq!(
        counter("p2h_net_retries_total"),
        retries_before,
        "EINTR must be retried at the syscall, not the request, layer"
    );
}

/// Hedged requests under injected tail latency: answers stay bit-identical and the
/// hedge counters move.
#[test]
fn hedging_preserves_bit_identity_under_slow_replicas() {
    let _guard = serialize();
    let cluster = cluster(5);
    let mut config = cluster.router_config();
    config.hedge = Some(p2h_net::HedgeConfig { floor: Duration::from_millis(15) });
    let router = Router::new(config).unwrap();
    let hedges_before = counter("p2h_net_hedges_total");
    let _scope =
        FaultScope::install(vec![FaultRule::new("server.send", FaultKind::Slow(60), 0.5, 31)]);
    for round in 0..4 {
        cluster.route_and_check(&router, &format!("hedge round {round}")).unwrap();
    }
    drop(_scope);
    assert!(
        counter("p2h_net_hedges_total") > hedges_before,
        "a 60ms p50 stall against a 15ms hedge floor must trigger hedges"
    );
}

/// Deadlines fire as typed errors, not hangs: a server stalled far beyond the
/// deadline yields `ShardUnavailable`/`DeadlineExceeded` within bounded time.
#[test]
fn deadline_is_a_typed_error_not_a_hang() {
    let _guard = serialize();
    let cluster = cluster(6);
    let mut config = cluster.router_config();
    config.deadline = Duration::from_millis(150);
    config.max_retries = 1;
    let router = Router::new(config).unwrap();
    let _scope =
        FaultScope::install(vec![FaultRule::new("server.send", FaultKind::Slow(2_000), 1.0, 41)]);
    let started = std::time::Instant::now();
    match router.route(&cluster.queries, &cluster.params) {
        Err(NetError::ShardUnavailable { .. } | NetError::DeadlineExceeded { .. }) => {}
        Ok(_) => panic!("a fully stalled server cannot produce an answer in 150ms"),
        Err(other) => panic!("unexpected error class: {other}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the deadline must bound wall time even with sleeping connection threads"
    );
}

/// Partial responses are strictly opt-in: with a permanently dead shard the default
/// router fails typed, and the opted-in router reports the missing shard explicitly
/// while the answers for live shards stay bit-identical per shard.
#[test]
fn degraded_mode_is_explicit_and_opt_in() {
    let _guard = serialize();
    let cluster = cluster(7);

    // A dead address: bind, learn the port, drop the listener.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let live = cluster.replica_a.addr().to_string();
    let mut replicas: Vec<ReplicaSet> =
        (0..SHARDS).map(|_| ReplicaSet::new([live.clone()])).collect();
    replicas[1] = ReplicaSet::new([dead_addr]);
    let mut config = RouterConfig::new("fault-matrix", replicas);
    config.max_retries = 2;
    config.backoff = BackoffPolicy::immediate(1);
    config.deadline = Duration::from_secs(5);

    // Default: typed failure naming the shard.
    let strict = Router::new(config.clone()).unwrap();
    match strict.route(&cluster.queries, &cluster.params) {
        Err(NetError::ShardUnavailable { shard, .. }) => assert_eq!(shard, 1),
        other => panic!("expected ShardUnavailable for shard 1, got {other:?}"),
    }

    // Opt-in: explicit missing list + per-shard-correct partial answers.
    config.allow_partial = true;
    let partial_router = Router::new(config).unwrap();
    let routed = partial_router.route(&cluster.queries, &cluster.params).unwrap();
    assert_eq!(routed.missing_shards, vec![1]);
    let mut scratch = QueryScratch::new();
    for (position, (query, params)) in cluster.queries.iter().zip(&cluster.params).enumerate() {
        // Expected: local fan-out over the shards that answered (0 and 2 only).
        let mut lists = Vec::new();
        for s in [0usize, 2] {
            if let Some(result) = cluster.index.search_shard(s, query, params, &mut scratch) {
                lists.push(result.neighbors);
            }
        }
        let expected = p2h_shard::merge_topk(params.k, lists);
        let got = &routed.results[position].neighbors;
        assert_eq!(got.len(), expected.len(), "query {position}");
        for (g, w) in got.iter().zip(&expected) {
            assert_eq!((g.index, g.distance.to_bits()), (w.index, w.distance.to_bits()));
        }
    }
}

/// Replica cross-checking turns divergent replica state into a typed
/// `ReplicaMismatch` — bit-identity between replicas is load-bearing, so a replica
/// serving different data must be caught, not averaged away.
#[test]
fn cross_check_catches_divergent_replicas() {
    let _guard = serialize();
    let cluster = cluster(8);

    // A rogue replica: same shape, entirely different data — a split-brain where a
    // replica kept serving a stale (or wrong) epoch.
    let rogue_points = SyntheticDataset::new(
        "net-fault-matrix-rogue",
        400,
        8,
        DataDistribution::GaussianClusters { clusters: 4, std_dev: 1.1 },
        999,
    )
    .generate()
    .unwrap();
    let rogue_index = Arc::new(
        ShardedIndexBuilder::new(Partitioner::Hash { shards: SHARDS }, ShardIndexKind::LinearScan)
            .with_seed(8)
            .build(&rogue_points)
            .unwrap(),
    );
    let rogue = ShardServer::new(rogue_index).serve("127.0.0.1:0").unwrap();

    let replicas: Vec<ReplicaSet> = (0..SHARDS)
        .map(|_| ReplicaSet::new([cluster.replica_a.addr().to_string(), rogue.addr().to_string()]))
        .collect();
    let mut config = RouterConfig::new("fault-matrix", replicas);
    config.cross_check = true;
    config.backoff = BackoffPolicy::immediate(2);
    let router = Router::new(config).unwrap();
    let mismatches_before = counter("p2h_net_replica_mismatch_total");
    match router.route(&cluster.queries, &cluster.params) {
        Err(NetError::ReplicaMismatch { .. }) => {}
        other => panic!("expected ReplicaMismatch, got {other:?}"),
    }
    assert!(counter("p2h_net_replica_mismatch_total") > mismatches_before);
    rogue.shutdown();

    // Healthy twins pass the same cross-check.
    let replicas: Vec<ReplicaSet> = (0..SHARDS)
        .map(|_| {
            ReplicaSet::new([
                cluster.replica_a.addr().to_string(),
                cluster.replica_b.addr().to_string(),
            ])
        })
        .collect();
    let mut config = RouterConfig::new("fault-matrix", replicas);
    config.cross_check = true;
    config.backoff = BackoffPolicy::immediate(3);
    let router = Router::new(config).unwrap();
    cluster.route_and_check(&router, "cross-check healthy").unwrap();
}

/// The fan-out holds under the forced-scalar kernel dispatch too (CI runs this
/// whole binary under `P2H_FORCE_SCALAR=1` as well; this test just documents that
/// the guarantee is kernel-independent rather than relying on the job matrix).
#[test]
fn fault_recovery_is_kernel_dispatch_independent() {
    let _guard = serialize();
    let cluster = cluster(9);
    let router = cluster.router();
    let _scope = FaultScope::install(vec![
        FaultRule::new("client.send", FaultKind::Disconnect, 0.25, 51),
        FaultRule::new("server.send", FaultKind::Corrupt, 0.25, 52),
    ]);
    match cluster.route_and_check(&router, "mixed faults") {
        Ok(()) | Err(NetError::ShardUnavailable { .. }) => {}
        Err(other) => panic!("unexpected error class: {other}"),
    }
}

fn counter(name: &str) -> u64 {
    p2h_obs::global().snapshot().series(name, &[]).map_or(0, |s| s.value.scalar())
}
