//! The headline robustness claim: `kill -9` a shard-server process mid-batch and
//! the router retries / fails over to the surviving replica, with every answer
//! staying **bit-identical** (ids + `f32` distance bits) to the local unsharded
//! index — then a restarted server cold-starts from the same store and takes
//! traffic again.
//!
//! Real OS processes (via `CARGO_BIN_EXE_shard-server`), real SIGKILL — no
//! in-process simulation.

use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use p2h_core::{
    HyperplaneQuery, LinearScan, P2hIndex, PointSet, QueryScratch, SearchParams, SearchResult,
};
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_net::{BackoffPolicy, ReplicaSet, Router, RouterConfig};
use p2h_shard::{Partitioner, ShardIndexKind, ShardedIndexBuilder};
use p2h_store::Store;

const SHARDS: usize = 3;

struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn spawn(store_dir: &std::path::Path) -> Self {
        Self::spawn_at(store_dir, "127.0.0.1:0")
    }

    /// Spawns binding `addr` — used to restart a killed replica on its *exact* old
    /// port (`SO_REUSEADDR` on the server listener makes the immediate re-bind
    /// work; no retry-sleep needed).
    fn spawn_at(store_dir: &std::path::Path, addr: &str) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_shard-server"))
            .arg("--store")
            .arg(store_dir)
            .arg("--entry")
            .arg("chaos")
            .arg("--addr")
            .arg(addr)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn shard-server");
        let stdout = child.stdout.take().expect("child stdout");
        let line = std::io::BufReader::new(stdout)
            .lines()
            .next()
            .expect("server banner")
            .expect("read banner");
        let addr = line
            .strip_prefix("READY addr=")
            .and_then(|rest| rest.split_whitespace().next())
            .expect("READY banner")
            .to_string();
        ServerProc { child, addr }
    }

    /// SIGKILL — the process gets no chance to flush, close, or say goodbye.
    fn kill9(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        self.kill9();
    }
}

fn assert_bit_identical(got: &[SearchResult], want: &[SearchResult], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: batch size");
    for (position, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.neighbors.len(),
            w.neighbors.len(),
            "{context}: query {position} neighbor count"
        );
        for (rank, (gn, wn)) in g.neighbors.iter().zip(&w.neighbors).enumerate() {
            assert_eq!(
                (gn.index, gn.distance.to_bits()),
                (wn.index, wn.distance.to_bits()),
                "{context}: query {position} rank {rank}"
            );
        }
    }
}

#[test]
fn kill_dash_nine_mid_batch_keeps_answers_bit_identical() {
    let points: PointSet = SyntheticDataset::new(
        "net-kill-restart",
        500,
        8,
        DataDistribution::GaussianClusters { clusters: 4, std_dev: 1.0 },
        77,
    )
    .generate()
    .unwrap();
    let queries: Vec<HyperplaneQuery> =
        generate_queries(&points, 8, QueryDistribution::DataDifference, 78).unwrap();
    let params: Vec<SearchParams> = (0..queries.len())
        .map(
            |i| if i % 2 == 0 { SearchParams::exact(10) } else { SearchParams::approximate(5, 64) },
        )
        .collect();

    // The local unsharded oracle.
    let scan = LinearScan::new(points.clone());
    let mut scratch = QueryScratch::new();
    let oracle: Vec<SearchResult> = queries
        .iter()
        .zip(&params)
        .map(|(q, p)| scan.search_with_scratch(q, p, &mut scratch))
        .collect();

    // Persist the sharded build; both replicas (and the restart) cold-start from it.
    let store_dir = std::env::temp_dir().join(format!("p2h-kill-restart-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    let store = Store::create(&store_dir).unwrap();
    ShardedIndexBuilder::new(Partitioner::Hash { shards: SHARDS }, ShardIndexKind::LinearScan)
        .with_seed(77)
        .build(&points)
        .unwrap()
        .save_into(&store, "chaos")
        .unwrap();

    let mut replica_a = ServerProc::spawn(&store_dir);
    let replica_b = ServerProc::spawn(&store_dir);

    let router_over = |first: &str, second: &str| {
        let replicas: Vec<ReplicaSet> =
            (0..SHARDS).map(|_| ReplicaSet::new([first.to_string(), second.to_string()])).collect();
        let mut config = RouterConfig::new("kill-restart", replicas);
        config.max_retries = 8;
        config.deadline = Duration::from_secs(10);
        config.backoff = BackoffPolicy {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(40),
            jitter: Duration::from_millis(1),
            seed: 77,
        };
        Router::new(config).unwrap()
    };
    let router = router_over(&replica_a.addr, &replica_b.addr);

    // Warm up: both replicas healthy, pooled connections to A established.
    for round in 0..3 {
        let routed = router.route(&queries, &params).unwrap();
        assert!(routed.missing_shards.is_empty());
        assert_bit_identical(&routed.results, &oracle, &format!("warmup {round}"));
    }

    // SIGKILL replica A from a side thread while batches are in flight: some
    // routed calls race the kill, hitting dead pooled connections and refused
    // dials, and must fail over to B without a bit of drift.
    let killer = std::thread::spawn({
        let mut victim = std::mem::replace(
            &mut replica_a.child,
            Command::new("sleep").arg("0").stdout(Stdio::null()).spawn().unwrap(),
        );
        move || {
            std::thread::sleep(Duration::from_millis(20));
            victim.kill().ok();
            victim.wait().ok();
        }
    });
    for round in 0..12 {
        let routed = router.route(&queries, &params).unwrap();
        assert!(routed.missing_shards.is_empty(), "failover must be complete, not partial");
        assert_bit_identical(&routed.results, &oracle, &format!("kill race {round}"));
    }
    killer.join().unwrap();

    // Restart: a fresh process cold-starts the same entry from the store on the
    // killed replica's *exact* old port (SO_REUSEADDR makes the immediate re-bind
    // stick — no retry-sleep), so the ORIGINAL router, which still lists that
    // address first, starts exercising the restarted process without being rebuilt.
    let replica_a2 = ServerProc::spawn_at(&store_dir, &replica_a.addr);
    assert_eq!(replica_a2.addr, replica_a.addr, "restart must reclaim the same port");
    for round in 0..3 {
        let routed = router.route(&queries, &params).unwrap();
        assert_bit_identical(&routed.results, &oracle, &format!("restarted {round}"));
    }

    drop(router);
    drop(replica_a2);
    drop(replica_b);
    drop(replica_a);
    std::fs::remove_dir_all(&store_dir).ok();
}
