//! Typed errors for the distributed serving layer.
//!
//! Every failure mode a router caller can observe is a variant here — including the
//! degraded ones. Nothing in this crate panics on hostile bytes, dead peers, or
//! injected faults; the worst legal outcome is a typed error (and, with
//! [`crate::RouterConfig::allow_partial`] opted in, an explicit
//! `missing_shards` list — never a silently shortened answer).

use std::fmt;

/// Result alias for the net crate.
pub type NetResult<T> = std::result::Result<T, NetError>;

/// Error codes a server can put on the wire in an error reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The requested shard ordinal is not served by this process.
    UnknownShard,
    /// The request failed validation (dimension mismatch, malformed query).
    BadRequest,
    /// The server failed internally while executing the request.
    Internal,
    /// The front-end's admission queue is full — the request was shed, not queued.
    /// Retrying after backoff is reasonable; the server's state is untouched.
    Overloaded,
    /// The request's deadline expired while it waited in the front-end's queue; it
    /// was shed without being executed (never a silent drop).
    DeadlineExceeded,
}

impl ErrorCode {
    pub(crate) fn to_wire(self) -> u8 {
        match self {
            ErrorCode::UnknownShard => 1,
            ErrorCode::BadRequest => 2,
            ErrorCode::Internal => 3,
            ErrorCode::Overloaded => 4,
            ErrorCode::DeadlineExceeded => 5,
        }
    }

    pub(crate) fn from_wire(raw: u8) -> Option<Self> {
        match raw {
            1 => Some(ErrorCode::UnknownShard),
            2 => Some(ErrorCode::BadRequest),
            3 => Some(ErrorCode::Internal),
            4 => Some(ErrorCode::Overloaded),
            5 => Some(ErrorCode::DeadlineExceeded),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::UnknownShard => "unknown-shard",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Internal => "internal",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
        };
        f.write_str(name)
    }
}

/// Everything that can go wrong between a router and its shard servers.
#[derive(Debug)]
pub enum NetError {
    /// An operating-system I/O failure on a socket (send/recv/shutdown).
    Io(std::io::Error),
    /// The peer refused the connection (or an injected `refuse` fault did).
    Refused {
        /// The address that refused.
        addr: String,
    },
    /// The peer disconnected mid-frame — the stream ended before a complete frame.
    Disconnected,
    /// A frame arrived whose payload fails its CRC — corruption on the wire.
    Corrupt {
        /// What the frame header declared.
        expected_crc: u32,
        /// What the payload actually hashes to.
        actual_crc: u32,
    },
    /// A frame header declared a length beyond the protocol's cap — either corruption
    /// or a hostile peer; the connection is dropped without allocating the claim.
    FrameTooLarge {
        /// Declared payload length.
        declared: u64,
    },
    /// The bytes inside a frame do not decode as a protocol message.
    Malformed {
        /// What failed to decode.
        context: String,
    },
    /// The peer speaks a different protocol version.
    Version {
        /// Our version.
        ours: u16,
        /// The peer's version.
        theirs: u16,
    },
    /// The peer replied with a typed error.
    Remote {
        /// The error code.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// A request (including all retries and hedges) exceeded its deadline.
    DeadlineExceeded {
        /// The shard that timed out.
        shard: usize,
    },
    /// Two replicas of the same shard returned answers that are not bit-identical —
    /// with the deterministic merge this can only mean divergent replica state (or
    /// wire corruption that beat the CRC), so it is a hard error, never averaged away.
    ReplicaMismatch {
        /// The shard whose replicas disagree.
        shard: usize,
        /// Human-readable description of the first divergence.
        detail: String,
    },
    /// A shard could not be completed within the retry/deadline budget and the caller
    /// did not opt into partial responses.
    ShardUnavailable {
        /// The failed shard.
        shard: usize,
        /// The final attempt's error, as text.
        last_error: String,
    },
    /// The routed request failed validation before any bytes hit the wire.
    InvalidRequest {
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket I/O error: {e}"),
            NetError::Refused { addr } => write!(f, "connection refused by {addr}"),
            NetError::Disconnected => write!(f, "peer disconnected mid-frame"),
            NetError::Corrupt { expected_crc, actual_crc } => write!(
                f,
                "frame payload corrupt: declared crc {expected_crc:#010x}, actual {actual_crc:#010x}"
            ),
            NetError::FrameTooLarge { declared } => {
                write!(f, "frame declares {declared} payload bytes, over the protocol cap")
            }
            NetError::Malformed { context } => write!(f, "malformed message: {context}"),
            NetError::Version { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
            NetError::Remote { code, message } => write!(f, "server error ({code}): {message}"),
            NetError::DeadlineExceeded { shard } => {
                write!(f, "shard {shard} exceeded its request deadline")
            }
            NetError::ReplicaMismatch { shard, detail } => {
                write!(f, "replicas of shard {shard} disagree: {detail}")
            }
            NetError::ShardUnavailable { shard, last_error } => {
                write!(f, "shard {shard} unavailable after retries: {last_error}")
            }
            NetError::InvalidRequest { message } => write!(f, "invalid request: {message}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        // TimedOut/WouldBlock surface from read timeouts; map them onto the typed
        // timeout variant at the call sites that know the shard. Here they stay Io.
        if e.kind() == std::io::ErrorKind::ConnectionRefused {
            return NetError::Refused { addr: "peer".into() };
        }
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            return NetError::Disconnected;
        }
        NetError::Io(e)
    }
}

impl NetError {
    /// Whether a retry against another replica (or the same one, after backoff) can
    /// plausibly succeed. Validation and version errors are deterministic — retrying
    /// them would only burn the deadline.
    pub fn is_retryable(&self) -> bool {
        match self {
            NetError::Io(_)
            | NetError::Refused { .. }
            | NetError::Disconnected
            | NetError::Corrupt { .. }
            | NetError::FrameTooLarge { .. }
            | NetError::DeadlineExceeded { .. }
            | NetError::ShardUnavailable { .. } => true,
            // Overloaded is a shed, not a failure: the server is healthy and a retry
            // after backoff can land once the queue drains. A deadline shed is final —
            // the budget it missed is gone.
            NetError::Remote { code, .. } => {
                matches!(code, ErrorCode::Internal | ErrorCode::Overloaded)
            }
            NetError::Malformed { .. }
            | NetError::Version { .. }
            | NetError::ReplicaMismatch { .. }
            | NetError::InvalidRequest { .. } => false,
        }
    }

    /// Whether this error is a read timeout (deadline/hedge bookkeeping).
    pub(crate) fn is_timeout(&self) -> bool {
        match self {
            NetError::Io(e) => {
                matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock)
            }
            NetError::DeadlineExceeded { .. } => true,
            _ => false,
        }
    }
}
