//! `p2h_net_*` metrics, registered once in the process-wide registry.
//!
//! Every counter here answers an operational question the fault-injection tests
//! also ask: how often did the router retry, hedge, win a hedge, time out, catch a
//! replica mismatch, or hand back an explicit partial batch — and how many bytes
//! crossed the wire in each direction, split by role (`client` = router side,
//! `server` = shard-server side).

use std::sync::{Arc, OnceLock};

use p2h_obs::{global, Counter};

/// The cached `p2h_net_*` instrument handles.
pub struct NetMetrics {
    /// Retry attempts after a retryable failure (`p2h_net_retries_total`).
    pub retries: Arc<Counter>,
    /// Hedged requests launched (`p2h_net_hedges_total`).
    pub hedges: Arc<Counter>,
    /// Hedges whose reply beat the primary (`p2h_net_hedge_wins_total`).
    pub hedge_wins: Arc<Counter>,
    /// Per-attempt deadline expiries (`p2h_net_timeouts_total`).
    pub timeouts: Arc<Counter>,
    /// Replica cross-checks that found non-bit-identical answers
    /// (`p2h_net_replica_mismatch_total`).
    pub replica_mismatches: Arc<Counter>,
    /// Batches answered with an explicit `missing_shards` list
    /// (`p2h_net_partial_batches_total`).
    pub partial_batches: Arc<Counter>,
    /// Connect attempts that failed (`p2h_net_connect_errors_total`).
    pub connect_errors: Arc<Counter>,
    /// Frame bytes written by the router side (`p2h_net_bytes_sent_total{role=client}`).
    pub client_bytes_sent: Arc<Counter>,
    /// Frame bytes read by the router side (`p2h_net_bytes_recv_total{role=client}`).
    pub client_bytes_recv: Arc<Counter>,
    /// Frame bytes written by shard servers (`p2h_net_bytes_sent_total{role=server}`).
    pub server_bytes_sent: Arc<Counter>,
    /// Frame bytes read by shard servers (`p2h_net_bytes_recv_total{role=server}`).
    pub server_bytes_recv: Arc<Counter>,
    /// Connections a shard server accepted (`p2h_net_server_connections_total`).
    pub server_connections: Arc<Counter>,
    /// Shard-query messages a shard server executed (`p2h_net_server_requests_total`).
    pub server_requests: Arc<Counter>,
}

/// Returns the process-wide net metric handles, registering them on first use.
pub fn net_metrics() -> &'static NetMetrics {
    static METRICS: OnceLock<NetMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = global();
        NetMetrics {
            retries: reg.counter(
                "p2h_net_retries_total",
                "Shard request attempts retried after a retryable failure",
                &[],
            ),
            hedges: reg.counter(
                "p2h_net_hedges_total",
                "Hedged (duplicate) shard requests launched after the hedge delay",
                &[],
            ),
            hedge_wins: reg.counter(
                "p2h_net_hedge_wins_total",
                "Hedged requests whose reply arrived before the primary's",
                &[],
            ),
            timeouts: reg.counter(
                "p2h_net_timeouts_total",
                "Shard request attempts abandoned at the per-request deadline",
                &[],
            ),
            replica_mismatches: reg.counter(
                "p2h_net_replica_mismatch_total",
                "Replica cross-checks whose answers were not bit-identical",
                &[],
            ),
            partial_batches: reg.counter(
                "p2h_net_partial_batches_total",
                "Batches answered with an explicit missing_shards list (allow_partial)",
                &[],
            ),
            connect_errors: reg.counter(
                "p2h_net_connect_errors_total",
                "TCP connect attempts to shard replicas that failed",
                &[],
            ),
            client_bytes_sent: reg.counter(
                "p2h_net_bytes_sent_total",
                "Frame bytes written to the wire, by role",
                &[("role", "client")],
            ),
            client_bytes_recv: reg.counter(
                "p2h_net_bytes_recv_total",
                "Frame bytes read from the wire, by role",
                &[("role", "client")],
            ),
            server_bytes_sent: reg.counter(
                "p2h_net_bytes_sent_total",
                "Frame bytes written to the wire, by role",
                &[("role", "server")],
            ),
            server_bytes_recv: reg.counter(
                "p2h_net_bytes_recv_total",
                "Frame bytes read from the wire, by role",
                &[("role", "server")],
            ),
            server_connections: reg.counter(
                "p2h_net_server_connections_total",
                "Connections accepted by shard servers in this process",
                &[],
            ),
            server_requests: reg.counter(
                "p2h_net_server_requests_total",
                "Shard-query messages executed by shard servers in this process",
                &[],
            ),
        }
    })
}

/// Routes frame bytes written at `site` to the right role counter. Sites are named
/// `client.*` / `server.*`; test-only sites fall through to the client counter.
pub(crate) fn add_bytes_sent(site: &str, bytes: u64) {
    let m = net_metrics();
    if site.starts_with("server.") {
        m.server_bytes_sent.add(bytes);
    } else {
        m.client_bytes_sent.add(bytes);
    }
}

/// Routes frame bytes read at `site` to the right role counter.
pub(crate) fn add_bytes_recv(site: &str, bytes: u64) {
    let m = net_metrics();
    if site.starts_with("server.") {
        m.server_bytes_recv.add(bytes);
    } else {
        m.client_bytes_recv.add(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_split_by_role() {
        let snapshot_of = |labels: &[(&str, &str)]| {
            p2h_obs::global()
                .snapshot()
                .series("p2h_net_bytes_sent_total", labels)
                .map_or(0, |s| s.value.scalar())
        };
        let client_before = snapshot_of(&[("role", "client")]);
        let server_before = snapshot_of(&[("role", "server")]);
        add_bytes_sent("client.send", 10);
        add_bytes_sent("server.send", 3);
        assert_eq!(snapshot_of(&[("role", "client")]), client_before + 10);
        assert_eq!(snapshot_of(&[("role", "server")]), server_before + 3);
    }
}
