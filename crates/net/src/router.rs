//! The distributed fan-out router: replicated shards, deadlines, deterministic
//! retry, hedged requests, and replica cross-checking.
//!
//! ## Equivalence contract
//!
//! For every query the router merges per-shard answers with the same
//! [`merge_topk`] and stats-merge the local [`p2h_shard::ShardedIndex`] fan-out
//! uses, and queries travel bit-exactly (see [`crate::wire`]). A routed answer is
//! therefore **bit-identical** — neighbor ids and `f32` distance bits — to the
//! local unsharded search, *regardless of which replica answered, how many retries
//! or hedges it took, and what faults fired on the way*. The chaos tests hold the
//! router to exactly that.
//!
//! ## Failure semantics
//!
//! Per shard: up to `1 + max_retries` attempts, rotating through the replica set,
//! separated by deterministic exponential backoff with seeded jitter
//! ([`BackoffPolicy`] — no ambient clock or RNG). The whole batch shares one
//! deadline. When hedging is enabled and a primary has not answered within the
//! hedge delay — `max(floor, observed p99)` read from the `p2h_shard_latency_ns`
//! histograms this router also feeds — a duplicate request goes to the next
//! replica and the first success wins. With `cross_check` every replica of a shard
//! is queried and answers must match bit-for-bit; divergence is a typed
//! [`NetError::ReplicaMismatch`], never a quorum vote. A shard that stays
//! unreachable fails the batch with [`NetError::ShardUnavailable`] — unless the
//! caller opted into partial answers, in which case the response carries an
//! explicit `missing_shards` list (and the merged answers cover the shards that
//! did respond). Degradation is always explicit, never silent.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use p2h_core::{HyperplaneQuery, Neighbor, SearchParams, SearchResult, SearchStats};
use p2h_obs::Histogram;
use p2h_shard::merge_topk;

use crate::backoff::BackoffPolicy;
use crate::error::{NetError, NetResult};
use crate::metrics::net_metrics;
use crate::pool::{Conn, Pool};
use crate::wire::{read_frame, write_frame, Message, WireQuery};

/// The replica addresses serving one shard ordinal, in preference order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaSet {
    /// `host:port` addresses; the router rotates through them on retry.
    pub addrs: Vec<String>,
}

impl ReplicaSet {
    /// A replica set from any address iterator.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(addrs: I) -> Self {
        Self { addrs: addrs.into_iter().map(Into::into).collect() }
    }
}

/// Hedged-request policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HedgeConfig {
    /// Lower bound on the hedge delay. The effective delay is
    /// `max(floor, p99(p2h_shard_latency_ns{index=entry, shard=s}))`, so the floor
    /// is what applies before any latency history exists.
    pub floor: Duration,
}

/// Everything a [`Router`] needs to know.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// The served entry's name — label for the shared latency histograms.
    pub entry: String,
    /// One replica set per shard ordinal (index = shard).
    pub shards: Vec<ReplicaSet>,
    /// Wall-clock budget for a whole routed batch, shared by retries and hedges.
    pub deadline: Duration,
    /// Retries per shard after the first attempt.
    pub max_retries: u32,
    /// Deterministic backoff between attempts.
    pub backoff: BackoffPolicy,
    /// Hedged requests; `None` disables hedging.
    pub hedge: Option<HedgeConfig>,
    /// Query every replica and require bit-identical answers.
    pub cross_check: bool,
    /// Opt-in degraded mode: report unreachable shards in `missing_shards` instead
    /// of failing the batch. Never silent — off by default.
    pub allow_partial: bool,
    /// TCP connect budget per dial.
    pub connect_timeout: Duration,
}

impl RouterConfig {
    /// Conservative defaults: 2 retries, 2s deadline, no hedging, no partials.
    pub fn new(entry: impl Into<String>, shards: Vec<ReplicaSet>) -> Self {
        Self {
            entry: entry.into(),
            shards,
            deadline: Duration::from_secs(2),
            max_retries: 2,
            backoff: BackoffPolicy::default(),
            hedge: None,
            cross_check: false,
            allow_partial: false,
            connect_timeout: Duration::from_millis(500),
        }
    }
}

/// A routed batch's outcome.
#[derive(Debug, Clone)]
pub struct RoutedResponse {
    /// Per-query merged results, in request order. With `missing_shards` non-empty
    /// these cover only the shards that answered.
    pub results: Vec<SearchResult>,
    /// Shards that could not be reached within the retry/deadline budget. Non-empty
    /// only when [`RouterConfig::allow_partial`] was opted into.
    pub missing_shards: Vec<usize>,
    /// Wall-clock time of the whole fan-out, nanoseconds.
    pub wall_time_ns: u64,
}

impl RoutedResponse {
    /// Whether every shard contributed.
    pub fn is_complete(&self) -> bool {
        self.missing_shards.is_empty()
    }
}

/// The scatter-gather client. One instance is shared across batches; its
/// connection pool and latency histograms persist between calls.
pub struct Router {
    config: RouterConfig,
    pool: Pool,
    /// Per-shard RPC latency, recorded into the same `p2h_shard_latency_ns` family
    /// the local sharded executor feeds — the hedge delay reads its p99 back.
    latency: Vec<std::sync::Arc<Histogram>>,
}

impl Router {
    /// Validates the config and builds the router.
    pub fn new(config: RouterConfig) -> NetResult<Self> {
        if config.shards.is_empty() {
            return Err(NetError::InvalidRequest { message: "router has no shards".into() });
        }
        for (s, set) in config.shards.iter().enumerate() {
            if set.addrs.is_empty() {
                return Err(NetError::InvalidRequest {
                    message: format!("shard {s} has an empty replica set"),
                });
            }
        }
        let registry = p2h_obs::global();
        let latency = (0..config.shards.len())
            .map(|s| {
                let shard_label = s.to_string();
                registry.histogram(
                    "p2h_shard_latency_ns",
                    "Per-shard sub-search latency in nanoseconds.",
                    &[("index", config.entry.as_str()), ("shard", &shard_label)],
                )
            })
            .collect();
        Ok(Self { config, pool: Pool::new(), latency })
    }

    /// The router's configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Routes one batch: `params[i]` are the *effective* parameters of `queries[i]`
    /// (callers resolve any per-position overrides first). Returns merged per-query
    /// results bit-identical to a local fan-out over the same index.
    pub fn route(
        &self,
        queries: &[HyperplaneQuery],
        params: &[SearchParams],
    ) -> NetResult<RoutedResponse> {
        if queries.len() != params.len() {
            return Err(NetError::InvalidRequest {
                message: format!("{} queries but {} params", queries.len(), params.len()),
            });
        }
        let start = Instant::now();
        if queries.is_empty() {
            return Ok(RoutedResponse {
                results: Vec::new(),
                missing_shards: Vec::new(),
                wall_time_ns: start.elapsed().as_nanos() as u64,
            });
        }
        let wire: Vec<WireQuery> =
            queries.iter().zip(params).map(|(q, p)| WireQuery::from_query(q, p)).collect();
        let deadline = start + self.config.deadline;

        let shard_count = self.config.shards.len();
        let shard_outcomes: Vec<NetResult<Vec<Option<SearchResult>>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..shard_count)
                    .map(|shard| {
                        let wire = &wire;
                        scope.spawn(move || self.serve_shard(shard, wire, deadline))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
            });

        // Merge exactly like ShardedIndex::search_with_scratch: skipped shards
        // (None answers) contribute nothing, stats are saturating-merged, and the
        // final per-query list is merge_topk over the shard lists.
        let mut lists: Vec<Vec<Vec<Neighbor>>> = vec![Vec::new(); queries.len()];
        let mut stats: Vec<SearchStats> = vec![SearchStats::default(); queries.len()];
        let mut missing = Vec::new();
        for (shard, outcome) in shard_outcomes.into_iter().enumerate() {
            match outcome {
                Ok(answers) => {
                    if answers.len() != queries.len() {
                        return Err(NetError::Malformed {
                            context: format!(
                                "shard {shard} answered {} queries, expected {}",
                                answers.len(),
                                queries.len()
                            ),
                        });
                    }
                    for (position, answer) in answers.into_iter().enumerate() {
                        if let Some(result) = answer {
                            stats[position].merge(&result.stats);
                            lists[position].push(result.neighbors);
                        }
                    }
                }
                Err(
                    e @ (NetError::ShardUnavailable { .. } | NetError::DeadlineExceeded { .. }),
                ) if self.config.allow_partial => {
                    let _ = e; // the shard list is the caller-facing record
                    missing.push(shard);
                }
                Err(e) => return Err(e),
            }
        }
        if !missing.is_empty() {
            net_metrics().partial_batches.inc();
        }

        let wall_time_ns = start.elapsed().as_nanos() as u64;
        let results = lists
            .into_iter()
            .zip(stats)
            .zip(params)
            .map(|((shard_lists, mut query_stats), p)| {
                let neighbors = merge_topk(p.k, shard_lists);
                query_stats.time_total_ns = wall_time_ns;
                SearchResult { neighbors, stats: query_stats }
            })
            .collect();
        Ok(RoutedResponse { results, missing_shards: missing, wall_time_ns })
    }

    // -- per-shard orchestration ------------------------------------------------

    fn serve_shard(
        &self,
        shard: usize,
        wire: &[WireQuery],
        deadline: Instant,
    ) -> NetResult<Vec<Option<SearchResult>>> {
        let replicas = &self.config.shards[shard].addrs;
        if self.config.cross_check && replicas.len() > 1 {
            return self.serve_shard_cross_checked(shard, wire, deadline);
        }
        self.attempt_loop(shard, replicas, wire, deadline)
    }

    /// The retry loop: rotate through `replicas`, backing off deterministically,
    /// until a success, a non-retryable error, the retry cap, or the deadline.
    fn attempt_loop(
        &self,
        shard: usize,
        replicas: &[String],
        wire: &[WireQuery],
        deadline: Instant,
    ) -> NetResult<Vec<Option<SearchResult>>> {
        let metrics = net_metrics();
        let mut last_error: Option<NetError> = None;
        for attempt in 0..=self.config.max_retries {
            if Instant::now() >= deadline {
                metrics.timeouts.inc();
                return Err(match last_error {
                    Some(e) => NetError::ShardUnavailable { shard, last_error: e.to_string() },
                    None => NetError::DeadlineExceeded { shard },
                });
            }
            let primary = &replicas[attempt as usize % replicas.len()];
            let outcome = match (&self.config.hedge, replicas.len() > 1) {
                (Some(hedge), true) => {
                    let backup = &replicas[(attempt as usize + 1) % replicas.len()];
                    self.attempt_hedged(shard, primary, backup, wire, deadline, hedge)
                }
                _ => self.attempt_once(shard, primary, wire, deadline),
            };
            match outcome {
                Ok(answers) => return Ok(answers),
                Err(e) if e.is_retryable() && attempt < self.config.max_retries => {
                    metrics.retries.inc();
                    let delay = self.config.backoff.delay(shard, attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    last_error = Some(e);
                }
                Err(e) if e.is_retryable() => {
                    return Err(NetError::ShardUnavailable { shard, last_error: e.to_string() })
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on the last attempt");
    }

    /// Queries every replica of `shard` (each through its own retry loop) and
    /// requires bit-identical answers.
    fn serve_shard_cross_checked(
        &self,
        shard: usize,
        wire: &[WireQuery],
        deadline: Instant,
    ) -> NetResult<Vec<Option<SearchResult>>> {
        let replicas = &self.config.shards[shard].addrs;
        let mut baseline: Option<Vec<Option<SearchResult>>> = None;
        for addr in replicas {
            let answers = self.attempt_loop(shard, std::slice::from_ref(addr), wire, deadline)?;
            match &baseline {
                None => baseline = Some(answers),
                Some(expected) => {
                    if let Some(detail) = first_divergence(expected, &answers) {
                        net_metrics().replica_mismatches.inc();
                        return Err(NetError::ReplicaMismatch { shard, detail });
                    }
                }
            }
        }
        Ok(baseline.expect("validated non-empty replica set"))
    }

    /// One attempt with a hedge: fire `primary`, and if it has not answered within
    /// the hedge delay, fire `backup` too; first success wins, first-error waits
    /// for the other.
    fn attempt_hedged(
        &self,
        shard: usize,
        primary: &str,
        backup: &str,
        wire: &[WireQuery],
        deadline: Instant,
        hedge: &HedgeConfig,
    ) -> NetResult<Vec<Option<SearchResult>>> {
        let metrics = net_metrics();
        let hedge_delay = self.hedge_delay(shard, hedge);
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel();
            let primary_tx = tx.clone();
            scope.spawn(move || {
                let outcome = self.attempt_once(shard, primary, wire, deadline);
                primary_tx.send((false, outcome)).ok();
            });
            let first = match rx.recv_timeout(hedge_delay) {
                Ok(arrived) => Some(arrived),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("tx is held by this scope")
                }
            };
            if let Some((_, outcome)) = first {
                // The primary answered inside the hedge window — succeed or let the
                // retry loop deal with its error; no duplicate work needed.
                return outcome;
            }
            metrics.hedges.inc();
            let hedge_tx = tx.clone();
            scope.spawn(move || {
                let outcome = self.attempt_once(shard, backup, wire, deadline);
                hedge_tx.send((true, outcome)).ok();
            });
            let mut first_error: Option<NetError> = None;
            for _ in 0..2 {
                let remaining = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(remaining) {
                    Ok((is_hedge, Ok(answers))) => {
                        if is_hedge {
                            metrics.hedge_wins.inc();
                        }
                        return Ok(answers);
                    }
                    Ok((_, Err(e))) => first_error = Some(first_error.unwrap_or(e)),
                    Err(_) => {
                        metrics.timeouts.inc();
                        return Err(NetError::DeadlineExceeded { shard });
                    }
                }
            }
            Err(first_error.expect("two error outcomes collected"))
        })
    }

    /// The hedge delay for `shard`: the configured floor, raised to the shard's
    /// observed p99 latency when history exists.
    fn hedge_delay(&self, shard: usize, hedge: &HedgeConfig) -> Duration {
        let shard_label = shard.to_string();
        let p99_ns = p2h_obs::global()
            .snapshot()
            .series(
                "p2h_shard_latency_ns",
                &[("index", self.config.entry.as_str()), ("shard", &shard_label)],
            )
            .and_then(|series| series.value.histogram().map(|h| h.quantile(0.99)))
            .unwrap_or(0);
        hedge.floor.max(Duration::from_nanos(p99_ns))
    }

    /// One RPC to one replica: checkout (possibly dialing), send, receive, checkin.
    /// A connection that saw any error is dropped, never pooled.
    fn attempt_once(
        &self,
        shard: usize,
        addr: &str,
        wire: &[WireQuery],
        deadline: Instant,
    ) -> NetResult<Vec<Option<SearchResult>>> {
        let metrics = net_metrics();
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
            .ok_or_else(|| {
                metrics.timeouts.inc();
                NetError::DeadlineExceeded { shard }
            })?;
        let mut conn: Conn =
            self.pool.checkout(addr, self.config.connect_timeout.min(remaining))?;
        conn.stream.set_read_timeout(Some(remaining)).ok();

        let started = Instant::now();
        let request = Message::ShardQuery { shard: shard as u32, queries: wire.to_vec() };
        write_frame(&mut conn.stream, &request, "client.send")?;
        match read_frame(&mut conn.stream, "client.recv") {
            Ok(Some(Message::ShardReply { shard: echoed, answers })) => {
                if echoed as usize != shard {
                    return Err(NetError::Malformed {
                        context: format!("asked shard {shard}, reply names {echoed}"),
                    });
                }
                self.latency[shard].record(started.elapsed().as_nanos() as u64);
                self.pool.checkin(addr, conn);
                Ok(answers)
            }
            Ok(Some(Message::ErrorReply { code, message })) => {
                // The stream is still framed correctly — the server just refused.
                self.pool.checkin(addr, conn);
                Err(NetError::Remote { code, message })
            }
            Ok(Some(other)) => {
                Err(NetError::Malformed { context: format!("expected ShardReply, got {other:?}") })
            }
            Ok(None) => Err(NetError::Disconnected),
            Err(e) if e.is_timeout() => {
                metrics.timeouts.inc();
                Err(NetError::DeadlineExceeded { shard })
            }
            Err(e) => Err(e),
        }
    }
}

/// First bit-level divergence between two replicas' answer vectors, if any.
fn first_divergence(a: &[Option<SearchResult>], b: &[Option<SearchResult>]) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("answer counts differ: {} vs {}", a.len(), b.len()));
    }
    for (position, (left, right)) in a.iter().zip(b).enumerate() {
        match (left, right) {
            (None, None) => {}
            (Some(_), None) | (None, Some(_)) => {
                return Some(format!("query {position}: one replica skipped the shard"));
            }
            (Some(l), Some(r)) => {
                if l.neighbors.len() != r.neighbors.len() {
                    return Some(format!(
                        "query {position}: {} vs {} neighbors",
                        l.neighbors.len(),
                        r.neighbors.len()
                    ));
                }
                for (rank, (ln, rn)) in l.neighbors.iter().zip(&r.neighbors).enumerate() {
                    if ln.index != rn.index || ln.distance.to_bits() != rn.distance.to_bits() {
                        return Some(format!(
                            "query {position} rank {rank}: ({}, {:#010x}) vs ({}, {:#010x})",
                            ln.index,
                            ln.distance.to_bits(),
                            rn.index,
                            rn.distance.to_bits()
                        ));
                    }
                }
            }
        }
    }
    None
}
