//! `net_bench` — throughput bench and chaos checker for the distributed path.
//!
//! ```text
//! net_bench [--check] [--points N] [--queries M] [--shards S] [--seed X]
//! ```
//!
//! Default mode: spawn two in-process replicas of every shard, route batches, and
//! report throughput.
//!
//! `--check` mode (CI's chaos job): build a deterministic synthetic index, save it
//! to a temp store, launch *real* `shard-server` child processes, and drive
//! batches while killing a replica with SIGKILL mid-run, restarting it, and
//! killing the other. Every routed answer is compared bit-for-bit (ids + f32
//! distance bits) against a local unsharded linear scan. Any drift, panic, or hang
//! exits non-zero.
//!
//! Everything is seeded — no ambient randomness — so a failure reproduces.

use std::io::BufRead;
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use p2h_core::{
    HyperplaneQuery, LinearScan, P2hIndex, PointSet, QueryScratch, Scalar, SearchParams,
    SearchResult,
};
use p2h_net::{
    BackoffPolicy, NetResult, ReplicaSet, RoutedResponse, Router, RouterConfig, ShardServer,
};
use p2h_shard::{Partitioner, ShardIndexKind, ShardedIndex, ShardedIndexBuilder};
use p2h_store::Store;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_interval(x: &mut u64) -> Scalar {
    ((splitmix64(x) >> 11) as f64 / (1u64 << 53) as f64) as Scalar
}

struct Args {
    check: bool,
    points: usize,
    queries: usize,
    shards: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { check: false, points: 600, queries: 16, shards: 3, seed: 0xBEEF };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--check" => args.check = true,
            "--points" => args.points = value("--points")?.parse().map_err(|e| format!("{e}"))?,
            "--queries" => {
                args.queries = value("--queries")?.parse().map_err(|e| format!("{e}"))?
            }
            "--shards" => args.shards = value("--shards")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--help" | "-h" => {
                return Err("usage: net_bench [--check] [--points N] [--queries M] \
                            [--shards S] [--seed X]"
                    .into())
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

const DIM_RAW: usize = 8;

fn synthetic_points(n: usize, seed: u64) -> PointSet {
    let mut state = seed;
    let rows: Vec<Vec<Scalar>> = (0..n)
        .map(|_| (0..DIM_RAW).map(|_| unit_interval(&mut state) * 4.0 - 2.0).collect())
        .collect();
    PointSet::augment(&rows).expect("non-empty synthetic rows")
}

fn synthetic_queries(m: usize, seed: u64) -> Vec<(HyperplaneQuery, SearchParams)> {
    let mut state = seed ^ 0x5151_5151;
    (0..m)
        .map(|i| {
            let normal: Vec<Scalar> =
                (0..DIM_RAW).map(|_| unit_interval(&mut state) * 2.0 - 1.0).collect();
            let bias = unit_interval(&mut state) - 0.5;
            let query = HyperplaneQuery::from_normal_and_bias(&normal, bias)
                .expect("non-degenerate synthetic normal");
            // Alternate exact and budgeted searches so the check also covers the
            // budget-split (shard-skip) path.
            let params = match i % 3 {
                0 => SearchParams::exact(10),
                1 => SearchParams::approximate(5, 64),
                _ => SearchParams::exact(3),
            };
            (query, params)
        })
        .collect()
}

/// The local unsharded ground truth: a plain linear scan over the full point set.
fn oracle_answers(
    points: &PointSet,
    queries: &[(HyperplaneQuery, SearchParams)],
) -> Vec<SearchResult> {
    let scan = LinearScan::new(points.clone());
    let mut scratch = QueryScratch::new();
    queries.iter().map(|(q, p)| scan.search_with_scratch(q, p, &mut scratch)).collect()
}

fn assert_bit_identical(
    routed: &RoutedResponse,
    oracle: &[SearchResult],
    context: &str,
) -> Result<(), String> {
    if !routed.missing_shards.is_empty() {
        return Err(format!("{context}: unexpected missing shards {:?}", routed.missing_shards));
    }
    if routed.results.len() != oracle.len() {
        return Err(format!(
            "{context}: {} results vs {} oracle answers",
            routed.results.len(),
            oracle.len()
        ));
    }
    for (position, (got, want)) in routed.results.iter().zip(oracle).enumerate() {
        if got.neighbors.len() != want.neighbors.len() {
            return Err(format!(
                "{context}: query {position}: {} neighbors vs oracle {}",
                got.neighbors.len(),
                want.neighbors.len()
            ));
        }
        for (rank, (g, w)) in got.neighbors.iter().zip(&want.neighbors).enumerate() {
            if g.index != w.index || g.distance.to_bits() != w.distance.to_bits() {
                return Err(format!(
                    "{context}: query {position} rank {rank}: routed ({}, {:#010x}) \
                     != oracle ({}, {:#010x})",
                    g.index,
                    g.distance.to_bits(),
                    w.index,
                    w.distance.to_bits()
                ));
            }
        }
    }
    Ok(())
}

fn build_sharded(points: &PointSet, shards: usize, seed: u64) -> ShardedIndex {
    ShardedIndexBuilder::new(Partitioner::Hash { shards }, ShardIndexKind::LinearScan)
        .with_seed(seed)
        .build(points)
        .expect("sharded build")
}

// ---------------------------------------------------------------------------
// Bench mode: in-process servers
// ---------------------------------------------------------------------------

fn run_bench(args: &Args) -> Result<(), String> {
    let points = synthetic_points(args.points, args.seed);
    let queries = synthetic_queries(args.queries, args.seed);
    let index = Arc::new(build_sharded(&points, args.shards, args.seed));
    let oracle = oracle_answers(&points, &queries);

    let a = ShardServer::new(Arc::clone(&index))
        .serve("127.0.0.1:0")
        .map_err(|e| format!("serve A: {e}"))?;
    let b = ShardServer::new(Arc::clone(&index))
        .serve("127.0.0.1:0")
        .map_err(|e| format!("serve B: {e}"))?;
    let replicas: Vec<ReplicaSet> = (0..args.shards)
        .map(|_| ReplicaSet::new([a.addr().to_string(), b.addr().to_string()]))
        .collect();
    let router =
        Router::new(RouterConfig::new("bench", replicas)).map_err(|e| format!("router: {e}"))?;

    let (query_list, param_list): (Vec<_>, Vec<_>) = queries.iter().cloned().unzip();
    let rounds = 50usize;
    let start = Instant::now();
    for round in 0..rounds {
        let routed = router.route(&query_list, &param_list).map_err(|e| format!("route: {e}"))?;
        assert_bit_identical(&routed, &oracle, &format!("bench round {round}"))?;
    }
    let elapsed = start.elapsed();
    let total_queries = rounds * query_list.len();
    println!(
        "net_bench: {total_queries} routed queries over {} shards x2 replicas in {:.3}s \
         ({:.0} q/s, all bit-identical to local scan)",
        args.shards,
        elapsed.as_secs_f64(),
        total_queries as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    a.shutdown();
    b.shutdown();
    Ok(())
}

// ---------------------------------------------------------------------------
// Check mode: real child processes, SIGKILL mid-run
// ---------------------------------------------------------------------------

struct ChildServer {
    child: Child,
    addr: String,
}

fn spawn_server(store_dir: &std::path::Path, entry: &str) -> Result<ChildServer, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = exe.parent().ok_or("bin has no parent dir")?;
    let server_bin = dir.join("shard-server");
    let mut child = Command::new(&server_bin)
        .arg("--store")
        .arg(store_dir)
        .arg("--entry")
        .arg(entry)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", server_bin.display()))?;
    let stdout = child.stdout.take().ok_or("no child stdout")?;
    let mut lines = std::io::BufReader::new(stdout).lines();
    let line = lines
        .next()
        .ok_or("server exited before announcing its address")?
        .map_err(|e| format!("read server stdout: {e}"))?;
    let addr = line
        .strip_prefix("READY addr=")
        .and_then(|rest| rest.split_whitespace().next())
        .ok_or_else(|| format!("unexpected server banner: {line}"))?
        .to_string();
    Ok(ChildServer { child, addr })
}

impl ChildServer {
    fn kill9(&mut self) {
        // On unix, Child::kill delivers SIGKILL — no cleanup handler runs, exactly
        // the crash the router must absorb.
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

fn route_checked(
    router: &Router,
    queries: &[HyperplaneQuery],
    params: &[SearchParams],
    oracle: &[SearchResult],
    context: &str,
) -> Result<NetResult<()>, String> {
    match router.route(queries, params) {
        Ok(routed) => {
            assert_bit_identical(&routed, oracle, context)?;
            Ok(Ok(()))
        }
        Err(e) => Ok(Err(e)),
    }
}

fn run_check(args: &Args) -> Result<(), String> {
    let points = synthetic_points(args.points, args.seed);
    let queries = synthetic_queries(args.queries, args.seed);
    let oracle = oracle_answers(&points, &queries);
    let index = build_sharded(&points, args.shards, args.seed);

    let store_dir = std::env::temp_dir().join(format!("p2h-net-check-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    let store = Store::create(&store_dir).map_err(|e| format!("create store: {e}"))?;
    index.save_into(&store, "check").map_err(|e| format!("save entry: {e}"))?;

    let mut replica_a = spawn_server(&store_dir, "check")?;
    let mut replica_b = spawn_server(&store_dir, "check")?;
    println!("net_bench --check: replicas at {} and {}", replica_a.addr, replica_b.addr);

    let make_router = |a: &str, b: &str| -> Result<Router, String> {
        let replicas: Vec<ReplicaSet> =
            (0..args.shards).map(|_| ReplicaSet::new([a.to_string(), b.to_string()])).collect();
        let mut config = RouterConfig::new("check", replicas);
        config.max_retries = 6;
        config.deadline = Duration::from_secs(10);
        config.backoff = BackoffPolicy {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(50),
            jitter: Duration::from_millis(2),
            seed: args.seed,
        };
        Router::new(config).map_err(|e| format!("router: {e}"))
    };
    let router = make_router(&replica_a.addr, &replica_b.addr)?;
    let (query_list, param_list): (Vec<_>, Vec<_>) = queries.iter().cloned().unzip();

    // Phase 1: both replicas healthy.
    for round in 0..5 {
        route_checked(&router, &query_list, &param_list, &oracle, &format!("healthy {round}"))?
            .map_err(|e| format!("healthy round {round} failed: {e}"))?;
    }
    println!("net_bench --check: healthy phase OK");

    // Phase 2: SIGKILL replica A mid-run — every batch must still come back
    // bit-identical, served by B after the failover retries.
    let killer = std::thread::spawn({
        let mut handle = std::mem::replace(&mut replica_a.child, dummy_child()?);
        move || {
            std::thread::sleep(Duration::from_millis(30));
            handle.kill().ok();
            handle.wait().ok();
        }
    });
    for round in 0..10 {
        route_checked(&router, &query_list, &param_list, &oracle, &format!("kill-A {round}"))?
            .map_err(|e| format!("round {round} with A dying failed: {e}"))?;
    }
    killer.join().ok();
    println!("net_bench --check: kill -9 of replica A absorbed");

    // Phase 3: restart A, kill B. The dead replica is listed FIRST, so every
    // shard's first attempt hits a refused connection and must fail over.
    let mut replica_a2 = spawn_server(&store_dir, "check")?;
    let router = make_router(&replica_b.addr, &replica_a2.addr)?;
    replica_b.kill9();
    for round in 0..5 {
        route_checked(&router, &query_list, &param_list, &oracle, &format!("kill-B {round}"))?
            .map_err(|e| format!("round {round} after B died failed: {e}"))?;
    }
    println!("net_bench --check: restart + failback OK");

    replica_a2.kill9();
    replica_a.kill9();
    std::fs::remove_dir_all(&store_dir).ok();
    println!("net_bench --check: PASS (all answers bit-identical to local scan)");
    Ok(())
}

/// A placeholder child (`/bin/true`-style) so the real handle can be moved into
/// the killer thread; never signalled with anything meaningful.
fn dummy_child() -> Result<Child, String> {
    Command::new("sleep")
        .arg("0")
        .stdout(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn placeholder: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("net_bench: {message}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = if args.check { run_check(&args) } else { run_bench(&args) };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("net_bench: FAIL: {message}");
            ExitCode::FAILURE
        }
    }
}
