//! `shard-server` — serve shards of a stored entry over TCP.
//!
//! ```text
//! shard-server --store DIR --entry NAME [--addr 127.0.0.1:0] [--shards 0,2]
//! ```
//!
//! Cold-starts the entry from the snapshot store (latest epoch; `P2H_STORE_MMAP`
//! picks the load mode) and serves it until killed. Prints a one-line parseable
//! banner `READY addr=<addr> pid=<pid>` on stdout once bound so a parent process
//! can learn the ephemeral port and the pid in one read — the chaos harness relies
//! on that line, then `kill -9`s this process mid-batch and expects the router to
//! fail over without a bit of drift. The listener sets `SO_REUSEADDR`, so a
//! restarted server can re-bind the killed one's exact port immediately.

use std::io::Write;
use std::process::ExitCode;

use p2h_net::ShardServer;
use p2h_store::Store;

struct Args {
    store: String,
    entry: String,
    addr: String,
    shards: Option<Vec<usize>>,
}

fn parse_args() -> Result<Args, String> {
    let mut store = None;
    let mut entry = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut shards = None;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--store" => store = Some(value("--store")?),
            "--entry" => entry = Some(value("--entry")?),
            "--addr" => addr = value("--addr")?,
            "--shards" => {
                let spec = value("--shards")?;
                let parsed: Result<Vec<usize>, _> =
                    spec.split(',').map(|s| s.trim().parse::<usize>()).collect();
                shards = Some(parsed.map_err(|e| format!("--shards '{spec}': {e}"))?);
            }
            "--help" | "-h" => {
                return Err("usage: shard-server --store DIR --entry NAME \
                            [--addr 127.0.0.1:0] [--shards 0,1]"
                    .into())
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(Args {
        store: store.ok_or("--store is required")?,
        entry: entry.ok_or("--entry is required")?,
        addr,
        shards,
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let store = Store::open(&args.store).map_err(|e| format!("open store: {e}"))?;
    let mut server =
        ShardServer::load(&store, &args.entry).map_err(|e| format!("cold start: {e}"))?;
    if let Some(shards) = args.shards {
        server = server.with_shards(shards).map_err(|e| e.to_string())?;
    }
    let handle = server.serve(&args.addr).map_err(|e| format!("bind {}: {e}", args.addr))?;
    // The parent parses this exact one-line banner: the address it will dial and
    // the pid it will later SIGKILL.
    println!("READY addr={} pid={}", handle.addr(), std::process::id());
    std::io::stdout().flush().ok();
    // Serve until killed. The chaos tests terminate this process with SIGKILL, so
    // there is deliberately no graceful-shutdown path to hide behind.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("shard-server: {message}");
            ExitCode::FAILURE
        }
    }
}
