//! The shard server: cold-starts a [`ShardedIndex`] from a snapshot [`Store`] and
//! serves `ShardQuery` frames over TCP.
//!
//! Threading model: one nonblocking accept loop polling a shutdown flag, one
//! detached thread per connection (each with its own reused [`QueryScratch`]).
//! There is no async runtime — a router fans out to at most a handful of shard
//! servers, and a server handles at most a handful of routers, so plain blocking
//! threads are the simplest thing that is obviously correct under `kill -9`.
//!
//! Fault sites `server.accept`, `server.recv`, and `server.send` let the chaos
//! tests make a *healthy* server drop, delay, truncate, or corrupt traffic without
//! touching its index state — the client must recover through retry/hedging and
//! still produce bit-identical answers.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use p2h_core::{P2hIndex, QueryScratch};
use p2h_obs::fault;
use p2h_obs::FaultKind;
use p2h_shard::ShardedIndex;
use p2h_store::Store;

use crate::error::{ErrorCode, NetError, NetResult};
use crate::metrics::net_metrics;
use crate::wire::{read_frame, write_frame, Message, PROTOCOL_VERSION};

/// A running shard server. Dropping the handle shuts the accept loop down.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_loop: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept loop. Connection threads
    /// are detached and exit when their peer hangs up.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_loop.take() {
            handle.join().ok();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A shard server: the index it cold-started plus the shard ordinals it answers for.
#[derive(Debug)]
pub struct ShardServer {
    index: Arc<ShardedIndex>,
    /// Shard ordinals this process serves; `None` = all of them. A replica deployment
    /// runs several servers with overlapping subsets.
    served: Option<Vec<usize>>,
}

impl ShardServer {
    /// Serves every shard of an in-memory index (tests, single-process setups).
    pub fn new(index: Arc<ShardedIndex>) -> Self {
        Self { index, served: None }
    }

    /// Cold-starts the entry `name` from `store` — epoch resolution and
    /// [`p2h_store::LoadMode`] (copy vs mmap) are whatever the store was opened with.
    pub fn load(store: &Store, name: &str) -> NetResult<Self> {
        let index = ShardedIndex::load_from(store, name).map_err(|e| NetError::InvalidRequest {
            message: format!("cold start of entry '{name}' failed: {e}"),
        })?;
        Ok(Self::new(Arc::new(index)))
    }

    /// Restricts this server to a subset of shard ordinals.
    pub fn with_shards(mut self, shards: Vec<usize>) -> NetResult<Self> {
        let count = self.index.shard_count();
        for &s in &shards {
            if s >= count {
                return Err(NetError::InvalidRequest {
                    message: format!("shard ordinal {s} out of range (entry has {count} shards)"),
                });
            }
        }
        self.served = Some(shards);
        Ok(self)
    }

    /// The served index.
    pub fn index(&self) -> &Arc<ShardedIndex> {
        &self.index
    }

    fn serves(&self, shard: usize) -> bool {
        shard < self.index.shard_count()
            && self.served.as_ref().is_none_or(|subset| subset.contains(&shard))
    }

    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving in background threads.
    pub fn serve(self, addr: &str) -> NetResult<ServerHandle> {
        let listener = TcpListener::bind(addr).map_err(NetError::Io)?;
        // Restart harnesses re-bind this exact port right after a kill -9; make the
        // TIME_WAIT-proofing explicit instead of relying on std's default.
        crate::sys::ensure_reuseaddr(&listener).map_err(NetError::Io)?;
        let bound = listener.local_addr().map_err(NetError::Io)?;
        listener.set_nonblocking(true).map_err(NetError::Io)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let server = Arc::new(self);
        let accept_loop = std::thread::Builder::new()
            .name(format!("p2h-net-accept-{bound}"))
            .spawn(move || accept_loop(listener, server, stop))
            .map_err(NetError::Io)?;
        Ok(ServerHandle { addr: bound, shutdown, accept_loop: Some(accept_loop) })
    }
}

fn accept_loop(listener: TcpListener, server: Arc<ShardServer>, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                match fault::check("server.accept") {
                    Some(FaultKind::Refuse) | Some(FaultKind::Disconnect) => {
                        // Drop the accepted socket on the floor: the client sees an
                        // immediate hangup and must retry or fail over.
                        drop(stream);
                        continue;
                    }
                    Some(FaultKind::Slow(ms)) => {
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    _ => {}
                }
                net_metrics().server_connections.inc();
                let server = Arc::clone(&server);
                // Connection threads are detached on purpose: they block in reads
                // with no timeout and exit when the peer hangs up, so joining them
                // at shutdown could wait on a client we do not control.
                std::thread::Builder::new()
                    .name("p2h-net-conn".into())
                    .spawn(move || {
                        stream.set_nodelay(true).ok();
                        handle_connection(stream, &server);
                    })
                    .ok();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Serves one connection until the peer hangs up or an I/O error poisons the
/// stream. Malformed input gets a typed error reply where the stream is still
/// coherent; anything else closes the connection (the client's retry path owns
/// recovery).
fn handle_connection(mut stream: TcpStream, server: &ShardServer) {
    let mut scratch = QueryScratch::new();
    loop {
        let message = match read_frame(&mut stream, "server.recv") {
            Ok(Some(message)) => message,
            Ok(None) => return, // clean close between frames
            Err(NetError::Malformed { context }) => {
                // The frame arrived intact (CRC passed) but does not decode: tell
                // the peer, then close — the stream position is still trustworthy
                // but the peer is speaking something we do not.
                send_error(&mut stream, ErrorCode::BadRequest, &context);
                return;
            }
            Err(_) => return, // corrupt/truncated/disconnected: nothing sane to say
        };
        let reply = match message {
            Message::Hello { version: _ } => {
                // Version negotiation is the client's call: we disclose ours and the
                // shape of what we serve; a client that cannot speak it disconnects.
                Message::HelloOk {
                    version: PROTOCOL_VERSION,
                    shard_count: server.index.shard_count() as u32,
                    dim: server.index.dim() as u32,
                    total_len: server.index.len() as u64,
                }
            }
            Message::Ping { nonce } => Message::Pong { nonce },
            Message::ShardQuery { shard, queries } => {
                net_metrics().server_requests.inc();
                match execute_shard_query(server, shard as usize, &queries, &mut scratch) {
                    Ok(answers) => Message::ShardReply { shard, answers },
                    Err((code, message)) => Message::ErrorReply { code, message },
                }
            }
            other => Message::ErrorReply {
                code: ErrorCode::BadRequest,
                message: format!("unexpected message: {other:?}"),
            },
        };
        if write_frame(&mut stream, &reply, "server.send").is_err() {
            return; // poisoned stream; the client will retry elsewhere
        }
    }
}

fn execute_shard_query(
    server: &ShardServer,
    shard: usize,
    queries: &[crate::wire::WireQuery],
    scratch: &mut QueryScratch,
) -> Result<Vec<Option<p2h_core::SearchResult>>, (ErrorCode, String)> {
    if !server.serves(shard) {
        return Err((
            ErrorCode::UnknownShard,
            format!("shard {shard} is not served by this process"),
        ));
    }
    let dim = server.index.dim();
    let mut answers = Vec::with_capacity(queries.len());
    for (position, wq) in queries.iter().enumerate() {
        let query =
            wq.to_query().map_err(|e| (ErrorCode::BadRequest, format!("query {position}: {e}")))?;
        if query.dim() != dim {
            return Err((
                ErrorCode::BadRequest,
                format!("query {position}: dimension {} != index dimension {dim}", query.dim()),
            ));
        }
        answers.push(server.index.search_shard(shard, &query, &wq.params, scratch));
    }
    Ok(answers)
}

fn send_error(stream: &mut TcpStream, code: ErrorCode, message: &str) {
    let reply = Message::ErrorReply { code, message: message.to_string() };
    write_frame(stream, &reply, "server.send").ok();
}
