//! # p2h-net — fault-tolerant distributed serving
//!
//! Serves a [`p2h_shard::ShardedIndex`] across processes: shard servers cold-start
//! from snapshot [`p2h_store::Store`]s and answer per-shard queries over a
//! length-prefixed, CRC-checked TCP protocol; a [`Router`] scatter-gathers a batch
//! over replicated shards with per-request deadlines, deterministic retry/backoff,
//! hedged requests keyed off observed p99 latency, and optional replica
//! cross-checking.
//!
//! Everything rides on `std` — no async runtime, no wire-format dependency. The
//! crate's one non-negotiable invariant is inherited from the sharded merge: a
//! routed answer is **bit-identical** (neighbor ids and `f32` distance bits) to
//! the same batch served by a local unsharded index, no matter which replicas
//! answered or which faults fired in between. Failures are always typed
//! ([`NetError`]) or explicitly declared ([`RoutedResponse::missing_shards`],
//! opt-in only) — never a panic, a hang, or a silently shortened answer.
//!
//! Chaos testing is built in: the [`p2h_obs::fault`] registry
//! (`P2H_FAULTS=point:kind:rate:seed`) injects connection refusal, mid-frame
//! disconnects, truncated/corrupted/delayed frames, and EINTR at named sites in
//! both the client and server I/O paths, deterministically and with zero cost when
//! unset. See `docs/NETWORKING.md` for the wire format and the failure-mode table.

#![warn(missing_docs)]

pub mod backoff;
pub mod error;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod server;
pub mod sys;
pub mod wire;

pub use backoff::BackoffPolicy;
pub use error::{ErrorCode, NetError, NetResult};
pub use metrics::{net_metrics, NetMetrics};
pub use pool::{Conn, Pool, ServerInfo};
pub use router::{HedgeConfig, ReplicaSet, RoutedResponse, Router, RouterConfig};
pub use server::{ServerHandle, ShardServer};
pub use sys::ensure_reuseaddr;
pub use wire::{Message, WireQuery, MAX_FRAME_BYTES, PROTOCOL_VERSION};
