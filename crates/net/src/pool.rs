//! Per-address TCP connection pooling with a version-checked handshake.
//!
//! The router checks a connection out before each attempt and back in only after a
//! clean round trip — a connection that saw any error is dropped on the floor, so
//! a poisoned stream (half-written frame, injected corruption) can never serve a
//! second request. Fresh connections perform the `Hello`/`HelloOk` handshake and
//! reject protocol-version mismatches before any query bytes are sent.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

use p2h_obs::fault;
use p2h_obs::FaultKind;

use crate::error::{NetError, NetResult};
use crate::metrics::net_metrics;
use crate::wire::{read_frame, write_frame, Message, PROTOCOL_VERSION};

/// What a shard server disclosed about itself in the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerInfo {
    /// Shards in the entry the server cold-started.
    pub shard_count: u32,
    /// Augmented dimensionality of the served entry.
    pub dim: u32,
    /// Total points across all shards.
    pub total_len: u64,
}

/// A checked-out connection plus the server's handshake facts.
#[derive(Debug)]
pub struct Conn {
    /// The live stream. `TCP_NODELAY` is set; read timeouts are the router's job.
    pub stream: TcpStream,
    /// Handshake facts from this server.
    pub info: ServerInfo,
}

/// A pool of idle, already-handshaken connections keyed by server address.
#[derive(Debug, Default)]
pub struct Pool {
    idle: Mutex<HashMap<String, Vec<Conn>>>,
}

impl Pool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a connection to `addr`, reusing an idle one when available and
    /// dialing (+ handshaking) otherwise. The `client.connect` fault site can refuse
    /// or delay the dial.
    pub fn checkout(&self, addr: &str, connect_timeout: Duration) -> NetResult<Conn> {
        if let Some(conn) = self.idle.lock().expect("pool lock").get_mut(addr).and_then(Vec::pop) {
            return Ok(conn);
        }
        dial(addr, connect_timeout)
    }

    /// Returns a connection that completed a clean round trip. Connections that saw
    /// any error must be dropped instead — never checked back in.
    pub fn checkin(&self, addr: &str, conn: Conn) {
        self.idle.lock().expect("pool lock").entry(addr.to_string()).or_default().push(conn);
    }

    /// Drops every idle connection (used by tests to force fresh dials).
    pub fn clear(&self) {
        self.idle.lock().expect("pool lock").clear();
    }

    /// Idle connections currently pooled for `addr`.
    pub fn idle_count(&self, addr: &str) -> usize {
        self.idle.lock().expect("pool lock").get(addr).map_or(0, Vec::len)
    }
}

fn resolve(addr: &str) -> NetResult<SocketAddr> {
    addr.to_socket_addrs()
        .map_err(NetError::Io)?
        .next()
        .ok_or_else(|| NetError::InvalidRequest { message: format!("unresolvable address {addr}") })
}

/// Dials `addr`, applies the `client.connect` fault site, and performs the
/// `Hello`/`HelloOk` handshake.
pub fn dial(addr: &str, connect_timeout: Duration) -> NetResult<Conn> {
    match fault::check("client.connect") {
        Some(FaultKind::Refuse) | Some(FaultKind::Disconnect) => {
            net_metrics().connect_errors.inc();
            return Err(NetError::Refused { addr: addr.to_string() });
        }
        Some(FaultKind::Slow(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        _ => {}
    }
    let sockaddr = resolve(addr)?;
    let stream = TcpStream::connect_timeout(&sockaddr, connect_timeout).map_err(|e| {
        net_metrics().connect_errors.inc();
        if e.kind() == std::io::ErrorKind::ConnectionRefused {
            NetError::Refused { addr: addr.to_string() }
        } else {
            NetError::Io(e)
        }
    })?;
    stream.set_nodelay(true).ok();
    // The handshake gets a bounded read window so a wedged server cannot hang the
    // dial; the router re-arms the timeout per attempt afterwards.
    stream.set_read_timeout(Some(connect_timeout.max(Duration::from_millis(10)))).ok();
    let mut conn = Conn { stream, info: ServerInfo { shard_count: 0, dim: 0, total_len: 0 } };
    write_frame(&mut conn.stream, &Message::Hello { version: PROTOCOL_VERSION }, "client.send")?;
    match read_frame(&mut conn.stream, "client.recv")? {
        Some(Message::HelloOk { version, shard_count, dim, total_len }) => {
            if version != PROTOCOL_VERSION {
                return Err(NetError::Version { ours: PROTOCOL_VERSION, theirs: version });
            }
            conn.info = ServerInfo { shard_count, dim, total_len };
            Ok(conn)
        }
        Some(Message::ErrorReply { code, message }) => Err(NetError::Remote { code, message }),
        Some(other) => {
            Err(NetError::Malformed { context: format!("expected HelloOk, got {other:?}") })
        }
        None => Err(NetError::Disconnected),
    }
}
