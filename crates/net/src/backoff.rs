//! Deterministic retry backoff.
//!
//! The delay before retry attempt `n` is `base * 2^n`, capped, plus a jitter term
//! drawn from a SplitMix64 stream keyed by the router's seed, the shard ordinal,
//! and the attempt number. Determinism is load-bearing: the fault-matrix tests
//! replay identical fault schedules against identical retry timing, so nothing in
//! this module may consult the clock or ambient randomness.

use std::time::Duration;

/// Retry/backoff policy for one router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry (doubled each further attempt).
    pub base: Duration,
    /// Ceiling applied to the exponential term before jitter.
    pub cap: Duration,
    /// Jitter is uniform in `[0, jitter]`, drawn deterministically from the seed.
    pub jitter: Duration,
    /// Seed for the jitter stream. Two routers with the same seed sleep the same.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            jitter: Duration::from_millis(10),
            seed: 0x5eed,
        }
    }
}

/// One step of SplitMix64 — the same generator the fault registry and the synthetic
/// datasets use, so the whole test surface shares a single PRNG idiom.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BackoffPolicy {
    /// A policy with zero delays — the fault-matrix tests use this so a retry storm
    /// completes in microseconds while exercising the same control flow.
    pub fn immediate(seed: u64) -> Self {
        Self { base: Duration::ZERO, cap: Duration::ZERO, jitter: Duration::ZERO, seed }
    }

    /// The delay to sleep before retry `attempt` (0 = first retry) of `shard`.
    /// Pure: same `(seed, shard, attempt)` → same duration, on every host.
    pub fn delay(&self, shard: usize, attempt: u32) -> Duration {
        let exp =
            self.base.saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX)).min(self.cap);
        if self.jitter.is_zero() {
            return exp;
        }
        let jitter_ns = self.jitter.as_nanos().min(u128::from(u64::MAX)) as u64;
        let word = splitmix64(
            self.seed ^ (shard as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ u64::from(attempt),
        );
        exp + Duration::from_nanos(word % (jitter_ns + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_and_grow_exponentially() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            jitter: Duration::ZERO,
            seed: 42,
        };
        let raw: Vec<_> = (0..6).map(|a| policy.delay(0, a)).collect();
        assert_eq!(
            raw,
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(40),
                Duration::from_millis(80),
                Duration::from_millis(100), // capped
                Duration::from_millis(100),
            ]
        );
        // A huge attempt index must not overflow the shift.
        assert_eq!(policy.delay(0, 63), Duration::from_millis(100));
    }

    #[test]
    fn jitter_is_seeded_not_ambient() {
        let policy =
            BackoffPolicy { jitter: Duration::from_millis(50), seed: 7, ..Default::default() };
        let twin =
            BackoffPolicy { jitter: Duration::from_millis(50), seed: 7, ..Default::default() };
        let other =
            BackoffPolicy { jitter: Duration::from_millis(50), seed: 8, ..Default::default() };
        let series = |p: &BackoffPolicy| -> Vec<Duration> {
            (0..4)
                .flat_map(|shard| (0..4).map(move |a| (shard, a)))
                .map(|(s, a)| p.delay(s, a))
                .collect()
        };
        assert_eq!(series(&policy), series(&twin), "same seed → same schedule");
        assert_ne!(series(&policy), series(&other), "different seed → different jitter");
        for (shard, attempt) in (0..4).flat_map(|s| (0..4).map(move |a| (s, a))) {
            let d = policy.delay(shard, attempt);
            let floor = policy.base.saturating_mul(1 << attempt).min(policy.cap);
            assert!(d >= floor && d <= floor + policy.jitter, "jitter bounded: {d:?}");
        }
    }

    #[test]
    fn immediate_policy_never_sleeps() {
        let policy = BackoffPolicy::immediate(3);
        for attempt in 0..8 {
            assert_eq!(policy.delay(5, attempt), Duration::ZERO);
        }
    }
}
