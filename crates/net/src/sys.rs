//! Raw socket options — the only module in this crate that contains `unsafe` code
//! (one `setsockopt(2)`/`getsockopt(2)` pair; no `libc` dependency, the symbols live
//! in the C library `std` already links, same pattern as `p2h_store::mmap`).
//!
//! Serving binaries (`shard-server`, `front-server`) are routinely `kill -9`ed by
//! the chaos harnesses and restarted on the *same* port; without `SO_REUSEADDR` the
//! kernel's `TIME_WAIT` hold on the old socket makes the re-bind fail for up to a
//! minute, which the harnesses used to paper over with retry-sleeps. Rust's `std`
//! sets `SO_REUSEADDR` before binding on Unix, but that is an implementation detail
//! no document guarantees — [`ensure_reuseaddr`] makes the contract explicit: it
//! sets the option on the bound listener and reads it back, so a platform or std
//! change that silently dropped it becomes a hard startup error instead of a flaky
//! restart harness.

use std::net::TcpListener;

/// Sets `SO_REUSEADDR` on the listener and verifies it stuck.
///
/// # Errors
///
/// An [`std::io::Error`] when either syscall fails or the read-back reports the
/// option disabled. On non-Unix platforms this is a no-op returning `Ok(())`.
pub fn ensure_reuseaddr(listener: &TcpListener) -> std::io::Result<()> {
    imp::ensure_reuseaddr(listener)
}

#[cfg(unix)]
mod imp {
    use std::net::TcpListener;
    use std::os::fd::AsRawFd;

    // Linux values; the BSD family (macOS) uses 0xffff/0x0004.
    #[cfg(target_os = "linux")]
    const SOL_SOCKET: i32 = 1;
    #[cfg(target_os = "linux")]
    const SO_REUSEADDR: i32 = 2;
    #[cfg(not(target_os = "linux"))]
    const SOL_SOCKET: i32 = 0xffff;
    #[cfg(not(target_os = "linux"))]
    const SO_REUSEADDR: i32 = 0x0004;

    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const core::ffi::c_void,
            len: u32,
        ) -> i32;
        fn getsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *mut core::ffi::c_void,
            len: *mut u32,
        ) -> i32;
    }

    pub fn ensure_reuseaddr(listener: &TcpListener) -> std::io::Result<()> {
        let fd = listener.as_raw_fd();
        let one: i32 = 1;
        // SAFETY: `fd` is a live socket owned by `listener` for the duration of the
        // call; the value buffer is a properly sized, properly aligned i32.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                SO_REUSEADDR,
                (&one as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        if rc != 0 {
            return Err(std::io::Error::last_os_error());
        }
        let mut got: i32 = 0;
        let mut len = std::mem::size_of::<i32>() as u32;
        // SAFETY: same fd; `got`/`len` are live, writable, and correctly sized.
        let rc = unsafe {
            getsockopt(fd, SOL_SOCKET, SO_REUSEADDR, (&mut got as *mut i32).cast(), &mut len)
        };
        if rc != 0 {
            return Err(std::io::Error::last_os_error());
        }
        if got == 0 {
            return Err(std::io::Error::other("SO_REUSEADDR did not stick"));
        }
        Ok(())
    }
}

#[cfg(not(unix))]
mod imp {
    use std::net::TcpListener;

    pub fn ensure_reuseaddr(_listener: &TcpListener) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuseaddr_sets_and_verifies() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        ensure_reuseaddr(&listener).unwrap();
        // The point of the option: a second bind to the same port succeeds
        // immediately after the first listener is gone.
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let again = TcpListener::bind(addr).unwrap();
        ensure_reuseaddr(&again).unwrap();
    }
}
