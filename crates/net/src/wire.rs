//! The wire protocol: length-prefixed, checksummed frames and the message codec.
//!
//! ## Frame layout
//!
//! ```text
//! ┌────────────┬──────────────┬──────────────┬─────────────┐
//! │ magic P2HN │ len: u32 LE  │ crc32: u32 LE│ payload …   │
//! └────────────┴──────────────┴──────────────┴─────────────┘
//! ```
//!
//! `len` is the payload byte count (capped at [`MAX_FRAME_BYTES`]; a larger claim is
//! rejected *before* allocating), `crc32` is the same IEEE CRC-32 the snapshot store
//! uses, computed over the payload. Every multi-byte integer on the wire is
//! little-endian. A failed CRC is a typed [`NetError::Corrupt`], a stream that ends
//! mid-frame is [`NetError::Disconnected`] — hostile or damaged bytes can never panic
//! the decoder (mirroring the store's snapshot reader contract).
//!
//! ## Messages
//!
//! The payload's first byte is the message tag. Queries travel as *already
//! normalized* coefficients plus the precomputed norm, reconstructed with
//! [`HyperplaneQuery::from_transport_parts`] — re-normalizing on receive would
//! perturb the coefficient bits and break the protocol's bit-identity contract.
//! Distances travel as raw `f32` bit patterns for the same reason.
//!
//! ## Fault injection
//!
//! [`write_frame`] and [`read_frame`] consult the [`p2h_obs::fault`] registry at the
//! caller-provided site (`client.send`, `server.recv`, …): `disconnect` abandons the
//! frame, `truncate` emits/consumes a prefix then fails, `corrupt` flips a payload
//! bit *after* the CRC is computed (so the receiver's check must catch it), `slow`
//! sleeps, and `eintr` interrupts one syscall (absorbed by the store's retry loop).
//! Unset, each call costs one relaxed atomic load.

use std::io::{Read, Write};

use p2h_core::{HyperplaneQuery, Neighbor, SearchParams, SearchResult, SearchStats};
use p2h_obs::fault;
use p2h_obs::FaultKind;
use p2h_store::{crc32, retry_interrupted};

use crate::error::{ErrorCode, NetError, NetResult};

/// Frame magic: `P2HN`.
pub const MAGIC: [u8; 4] = *b"P2HN";

/// Protocol version spoken by this build (checked in the Hello handshake).
pub const PROTOCOL_VERSION: u16 = 1;

/// Hard cap on a frame's payload size. Large enough for any realistic batch slice,
/// small enough that a corrupt or hostile length field cannot OOM the process.
pub const MAX_FRAME_BYTES: u64 = 64 << 20;

/// A query and its effective parameters, as they travel to a shard server. The
/// router resolves per-position overrides *before* encoding, so the server never
/// needs the batch's override table.
#[derive(Debug, Clone, PartialEq)]
pub struct WireQuery {
    /// Already-normalized coefficients (bit-exact from the sender's query).
    pub coeffs: Vec<f32>,
    /// The precomputed coefficient norm (bit-exact).
    pub norm: f32,
    /// Effective search parameters for this query.
    pub params: SearchParams,
}

impl WireQuery {
    /// Captures a query + params pair for transport.
    pub fn from_query(query: &HyperplaneQuery, params: &SearchParams) -> Self {
        Self { coeffs: query.coeffs().to_vec(), norm: query.norm(), params: params.clone() }
    }

    /// Rebuilds the bit-exact [`HyperplaneQuery`].
    pub fn to_query(&self) -> NetResult<HyperplaneQuery> {
        HyperplaneQuery::from_transport_parts(self.coeffs.clone(), self.norm)
            .map_err(|e| NetError::Malformed { context: format!("query: {e}") })
    }
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client hello: the first frame on every connection.
    Hello {
        /// The client's protocol version.
        version: u16,
    },
    /// Server accept: protocol version plus the served entry's shape.
    HelloOk {
        /// The server's protocol version.
        version: u16,
        /// Shards in the entry the server cold-started.
        shard_count: u32,
        /// Augmented dimensionality of the entry.
        dim: u32,
        /// Total points across all shards.
        total_len: u64,
    },
    /// Execute a slice of a batch against one shard.
    ShardQuery {
        /// Shard ordinal to search.
        shard: u32,
        /// Queries with their effective parameters, in batch order.
        queries: Vec<WireQuery>,
    },
    /// The per-query answers of a [`Message::ShardQuery`].
    ShardReply {
        /// Echo of the request's shard ordinal.
        shard: u32,
        /// Per-query results in request order; `None` = the shard's budget slice was
        /// empty and it was legitimately skipped (identical to local fan-out).
        answers: Vec<Option<SearchResult>>,
    },
    /// A typed server-side failure.
    ErrorReply {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Liveness probe.
    Ping {
        /// Echoed back in the pong.
        nonce: u64,
    },
    /// Liveness answer.
    Pong {
        /// The ping's nonce.
        nonce: u64,
    },
    /// A single query for the serving front-end's coalescing queue.
    ///
    /// Requests carry a client-chosen id and may be pipelined; the front-end
    /// demultiplexes replies by id, so completions can arrive out of order.
    FrontQuery {
        /// Client-chosen request id, echoed in the reply.
        id: u64,
        /// Registered index name to serve against.
        index: String,
        /// Queueing budget in milliseconds (`0` = unbounded): a request still
        /// waiting in the coalescing queue when this window closes is shed with a
        /// typed [`ErrorCode::DeadlineExceeded`] error, never silently dropped.
        deadline_ms: u64,
        /// The query and its effective search parameters.
        query: WireQuery,
    },
    /// The answer to a [`Message::FrontQuery`] — bit-identical to serving the same
    /// query alone, no matter which batch coalescing placed it in.
    FrontReply {
        /// Echo of the request id.
        id: u64,
        /// The per-query result.
        result: SearchResult,
    },
    /// A typed per-request front-end failure (admission shed, unknown index, …).
    FrontError {
        /// Echo of the request id.
        id: u64,
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Asks the front-end for its process-wide metrics registry.
    MetricsRequest {
        /// Client-chosen request id, echoed in the reply.
        id: u64,
    },
    /// The metrics registry in Prometheus text exposition format.
    MetricsReply {
        /// Echo of the request id.
        id: u64,
        /// `Engine::render_metrics()` output.
        text: String,
    },
    /// Asks the front-end to cold-start a fresh engine from its store directory and
    /// swap it in under live traffic (zero-downtime reload).
    Reload {
        /// Client-chosen request id, echoed in the reply.
        id: u64,
    },
    /// A completed reload: the new engine is serving.
    ReloadOk {
        /// Echo of the request id.
        id: u64,
        /// Manifest entries the fresh engine registered.
        entries: u32,
    },
}

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f32_bits(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> NetResult<&'a [u8]> {
        let end =
            self.pos.checked_add(n).filter(|&end| end <= self.buf.len()).ok_or_else(|| {
                NetError::Malformed { context: format!("{what}: payload ends early") }
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> NetResult<u8> {
        Ok(self.take(1, what)?[0])
    }
    fn u16(&mut self, what: &str) -> NetResult<u16> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().expect("2 bytes")))
    }
    fn u32(&mut self, what: &str) -> NetResult<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self, what: &str) -> NetResult<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }
    fn f32_bits(&mut self, what: &str) -> NetResult<f32> {
        Ok(f32::from_bits(self.u32(what)?))
    }

    /// A declared element count, sanity-bounded by what the remaining payload can
    /// physically hold (`min_elem_bytes` per element) so a corrupt count cannot drive
    /// a huge allocation.
    fn count(&mut self, min_elem_bytes: usize, what: &str) -> NetResult<usize> {
        let declared = self.u32(what)? as usize;
        let remaining = self.buf.len() - self.pos;
        if declared.saturating_mul(min_elem_bytes.max(1)) > remaining {
            return Err(NetError::Malformed {
                context: format!("{what}: count {declared} exceeds payload"),
            });
        }
        Ok(declared)
    }

    fn str(&mut self, what: &str) -> NetResult<String> {
        let len = self.count(1, what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| NetError::Malformed { context: format!("{what}: invalid utf-8") })
    }

    fn finish(self, what: &str) -> NetResult<()> {
        if self.pos != self.buf.len() {
            return Err(NetError::Malformed {
                context: format!("{what}: {} trailing bytes", self.buf.len() - self.pos),
            });
        }
        Ok(())
    }
}

fn encode_params(enc: &mut Enc, params: &SearchParams) {
    enc.u64(params.k as u64);
    match params.candidate_limit {
        Some(limit) => {
            enc.u8(1);
            enc.u64(limit as u64);
        }
        None => {
            enc.u8(0);
            enc.u64(0);
        }
    }
    enc.u8(match params.branch_preference {
        p2h_core::BranchPreference::Center => 0,
        p2h_core::BranchPreference::LowerBound => 1,
    });
    enc.u8(params.collect_timing as u8);
}

fn decode_params(dec: &mut Dec<'_>) -> NetResult<SearchParams> {
    let k = dec.u64("params.k")? as usize;
    let has_limit = dec.u8("params.has_limit")?;
    let limit = dec.u64("params.limit")? as usize;
    let branch = match dec.u8("params.branch")? {
        0 => p2h_core::BranchPreference::Center,
        1 => p2h_core::BranchPreference::LowerBound,
        other => {
            return Err(NetError::Malformed {
                context: format!("params.branch: unknown preference {other}"),
            })
        }
    };
    let collect_timing = dec.u8("params.collect_timing")? != 0;
    Ok(SearchParams {
        k,
        candidate_limit: (has_limit != 0).then_some(limit),
        branch_preference: branch,
        collect_timing,
    })
}

fn encode_query(enc: &mut Enc, wq: &WireQuery) {
    enc.f32_bits(wq.norm);
    enc.u32(wq.coeffs.len() as u32);
    for &c in &wq.coeffs {
        enc.f32_bits(c);
    }
    encode_params(enc, &wq.params);
}

fn decode_query(dec: &mut Dec<'_>) -> NetResult<WireQuery> {
    let norm = dec.f32_bits("query.norm")?;
    let coeff_count = dec.count(4, "query.coeff_count")?;
    let mut coeffs = Vec::with_capacity(coeff_count);
    for _ in 0..coeff_count {
        coeffs.push(dec.f32_bits("query.coeff")?);
    }
    let params = decode_params(dec)?;
    Ok(WireQuery { coeffs, norm, params })
}

fn encode_result(enc: &mut Enc, result: &SearchResult) {
    enc.u32(result.neighbors.len() as u32);
    for n in &result.neighbors {
        enc.u64(n.index as u64);
        enc.u32(n.distance.to_bits());
    }
    for word in stats_to_words(&result.stats) {
        enc.u64(word);
    }
}

fn decode_result(dec: &mut Dec<'_>) -> NetResult<SearchResult> {
    let neighbor_count = dec.count(12, "reply.neighbor_count")?;
    let mut neighbors = Vec::with_capacity(neighbor_count);
    for _ in 0..neighbor_count {
        let index = dec.u64("reply.neighbor.index")? as usize;
        let distance = f32::from_bits(dec.u32("reply.neighbor.distance")?);
        neighbors.push(Neighbor { index, distance });
    }
    let mut words = [0u64; STAT_FIELDS];
    for word in &mut words {
        *word = dec.u64("reply.stats")?;
    }
    Ok(SearchResult { neighbors, stats: stats_from_words(words) })
}

const STAT_FIELDS: usize = 13;

fn stats_to_words(stats: &SearchStats) -> [u64; STAT_FIELDS] {
    [
        stats.inner_products,
        stats.nodes_visited,
        stats.leaves_visited,
        stats.candidates_verified,
        stats.pruned_subtrees,
        stats.pruned_by_ball_bound,
        stats.pruned_by_cone_bound,
        stats.buckets_probed,
        stats.time_bounds_ns,
        stats.time_verify_ns,
        stats.time_lookup_ns,
        stats.time_merge_ns,
        stats.time_total_ns,
    ]
}

fn stats_from_words(w: [u64; STAT_FIELDS]) -> SearchStats {
    SearchStats {
        inner_products: w[0],
        nodes_visited: w[1],
        leaves_visited: w[2],
        candidates_verified: w[3],
        pruned_subtrees: w[4],
        pruned_by_ball_bound: w[5],
        pruned_by_cone_bound: w[6],
        buckets_probed: w[7],
        time_bounds_ns: w[8],
        time_verify_ns: w[9],
        time_lookup_ns: w[10],
        time_merge_ns: w[11],
        time_total_ns: w[12],
    }
}

impl Message {
    const TAG_HELLO: u8 = 1;
    const TAG_HELLO_OK: u8 = 2;
    const TAG_SHARD_QUERY: u8 = 3;
    const TAG_SHARD_REPLY: u8 = 4;
    const TAG_ERROR: u8 = 5;
    const TAG_PING: u8 = 6;
    const TAG_PONG: u8 = 7;
    const TAG_FRONT_QUERY: u8 = 8;
    const TAG_FRONT_REPLY: u8 = 9;
    const TAG_FRONT_ERROR: u8 = 10;
    const TAG_METRICS_REQUEST: u8 = 11;
    const TAG_METRICS_REPLY: u8 = 12;
    const TAG_RELOAD: u8 = 13;
    const TAG_RELOAD_OK: u8 = 14;

    /// Encodes this message as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Enc(Vec::with_capacity(64));
        match self {
            Message::Hello { version } => {
                enc.u8(Self::TAG_HELLO);
                enc.u16(*version);
            }
            Message::HelloOk { version, shard_count, dim, total_len } => {
                enc.u8(Self::TAG_HELLO_OK);
                enc.u16(*version);
                enc.u32(*shard_count);
                enc.u32(*dim);
                enc.u64(*total_len);
            }
            Message::ShardQuery { shard, queries } => {
                enc.u8(Self::TAG_SHARD_QUERY);
                enc.u32(*shard);
                enc.u32(queries.len() as u32);
                for wq in queries {
                    encode_query(&mut enc, wq);
                }
            }
            Message::ShardReply { shard, answers } => {
                enc.u8(Self::TAG_SHARD_REPLY);
                enc.u32(*shard);
                enc.u32(answers.len() as u32);
                for answer in answers {
                    match answer {
                        None => enc.u8(0),
                        Some(result) => {
                            enc.u8(1);
                            encode_result(&mut enc, result);
                        }
                    }
                }
            }
            Message::ErrorReply { code, message } => {
                enc.u8(Self::TAG_ERROR);
                enc.u8(code.to_wire());
                enc.str(message);
            }
            Message::Ping { nonce } => {
                enc.u8(Self::TAG_PING);
                enc.u64(*nonce);
            }
            Message::Pong { nonce } => {
                enc.u8(Self::TAG_PONG);
                enc.u64(*nonce);
            }
            Message::FrontQuery { id, index, deadline_ms, query } => {
                enc.u8(Self::TAG_FRONT_QUERY);
                enc.u64(*id);
                enc.str(index);
                enc.u64(*deadline_ms);
                encode_query(&mut enc, query);
            }
            Message::FrontReply { id, result } => {
                enc.u8(Self::TAG_FRONT_REPLY);
                enc.u64(*id);
                encode_result(&mut enc, result);
            }
            Message::FrontError { id, code, message } => {
                enc.u8(Self::TAG_FRONT_ERROR);
                enc.u64(*id);
                enc.u8(code.to_wire());
                enc.str(message);
            }
            Message::MetricsRequest { id } => {
                enc.u8(Self::TAG_METRICS_REQUEST);
                enc.u64(*id);
            }
            Message::MetricsReply { id, text } => {
                enc.u8(Self::TAG_METRICS_REPLY);
                enc.u64(*id);
                enc.str(text);
            }
            Message::Reload { id } => {
                enc.u8(Self::TAG_RELOAD);
                enc.u64(*id);
            }
            Message::ReloadOk { id, entries } => {
                enc.u8(Self::TAG_RELOAD_OK);
                enc.u64(*id);
                enc.u32(*entries);
            }
        }
        enc.0
    }

    /// Decodes a frame payload. Malformed input yields a typed error, never a panic
    /// or an oversized allocation.
    pub fn decode(payload: &[u8]) -> NetResult<Self> {
        let mut dec = Dec::new(payload);
        let tag = dec.u8("message tag")?;
        let message = match tag {
            Self::TAG_HELLO => Message::Hello { version: dec.u16("hello.version")? },
            Self::TAG_HELLO_OK => Message::HelloOk {
                version: dec.u16("hello_ok.version")?,
                shard_count: dec.u32("hello_ok.shard_count")?,
                dim: dec.u32("hello_ok.dim")?,
                total_len: dec.u64("hello_ok.total_len")?,
            },
            Self::TAG_SHARD_QUERY => {
                let shard = dec.u32("query.shard")?;
                let count = dec.count(8, "query.count")?;
                let mut queries = Vec::with_capacity(count);
                for _ in 0..count {
                    queries.push(decode_query(&mut dec)?);
                }
                Message::ShardQuery { shard, queries }
            }
            Self::TAG_SHARD_REPLY => {
                let shard = dec.u32("reply.shard")?;
                let count = dec.count(1, "reply.count")?;
                let mut answers = Vec::with_capacity(count);
                for _ in 0..count {
                    if dec.u8("reply.present")? == 0 {
                        answers.push(None);
                        continue;
                    }
                    answers.push(Some(decode_result(&mut dec)?));
                }
                Message::ShardReply { shard, answers }
            }
            Self::TAG_ERROR => {
                let raw = dec.u8("error.code")?;
                let code = ErrorCode::from_wire(raw).ok_or_else(|| NetError::Malformed {
                    context: format!("error.code: unknown code {raw}"),
                })?;
                Message::ErrorReply { code, message: dec.str("error.message")? }
            }
            Self::TAG_PING => Message::Ping { nonce: dec.u64("ping.nonce")? },
            Self::TAG_PONG => Message::Pong { nonce: dec.u64("pong.nonce")? },
            Self::TAG_FRONT_QUERY => {
                let id = dec.u64("front.id")?;
                let index = dec.str("front.index")?;
                let deadline_ms = dec.u64("front.deadline_ms")?;
                let query = decode_query(&mut dec)?;
                Message::FrontQuery { id, index, deadline_ms, query }
            }
            Self::TAG_FRONT_REPLY => {
                let id = dec.u64("front.id")?;
                Message::FrontReply { id, result: decode_result(&mut dec)? }
            }
            Self::TAG_FRONT_ERROR => {
                let id = dec.u64("front.id")?;
                let raw = dec.u8("front.error.code")?;
                let code = ErrorCode::from_wire(raw).ok_or_else(|| NetError::Malformed {
                    context: format!("front.error.code: unknown code {raw}"),
                })?;
                Message::FrontError { id, code, message: dec.str("front.error.message")? }
            }
            Self::TAG_METRICS_REQUEST => Message::MetricsRequest { id: dec.u64("metrics.id")? },
            Self::TAG_METRICS_REPLY => {
                let id = dec.u64("metrics.id")?;
                Message::MetricsReply { id, text: dec.str("metrics.text")? }
            }
            Self::TAG_RELOAD => Message::Reload { id: dec.u64("reload.id")? },
            Self::TAG_RELOAD_OK => {
                let id = dec.u64("reload.id")?;
                Message::ReloadOk { id, entries: dec.u32("reload.entries")? }
            }
            other => {
                return Err(NetError::Malformed { context: format!("unknown message tag {other}") })
            }
        };
        dec.finish("message")?;
        Ok(message)
    }
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

const HEADER_LEN: usize = 12;

/// Encodes `message` and writes it as one frame. `site` names the fault-injection
/// point (`client.send` / `server.send`); see the module docs for what each injected
/// kind does here.
pub fn write_frame<W: Write>(writer: &mut W, message: &Message, site: &str) -> NetResult<()> {
    let mut payload = message.encode();
    let crc = crc32(&payload);
    let mut truncate_to = None;
    match fault::check(site) {
        Some(FaultKind::Disconnect) => {
            return Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "injected disconnect before frame",
            )));
        }
        Some(FaultKind::Truncate) => truncate_to = Some(HEADER_LEN + payload.len() / 2),
        Some(FaultKind::Corrupt) => {
            // Flip a payload bit AFTER the CRC was computed: the frame stays
            // well-formed at the length level, and the receiver's checksum is the
            // only thing standing between this and a wrong answer.
            if let Some(byte) = payload.last_mut() {
                *byte ^= 0x40;
            }
        }
        Some(FaultKind::Slow(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        Some(FaultKind::Refuse) | Some(FaultKind::Eintr) | None => {}
    }

    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(&payload);
    if let Some(cut) = truncate_to {
        frame.truncate(cut);
        retry_interrupted(site, || writer.write_all(&frame).and_then(|()| writer.flush()))?;
        crate::metrics::add_bytes_sent(site, frame.len() as u64);
        return Err(NetError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionAborted,
            "injected truncation mid-frame",
        )));
    }
    retry_interrupted(site, || writer.write_all(&frame).and_then(|()| writer.flush()))?;
    crate::metrics::add_bytes_sent(site, frame.len() as u64);
    Ok(())
}

/// Reads one frame and decodes its message. `site` names the fault-injection point
/// (`client.recv` / `server.recv`). A clean EOF *before any header byte* returns
/// `Ok(None)` — the peer simply closed the connection between messages.
pub fn read_frame<R: Read>(reader: &mut R, site: &str) -> NetResult<Option<Message>> {
    let mut corrupt_payload = false;
    match fault::check(site) {
        Some(FaultKind::Disconnect) => return Err(NetError::Disconnected),
        Some(FaultKind::Truncate) => {
            // Consume and discard a header's worth of bytes, then report the stream
            // dead: downstream sees a connection that died mid-frame.
            let mut header = [0u8; HEADER_LEN];
            let _ = reader.read(&mut header);
            return Err(NetError::Disconnected);
        }
        Some(FaultKind::Corrupt) => corrupt_payload = true,
        Some(FaultKind::Slow(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        Some(FaultKind::Refuse) | Some(FaultKind::Eintr) | None => {}
    }

    let mut header = [0u8; HEADER_LEN];
    match read_exact_retry(reader, &mut header, site) {
        Ok(()) => {}
        Err(ReadError::CleanEof) => return Ok(None),
        Err(ReadError::Net(e)) => return Err(e),
    }
    if header[..4] != MAGIC {
        return Err(NetError::Malformed { context: "bad frame magic".into() });
    }
    let len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as u64;
    let expected_crc = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(NetError::FrameTooLarge { declared: len });
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_retry(reader, &mut payload, site) {
        Ok(()) => {}
        // EOF inside the payload is a mid-frame disconnect, not a clean close.
        Err(ReadError::CleanEof) => return Err(NetError::Disconnected),
        Err(ReadError::Net(e)) => return Err(e),
    }
    crate::metrics::add_bytes_recv(site, (HEADER_LEN as u64) + len);
    if corrupt_payload {
        if let Some(byte) = payload.last_mut() {
            *byte ^= 0x40;
        }
    }
    let actual_crc = crc32(&payload);
    if actual_crc != expected_crc {
        return Err(NetError::Corrupt { expected_crc, actual_crc });
    }
    Message::decode(&payload).map(Some)
}

/// Encodes `message` as one complete frame (header + payload) into a byte vector,
/// for callers that manage their own buffered nonblocking writes (the front-end
/// event loop). No fault site fires here — the caller instruments its own write.
pub fn frame_bytes(message: &Message) -> Vec<u8> {
    let payload = message.encode();
    let crc = crc32(&payload);
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Attempts to decode one frame from the front of `buf` — the incremental
/// counterpart of [`read_frame`] for nonblocking reads that accumulate bytes in a
/// per-connection buffer.
///
/// Returns `Ok(None)` when `buf` does not yet hold a complete frame (read more),
/// `Ok(Some((message, consumed)))` when a frame decoded (drain `consumed` bytes),
/// and the same typed errors as [`read_frame`] for hostile input: bad magic,
/// over-cap length (rejected before the payload is even buffered), CRC mismatch,
/// or a payload that does not decode. Callers must drop the connection on error —
/// the stream position is no longer trustworthy.
pub fn frame_from_buf(buf: &[u8]) -> NetResult<Option<(Message, usize)>> {
    if buf.len() < HEADER_LEN {
        // Reject bad magic as soon as the first bytes arrive, not only once a full
        // header is buffered — a peer speaking another protocol is cut off early.
        if !MAGIC.starts_with(&buf[..buf.len().min(4)]) {
            return Err(NetError::Malformed { context: "bad frame magic".into() });
        }
        return Ok(None);
    }
    if buf[..4] != MAGIC {
        return Err(NetError::Malformed { context: "bad frame magic".into() });
    }
    let len = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as u64;
    if len > MAX_FRAME_BYTES {
        return Err(NetError::FrameTooLarge { declared: len });
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let expected_crc = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
    let payload = &buf[HEADER_LEN..total];
    let actual_crc = crc32(payload);
    if actual_crc != expected_crc {
        return Err(NetError::Corrupt { expected_crc, actual_crc });
    }
    Message::decode(payload).map(|message| Some((message, total)))
}

enum ReadError {
    /// EOF before the first byte of this read.
    CleanEof,
    Net(NetError),
}

/// `read_exact` with EINTR absorption that distinguishes "EOF before anything" from
/// "EOF mid-buffer".
fn read_exact_retry<R: Read>(reader: &mut R, buf: &mut [u8], site: &str) -> Result<(), ReadError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let n = retry_interrupted(site, || reader.read(&mut buf[filled..]))
            .map_err(|e| ReadError::Net(e.into()))?;
        if n == 0 {
            return Err(if filled == 0 {
                ReadError::CleanEof
            } else {
                ReadError::Net(NetError::Disconnected)
            });
        }
        filled += n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_core::SearchParams;

    fn round_trip(message: Message) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &message, "test.send").unwrap();
        let decoded = read_frame(&mut buf.as_slice(), "test.recv").unwrap().unwrap();
        assert_eq!(decoded, message);
    }

    #[test]
    fn every_message_round_trips() {
        round_trip(Message::Hello { version: 1 });
        round_trip(Message::HelloOk { version: 1, shard_count: 4, dim: 11, total_len: 9001 });
        round_trip(Message::Ping { nonce: 7 });
        round_trip(Message::Pong { nonce: 7 });
        round_trip(Message::ErrorReply {
            code: ErrorCode::UnknownShard,
            message: "shard 9 not served".into(),
        });

        let query = HyperplaneQuery::from_normal_and_bias(&[3.0, 4.0], -1.0).unwrap();
        round_trip(Message::ShardQuery {
            shard: 2,
            queries: vec![
                WireQuery::from_query(&query, &SearchParams::exact(5)),
                WireQuery::from_query(&query, &SearchParams::approximate(3, 100)),
            ],
        });

        round_trip(Message::ShardReply {
            shard: 2,
            answers: vec![
                None,
                Some(SearchResult {
                    neighbors: vec![Neighbor { index: 42, distance: 0.25 }],
                    stats: SearchStats { candidates_verified: 9, ..Default::default() },
                }),
            ],
        });
    }

    #[test]
    fn front_messages_round_trip() {
        let query = HyperplaneQuery::from_normal_and_bias(&[3.0, 4.0], -1.0).unwrap();
        round_trip(Message::FrontQuery {
            id: 99,
            index: "serving".into(),
            deadline_ms: 250,
            query: WireQuery::from_query(&query, &SearchParams::exact(5)),
        });
        round_trip(Message::FrontReply {
            id: 99,
            result: SearchResult {
                neighbors: vec![Neighbor { index: 3, distance: 1.5 }],
                stats: SearchStats { nodes_visited: 4, ..Default::default() },
            },
        });
        round_trip(Message::FrontError {
            id: 99,
            code: ErrorCode::Overloaded,
            message: "queue full".into(),
        });
        round_trip(Message::FrontError {
            id: 100,
            code: ErrorCode::DeadlineExceeded,
            message: "shed after 250ms".into(),
        });
        round_trip(Message::MetricsRequest { id: 1 });
        round_trip(Message::MetricsReply { id: 1, text: "# HELP …\n".into() });
        round_trip(Message::Reload { id: 2 });
        round_trip(Message::ReloadOk { id: 2, entries: 3 });
    }

    #[test]
    fn incremental_decode_matches_blocking_decode_at_every_split() {
        let query = HyperplaneQuery::from_normal_and_bias(&[1.0, -2.0], 0.5).unwrap();
        let message = Message::FrontQuery {
            id: 7,
            index: "idx".into(),
            deadline_ms: 0,
            query: WireQuery::from_query(&query, &SearchParams::exact(3)),
        };
        let frame = frame_bytes(&message);
        // Every proper prefix is "incomplete", never an error or a wrong decode.
        for cut in 1..frame.len() {
            assert!(
                frame_from_buf(&frame[..cut]).unwrap().is_none(),
                "prefix {cut} must be incomplete"
            );
        }
        // The exact frame decodes and consumes exactly its own bytes — even with a
        // second frame's bytes queued behind it.
        let mut two = frame.clone();
        two.extend_from_slice(&frame_bytes(&Message::Ping { nonce: 8 }));
        let (decoded, consumed) = frame_from_buf(&two).unwrap().unwrap();
        assert_eq!(decoded, message);
        assert_eq!(consumed, frame.len());
        let (second, rest) = frame_from_buf(&two[consumed..]).unwrap().unwrap();
        assert_eq!(second, Message::Ping { nonce: 8 });
        assert_eq!(rest, two.len() - consumed);
    }

    #[test]
    fn incremental_decode_rejects_hostile_buffers() {
        // Bad magic is rejected from the very first byte.
        assert!(matches!(frame_from_buf(b"XYZ"), Err(NetError::Malformed { .. })));
        // An over-cap length claim is rejected before any payload is buffered.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&MAGIC);
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        hostile.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(frame_from_buf(&hostile), Err(NetError::FrameTooLarge { .. })));
        // A flipped payload bit fails the CRC.
        let mut frame = frame_bytes(&Message::Ping { nonce: 3 });
        *frame.last_mut().unwrap() ^= 0x10;
        assert!(matches!(frame_from_buf(&frame), Err(NetError::Corrupt { .. })));
        // An empty buffer just wants more bytes.
        assert!(frame_from_buf(&[]).unwrap().is_none());
    }

    #[test]
    fn queries_survive_transport_bit_exactly() {
        let query = HyperplaneQuery::from_normal_and_bias(&[0.3, -1.7, 2.2], 0.9).unwrap();
        let wire = WireQuery::from_query(&query, &SearchParams::exact(1));
        let rebuilt = wire.to_query().unwrap();
        assert_eq!(query, rebuilt);
        for (a, b) in query.coeffs().iter().zip(rebuilt.coeffs()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(query.norm().to_bits(), rebuilt.norm().to_bits());
    }

    #[test]
    fn corrupt_payload_is_a_typed_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::Ping { nonce: 1 }, "test.send").unwrap();
        *buf.last_mut().unwrap() ^= 0x01;
        match read_frame(&mut buf.as_slice(), "test.recv") {
            Err(NetError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_is_disconnected_not_a_hang_or_panic() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Message::Ping { nonce: 1 }, "test.send").unwrap();
        for cut in 1..buf.len() {
            match read_frame(&mut &buf[..cut], "test.recv") {
                Err(NetError::Disconnected) => {}
                other => panic!("cut at {cut}: expected Disconnected, got {other:?}"),
            }
        }
        // A clean close between frames is not an error.
        assert!(read_frame(&mut &buf[..0], "test.recv").unwrap().is_none());
    }

    #[test]
    fn hostile_length_is_rejected_before_allocating() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&0u32.to_le_bytes());
        match read_frame(&mut frame.as_slice(), "test.recv") {
            Err(NetError::FrameTooLarge { declared }) => {
                assert_eq!(declared, u64::from(u32::MAX));
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }

        let mut bad_magic = frame.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad_magic.as_slice(), "test.recv"),
            Err(NetError::Malformed { .. })
        ));
    }

    #[test]
    fn malformed_payloads_never_panic() {
        // Every prefix of a valid payload must fail with a typed error, not panic.
        let query = HyperplaneQuery::from_normal_and_bias(&[1.0, 1.0], 0.0).unwrap();
        let payload = Message::ShardQuery {
            shard: 0,
            queries: vec![WireQuery::from_query(&query, &SearchParams::exact(2))],
        }
        .encode();
        for cut in 0..payload.len() {
            assert!(Message::decode(&payload[..cut]).is_err(), "prefix {cut} must not decode");
        }
        // Trailing garbage is also rejected.
        let mut padded = payload.clone();
        padded.push(0);
        assert!(Message::decode(&padded).is_err());
        // A hostile count field cannot drive a huge allocation.
        let mut hostile = Vec::new();
        hostile.push(4u8); // ShardReply tag
        hostile.extend_from_slice(&0u32.to_le_bytes());
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Message::decode(&hostile).is_err());
    }
}
