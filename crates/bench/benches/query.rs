//! Criterion benchmarks of single-query latency: exact and budgeted top-10 search for
//! every index, plus the linear-scan baseline (the per-query dimension of Figure 5).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use p2h_balltree::BallTreeBuilder;
use p2h_bctree::{BcTreeBuilder, BcTreeVariant};
use p2h_core::{LinearScan, P2hIndex, SearchParams};
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_hash::{FhIndex, FhParams, NhIndex, NhParams};

fn bench_queries(c: &mut Criterion) {
    let points = SyntheticDataset::new(
        "query-bench",
        20_000,
        96,
        DataDistribution::GaussianClusters { clusters: 16, std_dev: 1.5 },
        9,
    )
    .generate()
    .unwrap();
    let queries = generate_queries(&points, 16, QueryDistribution::DataDifference, 11).unwrap();

    let scan = LinearScan::new(points.clone());
    let ball = BallTreeBuilder::new(100).build(&points).unwrap();
    let bc = BcTreeBuilder::new(100).build(&points).unwrap();
    let nh = NhIndex::build(&points, NhParams::new(2, 16)).unwrap();
    let fh = FhIndex::build(&points, FhParams::new(2, 16, 4)).unwrap();

    let exact = SearchParams::exact(10);
    let budgeted = SearchParams::approximate(10, 2_000);

    let mut group = c.benchmark_group("query_n20k_d96_k10");
    let mut qi = 0usize;
    let mut next_query = || {
        qi = (qi + 1) % queries.len();
        &queries[qi]
    };

    group.bench_function("linear_scan_exact", |b| {
        b.iter(|| scan.search(black_box(next_query()), &exact))
    });
    group.bench_function("ball_tree_exact", |b| {
        b.iter(|| ball.search(black_box(next_query()), &exact))
    });
    group
        .bench_function("bc_tree_exact", |b| b.iter(|| bc.search(black_box(next_query()), &exact)));
    group.bench_function("bc_tree_wo_bounds_exact", |b| {
        let view = bc.with_variant(BcTreeVariant::WithoutBoth);
        b.iter(|| view.search(black_box(next_query()), &exact))
    });
    group.bench_function("ball_tree_budget_2000", |b| {
        b.iter(|| ball.search(black_box(next_query()), &budgeted))
    });
    group.bench_function("bc_tree_budget_2000", |b| {
        b.iter(|| bc.search(black_box(next_query()), &budgeted))
    });
    group.bench_function("nh_budget_2000", |b| {
        b.iter(|| nh.search(black_box(next_query()), &budgeted))
    });
    group.bench_function("fh_budget_2000", |b| {
        b.iter(|| fh.search(black_box(next_query()), &budgeted))
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
