//! Criterion benchmarks of index construction (the indexing-time dimension of
//! Table III): Ball-Tree vs BC-Tree vs NH vs FH on a fixed synthetic data set.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use p2h_balltree::BallTreeBuilder;
use p2h_bctree::BcTreeBuilder;
use p2h_data::{DataDistribution, SyntheticDataset};
use p2h_hash::{FhIndex, FhParams, NhIndex, NhParams};

fn bench_construction(c: &mut Criterion) {
    let points = SyntheticDataset::new(
        "construction-bench",
        10_000,
        64,
        DataDistribution::GaussianClusters { clusters: 16, std_dev: 1.5 },
        5,
    )
    .generate()
    .unwrap();

    let mut group = c.benchmark_group("construction_n10k_d64");
    group.sample_size(10);

    group.bench_function("ball_tree_n0_100", |b| {
        b.iter_batched(
            || points.clone(),
            |ps| BallTreeBuilder::new(100).build(&ps).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("bc_tree_n0_100", |b| {
        b.iter_batched(
            || points.clone(),
            |ps| BcTreeBuilder::new(100).build(&ps).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("nh_lambda_1d_m8", |b| {
        b.iter_batched(
            || points.clone(),
            |ps| NhIndex::build(&ps, NhParams::new(1, 8)).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("fh_lambda_1d_m8", |b| {
        b.iter_batched(
            || points.clone(),
            |ps| FhIndex::build(&ps, FhParams::new(1, 8, 4)).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
