//! Criterion micro-benchmarks of the innermost kernels: the dense inner product that
//! dominates both lower-bound evaluation and candidate verification, the node-level ball
//! bound, the point-level cone bound, and the quadratic transform of NH/FH.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use p2h_balltree::bound::node_ball_bound;
use p2h_bctree::bounds::{point_ball_bound, point_cone_bound};
use p2h_core::distance;
use p2h_core::kernels;
use p2h_core::Scalar;
use p2h_hash::QuadraticTransform;

fn random_vector(dim: usize, rng: &mut StdRng) -> Vec<Scalar> {
    (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_inner_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("inner_product");
    let mut rng = StdRng::seed_from_u64(1);
    for dim in [64usize, 128, 512, 1024] {
        let a = random_vector(dim, &mut rng);
        let b = random_vector(dim, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |bench, _| {
            bench.iter(|| distance::dot(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_blocked_leaf_scan(c: &mut Criterion) {
    // One leaf-sized strip of rows, verified three ways: per-point scalar (the seed's
    // loop), per-point dispatched kernel, and the blocked kernel the leaf scans use.
    let mut group = c.benchmark_group("leaf_scan_100rows");
    let mut rng = StdRng::seed_from_u64(3);
    for dim in [64usize, 128, 960] {
        let rows = 100;
        let query = random_vector(dim, &mut rng);
        let data: Vec<Scalar> = (0..rows).flat_map(|_| random_vector(dim, &mut rng)).collect();
        let mut out = vec![0.0 as Scalar; rows];
        group.bench_with_input(BenchmarkId::new("scalar_per_point", dim), &dim, |bench, _| {
            bench.iter(|| {
                let mut acc = 0.0;
                for r in 0..rows {
                    acc += kernels::scalar::dot(black_box(&query), &data[r * dim..(r + 1) * dim])
                        .abs();
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("simd_per_point", dim), &dim, |bench, _| {
            bench.iter(|| {
                let mut acc = 0.0;
                for r in 0..rows {
                    acc += kernels::abs_dot(black_box(&query), &data[r * dim..(r + 1) * dim]);
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("simd_blocked", dim), &dim, |bench, _| {
            bench.iter(|| {
                kernels::abs_dot_block(black_box(&query), &data, dim, &mut out);
                out[0]
            })
        });
    }
    group.finish();
}

fn bench_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bounds");
    group.bench_function("node_ball_bound", |bench| {
        bench.iter(|| node_ball_bound(black_box(3.7), black_box(1.2), black_box(0.8)))
    });
    group.bench_function("point_ball_bound", |bench| {
        bench.iter(|| point_ball_bound(black_box(3.7), black_box(1.2), black_box(0.4)))
    });
    group.bench_function("point_cone_bound", |bench| {
        bench.iter(|| {
            point_cone_bound(black_box(1.1), black_box(0.6), black_box(2.0), black_box(0.9))
        })
    });
    group.finish();
}

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("quadratic_transform");
    let mut rng = StdRng::seed_from_u64(2);
    for (dim, factor) in [(128usize, 1usize), (128, 8)] {
        let x = random_vector(dim, &mut rng);
        let transform = QuadraticTransform::sampled(dim, factor * dim, 3);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{dim}_lambda{}d", factor)),
            &dim,
            |bench, _| bench.iter(|| transform.transform_data(black_box(&x))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_inner_product,
    bench_blocked_leaf_scan,
    bench_bounds,
    bench_transform
);
criterion_main!(benches);
