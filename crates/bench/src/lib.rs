//! # p2h-bench
//!
//! The benchmark harness that reproduces every table and figure of the paper's
//! evaluation (Section V). Each binary regenerates one artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table2_datasets` | Table II — data-set statistics |
//! | `table3_indexing` | Table III — indexing time and index size |
//! | `fig5_time_recall` | Figure 5 — query time vs recall (k = 10) |
//! | `fig6_time_k` | Figure 6 — query time vs k at ≈80% recall |
//! | `fig7_branch_pref` | Figure 7 — center vs lower-bound branch preference |
//! | `fig8_ablation` | Figure 8 — point-level bound ablation |
//! | `fig9_large_scale` | Figure 9 — large-scale data sets |
//! | `fig10_time_profile` | Figure 10 — query time profile |
//! | `fig11_leaf_size` | Figure 11 — impact of the leaf size N0 |
//!
//! All binaries accept `--scale <f>` (cardinality multiplier applied to the paper's data
//! set sizes), `--queries <n>`, `--k <n>`, `--datasets <substring[,substring]>` and
//! `--out <dir>`; results are printed as Markdown tables and written as CSV under the
//! output directory (default `results/`). The Criterion benches (`cargo bench`)
//! micro-benchmark the kernels, index construction, and single queries.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::path::{Path, PathBuf};

use p2h_core::{HyperplaneQuery, P2hIndex, PointSet};
use p2h_data::{generate_queries, DatasetEntry, GroundTruth, QueryDistribution};
use p2h_eval::{markdown_table, write_csv};

/// Shared command-line configuration of every benchmark binary.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Cardinality multiplier applied to the paper's data-set sizes (see
    /// [`p2h_data::paper_catalog`]).
    pub scale: f64,
    /// Number of hyperplane queries per data set (the paper uses 100).
    pub queries: usize,
    /// `k` of the top-k queries (the paper's default figure setting is 10).
    pub k: usize,
    /// Optional comma-separated list of data-set name substrings to run.
    pub datasets: Option<Vec<String>>,
    /// Output directory for the CSV reports.
    pub out_dir: PathBuf,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self { scale: 0.02, queries: 20, k: 10, datasets: None, out_dir: PathBuf::from("results") }
    }
}

impl BenchConfig {
    /// Parses the standard flags from `std::env::args`. Unknown flags abort with a
    /// usage message, so typos do not silently run a multi-minute benchmark with the
    /// wrong configuration.
    pub fn from_args() -> Self {
        let mut cfg = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();

        fn take(args: &[String], i: &mut usize, name: &str) -> String {
            *i += 1;
            args.get(*i).unwrap_or_else(|| panic!("missing value for {name}")).clone()
        }

        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    cfg.scale =
                        take(&args, &mut i, "--scale").parse().expect("--scale expects a float")
                }
                "--queries" => {
                    cfg.queries = take(&args, &mut i, "--queries")
                        .parse()
                        .expect("--queries expects an integer")
                }
                "--k" => {
                    cfg.k = take(&args, &mut i, "--k").parse().expect("--k expects an integer")
                }
                "--datasets" => {
                    cfg.datasets = Some(
                        take(&args, &mut i, "--datasets")
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .collect(),
                    )
                }
                "--out" => cfg.out_dir = PathBuf::from(take(&args, &mut i, "--out")),
                "--help" | "-h" => {
                    eprintln!(
                        "usage: <bench> [--scale F] [--queries N] [--k N] \
                         [--datasets a,b,...] [--out DIR]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag `{other}`; run with --help for usage"),
            }
            i += 1;
        }
        cfg
    }

    /// Whether a data set with this name is selected by the `--datasets` filter.
    pub fn selects(&self, name: &str) -> bool {
        match &self.datasets {
            None => true,
            Some(filters) => {
                filters.iter().any(|f| name.to_lowercase().contains(&f.to_lowercase()))
            }
        }
    }
}

/// A prepared workload: generated points, queries, and exact ground truth for one
/// catalog entry.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Data-set name (the paper's name for the real data set this stands in for).
    pub name: String,
    /// Raw dimensionality of the data set.
    pub raw_dim: usize,
    /// The augmented points.
    pub points: PointSet,
    /// The hyperplane queries.
    pub queries: Vec<HyperplaneQuery>,
    /// Exact top-k ground truth for `queries`.
    pub ground_truth: GroundTruth,
}

/// Generates the workload for one catalog entry: points, queries (data-difference
/// protocol, as in the paper), and exact ground truth.
pub fn prepare(entry: &DatasetEntry, cfg: &BenchConfig) -> Workload {
    let points = entry.dataset.generate().expect("synthetic generation");
    let queries = generate_queries(
        &points,
        cfg.queries,
        QueryDistribution::DataDifference,
        entry.dataset.seed ^ 0x5eed,
    )
    .expect("query generation");
    let ground_truth = GroundTruth::compute(&points, &queries, cfg.k, num_threads());
    Workload {
        name: entry.dataset.name.clone(),
        raw_dim: entry.dataset.raw_dim,
        points,
        queries,
        ground_truth,
    }
}

/// A ladder of candidate budgets expressed as fractions of the data-set size, used to
/// trace the recall/time curves. Always ends with the full data set (exact search).
pub fn budget_ladder(n: usize) -> Vec<usize> {
    let fractions = [0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0];
    let mut budgets: Vec<usize> =
        fractions.iter().map(|f| ((n as f64 * f) as usize).max(1)).collect();
    budgets.dedup();
    budgets
}

/// Number of worker threads to use for ground-truth computation.
pub fn num_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get())
}

/// Prints a Markdown table to stdout and writes the same rows as CSV under the output
/// directory.
pub fn emit(cfg: &BenchConfig, file_stem: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("{}", markdown_table(headers, rows));
    let path: PathBuf = cfg.out_dir.join(format!("{file_stem}.csv"));
    if let Err(err) = write_csv(Path::new(&path), headers, rows) {
        eprintln!("warning: could not write {}: {err}", path.display());
    } else {
        println!("(written to {})\n", path.display());
    }
}

/// Formats a boxed index set (label + trait object) commonly used by the figure benches.
pub type MethodSet = Vec<(String, Box<dyn P2hIndex>)>;

/// Shared fixtures of the serving-layer benches (`snapshot_bench`, `shard_bench`):
/// one dataset/query recipe and one bit-level answer comparison, so the two binaries
/// measure the same workload instead of each re-declaring it.
pub mod serving {
    use p2h_core::{HyperplaneQuery, PointSet, SearchResult};
    use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};

    /// The clustered dataset both serving benches measure against (10 Gaussian
    /// clusters, σ = 1.5, fixed seed — reproducible across runs and binaries).
    pub fn clustered_dataset(name: &str, n: usize, dim: usize) -> PointSet {
        SyntheticDataset::new(
            name,
            n,
            dim,
            DataDistribution::GaussianClusters { clusters: 10, std_dev: 1.5 },
            7,
        )
        .generate()
        .expect("synthetic generation")
    }

    /// The data-difference query batch both serving benches use (fixed seed).
    pub fn serving_queries(points: &PointSet, count: usize) -> Vec<HyperplaneQuery> {
        generate_queries(points, count, QueryDistribution::DataDifference, 13)
            .expect("query generation")
    }

    /// Bit-level comparison of two answer sets (ids and distance bits).
    pub fn bit_identical(a: &[SearchResult], b: &[SearchResult]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.neighbors.len() == y.neighbors.len()
                    && x.neighbors.iter().zip(&y.neighbors).all(|(m, n)| {
                        m.index == n.index && m.distance.to_bits() == n.distance.to_bits()
                    })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2h_data::paper_catalog;

    #[test]
    fn default_config_and_filters() {
        let cfg = BenchConfig::default();
        assert!(cfg.selects("Sift"));
        let cfg = BenchConfig { datasets: Some(vec!["sift".into(), "gist".into()]), ..cfg };
        assert!(cfg.selects("Sift"));
        assert!(cfg.selects("Gist"));
        assert!(!cfg.selects("Music"));
    }

    #[test]
    fn budget_ladder_is_increasing_and_ends_at_n() {
        let ladder = budget_ladder(10_000);
        assert!(ladder.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*ladder.last().unwrap(), 10_000);
        assert!(ladder[0] >= 1);
        // Tiny data sets do not produce duplicate budgets.
        let tiny = budget_ladder(10);
        assert!(tiny.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn prepare_builds_consistent_workload() {
        let mut entry = paper_catalog(0.02).remove(2); // Sift stand-in
        entry.dataset.n = 1_000;
        let cfg = BenchConfig { queries: 5, k: 10, ..Default::default() };
        let workload = prepare(&entry, &cfg);
        assert_eq!(workload.name, "Sift");
        assert_eq!(workload.points.len(), 1_000);
        assert_eq!(workload.queries.len(), 5);
        assert_eq!(workload.ground_truth.len(), 5);
        assert_eq!(workload.ground_truth.k(), 10);
        assert_eq!(workload.raw_dim, 128);
    }
}
