//! Figure 6: query time vs k at about 80% recall for BC-Tree, Ball-Tree, FH and NH.
//!
//! For each k ∈ {1, 10, 20, 40} and each method, the smallest candidate budget reaching
//! ≈80% mean recall is selected and its average query time reported.

use p2h_balltree::BallTreeBuilder;
use p2h_bctree::BcTreeBuilder;
use p2h_bench::{budget_ladder, emit, prepare, BenchConfig};
use p2h_core::P2hIndex;
use p2h_data::{paper_catalog, GroundTruth};
use p2h_eval::budget_for_recall;
use p2h_hash::{FhIndex, FhParams, NhIndex, NhParams};

const K_VALUES: [usize; 4] = [1, 10, 20, 40];
const TARGET_RECALL: f64 = 0.8;

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "# Figure 6 — query time vs k at ≈{:.0}% recall (scale = {})\n",
        TARGET_RECALL * 100.0,
        cfg.scale
    );

    let mut rows = Vec::new();
    for entry in paper_catalog(cfg.scale) {
        if !cfg.selects(&entry.dataset.name) {
            continue;
        }
        let workload = prepare(&entry, &cfg);
        eprintln!("[fig6] {}: n = {}", workload.name, workload.points.len());

        let ball = BallTreeBuilder::new(100).build(&workload.points).unwrap();
        let bc = BcTreeBuilder::new(100).build(&workload.points).unwrap();
        let nh = NhIndex::build(&workload.points, NhParams::new(4, 16)).unwrap();
        let fh = FhIndex::build(&workload.points, FhParams::new(4, 16, 4)).unwrap();
        let methods: [(&dyn P2hIndex, &str); 4] =
            [(&bc, "BC-Tree"), (&ball, "Ball-Tree"), (&fh, "FH"), (&nh, "NH")];
        let budgets = budget_ladder(workload.points.len());

        for k in K_VALUES {
            // Ground truth depends on k.
            let gt = GroundTruth::compute(
                &workload.points,
                &workload.queries,
                k,
                p2h_bench::num_threads(),
            );
            for (index, label) in methods {
                let eval = budget_for_recall(
                    index,
                    label,
                    &workload.queries,
                    &gt,
                    k,
                    TARGET_RECALL,
                    &budgets,
                )
                .expect("non-empty budget ladder");
                rows.push(vec![
                    workload.name.clone(),
                    label.to_string(),
                    k.to_string(),
                    format!("{:.2}", eval.recall_pct()),
                    format!("{:.4}", eval.avg_query_time_ms),
                ]);
            }
        }
    }

    emit(&cfg, "fig6_time_k", &["Data Set", "Method", "k", "Recall (%)", "Query Time (ms)"], &rows);
}
