//! Figure 11: the impact of the maximum leaf size N0 on BC-Tree's query-time/recall
//! trade-off (the parameter-setting guidance experiment of the paper).

use p2h_bctree::BcTreeBuilder;
use p2h_bench::{budget_ladder, emit, prepare, BenchConfig};
use p2h_data::paper_catalog;
use p2h_eval::sweep_budgets;

const LEAF_SIZES: [usize; 7] = [100, 200, 500, 1_000, 2_000, 5_000, 10_000];

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "# Figure 11 — impact of the leaf size N0 on BC-Tree (scale = {}, k = {})\n",
        cfg.scale, cfg.k
    );

    let mut rows = Vec::new();
    for entry in paper_catalog(cfg.scale) {
        if !cfg.selects(&entry.dataset.name) {
            continue;
        }
        let workload = prepare(&entry, &cfg);
        eprintln!("[fig11] {}: n = {}", workload.name, workload.points.len());
        let budgets = budget_ladder(workload.points.len());

        for leaf_size in LEAF_SIZES {
            if leaf_size >= workload.points.len() {
                continue;
            }
            let bc = BcTreeBuilder::new(leaf_size).build(&workload.points).unwrap();
            for eval in sweep_budgets(
                &bc,
                &format!("BC-Tree (N0={leaf_size})"),
                &workload.queries,
                &workload.ground_truth,
                cfg.k,
                &budgets,
            ) {
                rows.push(vec![
                    workload.name.clone(),
                    leaf_size.to_string(),
                    eval.candidate_limit.unwrap_or(0).to_string(),
                    format!("{:.2}", eval.recall_pct()),
                    format!("{:.4}", eval.avg_query_time_ms),
                ]);
            }
        }
    }

    emit(
        &cfg,
        "fig11_leaf_size",
        &["Data Set", "N0", "Budget", "Recall (%)", "Query Time (ms)"],
        &rows,
    );
}
