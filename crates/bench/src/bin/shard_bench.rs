//! Sharded serving: build time and query throughput as a function of shard count,
//! plus an end-to-end build → shard → snapshot → reload → verify cycle.
//!
//! For every configured shard count the binary builds a `ShardedIndex` (BC-Tree per
//! shard), measures the build time, serves a query batch through both the
//! query-parallel path (`BatchExecutor` over the `P2hIndex` trait) and the
//! shard-parallel path (`ShardedExecutor`), and verifies that both are **bit-identical**
//! to an unsharded reference. It then snapshots the sharded index as a `p2h-store`
//! shard group, cold-loads it back, and verifies the reloaded answers again. With
//! `--check` any mismatch (or store error) exits non-zero — this is the step CI runs
//! on the forced-scalar kernel path.
//!
//! ```text
//! cargo run --release --bin shard_bench -- [--n N] [--dim D] [--queries Q] [--k K]
//!     [--shards LIST] [--threads T] [--check] [--out DIR]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use p2h_bench::serving::{bit_identical, clustered_dataset, serving_queries};
use p2h_core::{kernels, HyperplaneQuery, LinearScan, PointSet, SearchParams};
use p2h_engine::{
    BatchExecutor, BatchRequest, Engine, Partitioner, ShardIndexKind, ShardedExecutor,
    ShardedIndex, ShardedIndexBuilder,
};
use p2h_eval::{markdown_table, write_csv};
use p2h_store::Store;

struct Config {
    n: usize,
    dim: usize,
    queries: usize,
    k: usize,
    shards: Vec<usize>,
    threads: usize,
    check: bool,
    out_dir: PathBuf,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            n: 200_000,
            dim: 64,
            queries: 256,
            k: 10,
            shards: vec![1, 2, 4, 8],
            threads: 0,
            check: false,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();

        fn take(args: &[String], i: &mut usize, name: &str) -> String {
            *i += 1;
            args.get(*i).unwrap_or_else(|| panic!("missing value for {name}")).clone()
        }

        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--n" => cfg.n = take(&args, &mut i, "--n").parse().expect("--n: integer"),
                "--dim" => cfg.dim = take(&args, &mut i, "--dim").parse().expect("--dim: integer"),
                "--queries" => {
                    cfg.queries =
                        take(&args, &mut i, "--queries").parse().expect("--queries: integer")
                }
                "--k" => cfg.k = take(&args, &mut i, "--k").parse().expect("--k: integer"),
                "--shards" => {
                    cfg.shards = take(&args, &mut i, "--shards")
                        .split(',')
                        .map(|s| s.trim().parse().expect("--shards: comma-separated integers"))
                        .collect()
                }
                "--threads" => {
                    cfg.threads =
                        take(&args, &mut i, "--threads").parse().expect("--threads: integer")
                }
                "--check" => cfg.check = true,
                "--out" => cfg.out_dir = PathBuf::from(take(&args, &mut i, "--out")),
                other => {
                    eprintln!(
                        "unknown flag `{other}`; flags: --n --dim --queries --k --shards \
                         --threads --check --out"
                    );
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        cfg
    }
}

struct Row {
    shards: usize,
    build_s: f64,
    batch_qps: f64,
    fanout_qps: f64,
    fanout_p99_ms: f64,
    reload_s: f64,
    identical: bool,
}

fn bench_shard_count(
    shards: usize,
    points: &PointSet,
    request: &BatchRequest,
    reference: &[p2h_core::SearchResult],
    store_dir: &std::path::Path,
    threads: usize,
) -> Row {
    let leaf_size = 100;
    let builder = ShardedIndexBuilder::new(
        Partitioner::Hash { shards },
        ShardIndexKind::BcTree { leaf_size },
    )
    .with_seed(1);

    let start = Instant::now();
    let sharded = builder.build(points).expect("sharded build");
    let build_s = start.elapsed().as_secs_f64();

    // Query-parallel serving: the sharded index behind the ordinary batch executor.
    let batch = BatchExecutor::new(threads).execute(&sharded, request);
    // Shard-parallel serving: fan each query across shards.
    let fanout = ShardedExecutor::new(threads).execute(&sharded, request);

    // Snapshot as a shard group and cold-load it back.
    std::fs::remove_dir_all(store_dir).ok();
    let store = Store::create(store_dir).expect("create store");
    sharded.save_into(&store, "sharded").expect("save shard group");
    let start = Instant::now();
    let reloaded = ShardedIndex::load_from(&store, "sharded").expect("load shard group");
    let reload_s = start.elapsed().as_secs_f64();
    let reloaded_batch = BatchExecutor::new(threads).execute(&reloaded, request);

    let same = bit_identical(&batch.results, reference)
        && bit_identical(&fanout.results, reference)
        && bit_identical(&reloaded_batch.results, reference);

    Row {
        shards,
        build_s,
        batch_qps: batch.throughput_qps(),
        fanout_qps: fanout.throughput_qps(),
        fanout_p99_ms: fanout.latency.p99_ns() as f64 / 1e6,
        reload_s,
        identical: same,
    }
}

fn main() {
    let cfg = Config::from_args();
    println!(
        "# shard_bench — sharded build + serving vs shard count \
         (n = {}, dim = {}, queries = {}, k = {}, kernel backend: {})\n",
        cfg.n,
        cfg.dim,
        cfg.queries,
        cfg.k,
        kernels::active_backend().label()
    );

    let points: PointSet = clustered_dataset("shard-bench", cfg.n, cfg.dim);
    let queries: Vec<HyperplaneQuery> = serving_queries(&points, cfg.queries);
    let request = BatchRequest::new(queries, SearchParams::exact(cfg.k));

    // Unsharded reference answers (the linear-scan oracle is exact and cheap to trust).
    let oracle = LinearScan::new(points.clone());
    let reference = BatchExecutor::new(cfg.threads).execute(&oracle, &request);

    let store_dir = cfg.out_dir.join("shard-store");
    let rows: Vec<Row> = cfg
        .shards
        .iter()
        .map(|&shards| {
            bench_shard_count(
                shards,
                &points,
                &request,
                &reference.results,
                &store_dir,
                cfg.threads,
            )
        })
        .collect();

    let headers = [
        "shards",
        "build (s)",
        "batch QPS",
        "fan-out QPS",
        "fan-out p99 (ms)",
        "reload (s)",
        "bit-identical",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.shards.to_string(),
                format!("{:.3}", r.build_s),
                format!("{:.0}", r.batch_qps),
                format!("{:.0}", r.fanout_qps),
                format!("{:.3}", r.fanout_p99_ms),
                format!("{:.3}", r.reload_s),
                if r.identical { "yes".into() } else { "NO".into() },
            ]
        })
        .collect();
    println!("{}", markdown_table(&headers, &table));

    std::fs::create_dir_all(&cfg.out_dir).expect("create out dir");
    write_csv(&cfg.out_dir.join("shard_bench.csv"), &headers, &table).expect("write csv");
    println!("\ncsv written to {}", cfg.out_dir.join("shard_bench.csv").display());

    if rows.iter().any(|r| !r.identical) {
        eprintln!(
            "FAILED: a sharded (or reloaded) index returned different answers than the \
             unsharded reference"
        );
        std::process::exit(1);
    }
    if cfg.check {
        println!(
            "check passed: sharded, shard-parallel, and reloaded answers are bit-identical \
             to the unsharded reference for every shard count"
        );
    }

    // Serve the largest configuration once through the engine's shard-aware path so
    // the exposition dump below carries per-shard latency series.
    if let Some(&shards) = cfg.shards.last() {
        let engine = Engine::new(cfg.threads);
        let sharded = ShardedIndexBuilder::new(
            Partitioner::Hash { shards },
            ShardIndexKind::BallTree { leaf_size: 100 },
        )
        .build(&points)
        .expect("build sharded index for metrics dump");
        engine.registry().register_sharded("shard-bench", sharded);
        engine.serve_sharded("shard-bench", &request).expect("serve sharded batch");
        println!("\n## metrics exposition (Prometheus text format)\n");
        println!("```\n{}```", engine.render_metrics());
    }
}
