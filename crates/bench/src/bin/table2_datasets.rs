//! Table II: statistics of the data sets (paper values and the scaled synthetic
//! stand-ins used by this reproduction).

use p2h_bench::{emit, BenchConfig};
use p2h_data::{large_scale_catalog, paper_catalog};

fn main() {
    let cfg = BenchConfig::from_args();
    println!("# Table II — data-set statistics (scale = {})\n", cfg.scale);

    let mut rows = Vec::new();
    for entry in paper_catalog(cfg.scale).iter().chain(large_scale_catalog(cfg.scale).iter()) {
        if !cfg.selects(&entry.dataset.name) {
            continue;
        }
        rows.push(vec![
            entry.dataset.name.clone(),
            entry.paper_n.to_string(),
            entry.paper_dim.to_string(),
            entry.data_type.to_string(),
            entry.dataset.n.to_string(),
            format!("{:.1}", entry.dataset.raw_size_bytes() as f64 / (1024.0 * 1024.0)),
            format!("{:?}", entry.dataset.distribution),
        ]);
    }
    emit(
        &cfg,
        "table2_datasets",
        &[
            "Data Set",
            "Paper n",
            "Paper d",
            "Data Type",
            "Synthetic n",
            "Synthetic Size (MiB)",
            "Generator",
        ],
        &rows,
    );
}
