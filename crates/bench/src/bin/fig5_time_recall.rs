//! Figure 5: query time vs recall curves of BC-Tree, Ball-Tree, FH and NH for top-10
//! queries on every (stand-in) data set.
//!
//! The paper's claim: the trees are about 1.1–10× faster than the better of NH and FH at
//! matched recall on most data sets, with the advantage largest below 60% recall.

use p2h_balltree::BallTreeBuilder;
use p2h_bctree::BcTreeBuilder;
use p2h_bench::{budget_ladder, emit, prepare, BenchConfig};
use p2h_core::P2hIndex;
use p2h_data::paper_catalog;
use p2h_eval::sweep_budgets;
use p2h_hash::{FhIndex, FhParams, NhIndex, NhParams};

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "# Figure 5 — query time vs recall, k = {} (scale = {}, {} queries per data set)\n",
        cfg.k, cfg.scale, cfg.queries
    );

    let mut rows = Vec::new();
    for entry in paper_catalog(cfg.scale) {
        if !cfg.selects(&entry.dataset.name) {
            continue;
        }
        let workload = prepare(&entry, &cfg);
        eprintln!("[fig5] {}: n = {}", workload.name, workload.points.len());

        let ball = BallTreeBuilder::new(100).build(&workload.points).unwrap();
        let bc = BcTreeBuilder::new(100).build(&workload.points).unwrap();
        let nh = NhIndex::build(&workload.points, NhParams::new(4, 16)).unwrap();
        let fh = FhIndex::build(&workload.points, FhParams::new(4, 16, 4)).unwrap();
        let methods: [(&dyn P2hIndex, &str); 4] =
            [(&bc, "BC-Tree"), (&ball, "Ball-Tree"), (&fh, "FH"), (&nh, "NH")];

        let budgets = budget_ladder(workload.points.len());
        for (index, label) in methods {
            for eval in sweep_budgets(
                index,
                label,
                &workload.queries,
                &workload.ground_truth,
                cfg.k,
                &budgets,
            ) {
                rows.push(vec![
                    workload.name.clone(),
                    label.to_string(),
                    eval.candidate_limit.unwrap_or(0).to_string(),
                    format!("{:.2}", eval.recall_pct()),
                    format!("{:.4}", eval.avg_query_time_ms),
                ]);
            }
        }
    }

    emit(
        &cfg,
        "fig5_time_recall",
        &["Data Set", "Method", "Budget", "Recall (%)", "Query Time (ms)"],
        &rows,
    );
}
