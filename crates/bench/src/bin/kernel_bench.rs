//! Microbenchmark of the dense kernels: scalar vs dispatched-SIMD vs blocked, across
//! the dimensions of the paper's data sets and representative leaf sizes.
//!
//! Prints a Markdown table of ns/point for four ways of computing the `|⟨x, q⟩|`
//! distances of a leaf-sized strip of points:
//!
//! * `scalar/pt`   — one `kernels::scalar::dot` call per point (the pre-kernel-layer
//!   baseline: per-point scalar verification),
//! * `simd/pt`     — one dispatched `kernels::abs_dot` call per point,
//! * `scalar-blk`  — `kernels::scalar::dot_block` over the whole strip (forced-scalar
//!   dispatch, showing the gain from amortized query reload alone),
//! * `simd-blk`    — dispatched `kernels::abs_dot_block` over the whole strip (the
//!   kernel behind every blocked leaf scan).
//!
//! Usage: `kernel_bench [--rows N] [--iters N]` — `--rows` is the strip (leaf) size,
//! default 100 (the paper's reference `N0`); `--iters` scales the measurement loop.
//! Results are recorded in `EXPERIMENTS.md`.

use std::hint::black_box;
use std::time::Instant;

use p2h_core::kernels;
use p2h_core::Scalar;

/// Deterministic pseudo-random data; no RNG dependency needed for a microbench.
fn filled(len: usize, seed: u64) -> Vec<Scalar> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as Scalar / (1 << 24) as Scalar) * 2.0 - 1.0
        })
        .collect()
}

/// Best-of-three measurement of `body`, in ns per point.
fn measure(rows: usize, iters: usize, mut body: impl FnMut() -> Scalar) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let mut sink = 0.0;
        for _ in 0..iters {
            sink += body();
        }
        let elapsed = start.elapsed().as_nanos() as f64;
        black_box(sink);
        best = best.min(elapsed / (iters as f64 * rows as f64));
    }
    best
}

fn main() {
    let mut rows = 100usize;
    let mut iters = 2_000usize;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rows" => {
                i += 1;
                rows = args[i].parse().expect("--rows expects an integer");
            }
            "--iters" => {
                i += 1;
                iters = args[i].parse().expect("--iters expects an integer");
            }
            other => panic!("unknown flag `{other}` (usage: kernel_bench [--rows N] [--iters N])"),
        }
        i += 1;
    }

    println!("detected backend: {}", kernels::detected_backend().label());
    println!("active backend:   {}", kernels::active_backend().label());
    println!("strip rows: {rows}\n");
    println!(
        "| dim | scalar/pt (ns) | simd/pt (ns) | scalar-blk (ns) | simd-blk (ns) | blk vs scalar/pt |"
    );
    println!("|---|---|---|---|---|---|");

    for dim in [16usize, 64, 128, 256, 960] {
        let query = filled(dim, 1);
        let data = filled(dim * rows, dim as u64);
        let mut out = vec![0.0 as Scalar; rows];
        // Scale iterations down for the big dims so every row costs similar wall time.
        let iters = (iters * 128 / dim.max(16)).max(50);

        let scalar_pt = measure(rows, iters, || {
            let mut acc = 0.0;
            for r in 0..rows {
                acc += kernels::scalar::dot(black_box(&query), &data[r * dim..(r + 1) * dim]).abs();
            }
            acc
        });

        let simd_pt = measure(rows, iters, || {
            let mut acc = 0.0;
            for r in 0..rows {
                acc += kernels::abs_dot(black_box(&query), &data[r * dim..(r + 1) * dim]);
            }
            acc
        });

        let scalar_blk = measure(rows, iters, || {
            kernels::scalar::dot_block(black_box(&query), &data, dim, &mut out);
            out[rows / 2]
        });

        let simd_blk = measure(rows, iters, || {
            kernels::abs_dot_block(black_box(&query), &data, dim, &mut out);
            out[rows / 2]
        });

        println!(
            "| {dim} | {scalar_pt:.2} | {simd_pt:.2} | {scalar_blk:.2} | {simd_blk:.2} | {:.1}x |",
            scalar_pt / simd_blk
        );
    }

    println!(
        "\nblk vs scalar/pt = per-point scalar abs_dot time over blocked dispatched time:\n\
         the speedup a blocked leaf scan gets over the seed's per-point scalar loop."
    );
}
