//! Engine throughput scaling: batch-query QPS vs worker-thread count, plus parallel
//! index-construction speedup, on a synthetic data set.
//!
//! This is the serving-side experiment that motivates the `p2h-engine` crate: the same
//! batch of hyperplane queries is executed against one shared BC-Tree with 1, 2, 4, …
//! worker threads, reporting throughput (QPS), per-query latency percentiles, and the
//! speedup over single-threaded execution. Results are verified bit-identical across
//! all thread counts before anything is reported — parallelism must never change
//! answers.
//!
//! ```text
//! cargo run --release --bin engine_throughput -- [--n N] [--dim D] [--queries Q]
//!     [--k K] [--budget B] [--threads 1,2,4,8] [--out DIR]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use p2h_bench::num_threads;
use p2h_core::{SearchParams, SearchResult};
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_engine::{BatchRequest, BcTreeBuilder, Engine, SharedIndex};
use p2h_eval::{markdown_table, write_csv};

struct Config {
    n: usize,
    dim: usize,
    queries: usize,
    k: usize,
    budget: Option<usize>,
    threads: Vec<usize>,
    out_dir: PathBuf,
}

impl Default for Config {
    fn default() -> Self {
        let max = num_threads();
        let mut threads = vec![1usize, 2, 4, 8, 16];
        threads.retain(|&t| t <= max.max(4));
        Self {
            n: 100_000,
            dim: 64,
            queries: 256,
            k: 10,
            budget: Some(2_000),
            threads,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();

        fn take(args: &[String], i: &mut usize, name: &str) -> String {
            *i += 1;
            args.get(*i).unwrap_or_else(|| panic!("missing value for {name}")).clone()
        }

        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--n" => cfg.n = take(&args, &mut i, "--n").parse().expect("--n: integer"),
                "--dim" => cfg.dim = take(&args, &mut i, "--dim").parse().expect("--dim: integer"),
                "--queries" => {
                    cfg.queries =
                        take(&args, &mut i, "--queries").parse().expect("--queries: integer")
                }
                "--k" => cfg.k = take(&args, &mut i, "--k").parse().expect("--k: integer"),
                "--budget" => {
                    let value = take(&args, &mut i, "--budget");
                    cfg.budget = if value == "none" {
                        None
                    } else {
                        Some(value.parse().expect("--budget: integer or `none`"))
                    };
                }
                "--threads" => {
                    cfg.threads = take(&args, &mut i, "--threads")
                        .split(',')
                        .map(|t| t.trim().parse().expect("--threads: comma-separated integers"))
                        .collect();
                }
                "--out" => cfg.out_dir = PathBuf::from(take(&args, &mut i, "--out")),
                "--help" | "-h" => {
                    eprintln!(
                        "usage: engine_throughput [--n N] [--dim D] [--queries Q] [--k K] \
                         [--budget B|none] [--threads 1,2,4,8] [--out DIR]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag `{other}`; run with --help for usage"),
            }
            i += 1;
        }
        cfg
    }
}

fn main() {
    let cfg = Config::from_args();
    println!(
        "engine throughput scaling: n={}, dim={}, queries={}, k={}, budget={:?} \
         ({} CPUs available)\n",
        cfg.n,
        cfg.dim,
        cfg.queries,
        cfg.k,
        cfg.budget,
        num_threads()
    );

    let points = SyntheticDataset::new(
        "engine-throughput",
        cfg.n,
        cfg.dim,
        DataDistribution::GaussianClusters { clusters: 16, std_dev: 1.5 },
        2023,
    )
    .generate()
    .expect("synthetic generation");
    let queries = generate_queries(&points, cfg.queries, QueryDistribution::DataDifference, 7)
        .expect("query generation");

    // --- Parallel index construction -------------------------------------------------
    let builder = BcTreeBuilder::new(100);
    let start = Instant::now();
    let sequential_tree = builder.build(&points).expect("sequential build");
    let sequential_build_s = start.elapsed().as_secs_f64();
    drop(sequential_tree);

    let max_threads = cfg.threads.iter().copied().max().unwrap_or(1);
    let start = Instant::now();
    let tree = builder.build_parallel(&points, max_threads).expect("parallel build");
    let parallel_build_s = start.elapsed().as_secs_f64();
    println!(
        "BC-Tree construction: sequential {sequential_build_s:.3} s, parallel ({max_threads} \
         threads) {parallel_build_s:.3} s — {:.2}x speedup\n",
        sequential_build_s / parallel_build_s.max(1e-12)
    );

    // --- Batch query throughput vs thread count --------------------------------------
    let mut params = SearchParams::exact(cfg.k);
    params.candidate_limit = cfg.budget;
    let request = BatchRequest::new(queries, params);

    // Every measured run goes through `Engine::serve` — the instrumented production
    // path — so the exposition dump at the end reflects exactly what was benchmarked.
    let shared: SharedIndex = std::sync::Arc::new(tree);

    // The single-threaded run is always the reference — for the bit-identical check and
    // for the `speedup_vs_1` column — even when 1 is not in `--threads`.
    let baseline_engine = Engine::new(1);
    baseline_engine.registry().register_shared("bc", std::sync::Arc::clone(&shared));
    let _ = baseline_engine.serve("bc", &request).expect("warm-up"); // warm-up (fills caches)
    let baseline = baseline_engine.serve("bc", &request).expect("baseline serve");
    let reference: Vec<SearchResult> = baseline.results.clone();
    let baseline_qps = baseline.throughput_qps();

    let mut rows = Vec::new();
    for &threads in &cfg.threads {
        let response = if threads == 1 {
            baseline.clone()
        } else {
            let engine = Engine::new(threads);
            engine.registry().register_shared("bc", std::sync::Arc::clone(&shared));
            // Warm-up run, then the measured run.
            let _ = engine.serve("bc", &request).expect("warm-up");
            engine.serve("bc", &request).expect("measured serve")
        };

        for (qi, (got, want)) in response.results.iter().zip(reference.iter()).enumerate() {
            assert_eq!(
                got.neighbors, want.neighbors,
                "threads={threads}, query {qi}: parallel results diverged from \
                 single-threaded execution"
            );
        }

        let qps = response.throughput_qps();
        let speedup = if baseline_qps > 0.0 { qps / baseline_qps } else { 0.0 };
        rows.push(vec![
            threads.to_string(),
            format!("{qps:.0}"),
            format!("{speedup:.2}"),
            format!("{:.3}", response.latency.p50_ns() as f64 / 1.0e6),
            format!("{:.3}", response.latency.p95_ns() as f64 / 1.0e6),
            format!("{:.3}", response.latency.p99_ns() as f64 / 1.0e6),
            format!("{:.3}", response.wall_time_ns as f64 / 1.0e6),
        ]);
    }

    let headers = ["threads", "qps", "speedup_vs_1", "p50_ms", "p95_ms", "p99_ms", "batch_wall_ms"];
    println!("{}", markdown_table(&headers, &rows));
    println!("(all thread counts returned bit-identical results)");

    let path = cfg.out_dir.join("engine_throughput.csv");
    match write_csv(&path, &headers, &rows) {
        Ok(()) => println!("(written to {})", path.display()),
        Err(err) => eprintln!("warning: could not write {}: {err}", path.display()),
    }

    println!("\n## metrics exposition (Prometheus text format)\n");
    println!("```\n{}```", baseline_engine.render_metrics());
}
