//! Table III: indexing time (seconds) and index size (MiB) of Ball-Tree, BC-Tree, and
//! the NH / FH baselines with sampling dimensions λ = d and λ = 8d.
//!
//! The paper reports the trees reducing indexing time by 1.5–170× and index size by
//! 11–2,400× relative to the hashing schemes; the same ordering (and roughly the same
//! ratios) should appear here on the synthetic stand-ins.

use p2h_balltree::BallTreeBuilder;
use p2h_bctree::BcTreeBuilder;
use p2h_bench::{emit, BenchConfig};
use p2h_data::paper_catalog;
use p2h_eval::measure_build;
use p2h_hash::{FhIndex, FhParams, NhIndex, NhParams};

/// Projection tables used by NH/FH. The paper reports the indexing overhead of NH and FH
/// with m = 128 (smaller m gives unreliable query results); we use the same setting here
/// so the indexing-cost ratios are comparable.
const HASH_TABLES: usize = 128;

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "# Table III — indexing time and index size (scale = {}, leaf size N0 = 100, \
         hash tables m = {HASH_TABLES})\n",
        cfg.scale
    );

    let mut rows = Vec::new();
    for entry in paper_catalog(cfg.scale) {
        if !cfg.selects(&entry.dataset.name) {
            continue;
        }
        let points = entry.dataset.generate().expect("generate");
        eprintln!(
            "[table3] {}: n = {}, d = {}",
            entry.dataset.name,
            points.len(),
            entry.dataset.raw_dim
        );

        let mut reports = Vec::new();
        let (_bc, r) = measure_build("BC-Tree", || BcTreeBuilder::new(100).build(&points).unwrap());
        reports.push(r);
        let (_ball, r) =
            measure_build("Ball-Tree", || BallTreeBuilder::new(100).build(&points).unwrap());
        reports.push(r);
        for lambda_factor in [1usize, 8] {
            let (_nh, r) = measure_build(format!("NH (λ={lambda_factor}d)"), || {
                NhIndex::build(&points, NhParams::new(lambda_factor, HASH_TABLES)).unwrap()
            });
            reports.push(r);
            let (_fh, r) = measure_build(format!("FH (λ={lambda_factor}d)"), || {
                FhIndex::build(&points, FhParams::new(lambda_factor, HASH_TABLES, 4)).unwrap()
            });
            reports.push(r);
        }

        for report in reports {
            rows.push(vec![
                entry.dataset.name.clone(),
                report.label.clone(),
                format!("{:.3}", report.build_time_s),
                format!("{:.2}", report.index_size_mb()),
            ]);
        }
    }

    emit(
        &cfg,
        "table3_indexing",
        &["Data Set", "Method", "Indexing Time (s)", "Index Size (MiB)"],
        &rows,
    );
}
