//! Load-vs-rebuild: how much faster a serving process cold-starts from `p2h-store`
//! snapshots than by rebuilding its indexes from raw points — and how much faster
//! still when the snapshot is memory-mapped instead of copied.
//!
//! For each tree index the binary measures (1) the in-process build time, (2) the time
//! to snapshot it to disk, (3) the time to load + validate the snapshot back under
//! **both** load modes — `LoadMode::Copy` (read + decode every array into fresh heap)
//! and `LoadMode::Mmap` (map the file, serve the arrays zero-copy out of the mapping)
//! — and the snapshot file size; it then verifies that both loaded copies answer a
//! query batch **bit-identically** to the original. With `--check` a result mismatch
//! (or any snapshot error) exits non-zero, which is how CI runs it against the
//! forced-scalar kernel path.
//!
//! ```text
//! cargo run --release --bin snapshot_bench -- [--n N] [--dim D] [--queries Q]
//!     [--k K] [--check] [--out DIR]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use p2h_balltree::{BallTree, BallTreeBuilder};
use p2h_bctree::{BcTree, BcTreeBuilder};
use p2h_bench::serving::{bit_identical, clustered_dataset, serving_queries};
use p2h_core::{kernels, HyperplaneQuery, P2hIndex, PointSet, SearchParams, SearchResult};
use p2h_engine::{BatchRequest, Engine};
use p2h_eval::{markdown_table, write_csv};
use p2h_store::{LoadMode, Snapshot, Store};

struct Config {
    n: usize,
    dim: usize,
    queries: usize,
    k: usize,
    check: bool,
    out_dir: PathBuf,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            n: 200_000,
            dim: 64,
            queries: 64,
            k: 10,
            check: false,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();

        fn take(args: &[String], i: &mut usize, name: &str) -> String {
            *i += 1;
            args.get(*i).unwrap_or_else(|| panic!("missing value for {name}")).clone()
        }

        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--n" => cfg.n = take(&args, &mut i, "--n").parse().expect("--n: integer"),
                "--dim" => cfg.dim = take(&args, &mut i, "--dim").parse().expect("--dim: integer"),
                "--queries" => {
                    cfg.queries =
                        take(&args, &mut i, "--queries").parse().expect("--queries: integer")
                }
                "--k" => cfg.k = take(&args, &mut i, "--k").parse().expect("--k: integer"),
                "--check" => cfg.check = true,
                "--out" => cfg.out_dir = PathBuf::from(take(&args, &mut i, "--out")),
                other => {
                    eprintln!(
                        "unknown flag `{other}`; flags: --n --dim --queries --k --check --out"
                    );
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        cfg
    }
}

fn answers(index: &dyn P2hIndex, queries: &[HyperplaneQuery], k: usize) -> Vec<SearchResult> {
    queries.iter().map(|q| index.search(q, &SearchParams::exact(k))).collect()
}

struct Row {
    label: &'static str,
    build_s: f64,
    save_s: f64,
    load_copy_s: f64,
    load_mmap_s: f64,
    file_mb: f64,
    identical: bool,
}

fn bench_index<S, F>(
    label: &'static str,
    store: &Store,
    name: &str,
    build: F,
    queries: &[HyperplaneQuery],
    k: usize,
) -> Row
where
    S: Snapshot,
    F: FnOnce() -> S,
{
    let start = Instant::now();
    let index = build();
    let build_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let path = store.save(name, &index).expect("snapshot save");
    let save_s = start.elapsed().as_secs_f64();
    let file_mb = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0) as f64 / 1e6;

    let copy_store = store.clone().with_mode(LoadMode::Copy);
    let start = Instant::now();
    let loaded_copy: S = copy_store.load(name).expect("snapshot load (copy)");
    let load_copy_s = start.elapsed().as_secs_f64();

    let mmap_store = store.clone().with_mode(LoadMode::Mmap);
    let start = Instant::now();
    let loaded_mmap: S = mmap_store.load(name).expect("snapshot load (mmap)");
    let load_mmap_s = start.elapsed().as_secs_f64();

    let reference = answers(&index, queries, k);
    let same = bit_identical(&reference, &answers(&loaded_copy, queries, k))
        && bit_identical(&reference, &answers(&loaded_mmap, queries, k));
    Row { label, build_s, save_s, load_copy_s, load_mmap_s, file_mb, identical: same }
}

fn main() {
    let cfg = Config::from_args();
    println!(
        "# snapshot_bench — load vs rebuild, copy vs mmap (n = {}, dim = {}, kernel backend: {})\n",
        cfg.n,
        cfg.dim,
        kernels::active_backend().label()
    );

    let points: PointSet = clustered_dataset("snapshot-bench", cfg.n, cfg.dim);
    let queries = serving_queries(&points, cfg.queries);

    let dir = cfg.out_dir.join("snapshot-store");
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::create(&dir).expect("create store");

    let rows = [
        bench_index::<BallTree, _>(
            "Ball-Tree",
            &store,
            "ball",
            || BallTreeBuilder::new(100).with_seed(1).build(&points).expect("build"),
            &queries,
            cfg.k,
        ),
        bench_index::<BcTree, _>(
            "BC-Tree",
            &store,
            "bc",
            || BcTreeBuilder::new(100).with_seed(1).build(&points).expect("build"),
            &queries,
            cfg.k,
        ),
    ];

    let headers = [
        "index",
        "build (s)",
        "save (s)",
        "load copy (s)",
        "load mmap (s)",
        "file (MB)",
        "copy speedup",
        "mmap speedup",
        "bit-identical",
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{:.3}", r.build_s),
                format!("{:.3}", r.save_s),
                format!("{:.3}", r.load_copy_s),
                format!("{:.3}", r.load_mmap_s),
                format!("{:.1}", r.file_mb),
                format!("{:.1}x", r.build_s / r.load_copy_s.max(1e-9)),
                format!("{:.1}x", r.build_s / r.load_mmap_s.max(1e-9)),
                if r.identical { "yes".into() } else { "NO".into() },
            ]
        })
        .collect();
    println!("{}", markdown_table(&headers, &table));

    std::fs::create_dir_all(&cfg.out_dir).expect("create out dir");
    write_csv(&cfg.out_dir.join("snapshot_bench.csv"), &headers, &table).expect("write csv");
    println!("\ncsv written to {}", cfg.out_dir.join("snapshot_bench.csv").display());

    if rows.iter().any(|r| !r.identical) {
        eprintln!(
            "FAILED: a loaded index (copy or mmap) returned different answers than the original"
        );
        std::process::exit(1);
    }

    // Serve the snapshotted indexes through the engine — the instrumented (and, with
    // `P2H_TRACE` set, traced) production path — and verify serving changes nothing.
    let engine = Engine::from_store(&dir, 1).expect("cold-start engine from bench store");
    let request = BatchRequest::new(queries.clone(), SearchParams::exact(cfg.k));
    let mut serve_identical = true;
    for name in ["ball", "bc"] {
        let response = engine.serve(name, &request).expect("serve bench batch");
        let index = engine.registry().get(name).expect("registered index");
        let reference = answers(index.as_ref(), &queries, cfg.k);
        serve_identical &= bit_identical(&reference, &response.results);
    }
    if !serve_identical {
        eprintln!("FAILED: engine serving returned different answers than direct search");
        std::process::exit(1);
    }

    println!("\n## metrics exposition (Prometheus text format)\n");
    println!("```\n{}```", engine.render_metrics());

    if cfg.check {
        println!("check passed: copy- and mmap-loaded indexes are bit-identical to the originals");
        println!("check passed: engine serving (traced or not) is bit-identical to direct search");
    }
}
