//! Figure 8: effectiveness of the individual point-level lower bounds of BC-Tree.
//!
//! Compares BC-Tree against BC-Tree-wo-C (no cone bound), BC-Tree-wo-B (no ball bound)
//! and BC-Tree-wo-BC (neither) — query time vs k at about 80% recall, as in the paper.

use p2h_bctree::{BcTreeBuilder, BcTreeVariant};
use p2h_bench::{budget_ladder, emit, prepare, BenchConfig};
use p2h_core::SearchParams;
use p2h_data::{paper_catalog, GroundTruth};
use p2h_eval::{budget_for_recall, evaluate};

const K_VALUES: [usize; 4] = [1, 10, 20, 40];
const TARGET_RECALL: f64 = 0.8;

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "# Figure 8 — point-level lower bound ablation at ≈{:.0}% recall (scale = {})\n",
        TARGET_RECALL * 100.0,
        cfg.scale
    );

    let variants = [
        BcTreeVariant::Full,
        BcTreeVariant::WithoutCone,
        BcTreeVariant::WithoutBall,
        BcTreeVariant::WithoutBoth,
    ];

    let mut rows = Vec::new();
    let mut exact_rows = Vec::new();
    for entry in paper_catalog(cfg.scale) {
        if !cfg.selects(&entry.dataset.name) {
            continue;
        }
        let workload = prepare(&entry, &cfg);
        eprintln!("[fig8] {}: n = {}", workload.name, workload.points.len());
        let bc = BcTreeBuilder::new(100).build(&workload.points).unwrap();
        let budgets = budget_ladder(workload.points.len());

        // Exact-search comparison: with no candidate budget the point-level bounds
        // directly reduce the number of verified candidates and the query time.
        for variant in variants {
            let view = bc.with_variant(variant);
            let eval = evaluate(
                &view,
                variant.label(),
                &workload.queries,
                &workload.ground_truth,
                &SearchParams::exact(cfg.k),
            );
            exact_rows.push(vec![
                workload.name.clone(),
                variant.label().to_string(),
                format!("{:.4}", eval.avg_query_time_ms),
                format!("{:.0}", eval.avg_candidates()),
            ]);
        }

        for k in K_VALUES {
            let gt = GroundTruth::compute(
                &workload.points,
                &workload.queries,
                k,
                p2h_bench::num_threads(),
            );
            for variant in variants {
                let view = bc.with_variant(variant);
                let eval = budget_for_recall(
                    &view,
                    variant.label(),
                    &workload.queries,
                    &gt,
                    k,
                    TARGET_RECALL,
                    &budgets,
                )
                .expect("non-empty budget ladder");
                rows.push(vec![
                    workload.name.clone(),
                    variant.label().to_string(),
                    k.to_string(),
                    format!("{:.2}", eval.recall_pct()),
                    format!("{:.4}", eval.avg_query_time_ms),
                    format!("{:.0}", eval.avg_candidates()),
                ]);
            }
        }
    }

    println!("## Exact search (k = {}, no candidate budget)\n", cfg.k);
    emit(
        &cfg,
        "fig8_ablation_exact",
        &["Data Set", "Variant", "Query Time (ms)", "Avg Candidates Verified"],
        &exact_rows,
    );
    println!("## At ≈{:.0}% recall\n", TARGET_RECALL * 100.0);
    emit(
        &cfg,
        "fig8_ablation",
        &["Data Set", "Variant", "k", "Recall (%)", "Query Time (ms)", "Avg Candidates"],
        &rows,
    );
}
