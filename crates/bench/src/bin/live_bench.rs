//! Live-tier benchmark: what online updates cost. Three measurements against one
//! streaming pool, plus a bit-identity check of the layered answers:
//!
//! 1. **Durable insert throughput vs batch size** — every `insert_batch` call is one
//!    WAL append + one fsync (the acknowledgement point), so throughput is fsync-bound
//!    at batch 1 and amortizes with batching.
//! 2. **Memtable size vs query latency** — the memtable is an exact linear strip-scan
//!    layered over the compacted Ball-Tree base; latency grows linearly with the
//!    uncompacted tail, which is the number compaction policy should watch.
//! 3. **Compaction cost vs a from-scratch rebuild** — `compact()` folds memtable +
//!    base into a fresh tree committed as a new store epoch; the comparison is
//!    building the same tree from raw points and saving it (what a rebuild-the-world
//!    pipeline would pay, ignoring its serving gap).
//!
//! With `--check`, every layered answer set (before, during, and after the memtable
//! growth, and after compaction) is compared bit-for-bit against a fresh
//! [`LinearScan`] rebuild over the same live points; any mismatch exits non-zero.
//!
//! ```text
//! cargo run --release --bin live_bench -- [--n N] [--dim D] [--queries Q]
//!     [--k K] [--inserts I] [--check] [--out DIR]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use p2h_balltree::BallTreeBuilder;
use p2h_bench::serving::{clustered_dataset, serving_queries};
use p2h_core::{
    kernels, HyperplaneQuery, LinearScan, P2hIndex, PointSet, Scalar, SearchParams, SearchResult,
};
use p2h_eval::{markdown_table, write_csv};
use p2h_live::LiveIndex;
use p2h_store::Store;

struct Config {
    n: usize,
    dim: usize,
    queries: usize,
    k: usize,
    inserts: usize,
    check: bool,
    out_dir: PathBuf,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            n: 100_000,
            dim: 32,
            queries: 64,
            k: 10,
            inserts: 2_000,
            check: false,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl Config {
    fn from_args() -> Self {
        let mut cfg = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();

        fn take(args: &[String], i: &mut usize, name: &str) -> String {
            *i += 1;
            args.get(*i).unwrap_or_else(|| panic!("missing value for {name}")).clone()
        }

        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--n" => cfg.n = take(&args, &mut i, "--n").parse().expect("--n: integer"),
                "--dim" => cfg.dim = take(&args, &mut i, "--dim").parse().expect("--dim: integer"),
                "--queries" => {
                    cfg.queries =
                        take(&args, &mut i, "--queries").parse().expect("--queries: integer")
                }
                "--k" => cfg.k = take(&args, &mut i, "--k").parse().expect("--k: integer"),
                "--inserts" => {
                    cfg.inserts =
                        take(&args, &mut i, "--inserts").parse().expect("--inserts: integer")
                }
                "--check" => cfg.check = true,
                "--out" => cfg.out_dir = PathBuf::from(take(&args, &mut i, "--out")),
                other => {
                    eprintln!(
                        "unknown flag `{other}`; flags: --n --dim --queries --k --inserts \
                         --check --out"
                    );
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        cfg
    }
}

/// Strips the augmentation coordinate: live inserts take raw `dim-1` rows.
fn raw_rows(points: &PointSet, start: usize, end: usize) -> Vec<Vec<Scalar>> {
    let raw = points.dim() - 1;
    (start..end).map(|i| points.point(i)[..raw].to_vec()).collect()
}

/// Layered answers keyed by global id (the live tier reports global ids directly).
fn live_answers(live: &LiveIndex, queries: &[HyperplaneQuery], k: usize) -> Vec<Vec<(u32, u32)>> {
    queries
        .iter()
        .map(|q| {
            let result = live.search_exact(q, k).expect("live search");
            result.neighbors.iter().map(|n| (n.index as u32, n.distance.to_bits())).collect()
        })
        .collect()
}

/// The fresh-rebuild oracle: a linear scan over the live points, translated to the
/// same global-id keying.
fn oracle_answers(live: &LiveIndex, queries: &[HyperplaneQuery], k: usize) -> Vec<Vec<(u32, u32)>> {
    let ordered = live.live_points();
    let rows: Vec<Vec<Scalar>> = ordered.iter().map(|(_, row)| row.clone()).collect();
    let scan = LinearScan::new(PointSet::from_rows(&rows).expect("oracle point set"));
    let params = SearchParams::exact(k);
    queries
        .iter()
        .map(|q| {
            let result: SearchResult = scan.search(q, &params);
            result.neighbors.iter().map(|n| (ordered[n.index].0, n.distance.to_bits())).collect()
        })
        .collect()
}

fn mean_latency_us(live: &LiveIndex, queries: &[HyperplaneQuery], k: usize) -> f64 {
    // One untimed pass first: the timed pass must not pay first-touch page faults
    // for freshly compacted (or freshly mapped) base arrays.
    for q in queries {
        std::hint::black_box(live.search_exact(q, k).expect("live search"));
    }
    let start = Instant::now();
    for q in queries {
        std::hint::black_box(live.search_exact(q, k).expect("live search"));
    }
    start.elapsed().as_secs_f64() * 1e6 / queries.len() as f64
}

fn main() {
    let cfg = Config::from_args();
    println!(
        "# live_bench — online updates: insert throughput, memtable drag, compaction \
         (base n = {}, raw dim = {}, kernel backend: {})\n",
        cfg.n,
        cfg.dim,
        kernels::active_backend().label()
    );

    let batch_sizes = [1usize, 8, 64, 512];
    let memtable_steps = [0usize, 1_000, 10_000, 50_000];

    // One clustered dataset covers everything: the first `n` rows seed the base, the
    // tail streams in as live inserts. `clustered_dataset` takes the raw dim and
    // returns augmented points.
    let total = cfg.n + batch_sizes.len() * cfg.inserts + memtable_steps[memtable_steps.len() - 1];
    let points = clustered_dataset("live-bench", total, cfg.dim);
    let queries = serving_queries(&points, cfg.queries);

    let dir = cfg.out_dir.join("live-store");
    std::fs::remove_dir_all(&dir).ok();
    let store = Store::create(&dir).expect("create store");
    let live = LiveIndex::create(&store, "pool", cfg.dim + 1).expect("create live index");
    let mut cursor = 0usize;

    // Seed the base: stream in the first `n` points and compact them into a
    // Ball-Tree, so every measurement below runs against a realistically sized
    // immutable base with an initially empty memtable.
    while cursor < cfg.n {
        let step = (cfg.n - cursor).min(4096);
        live.insert_batch(&raw_rows(&points, cursor, cursor + step)).expect("seed insert");
        cursor += step;
    }
    live.compact().expect("seed compaction");
    let mut check_failed = false;
    let mut check = |live: &LiveIndex, stage: &str| {
        if !cfg.check {
            return;
        }
        let same = live_answers(live, &queries, cfg.k) == oracle_answers(live, &queries, cfg.k);
        if !same {
            eprintln!("FAILED: layered answers diverged from the fresh-rebuild oracle ({stage})");
        }
        check_failed |= !same;
    };

    // ---- 1. durable insert throughput vs batch size --------------------------------
    let mut insert_rows: Vec<Vec<String>> = Vec::new();
    for &batch in &batch_sizes {
        let rows = raw_rows(&points, cursor, cursor + cfg.inserts);
        cursor += cfg.inserts;
        let start = Instant::now();
        for chunk in rows.chunks(batch) {
            live.insert_batch(chunk).expect("insert batch");
        }
        let secs = start.elapsed().as_secs_f64();
        let fsyncs = rows.len().div_ceil(batch);
        insert_rows.push(vec![
            batch.to_string(),
            format!("{:.0}", rows.len() as f64 / secs),
            format!("{:.0}", fsyncs as f64 / secs),
            format!("{:.1}", secs * 1e6 / rows.len() as f64),
        ]);
    }
    let insert_headers = ["batch size", "inserts/s", "fsyncs/s", "µs/insert"];
    println!("## durable insert throughput ({} inserts per row)\n", cfg.inserts);
    println!("{}", markdown_table(&insert_headers, &insert_rows));
    check(&live, "after insert-throughput phase");

    // ---- 2. memtable size vs query latency -----------------------------------------
    // Fold everything inserted so far into a compacted base, then regrow the memtable
    // in steps, timing the same exact query batch at each size.
    live.compact().expect("baseline compaction");
    let mut latency_rows: Vec<Vec<String>> = Vec::new();
    let mut base = f64::NAN;
    for &target in &memtable_steps {
        while live.memtable_len() < target {
            let step = (target - live.memtable_len()).min(512);
            live.insert_batch(&raw_rows(&points, cursor, cursor + step))
                .expect("memtable growth insert");
            cursor += step;
        }
        let us = mean_latency_us(&live, &queries, cfg.k);
        if base.is_nan() {
            base = us;
        }
        latency_rows.push(vec![
            target.to_string(),
            format!("{:.1}", us),
            format!("{:.2}x", us / base),
        ]);
    }
    check(&live, "with the largest memtable");
    let latency_headers = ["memtable rows", "mean query latency (µs)", "vs compacted"];
    println!("## memtable size vs exact query latency (base = compacted tree)\n");
    println!("{}", markdown_table(&latency_headers, &latency_rows));

    // ---- 3. compaction cost vs from-scratch rebuild --------------------------------
    let survivors = live.len();
    let start = Instant::now();
    let report = live.compact().expect("measured compaction");
    let compact_s = start.elapsed().as_secs_f64();
    check(&live, "after the measured compaction");
    let post_compact_us = mean_latency_us(&live, &queries, cfg.k);

    let (rebuild_build_s, rebuild_save_s) = {
        let ordered = live.live_points();
        let flat: Vec<Scalar> = ordered.iter().flat_map(|(_, row)| row.iter().copied()).collect();
        let rebuilt_points = PointSet::from_flat(cfg.dim + 1, flat).expect("rebuild point set");
        let start = Instant::now();
        let tree = BallTreeBuilder::new(100)
            .with_seed(1)
            .build(&rebuilt_points)
            .expect("from-scratch rebuild");
        let build_s = start.elapsed().as_secs_f64();
        let rebuild_store = Store::create(dir.join("rebuild")).expect("rebuild store");
        let start = Instant::now();
        rebuild_store.save("rebuilt", &tree).expect("rebuild save");
        (build_s, start.elapsed().as_secs_f64())
    };
    let rebuild_s = rebuild_build_s + rebuild_save_s;

    let compaction_headers = ["path", "wall (s)", "survivors", "memtable rows folded"];
    let compaction_rows = vec![
        vec![
            "live compact() → new epoch".into(),
            format!("{compact_s:.3}"),
            report.survivors.to_string(),
            report.folded_rows.to_string(),
        ],
        vec![
            format!(
                "from-scratch build + save ({rebuild_build_s:.3} build + {rebuild_save_s:.3} save)"
            ),
            format!("{rebuild_s:.3}"),
            survivors.to_string(),
            "-".into(),
        ],
    ];
    println!("## compaction vs rebuild (epoch {} committed)\n", report.epoch);
    println!("{}", markdown_table(&compaction_headers, &compaction_rows));
    println!(
        "\ncompaction = {:.2}x a from-scratch rebuild; post-compaction latency {:.1} µs \
         (memtable drained, serving continued throughout at the largest-memtable latency \
         above)",
        compact_s / rebuild_s.max(1e-9),
        post_compact_us,
    );

    std::fs::create_dir_all(&cfg.out_dir).expect("create out dir");
    write_csv(&cfg.out_dir.join("live_bench_inserts.csv"), &insert_headers, &insert_rows)
        .expect("write csv");
    write_csv(&cfg.out_dir.join("live_bench_latency.csv"), &latency_headers, &latency_rows)
        .expect("write csv");
    write_csv(
        &cfg.out_dir.join("live_bench_compaction.csv"),
        &compaction_headers,
        &compaction_rows,
    )
    .expect("write csv");
    println!("\ncsv written to {}", cfg.out_dir.display());

    std::fs::remove_dir_all(&dir).ok();
    if check_failed {
        std::process::exit(1);
    }
    if cfg.check {
        println!(
            "check passed: layered answers bit-identical to the fresh-rebuild oracle at \
             every stage"
        );
    }
}
