//! Figure 7: the impact of the branch preference choice (center preference vs lower
//! bound preference) on Ball-Tree and BC-Tree.
//!
//! The paper finds the center preference uniformly better, by roughly 2–100× below 60%
//! recall, because near the root the node-level ball bounds of both children are usually
//! zero and carry no ordering information.

use p2h_balltree::BallTreeBuilder;
use p2h_bctree::BcTreeBuilder;
use p2h_bench::{budget_ladder, emit, prepare, BenchConfig};
use p2h_core::{BranchPreference, P2hIndex, SearchParams};
use p2h_data::paper_catalog;
use p2h_eval::evaluate;

fn main() {
    let cfg = BenchConfig::from_args();
    println!("# Figure 7 — branch preference choice (scale = {}, k = {})\n", cfg.scale, cfg.k);

    let mut rows = Vec::new();
    for entry in paper_catalog(cfg.scale) {
        if !cfg.selects(&entry.dataset.name) {
            continue;
        }
        let workload = prepare(&entry, &cfg);
        eprintln!("[fig7] {}: n = {}", workload.name, workload.points.len());

        let ball = BallTreeBuilder::new(100).build(&workload.points).unwrap();
        let bc = BcTreeBuilder::new(100).build(&workload.points).unwrap();
        let methods: [(&dyn P2hIndex, &str); 2] = [(&bc, "BC-Tree"), (&ball, "Ball-Tree")];
        let preferences =
            [(BranchPreference::Center, "Center"), (BranchPreference::LowerBound, "Lower Bound")];

        for (index, method) in methods {
            for (preference, pref_label) in preferences {
                for &budget in &budget_ladder(workload.points.len()) {
                    let params =
                        SearchParams::approximate(cfg.k, budget).with_branch_preference(preference);
                    let eval = evaluate(
                        index,
                        format!("{method} ({pref_label})"),
                        &workload.queries,
                        &workload.ground_truth,
                        &params,
                    );
                    rows.push(vec![
                        workload.name.clone(),
                        method.to_string(),
                        pref_label.to_string(),
                        budget.to_string(),
                        format!("{:.2}", eval.recall_pct()),
                        format!("{:.4}", eval.avg_query_time_ms),
                    ]);
                }
            }
        }
    }

    emit(
        &cfg,
        "fig7_branch_pref",
        &["Data Set", "Method", "Preference", "Budget", "Recall (%)", "Query Time (ms)"],
        &rows,
    );
}
