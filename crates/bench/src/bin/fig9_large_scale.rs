//! Figure 9: query performance on the large-scale data sets (the scaled stand-ins for
//! Deep100M and Sift100M), plus the corresponding Table III rows.
//!
//! At `--scale 1.0` each stand-in has 2,000,000 points; the default scale keeps the run
//! in the minutes range. The paper's observation — the trees' speedup over NH/FH is
//! largest on the biggest data sets, especially below 40% recall — should be visible at
//! any scale.

use p2h_balltree::BallTreeBuilder;
use p2h_bctree::BcTreeBuilder;
use p2h_bench::{budget_ladder, emit, prepare, BenchConfig};
use p2h_core::P2hIndex;
use p2h_data::large_scale_catalog;
use p2h_eval::{measure_build, sweep_budgets};
use p2h_hash::{FhIndex, FhParams, NhIndex, NhParams};

fn main() {
    let cfg = BenchConfig::from_args();
    println!("# Figure 9 — large-scale data sets (scale = {}, k = {})\n", cfg.scale, cfg.k);

    let mut index_rows = Vec::new();
    let mut curve_rows = Vec::new();
    for entry in large_scale_catalog(cfg.scale) {
        if !cfg.selects(&entry.dataset.name) {
            continue;
        }
        let workload = prepare(&entry, &cfg);
        eprintln!("[fig9] {}: n = {}", workload.name, workload.points.len());

        let (ball, ball_report) = measure_build("Ball-Tree", || {
            BallTreeBuilder::new(100).build(&workload.points).unwrap()
        });
        let (bc, bc_report) =
            measure_build("BC-Tree", || BcTreeBuilder::new(100).build(&workload.points).unwrap());
        let (nh, nh_report) = measure_build("NH (λ=4d)", || {
            NhIndex::build(&workload.points, NhParams::new(4, 16)).unwrap()
        });
        let (fh, fh_report) = measure_build("FH (λ=4d)", || {
            FhIndex::build(&workload.points, FhParams::new(4, 16, 4)).unwrap()
        });
        for report in [&bc_report, &ball_report, &nh_report, &fh_report] {
            index_rows.push(vec![
                workload.name.clone(),
                report.label.clone(),
                format!("{:.3}", report.build_time_s),
                format!("{:.2}", report.index_size_mb()),
            ]);
        }

        let methods: [(&dyn P2hIndex, &str); 4] =
            [(&bc, "BC-Tree"), (&ball, "Ball-Tree"), (&fh, "FH"), (&nh, "NH")];
        let budgets = budget_ladder(workload.points.len());
        for (index, label) in methods {
            for eval in sweep_budgets(
                index,
                label,
                &workload.queries,
                &workload.ground_truth,
                cfg.k,
                &budgets,
            ) {
                curve_rows.push(vec![
                    workload.name.clone(),
                    label.to_string(),
                    eval.candidate_limit.unwrap_or(0).to_string(),
                    format!("{:.2}", eval.recall_pct()),
                    format!("{:.4}", eval.avg_query_time_ms),
                ]);
            }
        }
    }

    println!("## Indexing overhead (Table III, large-scale rows)\n");
    emit(
        &cfg,
        "fig9_large_scale_indexing",
        &["Data Set", "Method", "Indexing Time (s)", "Index Size (MiB)"],
        &index_rows,
    );
    println!("## Query time vs recall\n");
    emit(
        &cfg,
        "fig9_large_scale",
        &["Data Set", "Method", "Budget", "Recall (%)", "Query Time (ms)"],
        &curve_rows,
    );
}
