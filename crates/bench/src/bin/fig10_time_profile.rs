//! Figure 10: time profile visualization — where each method spends its query time
//! (candidate verification, table lookup, lower bound computation, other) at about 90%
//! recall on Cifar-10 and Sun.

use p2h_balltree::BallTreeBuilder;
use p2h_bctree::BcTreeBuilder;
use p2h_bench::{budget_ladder, emit, prepare, BenchConfig};
use p2h_core::P2hIndex;
use p2h_data::profile_catalog;
use p2h_eval::{budget_for_recall, time_profile};
use p2h_hash::{FhIndex, FhParams, NhIndex, NhParams};

const TARGET_RECALL: f64 = 0.9;

fn main() {
    let cfg = BenchConfig::from_args();
    println!(
        "# Figure 10 — query time profile at ≈{:.0}% recall (scale = {}, k = {})\n",
        TARGET_RECALL * 100.0,
        cfg.scale,
        cfg.k
    );

    let mut rows = Vec::new();
    for entry in profile_catalog(cfg.scale) {
        if !cfg.selects(&entry.dataset.name) {
            continue;
        }
        let workload = prepare(&entry, &cfg);
        eprintln!("[fig10] {}: n = {}", workload.name, workload.points.len());

        let ball = BallTreeBuilder::new(100).build(&workload.points).unwrap();
        let bc = BcTreeBuilder::new(100).build(&workload.points).unwrap();
        let nh = NhIndex::build(&workload.points, NhParams::new(4, 16)).unwrap();
        let fh = FhIndex::build(&workload.points, FhParams::new(4, 16, 4)).unwrap();
        let methods: [(&dyn P2hIndex, &str); 4] =
            [(&bc, "BC"), (&ball, "Ball"), (&fh, "FH"), (&nh, "NH")];
        let budgets = budget_ladder(workload.points.len());

        for (index, label) in methods {
            // Find the budget reaching the target recall, then profile at that budget.
            let eval = budget_for_recall(
                index,
                label,
                &workload.queries,
                &workload.ground_truth,
                cfg.k,
                TARGET_RECALL,
                &budgets,
            )
            .expect("non-empty budget ladder");
            let profile = time_profile(index, &workload.queries, cfg.k, eval.candidate_limit);
            rows.push(vec![
                workload.name.clone(),
                label.to_string(),
                format!("{:.2}", eval.recall_pct()),
                format!("{:.4}", profile.verification_ms),
                format!("{:.4}", profile.lookup_ms),
                format!("{:.4}", profile.bounds_ms),
                format!("{:.4}", profile.other_ms),
                format!("{:.4}", profile.total_ms()),
            ]);
        }
    }

    emit(
        &cfg,
        "fig10_time_profile",
        &[
            "Data Set",
            "Method",
            "Recall (%)",
            "Verification (ms)",
            "Table Lookup (ms)",
            "Lower Bounds (ms)",
            "Others (ms)",
            "Total (ms)",
        ],
        &rows,
    );
}
