//! Zero-copy (format v2 + `LoadMode::Mmap`) loader tests: bit-identity against the
//! copying loader for every index kind, every-byte truncation hardening on the mapped
//! path (mirroring the v1/copying suite), alignment-violation handling, v1
//! compatibility, and the open-time sweep of crash-leftover epoch files.

use std::path::PathBuf;

use proptest::prelude::*;

use p2h_balltree::{BallTree, BallTreeBuilder};
use p2h_bctree::{BcTree, BcTreeBuilder};
use p2h_core::{HyperplaneQuery, LinearScan, P2hIndex, PointSet, SearchParams};
use p2h_data::{generate_queries, DataDistribution, QueryDistribution, SyntheticDataset};
use p2h_hash::{FhIndex, FhParams, NhIndex, NhParams};
use p2h_store::format::{wire, SnapshotSource, SnapshotWriter, HEADER_LEN, SECTION_HEADER_LEN};
use p2h_store::{IndexKind, LoadMode, MmapRegion, Snapshot, Store, StoreError, FORMAT_VERSION_V1};

fn dataset(n: usize, dim: usize, seed: u64) -> PointSet {
    SyntheticDataset::new(
        "store-zero-copy",
        n,
        dim,
        DataDistribution::GaussianClusters { clusters: 4, std_dev: 1.3 },
        seed,
    )
    .generate()
    .unwrap()
}

fn queries(ps: &PointSet, count: usize, seed: u64) -> Vec<HyperplaneQuery> {
    generate_queries(ps, count, QueryDistribution::DataDifference, seed).unwrap()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("p2h-zero-copy-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Bit-level equality of two indexes' answers (ids + distance bits), exact and
/// budgeted.
fn assert_bit_identical(a: &dyn P2hIndex, b: &dyn P2hIndex, ps: &PointSet, seed: u64) {
    for q in &queries(ps, 6, seed) {
        for params in [SearchParams::exact(8), SearchParams::approximate(8, ps.len() / 2)] {
            let ra = a.search(q, &params);
            let rb = b.search(q, &params);
            assert_eq!(ra.neighbors.len(), rb.neighbors.len());
            for (x, y) in ra.neighbors.iter().zip(&rb.neighbors) {
                assert_eq!(x.index, y.index);
                assert_eq!(x.distance.to_bits(), y.distance.to_bits());
            }
        }
    }
}

#[test]
fn mmap_loads_are_bit_identical_for_every_kind() {
    let ps = dataset(2_500, 10, 41);
    let dir = temp_dir("all-kinds");
    let store = Store::create(&dir).unwrap().with_mode(LoadMode::Copy);

    store.save("scan", &LinearScan::new(ps.clone())).unwrap();
    store.save("ball", &BallTreeBuilder::new(32).with_seed(3).build(&ps).unwrap()).unwrap();
    store.save("bc", &BcTreeBuilder::new(32).with_seed(3).build(&ps).unwrap()).unwrap();
    store.save("nh", &NhIndex::build(&ps, NhParams::new(2, 8).with_seed(5)).unwrap()).unwrap();
    store.save("fh", &FhIndex::build(&ps, FhParams::new(2, 8, 3).with_seed(5)).unwrap()).unwrap();

    let mapped = store.clone().with_mode(LoadMode::Mmap);
    assert_eq!(mapped.load_mode(), LoadMode::Mmap);

    // Every kind answers bit-identically under both loaders, and the mapped loads
    // really are zero-copy (the point payload views the mapping, owning no heap).
    let scan_copy: LinearScan = store.load("scan").unwrap();
    let scan_mmap: LinearScan = mapped.load("scan").unwrap();
    assert!(scan_mmap.points().is_mapped() && !scan_copy.points().is_mapped());
    assert_bit_identical(&scan_copy, &scan_mmap, &ps, 1);

    let ball_copy: BallTree = store.load("ball").unwrap();
    let ball_mmap: BallTree = mapped.load("ball").unwrap();
    assert!(ball_mmap.points().is_mapped());
    assert!(
        ball_mmap.structure_size_bytes() < ball_copy.structure_size_bytes(),
        "mapped structures must not count shared bytes as owned footprint"
    );
    assert_eq!(ball_mmap.centers(), ball_copy.centers());
    assert_eq!(ball_mmap.original_ids(), ball_copy.original_ids());
    assert_bit_identical(&ball_copy, &ball_mmap, &ps, 2);

    let bc_copy: BcTree = store.load("bc").unwrap();
    let bc_mmap: BcTree = mapped.load("bc").unwrap();
    assert!(bc_mmap.points().is_mapped());
    assert_eq!(bc_mmap.center_norms(), bc_copy.center_norms());
    assert_bit_identical(&bc_copy, &bc_mmap, &ps, 3);

    let nh_copy: NhIndex = store.load("nh").unwrap();
    let nh_mmap: NhIndex = mapped.load("nh").unwrap();
    assert!(nh_mmap.points().is_mapped());
    assert_eq!(nh_mmap.tables().values(), nh_copy.tables().values());
    assert_eq!(nh_mmap.tables().ids(), nh_copy.tables().ids());
    assert!(
        nh_mmap.index_size_bytes() < nh_copy.index_size_bytes(),
        "mapped projection tables are shared, not owned"
    );
    assert_bit_identical(&nh_copy, &nh_mmap, &ps, 4);

    let fh_copy: FhIndex = store.load("fh").unwrap();
    let fh_mmap: FhIndex = mapped.load("fh").unwrap();
    assert!(fh_mmap.points().is_mapped());
    for p in 0..fh_copy.partition_count() {
        assert_eq!(fh_mmap.partition_ids(p), fh_copy.partition_ids(p));
    }
    assert_bit_identical(&fh_copy, &fh_mmap, &ps, 5);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_all_and_entries_work_under_mmap() {
    let ps = dataset(800, 8, 47);
    let dir = temp_dir("load-all");
    let store = Store::create(&dir).unwrap();
    store.save("a", &LinearScan::new(ps.clone())).unwrap();
    store.save("b", &BallTreeBuilder::new(16).build(&ps).unwrap()).unwrap();

    let mapped = Store::open_with(&dir, LoadMode::Mmap).unwrap();
    let all = mapped.load_all().unwrap();
    assert_eq!(all.len(), 2);
    for (name, loaded) in &all {
        let copied = store.clone().with_mode(LoadMode::Copy).load_any(name).unwrap();
        assert_bit_identical(loaded.as_index(), copied.as_index(), &ps, 6);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_byte_truncation_is_typed_on_the_mapped_path_too() {
    // Mirrors the copying suite's every-byte-boundary sweep, but decodes through a
    // mapped source: no prefix may panic, over-allocate, or cast unaligned.
    let full = BallTreeBuilder::new(16).build(&dataset(300, 6, 43)).unwrap().encode_snapshot();
    let region = MmapRegion::from_bytes(full.clone());
    assert!(BallTree::decode_snapshot_src(SnapshotSource::Mapped(&region)).is_ok());
    for cut in 0..full.len() {
        let region = MmapRegion::from_bytes(full[..cut].to_vec());
        match BallTree::decode_snapshot_src(SnapshotSource::Mapped(&region)) {
            Err(
                StoreError::Truncated { .. }
                | StoreError::ChecksumMismatch { .. }
                | StoreError::SectionLength { .. }
                | StoreError::Misaligned { .. },
            ) => {}
            other => panic!("mapped prefix of {cut} bytes: expected a typed error, got {other:?}"),
        }
    }
}

#[test]
fn nonzero_padding_is_a_typed_misalignment_error() {
    // A v2 snapshot whose inter-section padding carries nonzero bytes is rejected with
    // `StoreError::Misaligned` — the padding is the alignment contract, so tampering
    // with it must not be silently tolerated (nor reachable by an unaligned cast).
    let scan = LinearScan::new(dataset(33, 5, 44));
    let bytes = scan.encode_snapshot();
    // Find a section whose payload length is not a multiple of 8 (META ends with the
    // note length; its payload is 44 bytes → 4 pad bytes follow).
    let mut tampered = bytes.clone();
    let meta_payload_len =
        u64::from_le_bytes(bytes[HEADER_LEN + 4..HEADER_LEN + 12].try_into().unwrap()) as usize;
    assert!(!meta_payload_len.is_multiple_of(8), "test needs a padded section");
    let pad_at = HEADER_LEN + SECTION_HEADER_LEN + meta_payload_len;
    tampered[pad_at] = 0xAB;
    match LinearScan::decode_snapshot(&tampered) {
        Err(StoreError::Misaligned { section, .. }) => assert_eq!(&section, b"META"),
        other => panic!("expected Misaligned, got {other:?}"),
    }
    // Same outcome through the mapped path.
    let region = MmapRegion::from_bytes(tampered);
    assert!(matches!(
        LinearScan::decode_snapshot_src(SnapshotSource::Mapped(&region)),
        Err(StoreError::Misaligned { .. })
    ));
}

/// Hand-writes a v1 (12-byte header, unpadded) LinearScan snapshot.
fn encode_v1_linear_scan(points: &PointSet) -> Vec<u8> {
    let mut writer = SnapshotWriter::with_version(IndexKind::LinearScan, FORMAT_VERSION_V1);
    let meta = writer.section(*b"META");
    wire::put_u64(meta, points.dim() as u64);
    wire::put_u64(meta, points.len() as u64);
    wire::put_u64(meta, 0);
    wire::put_u64(meta, 0);
    wire::put_u64(meta, 0);
    wire::put_u32(meta, 0); // empty note
    wire::put_f32_slice(writer.section(*b"PNTS"), points.as_flat());
    writer.finish()
}

/// Hand-writes a v1 NH snapshot with the legacy *interleaved* `(value, id)` PROJ
/// layout, exercising the layout branch of the v1 reader.
fn encode_v1_nh(nh: &NhIndex) -> Vec<u8> {
    let points = nh.points();
    let mut writer = SnapshotWriter::with_version(IndexKind::Nh, FORMAT_VERSION_V1);
    let meta = writer.section(*b"META");
    wire::put_u64(meta, points.dim() as u64);
    wire::put_u64(meta, points.len() as u64);
    wire::put_u64(meta, 0);
    wire::put_u64(meta, 0);
    wire::put_u64(meta, nh.params().seed);
    wire::put_u32(meta, 0);
    let params = writer.section(*b"NHPR");
    wire::put_u64(params, nh.params().lambda_factor as u64);
    wire::put_u64(params, nh.params().tables as u64);
    wire::put_u64(params, nh.params().collision_threshold as u64);
    wire::put_u64(params, nh.params().seed);
    wire::put_f32(params, nh.alignment_constant());
    wire::put_f32_slice(writer.section(*b"PNTS"), points.as_flat());
    let transform = writer.section(*b"TPRS");
    wire::put_u64(transform, nh.transform().input_dim() as u64);
    wire::put_f32(transform, nh.transform().scale());
    wire::put_u64(transform, nh.transform().pairs().len() as u64);
    for &(i, j) in nh.transform().pairs() {
        wire::put_u32(transform, i);
        wire::put_u32(transform, j);
    }
    let tables = nh.tables();
    let proj = writer.section(*b"PROJ");
    wire::put_u64(proj, tables.dim() as u64);
    wire::put_u64(proj, tables.table_count() as u64);
    wire::put_u64(proj, tables.len() as u64);
    wire::put_f32_slice(proj, tables.directions());
    for t in 0..tables.table_count() {
        for (value, id) in tables.table_values(t).iter().zip(tables.table_ids(t)) {
            wire::put_f32(proj, *value);
            wire::put_u32(proj, *id);
        }
    }
    writer.finish()
}

#[test]
fn v1_snapshots_still_load_via_the_copying_path() {
    let ps = dataset(900, 8, 45);

    let scan = LinearScan::new(ps.clone());
    let v1 = encode_v1_linear_scan(&ps);
    assert_ne!(v1[4], 2, "test must exercise a genuine v1 container");
    let loaded = LinearScan::decode_snapshot(&v1).unwrap();
    assert_bit_identical(&scan, &loaded, &ps, 7);
    // Every-byte truncation of the v1 container stays typed as well.
    for cut in 0..v1.len() {
        assert!(LinearScan::decode_snapshot(&v1[..cut]).is_err(), "v1 prefix {cut}");
    }

    // A mapped source on a v1 file silently demotes to copying: it loads fine and
    // owns its arrays (no zero-copy view is possible without alignment).
    let region = MmapRegion::from_bytes(v1);
    let demoted = LinearScan::decode_snapshot_src(SnapshotSource::Mapped(&region)).unwrap();
    assert!(!demoted.points().is_mapped());
    assert_bit_identical(&scan, &demoted, &ps, 7);

    // NH exercises the interleaved v1 PROJ layout.
    let nh = NhIndex::build(&ps, NhParams::new(2, 6).with_seed(9)).unwrap();
    let v1 = encode_v1_nh(&nh);
    let loaded = NhIndex::decode_snapshot(&v1).unwrap();
    assert_eq!(loaded.tables().values(), nh.tables().values());
    assert_eq!(loaded.tables().ids(), nh.tables().ids());
    assert_bit_identical(&nh, &loaded, &ps, 8);
}

#[test]
fn crash_leftover_epoch_files_are_swept_on_open() {
    let ps = dataset(200, 6, 46);
    let dir = temp_dir("sweep");
    let store = Store::create(&dir).unwrap();
    store.save("live", &LinearScan::new(ps.clone())).unwrap();
    // Replace once so the live entry sits under an epoch file name itself — the sweep
    // must distinguish *referenced* epoch files from leftovers.
    store.save("live", &LinearScan::new(ps)).unwrap();
    let live_file = store.snapshot_path("live").unwrap();
    assert!(live_file.ends_with("live.e1.p2hs"));

    // Simulated crash leftovers: a staged-but-uncommitted single replacement, staged
    // group files, and a temp file — backdated past the sweep grace window, as a
    // genuine crash leftover would be by the time the store reopens. A plain
    // unreferenced `<name>.p2hs` is NOT touched (conservative: only the store's own
    // staging patterns are reclaimed), and a *freshly* staged file is NOT touched
    // either (it may belong to a concurrent writer racing this open).
    let backdate = |path: &std::path::Path| {
        let old = std::time::SystemTime::now() - 2 * p2h_store::SWEEP_GRACE;
        std::fs::File::options()
            .write(true)
            .open(path)
            .and_then(|f| f.set_modified(old))
            .expect("backdate mtime");
    };
    for stale in ["live.e2.p2hs", "gone.g3.map.p2hs", "gone.g3.s0.p2hs", "live.p2hs.tmp"] {
        let path = dir.join(stale);
        std::fs::write(&path, b"leftover").unwrap();
        backdate(&path);
    }
    std::fs::write(dir.join("unmanaged.p2hs"), b"user data").unwrap();
    backdate(&dir.join("unmanaged.p2hs"));
    std::fs::write(dir.join("inflight.e9.p2hs"), b"being staged right now").unwrap();

    let reopened = Store::open(&dir).unwrap();
    assert!(live_file.exists(), "live entry must survive the sweep");
    assert!(dir.join("unmanaged.p2hs").exists(), "plain files are not the store's to delete");
    assert!(
        dir.join("inflight.e9.p2hs").exists(),
        "freshly staged files are inside the grace window and must survive"
    );
    for stale in ["live.e2.p2hs", "gone.g3.map.p2hs", "gone.g3.s0.p2hs", "live.p2hs.tmp"] {
        assert!(!dir.join(stale).exists(), "`{stale}` must be swept on open");
    }
    // The surviving entry still loads.
    let _: LinearScan = reopened.load("live").unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `LoadMode::Mmap` ≡ `LoadMode::Copy` bit-identically across data shapes and all
    /// five index kinds (shard groups are covered by the equivalent proptest in
    /// `p2h-shard`).
    #[test]
    fn mmap_equals_copy_bitwise(n in 120usize..600, dim in 4usize..12, seed in 0u64..1000) {
        let ps = dataset(n, dim, seed);
        let dir = temp_dir(&format!("prop-{n}-{dim}-{seed}"));
        let store = Store::create(&dir).unwrap().with_mode(LoadMode::Copy);
        store.save("scan", &LinearScan::new(ps.clone())).unwrap();
        store.save("ball", &BallTreeBuilder::new(24).with_seed(seed).build(&ps).unwrap()).unwrap();
        store.save("bc", &BcTreeBuilder::new(24).with_seed(seed).build(&ps).unwrap()).unwrap();
        store.save("nh", &NhIndex::build(&ps, NhParams::new(2, 4).with_seed(seed)).unwrap()).unwrap();
        store.save("fh", &FhIndex::build(&ps, FhParams::new(2, 4, 2).with_seed(seed)).unwrap()).unwrap();
        let mapped = store.clone().with_mode(LoadMode::Mmap);
        for name in ["scan", "ball", "bc", "nh", "fh"] {
            let a = store.load_any(name).unwrap();
            let b = mapped.load_any(name).unwrap();
            assert_bit_identical(a.as_index(), b.as_index(), &ps, seed ^ 0xff);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
